(* Product Reviews scenario (demo paper, Section 3): a shopper compares GPS
   devices on the buzzillions-style corpus. Shows result selection by rank
   (the demo's checkboxes), a size-bound sweep, and the snippet-vs-XSACT DoD
   gap on real pipeline output.

   Run with:  dune exec examples/product_compare.exe *)

let () =
  let dataset = Xsact_dataset.Dataset.product_reviews () in
  let pipeline = Pipeline.create dataset.Xsact_dataset.Dataset.document in
  let keywords = "gps" in

  (* Browse the result list, like the demo's result page (Figure 5). *)
  let results = Pipeline.search ~limit:8 pipeline keywords in
  Printf.printf "Top results for %S:\n" keywords;
  List.iter
    (fun (r : Search.result) ->
      Printf.printf "  [%d] %s\n" r.Search.rank
        (Search.result_title (Pipeline.engine pipeline) r))
    results;
  print_newline ();

  (* The shopper ticks three checkboxes and asks for a table of at most 8
     features per product. *)
  let select = [ 1; 2; 3 ] in
  (match
     Pipeline.compare pipeline ~keywords ~select ~size_bound:8
       ~config:Config.(default |> with_algorithm Algorithm.Multi_swap)
   with
  | Error e ->
    prerr_endline (Error.to_string e);
    exit 1
  | Ok c ->
    Printf.printf "Comparing results %s (L = 8):\n\n"
      (String.concat ", " (List.map string_of_int select));
    print_string (Render_text.table c.Pipeline.table));
  print_newline ();

  (* How much does joint selection buy over independent snippets? *)
  print_endline "Snippet vs XSACT DoD as the size bound grows:";
  Printf.printf "  %4s  %8s  %12s  %11s\n" "L" "snippet" "single-swap"
    "multi-swap";
  List.iter
    (fun size_bound ->
      let dod alg =
        match
          Pipeline.compare pipeline ~keywords ~select ~size_bound ~config:Config.(default |> with_algorithm alg)
        with
        | Ok c -> c.Pipeline.dod
        | Error e ->
          prerr_endline (Error.to_string e);
          exit 1
      in
      Printf.printf "  %4d  %8d  %12d  %11d\n" size_bound
        (dod Algorithm.Topk)
        (dod Algorithm.Single_swap)
        (dod Algorithm.Multi_swap))
    [ 2; 4; 6; 8; 12; 16 ];

  (* Export the table as the HTML page the demo UI would pop up. *)
  match
    Pipeline.compare pipeline ~keywords ~select ~size_bound:8
      ~config:Config.(default |> with_algorithm Algorithm.Multi_swap)
  with
  | Error e ->
    prerr_endline (Error.to_string e);
    exit 1
  | Ok c ->
    let path = Filename.temp_file "xsact_products" ".html" in
    Render_html.to_file path ~title:"XSACT: GPS comparison" c.Pipeline.table;
    Printf.printf "\nHTML comparison table written to %s\n" path
