(* Interactive comparison session: replay the demo's checkbox interaction
   programmatically. A shopper compares two phones, adds a third and a
   fourth, widens the table, drops one result, and finally re-weights the
   comparison toward what they care about — each step warm-starting from
   the previous DFSs (Session) instead of recomputing from scratch.

   Run with:  dune exec examples/interactive_session.exe *)

let step n what session =
  Printf.printf "step %d: %s\n" n what;
  Printf.printf "        results = %d, L = %d, DoD = %d\n\n"
    (Array.length (Session.profiles session))
    (Session.size_bound session) (Session.dod session);
  session

let die msg =
  prerr_endline msg;
  exit 1

let ok = function Ok v -> v | Error e -> die (Error.to_string e)

let () =
  let dataset = Xsact_dataset.Dataset.product_reviews () in
  let pipeline = Pipeline.create dataset.Xsact_dataset.Dataset.document in
  let results = Pipeline.search ~limit:6 pipeline "mobile phone" in
  let profiles = List.map (Pipeline.profile_of pipeline) results in
  (match profiles with
  | p1 :: p2 :: p3 :: p4 :: _ ->
    (* 1. Start comparing the first two phones. *)
    let s =
      ok (Session.create ~size_bound:6 [ p1; p2 ])
      |> step 1 "compare the first two phones"
    in
    (* 2-3. Tick two more checkboxes. *)
    let s = Session.add s p3 |> step 2 "add a third phone" in
    let s = Session.add s p4 |> step 3 "add a fourth phone" in
    (* 4. Widen the table. *)
    let s = ok (Session.set_size_bound s 10) |> step 4 "widen the table to L = 10" in
    (* 5. The second phone is out of budget; drop it. *)
    let s = ok (Session.remove s 1) |> step 5 "drop the second phone" in
    Printf.printf "final table:\n\n%s\n" (Render_text.table (Session.table s));
    (* 6. Re-weight toward battery life and star ratings and compare. *)
    let weighted =
      ok
        (Session.create
           ~config:
             Config.(
               default
               |> with_weight
                    (Weighting.by_attribute [ ("battery", 4); ("stars", 3) ]))
           ~size_bound:10
           (Array.to_list (Session.profiles s)))
    in
    Printf.printf
      "re-weighted (battery x4, stars x3): weighted DoD = %d\n"
      (Session.dod weighted);
    Printf.printf "algorithm invocations across the session: %d\n"
      (Session.stats s)
  | _ -> die "not enough phone results in the corpus")
