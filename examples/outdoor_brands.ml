(* Outdoor Retailer scenario (demo paper, Section 3): "if a male user wants
   to buy a jacket and issues a query 'men, jackets', each result will be a
   brand selling men's jackets [...] From the comparison table the user will
   learn, for example, that one brand mainly sells rain jackets while
   another focuses on insulated ski jackets."

   Results are lifted to the <brand> level (the demo's coarse comparison
   granularity); the subcategory row of the table then shows each brand's
   focus directly.

   Run with:  dune exec examples/outdoor_brands.exe *)

let () =
  let dataset = Xsact_dataset.Dataset.outdoor_retailer () in
  let pipeline = Pipeline.create dataset.Xsact_dataset.Dataset.document in
  let keywords = "men jackets" in

  let results = Pipeline.search ~lift_to:"brand" pipeline keywords in
  Printf.printf "Brands selling men's jackets (%d):\n" (List.length results);
  List.iter
    (fun (r : Search.result) ->
      Printf.printf "  [%d] %s\n" r.Search.rank
        (Search.result_title (Pipeline.engine pipeline) r))
    results;
  print_newline ();

  (match
     Pipeline.compare pipeline ~keywords ~lift_to:"brand" ~top:3 ~size_bound:9
       ~config:Config.(default |> with_algorithm Algorithm.Multi_swap)
       ~prune:Result_builder.Matched_entities
   with
  | Error e -> prerr_endline (Error.to_string e)
  | Ok c ->
    print_endline
      "Comparing the brands' MATCHING products only (men's jackets):";
    print_string (Render_text.table c.Pipeline.table);
    print_newline ());

  match
    Pipeline.compare pipeline ~keywords ~lift_to:"brand" ~top:3 ~size_bound:9
      ~config:Config.(default |> with_algorithm Algorithm.Multi_swap)
  with
  | Error e ->
    prerr_endline (Error.to_string e);
    exit 1
  | Ok c ->
    print_endline "Comparing the brands' full catalogs:";
    print_string (Render_text.table c.Pipeline.table);
    print_newline ();

    (* Read the brand focus straight out of the profiles: the dominant
       subcategory per brand, which is what the table's subcategory row
       surfaces. *)
    print_endline "Brand focus (share of the brand's products by subcategory):";
    Array.iter
      (fun (p : Result_profile.t) ->
        let subcat =
          Result_profile.find_type p
            { Feature.entity = "product"; attribute = "subcategory" }
        in
        match subcat with
        | None -> ()
        | Some gi ->
          let info = Result_profile.type_info p gi in
          let population = Result_profile.population p "product" in
          let top = info.Result_profile.features.(0) in
          Printf.printf "  %-18s -> %s (%d of %d products)\n"
            p.Result_profile.label
            top.Result_profile.feature.Feature.value
            top.Result_profile.count population)
      c.Pipeline.profiles
