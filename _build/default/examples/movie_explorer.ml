(* Movie exploration on the IMDB-style corpus — the data behind the paper's
   Figure 4 evaluation. Runs the QM benchmark queries, compares the three
   practical algorithms per query (DoD and wall-clock), and prints one full
   comparison table.

   Run with:  dune exec examples/movie_explorer.exe *)

let () =
  let prepared = Xsact_workload.Workload.imdb_qm ~top:5 () in
  let instances = prepared.Xsact_workload.Workload.queries in
  Printf.printf "IMDB corpus: %d QM queries usable\n\n" (List.length instances);

  Printf.printf "%-5s %-22s %8s | %6s %12s %11s\n" "query" "keywords" "results"
    "topk" "single-swap" "multi-swap";
  List.iter
    (fun (inst : Xsact_workload.Workload.instance) ->
      let context = Dod.make_context inst.Xsact_workload.Workload.profiles in
      let dod alg = Dod.total context (Algorithm.generate alg context ~limit:8) in
      Printf.printf "%-5s %-22s %8d | %6d %12d %11d\n"
        inst.Xsact_workload.Workload.label
        inst.Xsact_workload.Workload.keywords
        inst.Xsact_workload.Workload.result_count
        (dod Algorithm.Topk)
        (dod Algorithm.Single_swap)
        (dod Algorithm.Multi_swap))
    instances;
  print_newline ();

  (* One full table: what does "compare these five thrillers" look like? *)
  match
    List.find_opt
      (fun (i : Xsact_workload.Workload.instance) ->
        i.Xsact_workload.Workload.label = "QM4")
      instances
  with
  | None -> print_endline "QM4 unavailable on this corpus"
  | Some inst ->
    Printf.printf "Comparison table for %s (%S), L = 8:\n\n"
      inst.Xsact_workload.Workload.label inst.Xsact_workload.Workload.keywords;
    let context = Dod.make_context inst.Xsact_workload.Workload.profiles in
    let dfss = Multi_swap.generate context ~limit:8 in
    let table = Table.build ~size_bound:8 context dfss in
    print_string (Render_text.table table)
