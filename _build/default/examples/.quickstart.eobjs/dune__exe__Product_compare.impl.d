examples/product_compare.ml: Algorithm Filename List Pipeline Printf Render_html Render_text Search String Xsact_dataset
