examples/outdoor_brands.ml: Algorithm Array Feature List Pipeline Printf Render_text Result_builder Result_profile Search Xsact_dataset
