examples/interactive_session.ml: Array List Pipeline Printf Render_text Session Weighting Xsact_dataset
