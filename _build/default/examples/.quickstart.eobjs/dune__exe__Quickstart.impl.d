examples/quickstart.ml: Algorithm Dod List Pipeline Printf Render_text Search Snippet Xml_parse
