examples/outdoor_brands.mli:
