examples/product_compare.mli:
