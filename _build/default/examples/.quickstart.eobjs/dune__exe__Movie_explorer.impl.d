examples/movie_explorer.ml: Algorithm Dod List Multi_swap Printf Render_text Table Xsact_workload
