examples/movie_explorer.mli:
