examples/quickstart.mli:
