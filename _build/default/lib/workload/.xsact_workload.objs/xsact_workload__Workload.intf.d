lib/workload/workload.mli: Result_profile Search Xsact_dataset
