lib/workload/workload.ml: Array Extractor Feature List Printf Prng Result_profile Search Xsact_dataset Xsact_util
