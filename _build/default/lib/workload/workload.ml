type instance = {
  label : string;
  keywords : string;
  result_count : int;
  profiles : Result_profile.t array;
}

let instances ?(top = 5) ?lift_to engine queries =
  List.filter_map
    (fun (label, keywords) ->
      let results = Search.query ?lift_to engine keywords in
      let chosen = List.filteri (fun i _ -> i < top) results in
      if List.length chosen < 2 then None
      else
        Some
          {
            label;
            keywords;
            result_count = List.length results;
            profiles =
              Array.of_list
                (List.map (Extractor.of_search_result engine) chosen);
          })
    queries

type prepared = {
  dataset : Xsact_dataset.Dataset.t;
  engine : Search.engine;
  queries : instance list;
}

let prepare ?top ?lift_to (dataset : Xsact_dataset.Dataset.t) =
  let engine = Search.create dataset.document in
  { dataset; engine; queries = instances ?top ?lift_to engine dataset.queries }

let imdb_qm ?movies ?top () =
  let params =
    match movies with
    | Some m -> { Xsact_dataset.Imdb.default_params with movies = m }
    | None -> Xsact_dataset.Imdb.default_params
  in
  prepare ?top (Xsact_dataset.Dataset.imdb ~params ())

let paper_gps_profiles () =
  let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v in
  let gps1 =
    Result_profile.make ~label:"TomTom Go 630 Portable GPS"
      ~populations:[ ("review", 11); ("product", 1) ]
      [
        (f ~e:"product" ~a:"name" ~v:"TomTom Go 630 Portable GPS", 1);
        (f ~e:"product" ~a:"rating" ~v:"4.2", 1);
        (f ~e:"review" ~a:"pro:easy-to-read" ~v:"yes", 10);
        (f ~e:"review" ~a:"pro:compact" ~v:"yes", 8);
        (f ~e:"review" ~a:"best-use:auto" ~v:"yes", 6);
        (f ~e:"review" ~a:"user-category:casual" ~v:"yes", 6);
        (* the tail hidden behind Figure 1's "..." *)
        (f ~e:"review" ~a:"pro:easy-to-setup" ~v:"yes", 3);
        (f ~e:"review" ~a:"pro:acquires-satellites-quickly" ~v:"yes", 2);
        (f ~e:"review" ~a:"pro:large-screen" ~v:"yes", 1);
        (f ~e:"review" ~a:"best-use:faster-routers" ~v:"yes", 1);
      ]
  in
  let gps3 =
    Result_profile.make ~label:"TomTom Go 730 (Tri-linguial) BOX"
      ~populations:[ ("review", 68); ("product", 1) ]
      [
        (f ~e:"product" ~a:"name" ~v:"TomTom Go 730 (Tri-linguial) BOX", 1);
        (f ~e:"product" ~a:"rating" ~v:"4.1", 1);
        (f ~e:"review" ~a:"pro:acquires-satellites-quickly" ~v:"yes", 44);
        (f ~e:"review" ~a:"pro:easy-to-setup" ~v:"yes", 40);
        (f ~e:"review" ~a:"pro:compact" ~v:"yes", 38);
        (f ~e:"review" ~a:"best-use:faster-routers" ~v:"yes", 26);
        (* the tail hidden behind Figure 1's "..." *)
        (f ~e:"review" ~a:"pro:easy-to-read" ~v:"yes", 5);
        (f ~e:"review" ~a:"user-category:casual" ~v:"yes", 4);
        (f ~e:"review" ~a:"pro:large-screen" ~v:"yes", 4);
        (f ~e:"review" ~a:"best-use:auto" ~v:"yes", 3);
      ]
  in
  [| gps1; gps3 |]

let synthetic_profiles ~seed ~results ~entities ~types_per_entity
    ~values_per_type ~max_count =
  let open Xsact_util in
  let g = Prng.of_int seed in
  let entity_name e = Printf.sprintf "e%d" e in
  let attr_name a = Printf.sprintf "attr%d" a in
  let value_name v = Printf.sprintf "v%d" v in
  Array.init results (fun r ->
      let features = ref [] in
      for e = 0 to entities - 1 do
        for a = 0 to types_per_entity - 1 do
          (* Drop the whole type with probability 1/4 so the shared-type
             structure differs across results. *)
          if not (Prng.chance g 0.25) then begin
            let nvals = Prng.int_in g 1 values_per_type in
            for v = 0 to nvals - 1 do
              let feature =
                Feature.make ~entity:(entity_name e) ~attribute:(attr_name a)
                  ~value:(value_name v)
              in
              features := (feature, Prng.int_in g 1 max_count) :: !features
            done
          end
        done
      done;
      let populations =
        List.init entities (fun e -> (entity_name e, max_count))
      in
      (* A profile must not be empty; re-add one feature if needed. *)
      let features =
        if !features = [] then
          [ (Feature.make ~entity:"e0" ~attribute:"attr0" ~value:"v0", 1) ]
        else !features
      in
      Result_profile.make
        ~label:(Printf.sprintf "R%d" (r + 1))
        ~populations features)
