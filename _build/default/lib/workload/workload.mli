(** Benchmark workloads: datasets + query sets turned into ready-to-run
    comparison instances. Shared by the benches, integration tests and
    examples so every consumer measures exactly the same inputs. *)

type instance = {
  label : string;  (** query label, e.g. ["QM3"] *)
  keywords : string;
  result_count : int;  (** results the query returned *)
  profiles : Result_profile.t array;  (** the compared subset, extracted *)
}

val instances :
  ?top:int ->
  ?lift_to:string ->
  Search.engine ->
  (string * string) list ->
  instance list
(** Run each [(label, keywords)] query and extract the [top] (default 5)
    first results. Queries yielding fewer than two results are dropped. *)

type prepared = {
  dataset : Xsact_dataset.Dataset.t;
  engine : Search.engine;
  queries : instance list;
}

val prepare : ?top:int -> ?lift_to:string -> Xsact_dataset.Dataset.t -> prepared
(** Index the dataset and materialize its demo query workload. *)

val imdb_qm : ?movies:int -> ?top:int -> unit -> prepared
(** The Figure 4 workload: the IMDB corpus (default size) and queries
    QM1..QM8, [top] (default 5) results each. *)

val paper_gps_profiles : unit -> Result_profile.t array
(** The two GPS results of the paper's running example: the exact Figure 1
    statistics (11 vs 68 reviews, easy-to-read 10, compact 8 vs 38,
    satellites 44, ...) plus a plausible low-count tail standing in for the
    "..." rows of the figure (without which the two results share too few
    feature types for the Figure 2 comparison to reach the paper's DoD).
    Used by the Figure 1/2 reproduction benches. *)

val synthetic_profiles :
  seed:int ->
  results:int ->
  entities:int ->
  types_per_entity:int ->
  values_per_type:int ->
  max_count:int ->
  Result_profile.t array
(** Random small instances for optimality/property experiments: [results]
    profiles sharing a universe of [entities * types_per_entity] feature
    types with up to [values_per_type] values each and counts in
    [1..max_count]; each profile drops each type with probability 1/4 so
    type sets overlap but differ. Deterministic in [seed]. *)
