type align = Left | Right | Center

type row = Cells of string list | Separator

type t = { max_col_width : int; mutable rows : row list (* reversed *) }

let create ?(max_col_width = 40) () = { max_col_width; rows = [] }

let add_row t cells =
  let clipped = List.map (fun c -> Textutil.truncate_middle c t.max_col_width) cells in
  t.rows <- Cells clipped :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let align_cell align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      let right = width - n - left in
      String.make left ' ' ^ s ^ String.make right ' '

let render ?(aligns = []) t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc row ->
        match row with Cells cs -> max acc (List.length cs) | Separator -> acc)
      0 rows
  in
  if ncols = 0 then ""
  else begin
    let widths = Array.make ncols 0 in
    let note_row cs =
      List.iteri
        (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
        cs
    in
    List.iter (function Cells cs -> note_row cs | Separator -> ()) rows;
    let align_of i = match List.nth_opt aligns i with Some a -> a | None -> Left in
    let buf = Buffer.create 1024 in
    let total_width =
      Array.fold_left ( + ) 0 widths + (3 * (ncols - 1))
    in
    let pad_cells cs =
      let arr = Array.make ncols "" in
      List.iteri (fun i c -> if i < ncols then arr.(i) <- c) cs;
      arr
    in
    List.iter
      (fun row ->
        (match row with
        | Separator -> Buffer.add_string buf (String.make total_width '-')
        | Cells cs ->
          let arr = pad_cells cs in
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf " | ";
              Buffer.add_string buf (align_cell (align_of i) widths.(i) c))
            arr);
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
  end
