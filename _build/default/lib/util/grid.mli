(** Monospace table layout.

    Renders a list of rows as an aligned ASCII grid, used by the plain-text
    comparison-table renderer and by the benchmark harness to print the
    paper's figures as tables. *)

type align = Left | Right | Center

type t
(** A grid under construction. *)

val create : ?max_col_width:int -> unit -> t
(** [create ?max_col_width ()] makes an empty grid. Cells longer than
    [max_col_width] (default 40 bytes) are truncated in the middle. *)

val add_row : t -> string list -> unit
(** Append a data row. Rows may have differing lengths; short rows are padded
    with empty cells. *)

val add_separator : t -> unit
(** Append a horizontal rule. *)

val render : ?aligns:align list -> t -> string
(** Render the grid with column-width autosizing and [" | "] separators.
    [aligns] gives per-column alignment (default all [Left]); missing entries
    default to [Left]. The result ends with a newline. *)
