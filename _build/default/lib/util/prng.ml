type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy g = { state = g.state }

(* SplitMix64 output function: add the golden-ratio increment, then two
   xor-shift-multiply mixing rounds (constants from the reference
   implementation). *)
let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = next_int64 g in
  create seed

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits (better mixed in SplitMix64) and reduce modulo bound.
     The modulo bias is < bound / 2^62, negligible for our bounds. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  raw mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (raw /. 9007199254740992.0) (* 2^53 *)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p
