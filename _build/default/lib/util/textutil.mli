(** Small string utilities shared across the code base. *)

val lowercase_ascii_words : string -> string list
(** [lowercase_ascii_words s] splits [s] into maximal runs of ASCII letters
    and digits, lowercased. This is the keyword tokenizer used by both the
    index and query sides of the search engine. *)

val slug : string -> string
(** [slug s] lowercases [s] and replaces non-alphanumeric runs by ['-'];
    used for stable identifiers in generated datasets. *)

val pad_right : string -> int -> string
(** [pad_right s w] pads [s] with spaces to width [w] (UTF-8-naive: counts
    bytes, which is fine for the ASCII output we produce). *)

val truncate_middle : string -> int -> string
(** [truncate_middle s w] shortens [s] to at most [w] bytes, replacing the
    middle with ["..."] when needed. *)

val capitalize_words : string -> string
(** [capitalize_words s] uppercases the first letter of each space-separated
    word. *)

val join_nonempty : string -> string list -> string
(** [join_nonempty sep parts] concatenates the non-empty strings of [parts]
    with [sep]. *)

val starts_with : prefix:string -> string -> bool
(** Prefix test (stdlib's [String.starts_with], re-exported for symmetry). *)

val contains_substring : string -> string -> bool
(** [contains_substring haystack needle] is naive substring search;
    [needle = ""] is [true]. *)
