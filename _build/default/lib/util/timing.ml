type stats = {
  median_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
  runs : int;
}

let now () = Unix.gettimeofday ()

let once f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

let time ?(warmup = 1) ?(runs = 5) f =
  let runs = max 1 runs in
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples = Array.make runs 0.0 in
  let last = ref None in
  for i = 0 to runs - 1 do
    let result, elapsed = once f in
    samples.(i) <- elapsed;
    last := Some result
  done;
  Array.sort compare samples;
  let median =
    if runs mod 2 = 1 then samples.(runs / 2)
    else (samples.((runs / 2) - 1) +. samples.(runs / 2)) /. 2.0
  in
  let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int runs in
  let stats =
    {
      median_s = median;
      mean_s = mean;
      min_s = samples.(0);
      max_s = samples.(runs - 1);
      runs;
    }
  in
  match !last with
  | Some result -> (result, stats)
  | None -> assert false
