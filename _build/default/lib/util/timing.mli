(** Wall-clock measurement helpers for the figure-reproduction harness.

    Bechamel gives rigorous micro-benchmarks; these helpers give the simple
    "run it a few times and report the median" numbers that the paper's
    Figure 4(b) plots (per-query end-to-end seconds). *)

type stats = {
  median_s : float;  (** median of the measured runs, in seconds *)
  mean_s : float;    (** arithmetic mean, in seconds *)
  min_s : float;     (** fastest run *)
  max_s : float;     (** slowest run *)
  runs : int;        (** number of measured runs *)
}

val time : ?warmup:int -> ?runs:int -> (unit -> 'a) -> 'a * stats
(** [time ~warmup ~runs f] runs [f] [warmup] times unmeasured (default 1),
    then [runs] times measured (default 5), and returns the last result with
    the run statistics. *)

val once : (unit -> 'a) -> 'a * float
(** [once f] runs [f] a single time and returns its result and elapsed
    seconds. *)
