(** Random sampling utilities on top of {!Prng}.

    These are the building blocks of the data-set generators: weighted
    categorical draws, Zipf-distributed ranks (the feature-count profiles in
    the paper's datasets are heavy-tailed), shuffles and subset draws. *)

val pick : Prng.t -> 'a array -> 'a
(** Uniform draw from a non-empty array. @raise Invalid_argument on [||]. *)

val pick_list : Prng.t -> 'a list -> 'a
(** Uniform draw from a non-empty list. @raise Invalid_argument on []. *)

val weighted_index : Prng.t -> float array -> int
(** [weighted_index g w] draws index [i] with probability [w.(i) / Σ w].
    Weights must be non-negative with a positive sum.
    @raise Invalid_argument otherwise. *)

val weighted : Prng.t -> ('a * float) list -> 'a
(** [weighted g choices] draws a value with probability proportional to its
    weight. @raise Invalid_argument on an empty or all-zero list. *)

val zipf : Prng.t -> n:int -> s:float -> int
(** [zipf g ~n ~s] draws a rank in [\[0, n)] from a Zipf distribution with
    exponent [s] (rank [k] has weight [(k+1)^-s]). @raise Invalid_argument if
    [n <= 0]. *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : Prng.t -> int -> 'a array -> 'a list
(** [sample_without_replacement g k arr] draws [min k (Array.length arr)]
    distinct elements, in random order. *)

val binomial : Prng.t -> n:int -> p:float -> int
(** [binomial g ~n ~p] counts successes among [n] independent [p]-trials. *)
