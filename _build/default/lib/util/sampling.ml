let pick g arr =
  if Array.length arr = 0 then invalid_arg "Sampling.pick: empty array";
  arr.(Prng.int g (Array.length arr))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Sampling.pick_list: empty list"
  | _ -> List.nth l (Prng.int g (List.length l))

let weighted_index g w =
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 then invalid_arg "Sampling.weighted_index: negative weight";
      acc +. x)
      0.0 w
  in
  if total <= 0.0 then invalid_arg "Sampling.weighted_index: zero total weight";
  let target = Prng.float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let weighted g choices =
  let arr = Array.of_list choices in
  if Array.length arr = 0 then invalid_arg "Sampling.weighted: empty list";
  let w = Array.map snd arr in
  fst arr.(weighted_index g w)

let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Sampling.zipf: n must be positive";
  let w = Array.init n (fun k -> Float.pow (float_of_int (k + 1)) (-.s)) in
  weighted_index g w

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement g k arr =
  let copy = Array.copy arr in
  shuffle g copy;
  let k = min k (Array.length copy) in
  Array.to_list (Array.sub copy 0 k)

let binomial g ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.chance g p then incr count
  done;
  !count
