(** Deterministic pseudo-random number generation.

    All data-set generators and benchmark workloads in this repository must be
    reproducible run-to-run, so they draw from this explicitly seeded
    generator rather than from [Stdlib.Random]. The implementation is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, well-mixed
    64-bit generator whose streams can be split deterministically. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)
