let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let lowercase_ascii_words s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    if is_word_char s.[i] then Buffer.add_char buf s.[i] else flush ()
  done;
  flush ();
  List.rev !out

let slug s =
  String.concat "-" (lowercase_ascii_words s)

let pad_right s w =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let truncate_middle s w =
  let n = String.length s in
  if n <= w then s
  else if w <= 3 then String.sub s 0 w
  else
    let keep = w - 3 in
    let left = (keep + 1) / 2 in
    let right = keep - left in
    String.sub s 0 left ^ "..." ^ String.sub s (n - right) right

let capitalize_words s =
  String.concat " "
    (List.map String.capitalize_ascii (String.split_on_char ' ' s))

let join_nonempty sep parts =
  String.concat sep (List.filter (fun p -> p <> "") parts)

let starts_with ~prefix s = String.starts_with ~prefix s

let contains_substring haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i =
      if i + nn > hn then false
      else if String.sub haystack i nn = needle then true
      else at (i + 1)
    in
    at 0
