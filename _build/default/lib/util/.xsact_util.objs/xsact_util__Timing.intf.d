lib/util/timing.mli:
