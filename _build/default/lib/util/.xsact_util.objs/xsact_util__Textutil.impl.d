lib/util/textutil.ml: Buffer List String
