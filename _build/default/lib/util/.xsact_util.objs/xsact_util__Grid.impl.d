lib/util/grid.ml: Array Buffer List String Textutil
