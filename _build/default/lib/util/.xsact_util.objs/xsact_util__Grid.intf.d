lib/util/grid.mli:
