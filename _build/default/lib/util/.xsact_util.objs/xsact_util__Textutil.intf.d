lib/util/textutil.mli:
