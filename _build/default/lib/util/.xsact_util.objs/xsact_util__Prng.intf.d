lib/util/prng.mli:
