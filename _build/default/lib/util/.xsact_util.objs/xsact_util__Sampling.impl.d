lib/util/sampling.ml: Array Float List Prng
