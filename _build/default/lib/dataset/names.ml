let first_names =
  [|
    "James"; "Mary"; "Robert"; "Patricia"; "John"; "Jennifer"; "Michael";
    "Linda"; "David"; "Elizabeth"; "William"; "Barbara"; "Richard"; "Susan";
    "Joseph"; "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen"; "Christopher";
    "Lisa"; "Daniel"; "Nancy"; "Matthew"; "Betty"; "Anthony"; "Sandra";
    "Mark"; "Margaret"; "Donald"; "Ashley"; "Steven"; "Kimberly"; "Andrew";
    "Emily"; "Paul"; "Donna"; "Joshua"; "Michelle"; "Kenneth"; "Carol";
    "Kevin"; "Amanda"; "Brian"; "Dorothy"; "George"; "Melissa"; "Timothy";
    "Deborah"; "Ronald"; "Stephanie"; "Jason"; "Rebecca"; "Edward"; "Sharon";
    "Jeffrey"; "Laura"; "Ryan"; "Cynthia"; "Jacob"; "Kathleen"; "Gary";
    "Amy"; "Nicholas"; "Angela"; "Eric"; "Shirley"; "Jonathan"; "Anna";
    "Stephen"; "Brenda"; "Larry"; "Pamela"; "Justin"; "Emma"; "Scott";
    "Nicole"; "Brandon"; "Helen"; "Benjamin"; "Samantha"; "Samuel";
    "Katherine"; "Gregory"; "Christine"; "Alexander"; "Debra"; "Patrick";
    "Rachel"; "Frank"; "Carolyn"; "Raymond"; "Janet"; "Jack"; "Maria";
    "Dennis"; "Olivia"; "Jerry"; "Heather";
  |]

let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
    "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
    "Wilson"; "Anderson"; "Thomas"; "Taylor"; "Moore"; "Jackson"; "Martin";
    "Lee"; "Perez"; "Thompson"; "White"; "Harris"; "Sanchez"; "Clark";
    "Ramirez"; "Lewis"; "Robinson"; "Walker"; "Young"; "Allen"; "King";
    "Wright"; "Scott"; "Torres"; "Nguyen"; "Hill"; "Flores"; "Green";
    "Adams"; "Nelson"; "Baker"; "Hall"; "Rivera"; "Campbell"; "Mitchell";
    "Carter"; "Roberts"; "Gomez"; "Phillips"; "Evans"; "Turner"; "Diaz";
    "Parker"; "Cruz"; "Edwards"; "Collins"; "Reyes"; "Stewart"; "Morris";
    "Morales"; "Murphy"; "Cook"; "Rogers"; "Gutierrez"; "Ortiz"; "Morgan";
    "Cooper"; "Peterson"; "Bailey"; "Reed"; "Kelly"; "Howard"; "Ramos";
    "Kim"; "Cox"; "Ward"; "Richardson"; "Watson"; "Brooks"; "Chavez";
    "Wood"; "James"; "Bennett"; "Gray"; "Mendoza"; "Ruiz"; "Hughes";
    "Price"; "Alvarez"; "Castillo"; "Sanders"; "Patel"; "Myers"; "Long";
    "Ross"; "Foster"; "Jimenez";
  |]

let hobby_words =
  [|
    "roadtrip"; "gadget"; "travel"; "outdoor"; "trail"; "photo"; "pixel";
    "techie"; "driver"; "hiker"; "camper"; "runner"; "cyclist"; "shutter";
    "signal"; "compass"; "voyager"; "nomad"; "scout"; "ranger";
  |]

let cities =
  [|
    "Phoenix"; "Seattle"; "Denver"; "Austin"; "Portland"; "Chicago";
    "Boston"; "Atlanta"; "Tucson"; "Boulder"; "Madison"; "Raleigh";
    "Columbus"; "Omaha"; "Reno"; "Spokane"; "Eugene"; "Fresno"; "Tampa";
    "Albany"; "Richmond"; "Savannah"; "Missoula"; "Flagstaff"; "Bend";
  |]

let full_name g =
  Sampling.pick g first_names ^ " " ^ Sampling.pick g last_names

let username g =
  let word = Sampling.pick g hobby_words in
  let suffix =
    match Prng.int g 3 with
    | 0 -> string_of_int (Prng.int_in g 1 99)
    | 1 -> "fan" ^ string_of_int (Prng.int_in g 1 99)
    | _ -> Sampling.pick g hobby_words
  in
  word ^ suffix

let city g = Sampling.pick g cities
