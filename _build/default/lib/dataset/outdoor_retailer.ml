type params = {
  seed : int;
  brands : int;
  min_products : int;
  max_products : int;
}

let default_params =
  { seed = 7392; brands = 12; min_products = 30; max_products = 120 }

let brand_names =
  [|
    "Marmot"; "Columbia"; "Patagonia"; "Mountain Hardwear"; "Arc'teryx";
    "The North Face"; "Mammut"; "Salomon"; "Merrell"; "Vasque"; "Osprey";
    "Kelty"; "Sierra Designs"; "Outdoor Research"; "Black Diamond";
    "Marlin Cycles"; "Cannondale"; "Novara";
  |]

type cat_def = {
  cat : string;
  subcats : string array;
  flags : string array;  (* boolean feature labels *)
  price_range : float * float;
  gendered : bool;
}

let cat_defs =
  [|
    {
      cat = "jackets";
      subcats =
        [|
          "rain-jackets"; "insulated-ski-jackets"; "softshell-jackets";
          "down-jackets"; "fleece-jackets"; "windbreakers";
        |];
      flags =
        [|
          "waterproof"; "breathable"; "windproof"; "packable"; "insulated";
          "pit-zips"; "adjustable-hood"; "seam-taped"; "lightweight";
        |];
      price_range = (59.0, 499.0);
      gendered = true;
    };
    {
      cat = "footwear";
      subcats =
        [|
          "hiking-boots"; "trail-runners"; "mountaineering-boots"; "sandals";
          "approach-shoes";
        |];
      flags =
        [|
          "waterproof"; "vibram-sole"; "gore-tex-lining"; "ankle-support";
          "breathable"; "lightweight"; "wide-sizes";
        |];
      price_range = (49.0, 349.0);
      gendered = true;
    };
    {
      cat = "tents";
      subcats = [| "backpacking-tents"; "camping-tents"; "mountaineering-tents" |];
      flags =
        [|
          "freestanding"; "three-season"; "four-season"; "vestibule";
          "ultralight"; "color-coded-poles";
        |];
      price_range = (129.0, 699.0);
      gendered = false;
    };
    {
      cat = "packs";
      subcats = [| "daypacks"; "overnight-packs"; "expedition-packs"; "hydration-packs" |];
      flags =
        [|
          "hydration-compatible"; "rain-cover"; "hip-belt"; "ventilated-back";
          "top-loading"; "adjustable-torso";
        |];
      price_range = (39.0, 429.0);
      gendered = true;
    };
    {
      cat = "bicycles";
      subcats = [| "mountain-bikes"; "road-bikes"; "hybrid-bikes"; "kids-bikes" |];
      flags =
        [|
          "disc-brakes"; "front-suspension"; "full-suspension";
          "aluminum-frame"; "carbon-fork"; "tubeless-ready";
        |];
      price_range = (249.0, 3499.0);
      gendered = true;
    };
    {
      cat = "clothes";
      subcats = [| "base-layers"; "hiking-pants"; "shorts"; "shirts"; "socks" |];
      flags =
        [|
          "moisture-wicking"; "quick-dry"; "upf-rated"; "merino-wool";
          "stretch-fabric"; "zip-off-legs";
        |];
      price_range = (15.0, 159.0);
      gendered = true;
    };
  |]

let adjectives =
  [|
    "Alpine"; "Summit"; "Ridge"; "Cascade"; "Torrent"; "Glacier"; "Canyon";
    "Sierra"; "Monsoon"; "Storm"; "Trail"; "Peak"; "Basecamp"; "Horizon";
    "Traverse"; "Vertex"; "Cirrus"; "Stratus"; "Boulder"; "Juniper";
  |]

(* Brand focus: a weight per category and, inside each category, a weight per
   subcategory; a couple of signature subcategories carry most of the mass. *)
type focus = {
  cat_weights : float array;
  subcat_weights : float array array;
}

let make_focus g =
  let cat_weights =
    Array.map
      (fun _ -> 0.2 +. Prng.float g 1.0)
      cat_defs
  in
  (* Two signature categories get boosted weight. *)
  for _ = 1 to 2 do
    let i = Prng.int g (Array.length cat_defs) in
    cat_weights.(i) <- cat_weights.(i) +. 3.0 +. Prng.float g 3.0
  done;
  let subcat_weights =
    Array.map
      (fun def ->
        let w = Array.map (fun _ -> 0.15 +. Prng.float g 0.6) def.subcats in
        (* One signature subcategory per category dominates. *)
        let i = Prng.int g (Array.length def.subcats) in
        w.(i) <- w.(i) +. 3.5 +. Prng.float g 2.5;
        w)
      cat_defs
  in
  { cat_weights; subcat_weights }

let product g focus ~brand =
  let ci = Sampling.weighted_index g focus.cat_weights in
  let def = cat_defs.(ci) in
  let si = Sampling.weighted_index g focus.subcat_weights.(ci) in
  let subcat = def.subcats.(si) in
  let adjective = Sampling.pick g adjectives in
  let series = Prng.int_in g 1 9 * 10 in
  let gender =
    if def.gendered then
      Sampling.weighted g [ ("men", 1.0); ("women", 1.0); ("unisex", 0.4) ]
    else "unisex"
  in
  let name =
    Printf.sprintf "%s %s %d" brand adjective series
  in
  let lo, hi = def.price_range in
  let price = lo +. Prng.float g (hi -. lo) in
  let flag_count = Prng.int_in g 2 (min 5 (Array.length def.flags)) in
  let flags = Sampling.sample_without_replacement g flag_count def.flags in
  let feature_items =
    List.map (fun flag -> Xml.elem "feature" [ Xml.leaf flag "yes" ]) flags
  in
  let material =
    Sampling.weighted g
      [
        ("nylon", 2.0); ("polyester", 2.0); ("gore-tex", 1.2); ("down", 0.8);
        ("merino-wool", 0.6); ("aluminum", 0.5); ("cotton-blend", 0.7);
      ]
  in
  let origin =
    Sampling.weighted g
      [ ("imported", 5.0); ("usa", 1.5); ("canada", 0.5) ]
  in
  Xml.elem "product"
    ([
       Xml.leaf "name" name;
       Xml.leaf "category" def.cat;
       Xml.leaf "subcategory" subcat;
       Xml.leaf "gender" gender;
       Xml.leaf "material" material;
       Xml.leaf "origin" origin;
       Xml.leaf "price" (Printf.sprintf "%.2f" price);
     ]
    @ if feature_items = [] then [] else [ Xml.elem "features" feature_items ])

let generate params =
  let g = Prng.of_int params.seed in
  let count = min params.brands (Array.length brand_names) in
  let brands =
    List.init count (fun i ->
        let brand = brand_names.(i) in
        let focus = make_focus g in
        let product_count =
          Prng.int_in g params.min_products params.max_products
        in
        let products =
          List.init product_count (fun _ -> product g focus ~brand)
        in
        Xml.elem "brand"
          [
            Xml.leaf "name" brand;
            Xml.leaf "founded" (string_of_int (Prng.int_in g 1902 1995));
            Xml.leaf "headquarters" (Names.city g);
            Xml.elem "products" products;
          ])
  in
  Xml.document { Xml.tag = "brands"; attrs = []; children = brands }

let sample_queries =
  [
    ("QO1", "men jackets");
    ("QO2", "women jackets");
    ("QO3", "waterproof jackets");
    ("QO4", "hiking boots");
    ("QO5", "backpacking tents");
    ("QO6", "mountain bikes");
  ]
