type t = {
  name : string;
  description : string;
  document : Xml.document;
  queries : (string * string) list;
}

let product_reviews ?(params = Product_reviews.default_params) () =
  {
    name = "product-reviews";
    description =
      "GPS / mobile phone / digital camera products with per-reviewer \
       pros, cons and best uses (buzzillions.com stand-in)";
    document = Product_reviews.generate params;
    queries = Product_reviews.sample_queries;
  }

let outdoor_retailer ?(params = Outdoor_retailer.default_params) () =
  {
    name = "outdoor-retailer";
    description =
      "Outdoor brands with products across jackets, footwear, tents, packs, \
       bicycles and clothes (REI.com stand-in)";
    document = Outdoor_retailer.generate params;
    queries = Outdoor_retailer.sample_queries;
  }

let imdb ?(params = Imdb.default_params) () =
  {
    name = "imdb";
    description =
      "Movies with title, year, rating and multi-valued genre / director / \
       actor / keyword attributes (IMDB list snapshot stand-in)";
    document = Imdb.generate params;
    queries = Imdb.sample_queries;
  }

let names = [ "product-reviews"; "outdoor-retailer"; "imdb" ]

let by_name = function
  | "product-reviews" -> Some (product_reviews ())
  | "outdoor-retailer" -> Some (outdoor_retailer ())
  | "imdb" -> Some (imdb ())
  | _ -> None
