(** Synthetic Outdoor Retailer corpus (stands in for the REI.com crawl).

    Shape, following the demo's Section 3: a list of brands, each with a set
    of products for outdoor recreation (jackets, footwear, tents, bicycles,
    packs, ...). Each product carries category / subcategory / gender /
    price / material-style attributes plus boolean feature flags
    ([<features><feature><waterproof>yes</waterproof></feature>...]).

    Every brand draws a {e focus} — a skewed distribution over categories and
    subcategories (e.g. a brand that mostly sells rain jackets) — so that the
    demo scenario works: comparing brands on a "men jackets" query reveals
    the different focuses, exactly the Marmot-vs-Columbia story in the
    paper. *)

type params = {
  seed : int;
  brands : int;
  min_products : int;  (** per brand, inclusive *)
  max_products : int;  (** per brand, inclusive *)
}

val default_params : params
(** [seed = 7392; brands = 12; min_products = 30; max_products = 120]. *)

val generate : params -> Xml.document

val sample_queries : (string * string) list
