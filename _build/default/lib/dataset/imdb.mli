(** Synthetic IMDB movie corpus.

    Figure 4 of the paper evaluates XSACT on "a movie data set extracted
    from IMDB" (the ftp.sunet.se list snapshot). That snapshot is not
    redistributable, so this generator produces a corpus with the same
    entity/attribute structure: movies carrying title, year, runtime,
    rating, votes, certificate, production company, country, language, and
    the multi-valued genre / director / actor / keyword attributes.

    Directors and actors are drawn from finite pools (including a few
    well-known names used by the benchmark queries), genres follow a skewed
    popularity distribution, and keyword sets correlate weakly with genres —
    enough texture that the QM1..QM8 queries return result sets of varying
    sizes and feature profiles. *)

type params = {
  seed : int;
  movies : int;
  year_range : int * int;  (** inclusive *)
}

val default_params : params
(** [seed = 1913; movies = 1500; year_range = (1970, 2009)]. *)

val generate : params -> Xml.document

val sample_queries : (string * string) list
(** The benchmark workload QM1..QM8 (label, keywords). *)
