(** Registry tying the generators together behind one interface, used by the
    CLI, examples and benches. *)

type t = {
  name : string;  (** registry key, e.g. ["product-reviews"] *)
  description : string;
  document : Xml.document;
  queries : (string * string) list;  (** (label, keywords) demo workload *)
}

val product_reviews : ?params:Product_reviews.params -> unit -> t
val outdoor_retailer : ?params:Outdoor_retailer.params -> unit -> t
val imdb : ?params:Imdb.params -> unit -> t

val names : string list
(** All registry keys. *)

val by_name : string -> t option
(** Build the dataset with default parameters; [None] for unknown names. *)
