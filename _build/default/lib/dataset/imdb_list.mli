(** IMDB list-file interchange format.

    The paper's Figure 4 corpus was "extracted from IMDB"
    ([ftp://ftp.sunet.se/pub/tv+movies/imdb/]) — the classic plain-text
    *.list snapshot. This module speaks a faithful simplification of that
    format, so the pipeline can be driven from list files exactly like the
    original system:

    - [movies.list]    — one movie key per line: [Title (1999)] (duplicate
      title/year pairs disambiguated [Title (1999/II)] like IMDB);
    - [ratings.list]   — ["  <distribution>  <votes>  <rank>  <key>"], the
      10-digit star-distribution histogram included;
    - [genres.list], [keywords.list] — ["<key>\tValue"], one line per value;
    - [directors.list], [actors.list] — person-grouped: the name and first
      title on one line, further titles on tab-indented continuation lines,
      people separated by blank lines;
    - [attributes.list] — our extension carrying the remaining scalar fields
      ([runtime=], [certificate=], ...) so that XML -> lists -> XML is
      lossless.

    {!movies_of_document} / {!document_of_movies} convert to and from the
    XML corpus shape produced by {!Imdb.generate}; writing then parsing then
    rebuilding reproduces the original document exactly (round-trip
    tested). *)

type movie = {
  title : string;
  year : int;
  qualifier : int;  (** 1 for the first [Title (year)], 2 for [/II], ... *)
  runtime : int;
  rating : float;
  votes : int;
  certificate : string;
  color : string;
  company : string;
  country : string;
  language : string;
  genres : string list;
  directors : string list;
  actors : string list;
  keywords : string list;
}

val key : movie -> string
(** ["Title (1999)"] or ["Title (1999/II)"] for [qualifier > 1]. *)

val parse_key : string -> (string * int * int) option
(** Inverse of {!key}: [(title, year, qualifier)], or [None] on malformed
    keys. Titles may themselves contain parentheses; the trailing group
    wins. *)

type files = {
  movies : string;
  ratings : string;
  genres : string;
  keywords : string;
  directors : string;
  actors : string;
  attributes : string;
}
(** The seven list files, as strings. *)

val file_names : (files -> string) list * string list
(** Accessors and their conventional on-disk names, aligned:
    [movies.list; ratings.list; ...]. *)

(** {1 XML <-> movie records} *)

val movies_of_document : Xml.document -> (movie list, string) result
(** Read the corpus shape produced by {!Imdb.generate}; qualifiers are
    assigned in document order. Malformed movie elements yield [Error]. *)

val document_of_movies : movie list -> Xml.document
(** Rebuild the exact XML shape of {!Imdb.generate}. *)

(** {1 Writing and parsing list files} *)

val write : movie list -> files

val write_dir : string -> movie list -> unit
(** Write the seven files into an existing directory.
    @raise Sys_error on I/O failure. *)

val parse : files -> (movie list, string) result
(** Inverse of {!write}. Errors carry the file and line number, e.g.
    ["ratings.list, line 3: malformed rating line"]. Movies appear in
    [movies.list] order; entries in other files referring to unknown keys
    are errors. *)

val parse_dir : string -> (movie list, string) result
