type params = {
  seed : int;
  products : int;
  min_reviews : int;
  max_reviews : int;
}

let default_params = { seed = 2010; products = 30; min_reviews = 8; max_reviews = 80 }

type category = {
  cat_name : string;  (* display name, e.g. "GPS" *)
  brands : (string * string array) array;  (* brand, model lines *)
  pros : string array;  (* slug feature labels *)
  cons : string array;
  best_uses : string array;
  user_categories : string array;
  price_range : float * float;
}

let gps_category =
  {
    cat_name = "GPS";
    brands =
      [|
        ("TomTom", [| "Go 630"; "Go 730"; "Go 930"; "One XL"; "One 140" |]);
        ("Garmin", [| "Nuvi 260"; "Nuvi 360"; "Nuvi 755"; "Nuvi 1350"; "Zumo 550" |]);
        ("Magellan", [| "Maestro 3250"; "Maestro 4350"; "RoadMate 1412" |]);
        ("Navigon", [| "2090S"; "7200T" |]);
      |];
    pros =
      [|
        "easy-to-read"; "compact"; "easy-to-setup"; "acquires-satellites-quickly";
        "large-screen"; "accurate-directions"; "clear-voice-prompts";
        "long-battery-life"; "fast-routing"; "intuitive-menus"; "good-value";
        "sturdy-mount"; "bright-display"; "helpful-poi-database";
      |];
    cons =
      [|
        "short-battery-life"; "slow-startup"; "outdated-maps"; "weak-speaker";
        "glare-in-sunlight"; "flimsy-mount"; "pricey-map-updates";
        "confusing-menus"; "slow-recalculation";
      |];
    best_uses = [| "auto"; "road-trips"; "commuting"; "travel"; "walking"; "boating" |];
    user_categories =
      [| "casual-user"; "frequent-traveler"; "professional-driver"; "technophile" |];
    price_range = (89.0, 499.0);
  }

let phone_category =
  {
    cat_name = "Mobile Phone";
    brands =
      [|
        ("Nokia", [| "E71"; "N95"; "5310"; "6300" |]);
        ("Motorola", [| "Razr V3"; "Krzr K1"; "Q9" |]);
        ("Samsung", [| "Omnia"; "Propel"; "Gravity" |]);
        ("BlackBerry", [| "Curve 8310"; "Bold 9000"; "Pearl 8120" |]);
        ("LG", [| "Voyager"; "Dare"; "enV2" |]);
      |];
    pros =
      [|
        "long-battery-life"; "good-reception"; "loud-speaker"; "compact";
        "durable"; "easy-to-use"; "bright-screen"; "good-camera";
        "comfortable-keypad"; "fast-messaging"; "good-value"; "slim-design";
        "clear-calls";
      |];
    cons =
      [|
        "short-battery-life"; "poor-reception"; "small-keys"; "dim-screen";
        "fragile"; "laggy-menus"; "weak-camera"; "quiet-speaker";
        "awkward-charger";
      |];
    best_uses = [| "everyday-calls"; "texting"; "business"; "travel"; "music" |];
    user_categories =
      [| "casual-user"; "business-user"; "heavy-texter"; "technophile" |];
    price_range = (49.0, 399.0);
  }

let camera_category =
  {
    cat_name = "Digital Camera";
    brands =
      [|
        ("Canon", [| "PowerShot SD1100"; "PowerShot G10"; "Rebel XSi" |]);
        ("Nikon", [| "Coolpix S550"; "Coolpix P80"; "D60" |]);
        ("Sony", [| "Cyber-shot W120"; "Cyber-shot H50"; "Alpha A200" |]);
        ("Olympus", [| "Stylus 1010"; "FE-360" |]);
        ("Kodak", [| "EasyShare M863"; "EasyShare Z1012" |]);
      |];
    pros =
      [|
        "sharp-images"; "fast-shutter"; "compact"; "easy-to-use";
        "good-low-light"; "long-zoom"; "image-stabilization"; "vivid-colors";
        "long-battery-life"; "quick-startup"; "good-value"; "large-lcd";
        "sturdy-body";
      |];
    cons =
      [|
        "slow-focus"; "noisy-images"; "short-battery-life"; "bulky";
        "weak-flash"; "confusing-menus"; "slow-between-shots"; "soft-corners";
      |];
    best_uses =
      [| "family-photos"; "travel"; "sports"; "portraits"; "landscapes"; "macro" |];
    user_categories =
      [| "casual-user"; "enthusiast"; "parent"; "semi-professional" |];
    price_range = (99.0, 899.0);
  }

let categories = [| gps_category; phone_category; camera_category |]

(* A product's opinion profile: per feature label, the probability a reviewer
   endorses it. A few signature features get high probability, the rest a low
   background rate, so per-product counts come out heavy-tailed like the
   Figure 1 statistics. *)
let profile g labels ~signatures ~hi_lo ~hi_hi ~bg =
  let probs = Array.map (fun label -> (label, bg)) labels in
  let order = Array.init (Array.length labels) (fun i -> i) in
  Sampling.shuffle g order;
  let signature_count = min signatures (Array.length labels) in
  for k = 0 to signature_count - 1 do
    let i = order.(k) in
    let label, _ = probs.(i) in
    probs.(i) <- (label, hi_lo +. Prng.float g (hi_hi -. hi_lo))
  done;
  probs

let opinion_elements g probs wrapper =
  Array.to_list probs
  |> List.filter_map (fun (label, p) ->
         if Prng.chance g p then
           Some (Xml.elem wrapper [ Xml.leaf label "yes" ])
         else None)

let ownership_periods =
  [|
    ("less-than-a-month", 1.0); ("one-to-six-months", 2.0);
    ("six-months-to-a-year", 1.5); ("more-than-a-year", 1.0);
  |]

let review g ~pro_probs ~con_probs ~use_probs ~ucat_probs =
  let reviewer =
    Xml.elem "reviewer"
      [
        Xml.leaf "nickname" (Names.username g);
        Xml.leaf "location" (Names.city g);
      ]
  in
  let stars = Xml.leaf "stars" (string_of_int (Prng.int_in g 1 5)) in
  let ownership =
    let period, _ =
      ownership_periods.(Sampling.weighted_index g (Array.map snd ownership_periods))
    in
    Xml.leaf "ownership" period
  in
  let verified =
    Xml.leaf "verified" (if Prng.chance g 0.7 then "yes" else "no")
  in
  let pros = opinion_elements g pro_probs "pro" in
  let cons = opinion_elements g con_probs "con" in
  let uses = opinion_elements g use_probs "best-use" in
  let ucats = opinion_elements g ucat_probs "user-category" in
  let section tag = function [] -> [] | items -> [ Xml.elem tag items ] in
  Xml.elem "review"
    ([ reviewer; stars; ownership; verified ]
    @ section "pros" pros
    @ section "cons" cons
    @ section "uses" (uses @ ucats))

let product g idx =
  (* Round-robin over categories, then over each category's brands and model
     lines, so every brand/model appears before any repeats — sample queries
     like "tomtom gps" must always have results. *)
  let cat = categories.(idx mod Array.length categories) in
  let slot = idx / Array.length categories in
  let brand, models = cat.brands.(slot mod Array.length cat.brands) in
  let model = models.((slot / Array.length cat.brands) mod Array.length models) in
  let generation = slot / (Array.length cat.brands * Array.length models) in
  let name =
    if generation = 0 then Printf.sprintf "%s %s %s" brand model cat.cat_name
    else Printf.sprintf "%s %s %s (v%d)" brand model cat.cat_name (generation + 1)
  in
  let lo, hi = cat.price_range in
  let price = lo +. Prng.float g (hi -. lo) in
  let pro_probs =
    profile g cat.pros ~signatures:(Prng.int_in g 3 6) ~hi_lo:0.35 ~hi_hi:0.9
      ~bg:0.05
  in
  let con_probs =
    profile g cat.cons ~signatures:(Prng.int_in g 1 3) ~hi_lo:0.2 ~hi_hi:0.5
      ~bg:0.04
  in
  let use_probs =
    profile g cat.best_uses ~signatures:(Prng.int_in g 1 2) ~hi_lo:0.3
      ~hi_hi:0.7 ~bg:0.08
  in
  let ucat_probs =
    profile g cat.user_categories ~signatures:1 ~hi_lo:0.3 ~hi_hi:0.6 ~bg:0.1
  in
  (name, brand, cat, price, pro_probs, con_probs, use_probs, ucat_probs)

let generate params =
  let g = Prng.of_int params.seed in
  let products =
    List.init params.products (fun idx ->
        let name, brand, cat, price, pro_probs, con_probs, use_probs, ucat_probs =
          product g idx
        in
        let review_count = Prng.int_in g params.min_reviews params.max_reviews in
        let reviews =
          List.init review_count (fun _ ->
              review g ~pro_probs ~con_probs ~use_probs ~ucat_probs)
        in
        let star_sum =
          List.fold_left
            (fun acc r ->
              match r with
              | Xml.Element e ->
                (match Xml.child e "stars" with
                | Some s -> acc + int_of_string (Xml.text_content s)
                | None -> acc)
              | _ -> acc)
            0 reviews
        in
        let rating =
          if review_count = 0 then 0.0
          else float_of_int star_sum /. float_of_int review_count
        in
        Xml.elem "product"
          [
            Xml.leaf "name" name;
            Xml.leaf "brand" brand;
            Xml.leaf "category" cat.cat_name;
            Xml.leaf "price" (Printf.sprintf "%.2f" price);
            Xml.leaf "rating" (Printf.sprintf "%.1f" rating);
            Xml.leaf "url"
              (Printf.sprintf "http://www.buzzillions.com/reviews/%s"
                 (Textutil.slug name));
            Xml.elem "reviews" reviews;
          ])
  in
  Xml.document { Xml.tag = "products"; attrs = []; children = products }

let sample_queries =
  [
    ("QP1", "tomtom gps");
    ("QP2", "garmin gps");
    ("QP3", "gps");
    ("QP4", "nokia phone");
    ("QP5", "mobile phone");
    ("QP6", "canon camera");
    ("QP7", "digital camera");
    ("QP8", "compact camera");
  ]
