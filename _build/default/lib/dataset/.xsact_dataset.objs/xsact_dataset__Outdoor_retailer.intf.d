lib/dataset/outdoor_retailer.mli: Xml
