lib/dataset/dataset.mli: Imdb Outdoor_retailer Product_reviews Xml
