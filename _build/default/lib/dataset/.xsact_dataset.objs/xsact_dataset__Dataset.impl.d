lib/dataset/dataset.ml: Imdb Outdoor_retailer Product_reviews Xml
