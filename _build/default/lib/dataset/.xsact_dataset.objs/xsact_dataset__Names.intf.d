lib/dataset/names.mli: Prng
