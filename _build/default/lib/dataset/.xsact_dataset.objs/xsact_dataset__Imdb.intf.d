lib/dataset/imdb.mli: Xml
