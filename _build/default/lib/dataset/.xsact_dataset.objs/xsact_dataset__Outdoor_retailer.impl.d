lib/dataset/outdoor_retailer.ml: Array List Names Printf Prng Sampling Xml
