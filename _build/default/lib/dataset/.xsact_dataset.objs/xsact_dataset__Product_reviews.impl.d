lib/dataset/product_reviews.ml: Array List Names Printf Prng Sampling Textutil Xml
