lib/dataset/imdb.ml: Array Hashtbl List Names Printf Prng Sampling Xml
