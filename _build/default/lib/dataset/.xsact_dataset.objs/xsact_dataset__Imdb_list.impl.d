lib/dataset/imdb_list.ml: Buffer Bytes Filename Float Fun Hashtbl List Option Printf Result String Xml
