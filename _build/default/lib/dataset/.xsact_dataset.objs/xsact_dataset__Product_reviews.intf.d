lib/dataset/product_reviews.mli: Xml
