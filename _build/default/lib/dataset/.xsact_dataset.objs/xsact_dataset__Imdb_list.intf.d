lib/dataset/imdb_list.mli: Xml
