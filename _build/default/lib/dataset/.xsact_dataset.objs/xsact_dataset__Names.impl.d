lib/dataset/names.ml: Prng Sampling
