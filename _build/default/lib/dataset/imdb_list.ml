type movie = {
  title : string;
  year : int;
  qualifier : int;
  runtime : int;
  rating : float;
  votes : int;
  certificate : string;
  color : string;
  company : string;
  country : string;
  language : string;
  genres : string list;
  directors : string list;
  actors : string list;
  keywords : string list;
}

let roman n =
  (* Qualifiers stay tiny (duplicate count of one title/year), so a direct
     table beats a general algorithm. *)
  match n with
  | 1 -> "I"
  | 2 -> "II"
  | 3 -> "III"
  | 4 -> "IV"
  | 5 -> "V"
  | 6 -> "VI"
  | 7 -> "VII"
  | 8 -> "VIII"
  | 9 -> "IX"
  | 10 -> "X"
  | n -> Printf.sprintf "N%d" n

let of_roman s =
  let table =
    [ ("I", 1); ("II", 2); ("III", 3); ("IV", 4); ("V", 5); ("VI", 6);
      ("VII", 7); ("VIII", 8); ("IX", 9); ("X", 10) ]
  in
  match List.assoc_opt s table with
  | Some n -> Some n
  | None ->
    if String.length s > 1 && s.[0] = 'N' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None

let key m =
  if m.qualifier <= 1 then Printf.sprintf "%s (%d)" m.title m.year
  else Printf.sprintf "%s (%d/%s)" m.title m.year (roman m.qualifier)

let parse_key s =
  (* "Title (1999)" or "Title (1999/II)". The title may itself contain
     parentheses, so match the trailing group. *)
  let n = String.length s in
  if n < 7 || s.[n - 1] <> ')' then None
  else
    match String.rindex_opt s '(' with
    | None -> None
    | Some open_paren ->
      if open_paren < 2 || s.[open_paren - 1] <> ' ' then None
      else
        let body = String.sub s (open_paren + 1) (n - open_paren - 2) in
        let title = String.sub s 0 (open_paren - 1) in
        (match String.index_opt body '/' with
        | None ->
          Option.map (fun year -> (title, year, 1)) (int_of_string_opt body)
        | Some slash ->
          let year = String.sub body 0 slash in
          let qual = String.sub body (slash + 1) (String.length body - slash - 1) in
          (match (int_of_string_opt year, of_roman qual) with
          | Some y, Some q -> Some (title, y, q)
          | _ -> None))

type files = {
  movies : string;
  ratings : string;
  genres : string;
  keywords : string;
  directors : string;
  actors : string;
  attributes : string;
}

let file_names =
  ( [
      (fun f -> f.movies);
      (fun f -> f.ratings);
      (fun f -> f.genres);
      (fun f -> f.keywords);
      (fun f -> f.directors);
      (fun f -> f.actors);
      (fun f -> f.attributes);
    ],
    [
      "movies.list"; "ratings.list"; "genres.list"; "keywords.list";
      "directors.list"; "actors.list"; "attributes.list";
    ] )

(* ---- XML <-> movie records ---------------------------------------------- *)

let field e name =
  match Xml.child e name with
  | Some c -> Ok (Xml.text_content c)
  | None -> Error (Printf.sprintf "movie element missing <%s>" name)

let int_field e name =
  Result.bind (field e name) (fun s ->
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "non-integer <%s>: %s" name s))

let float_field e name =
  Result.bind (field e name) (fun s ->
      match float_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "non-float <%s>: %s" name s))

let multi_field e plural singular =
  match Xml.child e plural with
  | None -> Error (Printf.sprintf "movie element missing <%s>" plural)
  | Some wrap -> Ok (List.map Xml.text_content (Xml.children_named wrap singular))

let ( let* ) = Result.bind

let movie_of_element counts e =
  let* title = field e "title" in
  let* year = int_field e "year" in
  let* runtime = int_field e "runtime" in
  let* rating = float_field e "rating" in
  let* votes = int_field e "votes" in
  let* certificate = field e "certificate" in
  let* color = field e "color" in
  let* company = field e "company" in
  let* country = field e "country" in
  let* language = field e "language" in
  let* genres = multi_field e "genres" "genre" in
  let* directors = multi_field e "directors" "director" in
  let* actors = multi_field e "actors" "actor" in
  let* keywords = multi_field e "keywords" "keyword" in
  let k = (title, year) in
  let qualifier = 1 + (try Hashtbl.find counts k with Not_found -> 0) in
  Hashtbl.replace counts k qualifier;
  Ok
    {
      title; year; qualifier; runtime; rating; votes; certificate; color;
      company; country; language; genres; directors; actors; keywords;
    }

let movies_of_document (doc : Xml.document) =
  if doc.root.Xml.tag <> "movies" then
    Error (Printf.sprintf "expected <movies> root, got <%s>" doc.root.Xml.tag)
  else
    let counts = Hashtbl.create 64 in
    List.fold_left
      (fun acc e ->
        let* movies = acc in
        let* m = movie_of_element counts e in
        Ok (m :: movies))
      (Ok [])
      (Xml.children_named doc.root "movie")
    |> Result.map List.rev

let element_of_movie m =
  let multi tag items = Xml.elem (tag ^ "s") (List.map (Xml.leaf tag) items) in
  Xml.elem "movie"
    [
      Xml.leaf "title" m.title;
      Xml.leaf "year" (string_of_int m.year);
      Xml.leaf "runtime" (string_of_int m.runtime);
      Xml.leaf "rating" (Printf.sprintf "%.1f" m.rating);
      Xml.leaf "votes" (string_of_int m.votes);
      Xml.leaf "certificate" m.certificate;
      Xml.leaf "color" m.color;
      Xml.leaf "company" m.company;
      Xml.leaf "country" m.country;
      Xml.leaf "language" m.language;
      multi "genre" m.genres;
      multi "director" m.directors;
      multi "actor" m.actors;
      multi "keyword" m.keywords;
    ]

let document_of_movies movies =
  let children = List.map element_of_movie movies in
  Xml.document { Xml.tag = "movies"; attrs = []; children }

(* ---- Writing --------------------------------------------------------------- *)

(* A fake-but-plausible 10-digit star-distribution histogram: mass piles up
   around the rating. Purely decorative, like the original's. *)
let distribution rating =
  let buf = Bytes.make 10 '0' in
  let center = int_of_float (Float.round rating) - 1 in
  let center = max 0 (min 9 center) in
  Bytes.set buf center '9';
  if center > 0 then Bytes.set buf (center - 1) '2';
  if center < 9 then Bytes.set buf (center + 1) '2';
  Bytes.to_string buf

(* Person files carry IMDB-style billing positions ("Title (1999)  <3>" =
   third credit of that movie), which is what makes the per-movie credit
   order survive the person-major file layout. *)
let write_person_file people =
  (* people: (name, (title key, billing) list) in first-appearance order. *)
  let buf = Buffer.create 4096 in
  let entry (k, billing) = Printf.sprintf "%s  <%d>" k billing in
  List.iter
    (fun (name, entries) ->
      match entries with
      | [] -> ()
      | first :: rest ->
        Buffer.add_string buf (Printf.sprintf "%s\t%s\n" name (entry first));
        List.iter
          (fun e -> Buffer.add_string buf (Printf.sprintf "\t%s\n" (entry e)))
          rest;
        Buffer.add_char buf '\n')
    people;
  Buffer.contents buf

let group_people select movies =
  let order = ref [] in
  let table = Hashtbl.create 64 in
  List.iter
    (fun m ->
      let k = key m in
      List.iteri
        (fun idx name ->
          let entry = (k, idx + 1) in
          match Hashtbl.find_opt table name with
          | Some entries -> entries := entry :: !entries
          | None ->
            Hashtbl.add table name (ref [ entry ]);
            order := name :: !order)
        (select m))
    movies;
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find table name))) !order

let write movies =
  let buf_of f =
    let buf = Buffer.create 4096 in
    List.iter (fun m -> f buf m) movies;
    Buffer.contents buf
  in
  let movies_file = buf_of (fun buf m -> Buffer.add_string buf (key m ^ "\n")) in
  let ratings =
    buf_of (fun buf m ->
        Buffer.add_string buf
          (Printf.sprintf "      %s  %7d  %4.1f  %s\n" (distribution m.rating)
             m.votes m.rating (key m)))
  in
  let value_lines select =
    buf_of (fun buf m ->
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "%s\t%s\n" (key m) v))
          (select m))
  in
  let attributes =
    buf_of (fun buf m ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s\truntime=%d\tcertificate=%s\tcolor=%s\tcompany=%s\tcountry=%s\tlanguage=%s\n"
             (key m) m.runtime m.certificate m.color m.company m.country
             m.language))
  in
  {
    movies = movies_file;
    ratings;
    genres = value_lines (fun m -> m.genres);
    keywords = value_lines (fun m -> m.keywords);
    directors = write_person_file (group_people (fun m -> m.directors) movies);
    actors = write_person_file (group_people (fun m -> m.actors) movies);
    attributes;
  }

let write_dir dir movies =
  let files = write movies in
  let accessors, names = file_names in
  List.iter2
    (fun accessor name ->
      let oc = open_out_bin (Filename.concat dir name) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (accessor files)))
    accessors names

(* ---- Parsing --------------------------------------------------------------- *)

exception Bad_line of string * int * string

let lines_of s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter (fun (_, line) -> line <> "")

let split_tab ~file ~line_no line =
  match String.index_opt line '\t' with
  | None -> raise (Bad_line (file, line_no, "expected a tab separator"))
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )

(* builder: key -> partially filled movie (hashtable of mutable records via
   refs to immutable records). *)
type partial = {
  mutable p_runtime : int;
  mutable p_rating : float;
  mutable p_votes : int;
  mutable p_certificate : string;
  mutable p_color : string;
  mutable p_company : string;
  mutable p_country : string;
  mutable p_language : string;
  mutable p_genres : string list;  (* reversed *)
  mutable p_directors : (int * string) list;
  mutable p_actors : (int * string) list;
  mutable p_keywords : string list;
}

let parse files =
  let table : (string, partial) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let find ~file ~line_no k =
    match Hashtbl.find_opt table k with
    | Some p -> p
    | None -> raise (Bad_line (file, line_no, Printf.sprintf "unknown movie %S" k))
  in
  try
    (* movies.list declares the keys and the order. *)
    List.iter
      (fun (line_no, line) ->
        match parse_key line with
        | None -> raise (Bad_line ("movies.list", line_no, "malformed movie key"))
        | Some _ ->
          if Hashtbl.mem table line then
            raise (Bad_line ("movies.list", line_no, "duplicate movie key"));
          Hashtbl.add table line
            {
              p_runtime = 0; p_rating = 0.0; p_votes = 0; p_certificate = "";
              p_color = ""; p_company = ""; p_country = ""; p_language = "";
              p_genres = [];
              p_directors = []; p_actors = []; p_keywords = [];
            };
          order := line :: !order)
      (lines_of files.movies);
    (* ratings.list: "      <dist>  <votes>  <rank>  <key>" *)
    List.iter
      (fun (line_no, line) ->
        let fail () = raise (Bad_line ("ratings.list", line_no, "malformed rating line")) in
        let trimmed = String.trim line in
        (* split into 4 fields: dist votes rank key-with-spaces *)
        let rec split3 acc s count =
          if count = 0 then (List.rev acc, s)
          else
            match String.index_opt s ' ' with
            | None -> fail ()
            | Some i ->
              let tok = String.sub s 0 i in
              let rest =
                let j = ref i in
                while !j < String.length s && s.[!j] = ' ' do incr j done;
                String.sub s !j (String.length s - !j)
              in
              if tok = "" then fail () else split3 (tok :: acc) rest (count - 1)
        in
        let fields, key_str = split3 [] trimmed 3 in
        match fields with
        | [ _dist; votes; rank ] ->
          let p = find ~file:"ratings.list" ~line_no key_str in
          (match (int_of_string_opt votes, float_of_string_opt rank) with
          | Some v, Some r ->
            p.p_votes <- v;
            p.p_rating <- r
          | _ -> fail ())
        | _ -> fail ())
      (lines_of files.ratings);
    (* genres.list / keywords.list *)
    let parse_values file content set =
      List.iter
        (fun (line_no, line) ->
          let k, v = split_tab ~file ~line_no line in
          let p = find ~file ~line_no k in
          set p v)
        (lines_of content)
    in
    parse_values "genres.list" files.genres (fun p v ->
        p.p_genres <- v :: p.p_genres);
    parse_values "keywords.list" files.keywords (fun p v ->
        p.p_keywords <- v :: p.p_keywords);
    (* directors.list / actors.list: person-grouped with continuations.
       Blank lines were filtered by [lines_of]; continuation lines start
       with a tab. *)
    let parse_people file content add =
      let current = ref None in
      let split_entry ~line_no entry =
        (* "Title (1999)  <3>" *)
        match String.rindex_opt entry '<' with
        | Some i
          when i >= 2
               && String.length entry > i + 1
               && entry.[String.length entry - 1] = '>' ->
          let k = String.trim (String.sub entry 0 i) in
          let billing =
            String.sub entry (i + 1) (String.length entry - i - 2)
          in
          (match int_of_string_opt billing with
          | Some b -> (k, b)
          | None -> raise (Bad_line (file, line_no, "malformed billing position")))
        | _ -> raise (Bad_line (file, line_no, "missing billing position"))
      in
      List.iter
        (fun (line_no, line) ->
          if line.[0] = '\t' then begin
            let entry = String.sub line 1 (String.length line - 1) in
            let k, billing = split_entry ~line_no entry in
            match !current with
            | None -> raise (Bad_line (file, line_no, "continuation before a name"))
            | Some name -> add (find ~file ~line_no k) billing name
          end
          else begin
            let name, entry = split_tab ~file ~line_no line in
            let k, billing = split_entry ~line_no entry in
            current := Some name;
            add (find ~file ~line_no k) billing name
          end)
        (lines_of content)
    in
    parse_people "directors.list" files.directors (fun p billing name ->
        p.p_directors <- (billing, name) :: p.p_directors);
    parse_people "actors.list" files.actors (fun p billing name ->
        p.p_actors <- (billing, name) :: p.p_actors);
    (* attributes.list *)
    List.iter
      (fun (line_no, line) ->
        let file = "attributes.list" in
        let k, rest = split_tab ~file ~line_no line in
        let p = find ~file ~line_no k in
        String.split_on_char '\t' rest
        |> List.iter (fun binding ->
               match String.index_opt binding '=' with
               | None ->
                 raise (Bad_line (file, line_no, "malformed key=value binding"))
               | Some i ->
                 let name = String.sub binding 0 i in
                 let value =
                   String.sub binding (i + 1) (String.length binding - i - 1)
                 in
                 (match name with
                 | "runtime" ->
                   (match int_of_string_opt value with
                   | Some v -> p.p_runtime <- v
                   | None ->
                     raise (Bad_line (file, line_no, "non-integer runtime")))
                 | "certificate" -> p.p_certificate <- value
                 | "color" -> p.p_color <- value
                 | "company" -> p.p_company <- value
                 | "country" -> p.p_country <- value
                 | "language" -> p.p_language <- value
                 | other ->
                   raise
                     (Bad_line
                        (file, line_no, Printf.sprintf "unknown attribute %S" other)))))
      (lines_of files.attributes);
    let movies =
      List.rev_map
        (fun k ->
          let title, year, qualifier =
            match parse_key k with Some v -> v | None -> assert false
          in
          let p = Hashtbl.find table k in
          {
            title; year; qualifier;
            runtime = p.p_runtime;
            rating = p.p_rating;
            votes = p.p_votes;
            certificate = p.p_certificate;
            color = p.p_color;
            company = p.p_company;
            country = p.p_country;
            language = p.p_language;
            genres = List.rev p.p_genres;
            directors =
              List.sort compare p.p_directors |> List.map snd;
            actors = List.sort compare p.p_actors |> List.map snd;
            keywords = List.rev p.p_keywords;
          })
        !order
    in
    Ok movies
  with Bad_line (file, line_no, msg) ->
    Error (Printf.sprintf "%s, line %d: %s" file line_no msg)

let parse_dir dir =
  let read name =
    let path = Filename.concat dir name in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match
    let _, names = file_names in
    List.map read names
  with
  | exception Sys_error msg -> Error msg
  | [ movies; ratings; genres; keywords; directors; actors; attributes ] ->
    parse { movies; ratings; genres; keywords; directors; actors; attributes }
  | _ -> assert false
