(** Synthetic Product Reviews corpus (stands in for the buzzillions.com
    crawl of the demo).

    Shape, mirroring Figure 1 of the paper: a flat list of products (GPS
    devices, mobile phones, digital cameras), each with name / brand /
    category / price / rating / url attributes and a set of reviews; each
    review carries the reviewer's nickname and location, a star rating, and
    boolean feature opinions grouped into pros, cons and uses (best-use and
    user-category), e.g. [<pros><pro><compact>yes</compact></pro>...]</pros>].

    Every product draws a hidden "opinion profile" — a handful of signature
    pros/cons its reviewers agree on with high probability, everything else
    rare — so that different products have overlapping but distinct
    heavy-tailed feature statistics, which is exactly the structure the DFS
    algorithms feed on. *)

type params = {
  seed : int;
  products : int;  (** number of products across all categories *)
  min_reviews : int;  (** per product, inclusive *)
  max_reviews : int;  (** per product, inclusive *)
}

val default_params : params
(** [seed = 2010; products = 30; min_reviews = 8; max_reviews = 80]. *)

val generate : params -> Xml.document
(** Deterministic in [params]. *)

val sample_queries : (string * string) list
(** [(label, keywords)] pairs that return useful result sets on the default
    corpus, e.g. [("QP1", "tomtom gps")]. *)
