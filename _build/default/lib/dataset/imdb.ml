type params = { seed : int; movies : int; year_range : int * int }

let default_params = { seed = 1913; movies = 1500; year_range = (1970, 2009) }

let genres =
  [|
    ("Drama", 5.0); ("Comedy", 4.5); ("Action", 3.5); ("Thriller", 3.0);
    ("Romance", 2.5); ("Crime", 2.2); ("Adventure", 2.0); ("Horror", 1.8);
    ("Sci-Fi", 1.5); ("Mystery", 1.3); ("Fantasy", 1.2); ("War", 0.8);
    ("Western", 0.5); ("Animation", 0.9); ("Family", 1.0); ("Musical", 0.4);
    ("Documentary", 0.6);
  |]

let famous_directors =
  [|
    "Steven Spielberg"; "Martin Scorsese"; "James Cameron"; "Ridley Scott";
    "Joel Coen"; "Tim Burton"; "Clint Eastwood"; "Robert Zemeckis";
    "Kathryn Bigelow"; "Spike Lee"; "Ron Howard"; "Oliver Stone";
  |]

let companies =
  [|
    "Paramount Pictures"; "Warner Bros"; "Universal Pictures";
    "Columbia Pictures"; "20th Century Fox"; "Metro-Goldwyn-Mayer";
    "Miramax Films"; "New Line Cinema"; "DreamWorks"; "Orion Pictures";
  |]

let countries =
  [|
    ("USA", 6.0); ("UK", 2.0); ("France", 1.5); ("Germany", 1.0);
    ("Italy", 0.8); ("Canada", 0.8); ("Japan", 0.7); ("Australia", 0.5);
    ("Spain", 0.5); ("Sweden", 0.3);
  |]

let languages =
  [|
    ("English", 8.0); ("French", 1.2); ("German", 0.8); ("Italian", 0.6);
    ("Japanese", 0.6); ("Spanish", 0.6); ("Swedish", 0.25);
  |]

let certificates = [| "G"; "PG"; "PG-13"; "R"; "NC-17"; "Unrated" |]

(* Keyword pools, weakly correlated with a genre cluster each; the final
   movie keyword set mixes its genres' pools with the generic pool. *)
let generic_keywords =
  [|
    "small-town"; "friendship"; "betrayal"; "family"; "redemption";
    "road-trip"; "new-york"; "paris"; "london"; "based-on-novel"; "sequel";
    "independent-film"; "flashback"; "voice-over";
  |]

let genre_keywords =
  [
    ("Action", [| "heist"; "explosion"; "car-chase"; "undercover"; "hostage"; "martial-arts" |]);
    ("Thriller", [| "serial-killer"; "conspiracy"; "kidnapping"; "blackmail"; "cat-and-mouse" |]);
    ("Crime", [| "heist"; "mafia"; "detective"; "prison-escape"; "courtroom" |]);
    ("Drama", [| "courtroom"; "coming-of-age"; "terminal-illness"; "boxing"; "teacher" |]);
    ("Comedy", [| "wedding"; "mistaken-identity"; "road-trip"; "slapstick"; "workplace" |]);
    ("Romance", [| "wedding"; "love-triangle"; "paris"; "second-chance"; "letters" |]);
    ("Horror", [| "haunted-house"; "vampire"; "zombie"; "possession"; "cabin" |]);
    ("Sci-Fi", [| "space"; "robot"; "time-travel"; "alien"; "dystopia"; "cyborg" |]);
    ("Fantasy", [| "dragon"; "quest"; "magic"; "prophecy"; "sword" |]);
    ("Adventure", [| "treasure"; "jungle"; "expedition"; "island"; "map" |]);
    ("War", [| "submarine"; "prisoner-of-war"; "resistance"; "d-day" |]);
    ("Western", [| "gunslinger"; "outlaw"; "frontier"; "railroad" |]);
    ("Mystery", [| "detective"; "locked-room"; "amnesia"; "missing-person" |]);
  ]

let title_adjectives =
  [|
    "Crimson"; "Silent"; "Broken"; "Golden"; "Midnight"; "Burning"; "Hidden";
    "Savage"; "Electric"; "Distant"; "Fallen"; "Frozen"; "Hollow"; "Iron";
    "Lost"; "Perfect"; "Restless"; "Scarlet"; "Shattered"; "Velvet";
  |]

let title_nouns =
  [|
    "Horizon"; "Empire"; "Shadow"; "River"; "Garden"; "Highway"; "Mirror";
    "Harbor"; "Winter"; "Summer"; "Kingdom"; "Promise"; "Voyage"; "Secret";
    "Storm"; "Echo"; "Crossing"; "Letter"; "Station"; "Fortune"; "Canyon";
    "Masquerade"; "Reckoning"; "Labyrinth"; "Serenade";
  |]

let make_title g =
  match Prng.int g 4 with
  | 0 ->
    Printf.sprintf "The %s %s" (Sampling.pick g title_adjectives)
      (Sampling.pick g title_nouns)
  | 1 ->
    Printf.sprintf "%s of the %s" (Sampling.pick g title_nouns)
      (Sampling.pick g title_nouns)
  | 2 ->
    Printf.sprintf "%s %s" (Sampling.pick g title_adjectives)
      (Sampling.pick g title_nouns)
  | _ ->
    Printf.sprintf "The %s" (Sampling.pick g title_nouns)

(* Directors: a third of the corpus goes to the famous pool (so queries like
   "spielberg" have result sets), the rest to a generated pool that repeats
   across movies. *)
let make_director_pool g =
  Array.init 60 (fun _ -> Names.full_name g)

let make_actor_pool g =
  Array.init 300 (fun _ -> Names.full_name g)

let pick_genres g =
  let count = 1 + Sampling.weighted_index g [| 3.0; 4.0; 2.0 |] in
  let chosen = Hashtbl.create 4 in
  let rec draw remaining acc =
    if remaining = 0 then List.rev acc
    else
      let name, _ = genres.(Sampling.weighted_index g (Array.map snd genres)) in
      if Hashtbl.mem chosen name then draw remaining acc
      else begin
        Hashtbl.add chosen name ();
        draw (remaining - 1) (name :: acc)
      end
  in
  draw count []

let pick_keywords g movie_genres =
  let pools =
    List.filter_map (fun gname -> List.assoc_opt gname genre_keywords) movie_genres
  in
  let count = Prng.int_in g 2 6 in
  let chosen = Hashtbl.create 8 in
  let rec draw remaining acc attempts =
    if remaining = 0 || attempts > 50 then List.rev acc
    else
      let kw =
        if pools <> [] && Prng.chance g 0.6 then
          Sampling.pick g (Sampling.pick_list g pools)
        else Sampling.pick g generic_keywords
      in
      if Hashtbl.mem chosen kw then draw remaining acc (attempts + 1)
      else begin
        Hashtbl.add chosen kw ();
        draw (remaining - 1) (kw :: acc) (attempts + 1)
      end
  in
  draw count [] 0

let movie g ~director_pool ~actor_pool ~year_range =
  let lo_year, hi_year = year_range in
  let title = make_title g in
  let year = Prng.int_in g lo_year hi_year in
  let movie_genres = pick_genres g in
  let director_count = if Prng.chance g 0.08 then 2 else 1 in
  let directors =
    List.init director_count (fun _ ->
        if Prng.chance g 0.33 then Sampling.pick g famous_directors
        else Sampling.pick g director_pool)
  in
  let actor_count = Prng.int_in g 4 12 in
  let actors =
    Sampling.sample_without_replacement g actor_count actor_pool
  in
  let keywords = pick_keywords g movie_genres in
  let rating = 2.0 +. Prng.float g 7.5 in
  let votes = 50 + Prng.int g 250000 in
  let runtime = Prng.int_in g 78 192 in
  let country, _ = countries.(Sampling.weighted_index g (Array.map snd countries)) in
  let language, _ = languages.(Sampling.weighted_index g (Array.map snd languages)) in
  let multi tag items = Xml.elem (tag ^ "s") (List.map (Xml.leaf tag) items) in
  let color =
    (* Black and white fades out through the 70s-80s. *)
    let bw_chance = if year < 1975 then 0.25 else if year < 1990 then 0.05 else 0.01 in
    if Prng.chance g bw_chance then "Black and White" else "Color"
  in
  Xml.elem "movie"
    [
      Xml.leaf "title" title;
      Xml.leaf "year" (string_of_int year);
      Xml.leaf "runtime" (string_of_int runtime);
      Xml.leaf "rating" (Printf.sprintf "%.1f" rating);
      Xml.leaf "votes" (string_of_int votes);
      Xml.leaf "certificate" (Sampling.pick g certificates);
      Xml.leaf "color" color;
      Xml.leaf "company" (Sampling.pick g companies);
      Xml.leaf "country" country;
      Xml.leaf "language" language;
      multi "genre" movie_genres;
      multi "director" directors;
      multi "actor" actors;
      multi "keyword" keywords;
    ]

let generate params =
  let g = Prng.of_int params.seed in
  let director_pool = make_director_pool g in
  let actor_pool = make_actor_pool g in
  let movies =
    List.init params.movies (fun _ ->
        movie g ~director_pool ~actor_pool ~year_range:params.year_range)
  in
  Xml.document { Xml.tag = "movies"; attrs = []; children = movies }

let sample_queries =
  [
    ("QM1", "action");
    ("QM2", "comedy 1994");
    ("QM3", "spielberg");
    ("QM4", "thriller heist");
    ("QM5", "romance wedding");
    ("QM6", "horror vampire");
    ("QM7", "drama courtroom usa");
    ("QM8", "sci fi space");
  ]
