(** Person-name material for the generators (reviewer names, directors,
    actors). All draws are deterministic given the PRNG state. *)

val first_names : string array
val last_names : string array

val full_name : Prng.t -> string
(** ["First Last"]. *)

val username : Prng.t -> string
(** Lowercase reviewer handle like ["roadtripfan42"]. *)

val city : Prng.t -> string
(** A city name for reviewer locations / brand headquarters. *)
