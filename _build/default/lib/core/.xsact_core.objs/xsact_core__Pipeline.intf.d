lib/core/pipeline.mli: Algorithm Dfs Dod Feature Result_builder Result_profile Search Table Xml
