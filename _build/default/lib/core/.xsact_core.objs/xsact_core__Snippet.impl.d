lib/core/snippet.ml: Array Buffer Dfs Feature Hashtbl Int List Printf Result_profile Token Topk Xsact_util
