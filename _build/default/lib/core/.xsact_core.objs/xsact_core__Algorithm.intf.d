lib/core/algorithm.mli: Dfs Dod
