lib/core/pipeline.ml: Algorithm Array Dfs Dod Extractor List Logs Printf Result_builder Result_profile Search Table Token Unix
