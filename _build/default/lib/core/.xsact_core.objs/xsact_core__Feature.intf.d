lib/core/feature.mli: Format Map
