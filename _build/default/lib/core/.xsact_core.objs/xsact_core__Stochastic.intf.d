lib/core/stochastic.mli: Dfs Dod Result_profile Xsact_util
