lib/core/weighting.ml: Array Feature Hashtbl Option Result_profile Seq Xsact_util
