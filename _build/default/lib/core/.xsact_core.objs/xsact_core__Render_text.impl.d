lib/core/render_text.ml: Array Buffer Dod Feature Float Grid Int List Printf Result_profile String Table
