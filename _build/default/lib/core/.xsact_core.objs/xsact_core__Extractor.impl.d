lib/core/extractor.ml: Feature Hashtbl List Node_category Result_profile Search String Xml
