lib/core/render_html.mli: Table
