lib/core/render_markdown.mli: Table
