lib/core/stochastic.ml: Array Dfs Dod Float Prng Result_profile Sampling Single_swap Topk Xsact_util
