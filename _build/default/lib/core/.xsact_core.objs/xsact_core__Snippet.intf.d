lib/core/snippet.mli: Dfs Feature Result_profile
