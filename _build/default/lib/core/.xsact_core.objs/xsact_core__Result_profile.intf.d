lib/core/result_profile.mli: Feature Seq
