lib/core/exhaustive.ml: Array Dfs Dod Float Result_profile
