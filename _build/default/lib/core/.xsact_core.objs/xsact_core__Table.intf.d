lib/core/table.mli: Dfs Dod Feature
