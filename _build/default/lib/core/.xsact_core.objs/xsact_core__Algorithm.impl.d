lib/core/algorithm.ml: Exhaustive Greedy Multi_swap Single_swap Stochastic Topk
