lib/core/multi_swap.mli: Dfs Dod
