lib/core/extractor.mli: Node_category Result_profile Search Xml
