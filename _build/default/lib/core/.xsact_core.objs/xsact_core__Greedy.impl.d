lib/core/greedy.ml: Array Dfs Dod Result_profile Topk
