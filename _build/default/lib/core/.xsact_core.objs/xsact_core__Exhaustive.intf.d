lib/core/exhaustive.mli: Dfs Dod Result_profile
