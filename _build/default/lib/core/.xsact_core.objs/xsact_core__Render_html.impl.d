lib/core/render_html.ml: Array Buffer Feature Fun List Printf String Table
