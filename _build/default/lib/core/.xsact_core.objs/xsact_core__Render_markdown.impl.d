lib/core/render_markdown.ml: Array Buffer Feature List Printf String Table
