lib/core/topk.ml: Array Dfs Dod Result_profile
