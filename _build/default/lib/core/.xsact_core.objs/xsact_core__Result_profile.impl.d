lib/core/result_profile.ml: Array Feature Hashtbl Int List Printf Seq String
