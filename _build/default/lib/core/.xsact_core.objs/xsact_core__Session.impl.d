lib/core/session.ml: Algorithm Array Dfs Dod Feature List Multi_swap Result_profile Single_swap Table Topk
