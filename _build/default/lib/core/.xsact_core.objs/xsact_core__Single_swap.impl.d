lib/core/single_swap.ml: Array Dfs Dod Int List Printf Result_profile Topk
