lib/core/feature.ml: Format Map String
