lib/core/greedy.mli: Dfs Dod
