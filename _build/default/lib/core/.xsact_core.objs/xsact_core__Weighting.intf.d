lib/core/weighting.mli: Feature Result_profile
