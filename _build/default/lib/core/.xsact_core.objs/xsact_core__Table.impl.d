lib/core/table.ml: Array Dfs Dod Feature Hashtbl Int List Result_profile String
