lib/core/dfs.mli: Feature Format Result_profile
