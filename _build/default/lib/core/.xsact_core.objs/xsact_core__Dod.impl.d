lib/core/dod.ml: Array Dfs Feature Float List Result_profile Seq
