lib/core/render_text.mli: Dfs Dod Result_profile Table
