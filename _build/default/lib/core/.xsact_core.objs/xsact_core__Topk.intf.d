lib/core/topk.mli: Dfs Dod Result_profile
