lib/core/dod.mli: Dfs Feature Result_profile
