lib/core/dfs.ml: Array Feature Format List Result_profile
