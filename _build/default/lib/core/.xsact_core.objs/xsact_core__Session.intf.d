lib/core/session.mli: Algorithm Dfs Dod Feature Result_profile Table
