lib/core/single_swap.mli: Dfs Dod
