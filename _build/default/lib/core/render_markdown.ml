let escape_cell s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '|' -> Buffer.add_string buf "\\|"
      | '*' -> Buffer.add_string buf "\\*"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_text = function
  | Table.Unknown -> "&mdash;"
  | Table.Entries entries ->
    String.concat "; "
      (List.map
         (fun (e : Table.entry) ->
           let f = e.Table.feature in
           let base = escape_cell f.Feature.value in
           if e.Table.population > 1 then
             Printf.sprintf "%s (%d/%d)" base e.Table.count e.Table.population
           else if e.Table.count > 1 then
             Printf.sprintf "%s (%d)" base e.Table.count
           else base)
         entries)

let table (t : Table.t) =
  let buf = Buffer.create 1024 in
  let add_row cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_string buf " |\n"
  in
  add_row
    ("feature type"
    :: List.map escape_cell (Array.to_list t.Table.labels));
  add_row
    (List.init (Array.length t.Table.labels + 1) (fun _ -> "---"));
  List.iter
    (fun (row : Table.row) ->
      let name = escape_cell (Feature.ftype_to_string row.Table.ftype) in
      let name = if row.Table.differentiating then "**" ^ name ^ "**" else name in
      add_row (name :: List.map cell_text (Array.to_list row.Table.cells)))
    t.Table.rows;
  Buffer.add_string buf
    (Printf.sprintf "\n*DoD = %d (size bound L = %d; bold = differentiating type)*\n"
       t.Table.dod t.Table.size_bound);
  Buffer.contents buf
