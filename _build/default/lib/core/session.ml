type t = {
  params : Dod.params;
  weight : Feature.ftype -> int;
  algorithm : Algorithm.t;
  size_bound : int;
  profiles : Result_profile.t array;
  context : Dod.context;
  dfss : Dfs.t array;
  runs : int ref;  (* shared along the session history *)
}

let generate ?init session context =
  incr session.runs;
  match (session.algorithm, init) with
  | Algorithm.Single_swap, Some init ->
    Single_swap.generate ~init context ~limit:session.size_bound
  | Algorithm.Multi_swap, Some init ->
    Multi_swap.generate ~init context ~limit:session.size_bound
  | alg, _ -> Algorithm.generate alg context ~limit:session.size_bound

let rebuild ?init session profiles =
  let context =
    Dod.make_context ~params:session.params ~weight:session.weight profiles
  in
  let session = { session with profiles; context } in
  let dfss = generate ?init session context in
  { session with dfss }

let create ?(params = Dod.default_params) ?(weight = fun _ -> 1)
    ?(algorithm = Algorithm.Multi_swap) ~size_bound profiles =
  if algorithm = Algorithm.Exhaustive then
    Error "sessions do not support the exhaustive oracle"
  else if List.length profiles < 2 then
    Error "need at least two results to compare"
  else if size_bound < 1 then Error "size bound must be at least 1"
  else
    let profiles = Array.of_list profiles in
    let context = Dod.make_context ~params ~weight profiles in
    let skeleton =
      {
        params;
        weight;
        algorithm;
        size_bound;
        profiles;
        context;
        dfss = [||];
        runs = ref 0;
      }
    in
    let dfss = generate skeleton context in
    Ok { skeleton with dfss }

let profiles s = s.profiles
let dfss s = s.dfss
let dod s = Dod.total s.context s.dfss
let size_bound s = s.size_bound
let table s = Table.build ~size_bound:s.size_bound s.context s.dfss
let stats s = !(s.runs)

let add s profile =
  let profiles = Array.append s.profiles [| profile |] in
  (* Warm start: every existing DFS (its profile is unchanged) plus a top-k
     seed for the newcomer. *)
  let init =
    Array.append s.dfss [| Topk.generate_one ~limit:s.size_bound profile |]
  in
  rebuild ~init s profiles

let remove s index =
  let n = Array.length s.profiles in
  if index < 0 || index >= n then Error "index out of range"
  else if n <= 2 then Error "cannot drop below two results"
  else begin
    let keep i = i <> index in
    let profiles =
      Array.of_list
        (List.filteri (fun i _ -> keep i) (Array.to_list s.profiles))
    in
    let init =
      Array.of_list (List.filteri (fun i _ -> keep i) (Array.to_list s.dfss))
    in
    Ok (rebuild ~init s profiles)
  end

let set_size_bound s size_bound =
  if size_bound < 1 then Error "size bound must be at least 1"
  else if size_bound = s.size_bound then Ok s
  else
    let s' = { s with size_bound } in
    if size_bound > s.size_bound then
      (* Growing keeps every current DFS valid: warm start. *)
      Ok (rebuild ~init:s.dfss s' s.profiles)
    else
      (* Shrinking may invalidate selections: restart from scratch. *)
      Ok (rebuild s' s.profiles)
