(** A search result, preprocessed for DFS construction.

    The raw material is a bag of features with occurrence counts plus the
    population of each entity (e.g. "# of reviews: 11" in Figure 1). This
    module freezes them into the canonical shape every algorithm works over:

    - features grouped by feature type, each type's features sorted by count
      descending (value ascending on ties) — within a type, a DFS always
      selects a {e prefix} of this order;
    - types grouped by entity and sorted by {b significance} descending
      (attribute ascending on ties), where significance of a type is the
      {e largest} occurrence count among its features. Validity
      (Desideratum 2) is downward closure w.r.t. {e strict} significance
      dominance, so equally-significant types remain freely choosable — this
      tie freedom is where the optimization problem lives (see DESIGN.md);
    - types of one entity partitioned into maximal runs of equal
      significance ({e classes}), the unit the multi-swap DP walks.

    Using the max feature count (rather than the type's total) as
    significance agrees with the paper on the boolean feature types of
    Figure 1 (one feature per type) and keeps identifier-like types — a
    reviewer nickname occurring once per review — from crowding out the
    meaningful opinion statistics. *)

type feat_info = { feature : Feature.t; count : int }

type type_info = {
  ftype : Feature.ftype;
  significance : int;  (** max feature count within the type *)
  total : int;  (** sum of feature counts *)
  features : feat_info array;  (** count desc, value asc *)
}

type entity_info = {
  entity : string;
  population : int;  (** instances of this entity in the result; >= 1 *)
  types : type_info array;  (** significance desc, attribute asc *)
  classes : (int * int) array;
      (** [(start, len)] runs of equal significance covering [types] *)
}

type t = {
  label : string;  (** display name, e.g. the product name *)
  entities : entity_info array;  (** entity name asc *)
  type_index : (int * int) array;
      (** global type index -> (entity index, index within entity) *)
  total_features : int;
}

val make :
  label:string ->
  populations:(string * int) list ->
  (Feature.t * int) list ->
  t
(** [make ~label ~populations features] builds the profile. Duplicate
    features in the list have their counts summed. Entities appearing in
    features but missing from [populations] get population 1.
    @raise Invalid_argument on non-positive counts or populations. *)

(** {1 Accessors by global type index} *)

val num_types : t -> int
val type_info : t -> int -> type_info
val entity_of_type : t -> int -> entity_info
val entity_index_of_type : t -> int -> int

val find_type : t -> Feature.ftype -> int option
(** Global index of a feature type, if the result has it. *)

val population : t -> string -> int
(** Population of an entity tag (1 if unknown). *)

val global_index : t -> entity_index:int -> type_index:int -> int
(** Inverse of {!type_index}. *)

val types_seq : t -> (int * type_info) Seq.t
(** All types with their global indices, in global order. *)
