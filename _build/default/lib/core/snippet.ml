let as_dfs ~limit profile = Topk.generate_one ~limit profile

let generate ~limit profile = Dfs.features (as_dfs ~limit profile)

(* A type is query-biased when its attribute path or any of its feature
   values shares a token with the query. *)
let biased_types profile keywords =
  let keyword_set = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace keyword_set k ()) keywords;
  let hit s =
    List.exists (Hashtbl.mem keyword_set)
      (Xsact_util.Textutil.lowercase_ascii_words s)
  in
  let nt = Result_profile.num_types profile in
  Array.init nt (fun gi ->
      let info = Result_profile.type_info profile gi in
      hit info.Result_profile.ftype.Feature.attribute
      || Array.exists
           (fun (fi : Result_profile.feat_info) ->
             hit fi.Result_profile.feature.Feature.value)
           info.Result_profile.features)

let query_biased_dfs ~keywords ~limit profile =
  let normalized = Token.normalize_query keywords in
  let biased = biased_types profile normalized in
  let nt = Result_profile.num_types profile in
  (* Pass 1: hoist biased types (most significant first), paying for the
     validity prerequisites — every strictly more significant unselected
     type of the same entity — when they fit in the budget. *)
  let dfs = ref (Dfs.empty profile) in
  let candidates =
    List.init nt (fun gi -> gi)
    |> List.filter (fun gi -> biased.(gi))
    |> List.sort (fun a b ->
           Int.compare
             (Result_profile.type_info profile b).significance
             (Result_profile.type_info profile a).significance)
  in
  List.iter
    (fun gi ->
      if Dfs.q !dfs gi = 0 then begin
        let entity_index = Result_profile.entity_index_of_type profile gi in
        let my_sig = (Result_profile.type_info profile gi).significance in
        let prerequisites =
          List.init nt (fun g -> g)
          |> List.filter (fun g ->
                 Result_profile.entity_index_of_type profile g = entity_index
                 && (Result_profile.type_info profile g).significance > my_sig
                 && Dfs.q !dfs g = 0)
        in
        let cost = 1 + List.length prerequisites in
        if Dfs.size !dfs + cost <= limit then begin
          List.iter (fun g -> dfs := Dfs.set_q !dfs g 1) prerequisites;
          dfs := Dfs.set_q !dfs gi 1
        end
      end)
    candidates;
  (* Pass 2: plain frequency fill for whatever budget remains. *)
  Topk.fill ~limit !dfs

let query_biased ~keywords ~limit profile =
  Dfs.features (query_biased_dfs ~keywords ~limit profile)

let to_string ?(label = true) ~limit profile =
  let buf = Buffer.create 256 in
  if label then
    Buffer.add_string buf (profile.Result_profile.label ^ "\n");
  List.iter
    (fun (f, count) ->
      let pop =
        Result_profile.population profile f.Feature.ftype.Feature.entity
      in
      let line =
        if pop > 1 then
          Printf.sprintf "  %s: %s (%d/%d)" f.Feature.ftype.Feature.attribute
            f.Feature.value count pop
        else
          Printf.sprintf "  %s: %s" f.Feature.ftype.Feature.attribute
            f.Feature.value
      in
      Buffer.add_string buf (line ^ "\n"))
    (generate ~limit profile);
  Buffer.contents buf
