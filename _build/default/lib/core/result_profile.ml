type feat_info = { feature : Feature.t; count : int }

type type_info = {
  ftype : Feature.ftype;
  significance : int;
  total : int;
  features : feat_info array;
}

type entity_info = {
  entity : string;
  population : int;
  types : type_info array;
  classes : (int * int) array;
}

type t = {
  label : string;
  entities : entity_info array;
  type_index : (int * int) array;
  total_features : int;
}

let make ~label ~populations features =
  List.iter
    (fun (f, count) ->
      if count <= 0 then
        invalid_arg
          (Printf.sprintf "Result_profile.make: non-positive count for %s"
             (Feature.to_string f)))
    features;
  List.iter
    (fun (entity, pop) ->
      if pop <= 0 then
        invalid_arg
          (Printf.sprintf "Result_profile.make: non-positive population for %s"
             entity))
    populations;
  (* Sum duplicate features. *)
  let counts =
    List.fold_left
      (fun acc (f, count) ->
        Feature.Map.update f
          (function None -> Some count | Some c -> Some (c + count))
          acc)
      Feature.Map.empty features
  in
  (* Group by feature type. *)
  let by_type =
    Feature.Map.fold
      (fun f count acc ->
        Feature.Ftype_map.update (Feature.ftype f)
          (function
            | None -> Some [ { feature = f; count } ]
            | Some l -> Some ({ feature = f; count } :: l))
          acc)
      counts Feature.Ftype_map.empty
  in
  let type_list =
    Feature.Ftype_map.fold
      (fun ftype feats acc ->
        let features =
          List.sort
            (fun a b ->
              let c = Int.compare b.count a.count in
              if c <> 0 then c
              else String.compare a.feature.Feature.value b.feature.Feature.value)
            feats
          |> Array.of_list
        in
        let significance = features.(0).count in
        let total = Array.fold_left (fun acc fi -> acc + fi.count) 0 features in
        { ftype; significance; total; features } :: acc)
      by_type []
  in
  (* Group types by entity. *)
  let by_entity : (string, type_info list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ti ->
      let entity = ti.ftype.Feature.entity in
      match Hashtbl.find_opt by_entity entity with
      | Some l -> l := ti :: !l
      | None -> Hashtbl.add by_entity entity (ref [ ti ]))
    type_list;
  let entity_names =
    Hashtbl.fold (fun name _ acc -> name :: acc) by_entity []
    |> List.sort String.compare
  in
  let pop_of entity =
    match List.assoc_opt entity populations with Some p -> p | None -> 1
  in
  let entities =
    List.map
      (fun entity ->
        let types =
          List.sort
            (fun a b ->
              let c = Int.compare b.significance a.significance in
              if c <> 0 then c
              else
                String.compare a.ftype.Feature.attribute
                  b.ftype.Feature.attribute)
            !(Hashtbl.find by_entity entity)
          |> Array.of_list
        in
        (* Runs of equal significance. *)
        let classes = ref [] in
        let n = Array.length types in
        let start = ref 0 in
        for i = 1 to n do
          if i = n || types.(i).significance <> types.(!start).significance
          then begin
            classes := (!start, i - !start) :: !classes;
            start := i
          end
        done;
        {
          entity;
          population = pop_of entity;
          types;
          classes = Array.of_list (List.rev !classes);
        })
      entity_names
    |> Array.of_list
  in
  let type_index =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun ei (e : entity_info) ->
              Array.mapi (fun ti _ -> (ei, ti)) e.types)
            entities))
  in
  let total_features =
    Array.fold_left
      (fun acc (e : entity_info) ->
        Array.fold_left
          (fun acc (ti : type_info) -> acc + Array.length ti.features)
          acc e.types)
      0 entities
  in
  { label; entities; type_index; total_features }

let num_types t = Array.length t.type_index

let type_info t gi =
  let ei, ti = t.type_index.(gi) in
  t.entities.(ei).types.(ti)

let entity_of_type t gi =
  let ei, _ = t.type_index.(gi) in
  t.entities.(ei)

let entity_index_of_type t gi = fst t.type_index.(gi)

let find_type t ftype =
  let n = num_types t in
  let rec scan gi =
    if gi >= n then None
    else if Feature.equal_ftype (type_info t gi).ftype ftype then Some gi
    else scan (gi + 1)
  in
  scan 0

let population t entity =
  let rec scan i =
    if i >= Array.length t.entities then 1
    else if t.entities.(i).entity = entity then t.entities.(i).population
    else scan (i + 1)
  in
  scan 0

let global_index t ~entity_index ~type_index =
  let base = ref 0 in
  for ei = 0 to entity_index - 1 do
    base := !base + Array.length t.entities.(ei).types
  done;
  !base + type_index

let types_seq t =
  Seq.init (num_types t) (fun gi -> (gi, type_info t gi))
