(** Exhaustive optimum for small instances.

    The DFS construction problem is NP-hard (Theorem 2.1), so this is a
    testing and calibration oracle only: it enumerates every valid DFS
    combination and returns one maximizing the total DoD. Guarded by a state
    budget so it can never be invoked on an instance that would not finish. *)

exception Too_large of int
(** Raised with the estimated state count when the search space exceeds
    [max_states]. *)

val enumerate_valid : limit:int -> Result_profile.t -> Dfs.t list
(** All valid DFSs of one result (size <= limit, downward-closed, feature
    prefixes). Exposed for property tests. *)

val generate : ?max_states:int -> Dod.context -> limit:int -> Dfs.t array
(** Optimal DFSs. [max_states] (default [2_000_000]) bounds the product of
    the per-result option counts. @raise Too_large when exceeded. *)

val optimum : ?max_states:int -> Dod.context -> limit:int -> int
(** The optimal total DoD value. *)
