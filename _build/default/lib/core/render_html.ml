let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {css|
body { font-family: Georgia, serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; }
table { border-collapse: collapse; }
th, td { border: 1px solid #999; padding: 0.4em 0.8em; text-align: left;
         vertical-align: top; }
th { background: #28426e; color: white; }
tr.diff td.ftype { font-weight: bold; }
tr.diff { background: #eef3fb; }
td.unknown { color: #999; text-align: center; }
p.meta { color: #555; font-size: 0.9em; }
|css}

let cell_html = function
  | Table.Unknown -> "<td class=\"unknown\">&mdash;</td>"
  | Table.Entries entries ->
    let items =
      List.map
        (fun (e : Table.entry) ->
          let f = e.feature in
          let qualifier =
            if e.population > 1 then
              Printf.sprintf " <small>(%d/%d, %.0f%%)</small>" e.count
                e.population
                (100.0 *. float_of_int e.count /. float_of_int e.population)
            else if e.count > 1 then Printf.sprintf " <small>(%d)</small>" e.count
            else ""
          in
          escape f.Feature.value ^ qualifier)
        entries
    in
    "<td>" ^ String.concat "<br/>" items ^ "</td>"

let table ?(title = "XSACT comparison table") (t : Table.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>";
  Buffer.add_string buf ("<title>" ^ escape title ^ "</title>");
  Buffer.add_string buf ("<style>" ^ style ^ "</style></head><body>\n");
  Buffer.add_string buf ("<h1>" ^ escape title ^ "</h1>\n<table>\n<tr><th>Feature type</th>");
  Array.iter
    (fun label -> Buffer.add_string buf ("<th>" ^ escape label ^ "</th>"))
    t.labels;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun (row : Table.row) ->
      Buffer.add_string buf
        (if row.differentiating then "<tr class=\"diff\">" else "<tr>");
      Buffer.add_string buf
        ("<td class=\"ftype\">" ^ escape (Feature.ftype_to_string row.ftype) ^ "</td>");
      Array.iter (fun cell -> Buffer.add_string buf (cell_html cell)) row.cells;
      Buffer.add_string buf "</tr>\n")
    t.rows;
  Buffer.add_string buf "</table>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<p class=\"meta\">Degree of differentiation: %d &middot; size bound \
        L = %d &middot; highlighted rows differentiate at least one result \
        pair.</p>\n"
       t.dod t.size_bound);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let to_file path ?title t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (table ?title t))
