(** Plain-text rendering of comparison tables and snippets. *)

val entry_to_string : Table.entry -> string
(** ["compact: yes (8/11, 73%)"] for population > 1, ["name: TomTom Go 630"]
    for population 1 and count 1. *)

val table : Table.t -> string
(** Monospace grid: header row of result labels, one row per feature type
    (attribute shown as [entity.attribute], differentiating rows marked with
    [*]), plus a footer with total DoD and the size bound. *)

val explanations : Dod.context -> Dfs.t array -> string
(** One line per differentiating (pair, type): which witness feature
    separates the two results and by how much, e.g.
    ["GPS1 vs GPS3 on review.pro:compact: yes measures 8 vs 38"]. Empty
    string when nothing differentiates. *)

val result_stats : ?top:int -> Result_profile.t -> string
(** The Figure 1-style per-result statistics block: entity populations and
    the [attr: value: count] lines, most significant first ([top] limits the
    line count, default 12). *)
