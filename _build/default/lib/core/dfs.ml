type t = { profile : Result_profile.t; q : int array }

let empty profile =
  { profile; q = Array.make (Result_profile.num_types profile) 0 }

let profile d = d.profile

let q d gi = d.q.(gi)

let max_q d gi =
  Array.length (Result_profile.type_info d.profile gi).features

let set_q d gi value =
  if gi < 0 || gi >= Array.length d.q then
    invalid_arg "Dfs.set_q: type index out of range";
  if value < 0 || value > max_q d gi then
    invalid_arg "Dfs.set_q: q out of range";
  let q = Array.copy d.q in
  q.(gi) <- value;
  { d with q }

let size d = Array.fold_left ( + ) 0 d.q

let selected_types d =
  let acc = ref [] in
  for gi = Array.length d.q - 1 downto 0 do
    if d.q.(gi) > 0 then acc := gi :: !acc
  done;
  !acc

let features d =
  List.concat_map
    (fun gi ->
      let info = Result_profile.type_info d.profile gi in
      List.init d.q.(gi) (fun k ->
          let fi = info.features.(k) in
          (fi.Result_profile.feature, fi.Result_profile.count)))
    (selected_types d)

(* Closure within one entity: q is indexed globally; the entity's types
   occupy a contiguous global range in significance-descending order. *)
let entity_range profile entity_index =
  let base =
    Result_profile.global_index profile ~entity_index ~type_index:0
  in
  let count =
    Array.length (Result_profile.(profile.entities.(entity_index).types))
  in
  (base, count)

let closure_ok d =
  let profile = d.profile in
  let ok = ref true in
  Array.iteri
    (fun ei (e : Result_profile.entity_info) ->
      let base, count = entity_range profile ei in
      (* Minimum significance among selected types of this entity. *)
      let min_sig = ref max_int in
      for k = 0 to count - 1 do
        if d.q.(base + k) > 0 then
          min_sig := min !min_sig e.types.(k).significance
      done;
      if !min_sig < max_int then
        for k = 0 to count - 1 do
          if e.types.(k).significance > !min_sig && d.q.(base + k) = 0 then
            ok := false
        done)
    profile.entities;
  !ok

let is_valid ~limit d = size d <= limit && closure_ok d

let can_open d gi =
  if d.q.(gi) > 0 then true
  else
    let profile = d.profile in
    let ei = Result_profile.entity_index_of_type profile gi in
    let e = profile.entities.(ei) in
    let base, count = entity_range profile ei in
    let my_sig = (Result_profile.type_info profile gi).significance in
    let ok = ref true in
    for k = 0 to count - 1 do
      if
        e.types.(k).significance > my_sig
        && d.q.(base + k) = 0
      then ok := false
    done;
    !ok

let can_close d gi =
  if d.q.(gi) = 0 then true
  else
    let profile = d.profile in
    let ei = Result_profile.entity_index_of_type profile gi in
    let e = profile.entities.(ei) in
    let base, count = entity_range profile ei in
    let my_sig = (Result_profile.type_info profile gi).significance in
    let ok = ref true in
    for k = 0 to count - 1 do
      if
        e.types.(k).significance < my_sig
        && d.q.(base + k) > 0
      then ok := false
    done;
    !ok

let of_q_array profile q =
  if Array.length q <> Result_profile.num_types profile then
    invalid_arg "Dfs.of_q_array: length mismatch";
  let d = { profile; q = Array.copy q } in
  Array.iteri
    (fun gi v ->
      if v < 0 || v > max_q d gi then
        invalid_arg "Dfs.of_q_array: q out of range")
    q;
  d

let to_q_array d = Array.copy d.q

let equal a b = a.profile == b.profile && a.q = b.q

let pp ppf d =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (f, count) -> Format.fprintf ppf "%s (%d)@ " (Feature.to_string f) count)
    (features d);
  Format.fprintf ppf "@]"
