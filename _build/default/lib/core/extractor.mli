(** Result processor: entity identifier + feature extractor (Figure 3).

    Turns one search-result subtree into a {!Result_profile.t}:

    - every element whose tag the corpus-wide {!Xsact_search.Node_category}
      inference classifies as an {e entity} starts a new entity scope and
      bumps that entity's population;
    - {e connection} elements are transparent;
    - every top-most {e attribute} element yields one feature attached to
      the nearest enclosing entity. Wrapper chains are flattened: an
      attribute element without text but with a single element child extends
      the attribute path with the child's tag ([pro]/[compact]/"yes" →
      attribute ["pro:compact"], value ["yes"]). Valueless presence flags
      get value ["yes"]; XML attributes yield features named ["tag@attr"].

    Occurrences of the same (entity, attribute, value) accumulate into the
    feature's count — e.g. 8 of 11 reviews saying yes to [pro:compact]
    produce count 8 against the review entity's population 11, matching the
    Figure 1 statistics. *)

val extract :
  categories:Node_category.t -> label:string -> Xml.element -> Result_profile.t
(** [extract ~categories ~label root] processes the subtree under [root].
    [root] itself is always treated as an entity (it is the unit of
    comparison), whatever its inferred category. A result without any
    extractable feature falls back to the single feature
    [(root-tag, "text", text content)]. *)

val of_search_result :
  Search.engine -> Search.result -> Result_profile.t
(** Convenience: extract from a {!Xsact_search.Search.result} using the
    engine's category table and {!Xsact_search.Search.result_title} as the
    label. *)
