(** Per-result snippets in the style of eXtract [2].

    A snippet summarizes one result in isolation by its most frequently
    occurring information — here, the top-k DFS of the single result. The
    paper's Figure 1 discussion uses these as the strawman: snippets are
    faithful summaries but, computed independently, they rarely share
    feature types and so compare poorly. {!Pipeline} and the benches measure
    exactly that gap. *)

val generate : limit:int -> Result_profile.t -> (Feature.t * int) list
(** The snippet's features with occurrence counts, selection order. *)

val query_biased :
  keywords:string -> limit:int -> Result_profile.t -> (Feature.t * int) list
(** eXtract is {e query-biased}: features whose attribute or value contains
    a query keyword come first (most frequent of those leading), then the
    remaining budget falls back to plain frequency. Validity is preserved —
    a biased feature is only hoisted when its type's significance
    prerequisites fit inside the budget too. *)

val query_biased_dfs : keywords:string -> limit:int -> Result_profile.t -> Dfs.t
(** Same selection as a {!Dfs.t} for DoD scoring. *)

val as_dfs : limit:int -> Result_profile.t -> Dfs.t
(** The same selection as a {!Dfs.t}, so snippet sets can be scored with
    {!Dod.total} against real DFSs. *)

val to_string : ?label:bool -> limit:int -> Result_profile.t -> string
(** Rendered block, one feature per line; [label] (default true) prepends
    the result label. *)
