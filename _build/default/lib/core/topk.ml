let weighted_fill ~key ~limit dfs =
  let profile = Dfs.profile dfs in
  let n = Result_profile.num_types profile in
  let q = Dfs.to_q_array dfs in
  let size = ref (Array.fold_left ( + ) 0 q) in
  let current = ref (Dfs.of_q_array profile q) in
  let continue = ref true in
  while !continue && !size < limit do
    (* Best next feature: highest key among heads of open types and heads
       of openable types; ties by global type order (canonical). *)
    let best = ref None in
    for gi = 0 to n - 1 do
      let info = Result_profile.type_info profile gi in
      let qi = q.(gi) in
      if qi < Array.length info.features && (qi > 0 || Dfs.can_open !current gi)
      then begin
        let k = key gi info.features.(qi).Result_profile.count in
        match !best with
        | Some (best_key, _) when best_key >= k -> ()
        | _ -> best := Some (k, gi)
      end
    done;
    match !best with
    | None -> continue := false
    | Some (_, gi) ->
      q.(gi) <- q.(gi) + 1;
      incr size;
      current := Dfs.of_q_array profile q
  done;
  !current

let fill ~limit dfs = weighted_fill ~key:(fun _ count -> count) ~limit dfs

let generate_one ~limit profile = fill ~limit (Dfs.empty profile)

let generate context ~limit =
  Array.mapi
    (fun i profile ->
      (* Greedy key = weight x count, so user-prioritized types fill first;
         with uniform weights this is plain count order. *)
      let key gi count = Dod.weight_of context ~i ~gi * count in
      weighted_fill ~key ~limit (Dfs.empty profile))
    (Dod.results context)
