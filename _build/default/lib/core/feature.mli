(** Features and feature types — the paper's data model (Section 2).

    A {b feature} is a triplet [(entity, attribute, value)], e.g.
    [(product, name, "TomTom Go 630")] or [(review, pro:compact, "yes")];
    a {b feature type} is its [(entity, attribute)] pair. Entities and
    attributes are the tag-derived names the {!Extractor} infers; nested
    wrapper tags are flattened into colon-joined attribute paths (Figure 1's
    [pro] → [compact] → [yes] becomes attribute ["pro:compact"], value
    ["yes"]). *)

type ftype = { entity : string; attribute : string }

type t = { ftype : ftype; value : string }

val make : entity:string -> attribute:string -> value:string -> t

val ftype : t -> ftype

val compare_ftype : ftype -> ftype -> int
(** Lexicographic on (entity, attribute). *)

val compare : t -> t -> int
(** Lexicographic on (entity, attribute, value). *)

val equal : t -> t -> bool
val equal_ftype : ftype -> ftype -> bool

val ftype_to_string : ftype -> string
(** ["entity.attribute"]. *)

val to_string : t -> string
(** ["entity.attribute = value"]. *)

val pp : Format.formatter -> t -> unit
val pp_ftype : Format.formatter -> ftype -> unit

module Ftype_map : Map.S with type key = ftype
module Map : Map.S with type key = t
