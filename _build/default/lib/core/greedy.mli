(** Greedy marginal-gain baseline (ablation).

    Starts from empty DFSs and repeatedly applies the single legal grow move
    — over all results — with the largest strictly positive DoD increase;
    once no positive move remains, fills the leftover budget per result by
    occurrence count ({!Topk.fill}) so its summaries stay comparable to the
    other methods. A useful midpoint between top-k (no cross-result
    awareness) and the swap algorithms (which can also undo choices). *)

val generate : Dod.context -> limit:int -> Dfs.t array
