(** The comparison table (Figure 2): DFSs arranged side by side.

    One column per result, one row per feature type selected in at least one
    DFS. A cell holds that result's selected features of the row's type with
    their counts and entity populations (so renderers can print "8 of 11" or
    "73%"); an empty cell means the type is {e not known} for that result —
    the paper's "null" semantics, not a negative statement. *)

type entry = {
  feature : Feature.t;
  count : int;
  population : int;  (** of the feature's entity in that result *)
}

type cell =
  | Unknown  (** type absent from the DFS (and possibly from the result) *)
  | Entries of entry list  (** canonical order, non-empty *)

type row = {
  ftype : Feature.ftype;
  differentiating : bool;
      (** does this type differentiate at least one result pair? *)
  cells : cell array;  (** one per result, in context order *)
}

type t = {
  labels : string array;  (** result display labels (column headers) *)
  rows : row list;
      (** grouped by entity (ascending), then by maximal significance across
          results (descending), then attribute *)
  dod : int;  (** total DoD of the displayed DFSs *)
  size_bound : int;
}

val build : ?size_bound:int -> Dod.context -> Dfs.t array -> t
(** [size_bound] is only recorded for display (default: the largest DFS
    size). *)
