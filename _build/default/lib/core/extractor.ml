(* Flatten an attribute element into (attribute-path, value).

   Chain rule: while the current element has no immediate text and exactly
   one element child, append the child's tag to the path and descend. The
   final element's immediate text is the value; a valueless presence flag
   becomes "yes"; an element with several children and no text contributes
   its whole text content. *)
let flatten (e : Xml.element) =
  let rec go path (cur : Xml.element) =
    let text = Xml.immediate_text cur in
    if text <> "" then (List.rev path, text)
    else
      match Xml.children_elements cur with
      | [ only ] -> go (only.Xml.tag :: path) only
      | [] -> (List.rev path, "yes")
      | _ :: _ :: _ ->
        let content = Xml.text_content cur in
        (List.rev path, if content = "" then "yes" else content)
  in
  let path, value = go [ e.Xml.tag ] e in
  (String.concat ":" path, value)

let extract ~categories ~label (root : Xml.element) =
  let feature_counts : (Feature.t, int) Hashtbl.t = Hashtbl.create 64 in
  let populations : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump_population tag =
    let c = try Hashtbl.find populations tag with Not_found -> 0 in
    Hashtbl.replace populations tag (c + 1)
  in
  let add_feature ~entity ~attribute ~value =
    let f = Feature.make ~entity ~attribute ~value in
    let c = try Hashtbl.find feature_counts f with Not_found -> 0 in
    Hashtbl.replace feature_counts f (c + 1)
  in
  let add_xml_attrs ~entity (e : Xml.element) =
    List.iter
      (fun (name, value) ->
        add_feature ~entity ~attribute:(e.Xml.tag ^ "@" ^ name) ~value)
      e.Xml.attrs
  in
  let rec walk ~entity (e : Xml.element) =
    List.iter
      (fun node ->
        match node with
        | Xml.Element c -> begin
          match Node_category.category categories c.Xml.tag with
          | Node_category.Entity ->
            bump_population c.Xml.tag;
            add_xml_attrs ~entity:c.Xml.tag c;
            walk ~entity:c.Xml.tag c
          | Node_category.Connection ->
            add_xml_attrs ~entity c;
            walk ~entity c
          | Node_category.Attribute ->
            let attribute, value = flatten c in
            add_feature ~entity ~attribute ~value;
            add_xml_attrs ~entity c
        end
        | Xml.Text _ | Xml.Cdata _ | Xml.Comment _ | Xml.Pi _ -> ())
      e.Xml.children
  in
  let root_entity = root.Xml.tag in
  bump_population root_entity;
  add_xml_attrs ~entity:root_entity root;
  walk ~entity:root_entity root;
  if Hashtbl.length feature_counts = 0 then begin
    let content = Xml.text_content root in
    let value = if content = "" then "yes" else content in
    add_feature ~entity:root_entity ~attribute:"text" ~value
  end;
  let features =
    Hashtbl.fold (fun f count acc -> (f, count) :: acc) feature_counts []
  in
  let pops =
    Hashtbl.fold (fun tag count acc -> (tag, count) :: acc) populations []
  in
  Result_profile.make ~label ~populations:pops features

let of_search_result engine (r : Search.result) =
  extract
    ~categories:(Search.categories engine)
    ~label:(Search.result_title engine r)
    r.Search.element
