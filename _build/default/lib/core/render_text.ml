let entry_to_string (e : Table.entry) =
  let f = e.feature in
  let base = Printf.sprintf "%s: %s" f.Feature.ftype.Feature.attribute f.Feature.value in
  if e.population > 1 then
    Printf.sprintf "%s (%d/%d, %.0f%%)" base e.count e.population
      (100.0 *. float_of_int e.count /. float_of_int e.population)
  else if e.count > 1 then Printf.sprintf "%s (%d)" base e.count
  else base

let cell_to_string = function
  | Table.Unknown -> "-"
  | Table.Entries entries ->
    String.concat "; "
      (List.map
         (fun (e : Table.entry) ->
           let f = e.feature in
           if e.population > 1 then
             Printf.sprintf "%s (%d/%d)" f.Feature.value e.count e.population
           else if e.count > 1 then
             Printf.sprintf "%s (%d)" f.Feature.value e.count
           else f.Feature.value)
         entries)

let table (t : Table.t) =
  let grid = Grid.create ~max_col_width:44 () in
  Grid.add_row grid ("feature type" :: Array.to_list t.labels);
  Grid.add_separator grid;
  List.iter
    (fun (row : Table.row) ->
      let name =
        Feature.ftype_to_string row.ftype ^ if row.differentiating then " *" else ""
      in
      Grid.add_row grid (name :: Array.to_list (Array.map cell_to_string row.cells)))
    t.rows;
  Grid.add_separator grid;
  Grid.render grid
  ^ Printf.sprintf "DoD = %d   (size bound L = %d; * = differentiating type)\n"
      t.dod t.size_bound

let explanations context dfss =
  let results = Dod.results context in
  let n = Array.length results in
  let buf = Buffer.create 512 in
  let pretty v =
    if Float.is_integer v then string_of_int (int_of_float v)
    else Printf.sprintf "%.2f" v
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun ((ftype : Feature.ftype), (w : Dod.witness)) ->
          Buffer.add_string buf
            (Printf.sprintf "%s vs %s on %s: %s measures %s vs %s\n"
               results.(i).Result_profile.label results.(j).Result_profile.label
               (Feature.ftype_to_string ftype)
               w.Dod.feature.Feature.value (pretty w.Dod.measure_i)
               (pretty w.Dod.measure_j)))
        (Dod.explain_pair context ~i ~j dfss.(i) dfss.(j))
    done
  done;
  Buffer.contents buf

let result_stats ?(top = 12) (profile : Result_profile.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "Result: %s\n" profile.label);
  Array.iter
    (fun (e : Result_profile.entity_info) ->
      if e.population > 1 then
        Buffer.add_string buf
          (Printf.sprintf "# of %s: %d\n" e.entity e.population))
    profile.entities;
  Buffer.add_string buf "ATTR:VALUE:# of occ\n";
  let lines =
    Array.to_list profile.entities
    |> List.concat_map (fun (e : Result_profile.entity_info) ->
           Array.to_list e.types
           |> List.concat_map (fun (ti : Result_profile.type_info) ->
                  Array.to_list ti.features
                  |> List.map (fun (fi : Result_profile.feat_info) ->
                         ( fi.count,
                           Printf.sprintf "%s: %s: %d"
                             ti.ftype.Feature.attribute
                             fi.feature.Feature.value fi.count ))))
    |> List.sort (fun (ca, la) (cb, lb) ->
           let c = Int.compare cb ca in
           if c <> 0 then c else String.compare la lb)
  in
  List.iteri
    (fun i (_, line) ->
      if i < top then Buffer.add_string buf (line ^ "\n"))
    lines;
  Buffer.contents buf
