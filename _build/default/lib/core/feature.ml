type ftype = { entity : string; attribute : string }
type t = { ftype : ftype; value : string }

let make ~entity ~attribute ~value = { ftype = { entity; attribute }; value }
let ftype f = f.ftype

let compare_ftype a b =
  let c = String.compare a.entity b.entity in
  if c <> 0 then c else String.compare a.attribute b.attribute

let compare a b =
  let c = compare_ftype a.ftype b.ftype in
  if c <> 0 then c else String.compare a.value b.value

let equal a b = compare a b = 0
let equal_ftype a b = compare_ftype a b = 0

let ftype_to_string t = t.entity ^ "." ^ t.attribute
let to_string f = ftype_to_string f.ftype ^ " = " ^ f.value

let pp ppf f = Format.pp_print_string ppf (to_string f)
let pp_ftype ppf t = Format.pp_print_string ppf (ftype_to_string t)

module Ftype_map = Map.Make (struct
  type t = ftype

  let compare = compare_ftype
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
