(** Built-in interestingness weightings for the weighted DoD objective
    (see {!Dod.make_context}'s [weight] argument).

    The demo paper lists "considering more factors (e.g., interestingness)
    when selecting features for DFS" as future work; these are pragmatic
    realizations. Weights are small non-negative integers: a type
    contributes [weight] instead of 1 to the degree of differentiation when
    it differentiates a pair. *)

val uniform : Feature.ftype -> int
(** Every type weighs 1 — the paper's objective. *)

val by_attribute : ?default:int -> (string * int) list -> Feature.ftype -> int
(** [by_attribute rules t] returns the weight of the first rule whose
    pattern is a substring of [t]'s attribute, or [default] (1). Lets a user
    say "I care about price and battery life": [by_attribute
    [("price", 3); ("battery", 3)]]. *)

val by_entity : ?default:int -> (string * int) list -> Feature.ftype -> int
(** Same, matched against the entity name — e.g. weigh review opinions over
    catalog attributes with [by_entity [("review", 2)]]. *)

val evidence : Result_profile.t array -> Feature.ftype -> int
(** Statistical-evidence weighting: a type weighs [1 + floor(log2 s)] where
    [s] is its largest significance across the given results. Differences
    backed by many observations ("38 of 68 reviewers") count more than
    one-off values; identifier-like unit-count types keep weight 1. *)
