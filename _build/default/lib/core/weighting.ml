let uniform _ = 1

let first_match ?(default = 1) rules key =
  let rec scan = function
    | [] -> default
    | (pattern, weight) :: rest ->
      if Xsact_util.Textutil.contains_substring key pattern then weight
      else scan rest
  in
  scan rules

let by_attribute ?default rules (t : Feature.ftype) =
  first_match ?default rules t.Feature.attribute

let by_entity ?default rules (t : Feature.ftype) =
  first_match ?default rules t.Feature.entity

let evidence profiles =
  (* Precompute max significance per ftype across the result set. *)
  let table = Hashtbl.create 64 in
  Array.iter
    (fun profile ->
      Seq.iter
        (fun (_, (ti : Result_profile.type_info)) ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt table ti.ftype)
          in
          Hashtbl.replace table ti.ftype (max prev ti.significance))
        (Result_profile.types_seq profile))
    profiles;
  fun ftype ->
    match Hashtbl.find_opt table ftype with
    | None | Some 0 -> 1
    | Some s ->
      let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
      1 + log2 0 s
