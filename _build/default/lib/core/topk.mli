(** Baseline DFS: greedy fill by occurrence count, per result independently.

    This is the snippet-style selection the paper contrasts with (eXtract
    highlights "the most frequently occurred information in the results"):
    repeatedly take the highest-count not-yet-selected feature whose
    selection keeps the DFS valid, until the size bound (or the result) is
    exhausted. It ignores the other results entirely, which is exactly why
    its DoD is poor — and it doubles as the initial solution of both swap
    algorithms. *)

val fill : limit:int -> Dfs.t -> Dfs.t
(** Extend a partial DFS greedily by count up to [limit] features. The input
    must be valid; the output is valid and has size [min limit
    total-features]. *)

val generate_one : limit:int -> Result_profile.t -> Dfs.t
(** [fill ~limit (Dfs.empty profile)]. *)

val generate : Dod.context -> limit:int -> Dfs.t array
(** One independent top-k DFS per result of the context. Under a weighted
    context the greedy key becomes [weight x count]: user-prioritized types
    fill first, which also seeds the swap algorithms (whose initializer this
    is) inside the region the weighting points at — a unilateral move can
    never introduce a new shared type profitably, so the initial summaries
    must already agree on what matters. With uniform weights this is
    exactly [generate_one] per result. *)
