let generate context ~limit =
  let results = Dod.results context in
  let dfss = Array.map Dfs.empty results in
  let continue = ref true in
  while !continue do
    let best = ref None in
    Array.iteri
      (fun i dfs ->
        if Dfs.size dfs < limit then
          let nt = Result_profile.num_types results.(i) in
          for gi = 0 to nt - 1 do
            let q = Dfs.q dfs gi in
            if q < Dfs.max_q dfs gi && (q > 0 || Dfs.can_open dfs gi) then begin
              let delta =
                Dod.delta_for_type context ~dfss ~i ~gi ~old_q:q ~new_q:(q + 1)
              in
              if delta > 0 then
                match !best with
                | Some (bd, _, _) when bd >= delta -> ()
                | _ -> best := Some (delta, i, gi)
            end
          done)
      dfss;
    match !best with
    | None -> continue := false
    | Some (_, i, gi) -> dfss.(i) <- Dfs.set_q dfss.(i) gi (Dfs.q dfss.(i) gi + 1)
  done;
  Array.map (Topk.fill ~limit) dfss
