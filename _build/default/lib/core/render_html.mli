(** HTML rendering of the comparison table — the artifact the demo's web UI
    (Figure 5) opens in a new browser window. Self-contained page with
    inline CSS; differentiating rows are highlighted. *)

val escape : string -> string
(** HTML-escape ['&'], ['<'], ['>'], ['"']. *)

val table : ?title:string -> Table.t -> string
(** A complete HTML document. *)

val to_file : string -> ?title:string -> Table.t -> unit
(** Write the page to [path]. @raise Sys_error on I/O failure. *)
