exception Too_large of int

(* Enumerate all valid q-vectors of one result within the size bound.
   Per entity, valid selections are: classes taken in significance order, a
   full prefix of classes (every type >= 1 feature), then one optional
   partial class (any non-empty proper subset pattern), nothing below.
   Rather than encode that shape directly, we enumerate per-type prefix
   lengths recursively and prune with the closure predicate at the end of
   each entity — instances this oracle runs on are tiny. *)
let enumerate_valid ~limit profile =
  let nt = Result_profile.num_types profile in
  let acc = ref [] in
  let q = Array.make nt 0 in
  let rec go gi used =
    if gi = nt then begin
      let d = Dfs.of_q_array profile q in
      if Dfs.is_valid ~limit d then acc := d :: !acc
    end
    else begin
      let info = Result_profile.type_info profile gi in
      let qmax = min (Array.length info.features) (limit - used) in
      for v = 0 to qmax do
        q.(gi) <- v;
        go (gi + 1) (used + v)
      done;
      q.(gi) <- 0
    end
  in
  go 0 0;
  !acc

let count_states ~limit profile =
  let nt = Result_profile.num_types profile in
  let states = ref 1.0 in
  for gi = 0 to nt - 1 do
    let info = Result_profile.type_info profile gi in
    let qmax = min (Array.length info.features) limit in
    states := !states *. float_of_int (qmax + 1)
  done;
  !states

let generate ?(max_states = 2_000_000) context ~limit =
  let results = Dod.results context in
  let raw_estimate =
    Array.fold_left
      (fun acc profile -> acc *. count_states ~limit profile)
      1.0 results
  in
  if raw_estimate > float_of_int max_states then
    raise (Too_large (int_of_float (Float.min raw_estimate 1e18)));
  let options = Array.map (fun p -> Array.of_list (enumerate_valid ~limit p)) results in
  let combos =
    Array.fold_left (fun acc opts -> acc * Array.length opts) 1 options
  in
  if combos > max_states then raise (Too_large combos);
  let n = Array.length results in
  let current = Array.map (fun opts -> opts.(0)) options in
  let best = ref (Array.copy current) in
  let best_value = ref (Dod.total context current) in
  let rec walk i =
    if i = n then begin
      let v = Dod.total context current in
      if v > !best_value then begin
        best_value := v;
        best := Array.copy current
      end
    end
    else
      Array.iter
        (fun d ->
          current.(i) <- d;
          walk (i + 1))
        options.(i)
  in
  walk 0;
  !best

let optimum ?max_states context ~limit =
  Dod.total context (generate ?max_states context ~limit)
