(** GitHub-flavored-Markdown rendering of comparison tables.

    For embedding comparison results in READMEs, issues or chat — the third
    output surface next to {!Render_text} and {!Render_html}. Pipe
    characters and asterisks inside cells are escaped; differentiating rows
    are bolded. *)

val escape_cell : string -> string
(** Escape ['|'], ['*'], backslash and newlines for table-cell position. *)

val table : Table.t -> string
(** A markdown table: header of result labels, one row per feature type
    (differentiating types bold), followed by an italic DoD footer line. *)
