(** Differentiation Feature Sets (DFSs).

    A DFS over a {!Result_profile.t} is represented as a vector [q] giving,
    for each feature type (by global index), how many of that type's
    features are selected — always the prefix of the type's canonical
    count-descending order. Desiderata 1 and 2 of the paper become:

    - {b size}: [size d <= limit];
    - {b validity}: within each entity, the set of types with [q > 0] is
      downward-closed under strict significance dominance — a type may be
      selected only if every strictly more significant type of the same
      entity is selected too. Equally significant types are free. *)

type t
(** Immutable by convention; algorithms copy before mutating. *)

val empty : Result_profile.t -> t
(** All-zero selection. *)

val profile : t -> Result_profile.t

val q : t -> int -> int
(** Selected feature count of a global type index. *)

val set_q : t -> int -> int -> t
(** Functional update; no legality check beyond array bounds and
    [0 <= q <= #features]. @raise Invalid_argument otherwise. *)

val size : t -> int
(** Total number of selected features (|D|). *)

val selected_types : t -> int list
(** Global indices with [q > 0], ascending. *)

val features : t -> (Feature.t * int) list
(** The selected features with their counts, grouped by type in canonical
    order. *)

val is_valid : limit:int -> t -> bool
(** Size bound + downward closure (see above). *)

val can_open : t -> int -> bool
(** [can_open d gi] — is setting [q gi] from 0 to 1 closure-legal? (Every
    strictly more significant type of the same entity already selected.)
    True also when [q gi > 0] already. *)

val can_close : t -> int -> bool
(** [can_close d gi] — is setting [q gi] to 0 closure-legal? (No strictly
    less significant type of the same entity selected.) True also when
    [q gi = 0] already. *)

val max_q : t -> int -> int
(** Number of features available in that type. *)

val of_q_array : Result_profile.t -> int array -> t
(** Adopt an explicit vector (copied). @raise Invalid_argument on length or
    range mismatch. *)

val to_q_array : t -> int array
(** A fresh copy of the selection vector. *)

val equal : t -> t -> bool
(** Same profile (physically) and same selection. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: the selected features with counts. *)
