lib/xmlkit/xml_print.ml: Buffer Fun List String Xml
