lib/xmlkit/xml_parse.mli: Xml Xml_sax
