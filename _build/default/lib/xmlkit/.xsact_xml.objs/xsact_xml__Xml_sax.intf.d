lib/xmlkit/xml_sax.mli: Xml
