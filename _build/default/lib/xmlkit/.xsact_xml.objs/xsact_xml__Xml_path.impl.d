lib/xmlkit/xml_path.ml: List String Xml
