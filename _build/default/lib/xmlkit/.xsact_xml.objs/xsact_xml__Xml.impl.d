lib/xmlkit/xml.ml: Buffer List String
