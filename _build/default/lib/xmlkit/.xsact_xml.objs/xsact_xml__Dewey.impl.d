lib/xmlkit/dewey.ml: Array Format Int List String
