lib/xmlkit/xml_stats.mli: Format Xml Xml_sax
