lib/xmlkit/xml_sax.ml: Buffer Char Fun List Printf Result String Xml
