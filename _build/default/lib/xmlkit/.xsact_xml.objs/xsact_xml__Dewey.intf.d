lib/xmlkit/dewey.mli: Format
