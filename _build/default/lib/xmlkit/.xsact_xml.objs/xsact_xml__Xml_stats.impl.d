lib/xmlkit/xml_stats.ml: Format Hashtbl Int List String Xml Xml_sax
