lib/xmlkit/xml.mli:
