lib/xmlkit/xml_parse.ml: Fun List String Xml Xml_sax
