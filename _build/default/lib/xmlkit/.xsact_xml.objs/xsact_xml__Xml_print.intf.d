lib/xmlkit/xml_print.mli: Xml
