type position = { line : int; col : int }
type error = { position : position; message : string }

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s" e.position.line e.position.col
    e.message

type event =
  | Start_element of Xml.name * Xml.attribute list
  | End_element of Xml.name
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string

exception Parse_error of error

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make_state src = { src; pos = 0; line = 1; bol = 0 }

let position_of st = { line = st.line; col = st.pos - st.bol + 1 }

let fail st message = raise (Parse_error { position = position_of st; message })

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let skip_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then skip_n st (String.length prefix)
  else fail st (Printf.sprintf "expected %S" prefix)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (at_end st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (at_end st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Decode one entity reference; the cursor is on '&'. *)
let parse_entity st =
  expect st "&";
  let start = st.pos in
  let rec find () =
    if at_end st then fail st "unterminated entity reference"
    else if peek st = ';' then ()
    else if is_space (peek st) || peek st = '<' || peek st = '&' then
      fail st "malformed entity reference"
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let body = String.sub st.src start (st.pos - start) in
  advance st (* ';' *);
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    let codepoint =
      if String.length body >= 2 && body.[0] = '#' then
        let digits = String.sub body 1 (String.length body - 1) in
        try
          if digits.[0] = 'x' || digits.[0] = 'X' then
            Some
              (int_of_string
                 ("0x" ^ String.sub digits 1 (String.length digits - 1)))
          else Some (int_of_string digits)
        with Failure _ -> None
      else None
    in
    (match codepoint with
    | Some cp when cp > 0 && cp <= 0x10FFFF ->
      (* UTF-8 encode. *)
      let buf = Buffer.create 4 in
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end;
      Buffer.contents buf
    | _ -> fail st (Printf.sprintf "unknown entity &%s;" body))

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then
    fail st "expected a quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        Buffer.add_string buf (parse_entity st);
        loop ()
      end
      else if c = '<' then fail st "'<' not allowed in attribute value"
      else begin
        Buffer.add_char buf c;
        advance st;
        loop ()
      end
  in
  loop ();
  Buffer.contents buf

let parse_attributes st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then
        fail st (Printf.sprintf "duplicate attribute %S" name);
      loop ((name, value) :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_until st terminator what =
  let start = st.pos in
  let tn = String.length terminator in
  let rec find () =
    if at_end st then fail st (Printf.sprintf "unterminated %s" what)
    else if looking_at st terminator then ()
    else begin
      advance st;
      find ()
    end
  in
  find ();
  let body = String.sub st.src start (st.pos - start) in
  skip_n st tn;
  body

let parse_comment st =
  expect st "<!--";
  Comment (parse_until st "-->" "comment")

let parse_cdata st =
  expect st "<![CDATA[";
  Cdata (parse_until st "]]>" "CDATA section")

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_space st;
  let body = parse_until st "?>" "processing instruction" in
  Pi (target, String.trim body)

(* Character data run up to the next '<'. *)
let parse_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    if at_end st then ()
    else
      let c = peek st in
      if c = '<' then ()
      else if c = '&' then begin
        Buffer.add_string buf (parse_entity st);
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        advance st;
        loop ()
      end
  in
  loop ();
  Buffer.contents buf

let skip_doctype st =
  (* Skip to the matching '>' with one level of '[' ... ']' nesting. *)
  skip_n st (String.length "<!DOCTYPE");
  let depth = ref 0 in
  let rec scan () =
    if at_end st then fail st "unterminated DOCTYPE"
    else begin
      (match peek st with
      | '[' -> incr depth
      | ']' -> decr depth
      | '>' when !depth = 0 ->
        advance st;
        raise Exit
      | _ -> ());
      advance st;
      scan ()
    end
  in
  try scan () with Exit -> ()

(* Emit all events of the document through [f], threading [acc]. The element
   stack enforces nesting; prolog and epilog content is restricted to
   comments, PIs and whitespace. *)
let fold src ~init ~f =
  let st = make_state src in
  let acc = ref init in
  let emit e = acc := f !acc e in
  let stack = ref [] in
  let seen_root = ref false in
  let in_element () = !stack <> [] in
  try
    let rec loop () =
      if at_end st then begin
        match !stack with
        | tag :: _ -> fail st (Printf.sprintf "unterminated element <%s>" tag)
        | [] -> if not !seen_root then fail st "no root element"
      end
      else if looking_at st "<!--" then begin
        emit (parse_comment st);
        loop ()
      end
      else if looking_at st "<![CDATA[" then begin
        if not (in_element ()) then fail st "CDATA outside the root element";
        emit (parse_cdata st);
        loop ()
      end
      else if looking_at st "<?" then begin
        emit (parse_pi st);
        loop ()
      end
      else if looking_at st "<!DOCTYPE" then begin
        if !seen_root || in_element () then
          fail st "misplaced DOCTYPE declaration";
        skip_doctype st;
        loop ()
      end
      else if looking_at st "</" then begin
        skip_n st 2;
        let closing = parse_name st in
        skip_space st;
        expect st ">";
        (match !stack with
        | top :: rest ->
          if closing <> top then
            fail st
              (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing
                 top);
          emit (End_element closing);
          stack := rest
        | [] -> fail st (Printf.sprintf "unmatched closing tag </%s>" closing));
        loop ()
      end
      else if peek st = '<' then begin
        if not (is_name_start (peek2 st)) then fail st "malformed markup after '<'";
        if !seen_root && not (in_element ()) then
          fail st "content after the root element";
        advance st;
        let tag = parse_name st in
        let attrs = parse_attributes st in
        skip_space st;
        seen_root := true;
        if looking_at st "/>" then begin
          skip_n st 2;
          emit (Start_element (tag, attrs));
          emit (End_element tag)
        end
        else begin
          expect st ">";
          emit (Start_element (tag, attrs));
          stack := tag :: !stack
        end;
        loop ()
      end
      else begin
        let s = parse_text st in
        if in_element () then emit (Text s)
        else if not (String.for_all is_space s) then
          fail st
            (if !seen_root then "content after the root element"
             else "character data before the root element");
        loop ()
      end
    in
    loop ();
    Ok !acc
  with Parse_error e -> Error e

let iter src ~f = fold src ~init:() ~f:(fun () e -> f e)

let events src =
  Result.map List.rev (fold src ~init:[] ~f:(fun acc e -> e :: acc))

let fold_file path ~init ~f =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
    Error { position = { line = 0; col = 0 }; message = msg }
  | src -> fold src ~init ~f
