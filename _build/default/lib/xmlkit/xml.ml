type name = string
type attribute = name * string

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string

and element = { tag : name; attrs : attribute list; children : node list }

type document = { root : element }

let elem ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s
let leaf ?(attrs = []) tag value = elem ~attrs tag [ text value ]
let document root = { root }

let tag e = e.tag
let attr e name = List.assoc_opt name e.attrs

let children_elements e =
  List.filter_map (function Element c -> Some c | _ -> None) e.children

let child e name =
  List.find_opt (fun c -> c.tag = name) (children_elements e)

let children_named e name =
  List.filter (fun c -> c.tag = name) (children_elements e)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let trim_ascii s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_space s.[!i] do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let text_content e =
  let buf = Buffer.create 64 in
  let rec go node =
    match node with
    | Text s | Cdata s -> Buffer.add_string buf s
    | Element c -> List.iter go c.children
    | Comment _ | Pi _ -> ()
  in
  List.iter go e.children;
  trim_ascii (Buffer.contents buf)

let immediate_text e =
  let buf = Buffer.create 32 in
  List.iter
    (function Text s | Cdata s -> Buffer.add_string buf s | _ -> ())
    e.children;
  trim_ascii (Buffer.contents buf)

let rec iter_elements f e =
  f e;
  List.iter
    (function Element c -> iter_elements f c | _ -> ())
    e.children

let rec fold_elements f acc e =
  let acc = f acc e in
  List.fold_left
    (fun acc node ->
      match node with Element c -> fold_elements f acc c | _ -> acc)
    acc e.children

let count_elements e = fold_elements (fun acc _ -> acc + 1) 0 e

let rec depth e =
  let child_depth =
    List.fold_left
      (fun acc node ->
        match node with Element c -> max acc (depth c) | _ -> acc)
      0 e.children
  in
  1 + child_depth

let sorted_attrs attrs = List.sort compare attrs

let rec equal_node a b =
  match (a, b) with
  | Element ea, Element eb -> equal_element ea eb
  | Text sa, Text sb | Cdata sa, Cdata sb | Comment sa, Comment sb -> sa = sb
  | Pi (ta, ba), Pi (tb, bb) -> ta = tb && ba = bb
  | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false

and equal_element ea eb =
  ea.tag = eb.tag
  && sorted_attrs ea.attrs = sorted_attrs eb.attrs
  && List.length ea.children = List.length eb.children
  && List.for_all2 equal_node ea.children eb.children

let equal da db = equal_element da.root db.root
