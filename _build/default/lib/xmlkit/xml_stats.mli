(** Corpus statistics over XML trees.

    Used by dataset sanity tests and by the CLI's [stats] command to report
    the shape of a generated corpus (the demo paper stresses that both demo
    datasets are large — hundreds of reviews per product, hundreds of
    products per brand). *)

type t = {
  elements : int;        (** total element count *)
  text_nodes : int;      (** non-whitespace text/CDATA nodes *)
  attributes : int;      (** total attribute count *)
  max_depth : int;       (** deepest element nesting, root = 1 *)
  distinct_tags : int;   (** number of distinct element names *)
  text_bytes : int;      (** total bytes of character data *)
}

val of_element : Xml.element -> t
val of_document : Xml.document -> t

val of_string_streaming : string -> (t, Xml_sax.error) result
(** Same statistics computed in one constant-memory pass over the
    {!Xml_sax} event stream, never building the tree. Agrees with
    [of_document] composed with {!Xml_parse.parse_string} (whitespace-only
    runs the DOM parser drops are excluded from both counts). *)

val tag_histogram : Xml.element -> (string * int) list
(** Element-name frequencies, most frequent first (ties by name). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)
