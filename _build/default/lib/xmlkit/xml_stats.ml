type t = {
  elements : int;
  text_nodes : int;
  attributes : int;
  max_depth : int;
  distinct_tags : int;
  text_bytes : int;
}

let of_element root =
  let elements = ref 0 in
  let text_nodes = ref 0 in
  let attributes = ref 0 in
  let text_bytes = ref 0 in
  let tags = Hashtbl.create 64 in
  let max_depth = ref 0 in
  let rec go depth (e : Xml.element) =
    incr elements;
    if depth > !max_depth then max_depth := depth;
    attributes := !attributes + List.length e.attrs;
    if not (Hashtbl.mem tags e.tag) then Hashtbl.add tags e.tag ();
    List.iter
      (fun node ->
        match node with
        | Xml.Element c -> go (depth + 1) c
        | Xml.Text s | Xml.Cdata s ->
          if String.trim s <> "" then incr text_nodes;
          text_bytes := !text_bytes + String.length s
        | Xml.Comment _ | Xml.Pi _ -> ())
      e.children
  in
  go 1 root;
  {
    elements = !elements;
    text_nodes = !text_nodes;
    attributes = !attributes;
    max_depth = !max_depth;
    distinct_tags = Hashtbl.length tags;
    text_bytes = !text_bytes;
  }

let of_document (doc : Xml.document) = of_element doc.root

(* Streaming variant: replicate the DOM parser's whitespace policy (drop
   whitespace-only runs unless adjacent to CDATA) so both paths agree. *)
type stream_state = {
  mutable elements : int;
  mutable text_nodes : int;
  mutable attributes : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable text_bytes : int;
  mutable pending_ws : int;  (* bytes of a parked whitespace run *)
  mutable prev_cdata : bool;
  tags : (string, unit) Hashtbl.t;
}

let of_string_streaming src =
  let st =
    {
      elements = 0;
      text_nodes = 0;
      attributes = 0;
      depth = 0;
      max_depth = 0;
      text_bytes = 0;
      pending_ws = 0;
      prev_cdata = false;
      tags = Hashtbl.create 64;
    }
  in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let all_space s = String.for_all is_space s in
  let reset_run () =
    st.pending_ws <- 0;
    st.prev_cdata <- false
  in
  let on_event () (event : Xml_sax.event) =
    match event with
    | Xml_sax.Start_element (tag, attrs) ->
      reset_run ();
      st.elements <- st.elements + 1;
      st.attributes <- st.attributes + List.length attrs;
      if not (Hashtbl.mem st.tags tag) then Hashtbl.add st.tags tag ();
      st.depth <- st.depth + 1;
      if st.depth > st.max_depth then st.max_depth <- st.depth
    | Xml_sax.End_element _ ->
      reset_run ();
      st.depth <- st.depth - 1
    | Xml_sax.Text s ->
      if st.depth > 0 then
        if not (all_space s) then begin
          st.text_nodes <- st.text_nodes + 1;
          st.text_bytes <- st.text_bytes + String.length s;
          st.prev_cdata <- false
        end
        else if st.prev_cdata then begin
          (* kept as a text node by the DOM builder, but trim-empty *)
          st.text_bytes <- st.text_bytes + String.length s;
          st.prev_cdata <- false
        end
        else st.pending_ws <- String.length s
    | Xml_sax.Cdata s ->
      if st.depth > 0 then begin
        st.text_bytes <- st.text_bytes + st.pending_ws;
        st.pending_ws <- 0;
        if String.trim s <> "" then st.text_nodes <- st.text_nodes + 1;
        st.text_bytes <- st.text_bytes + String.length s;
        st.prev_cdata <- true
      end
    | Xml_sax.Comment _ | Xml_sax.Pi _ -> reset_run ()
  in
  match Xml_sax.fold src ~init:() ~f:on_event with
  | Error e -> Error e
  | Ok () ->
    Ok
      {
        elements = st.elements;
        text_nodes = st.text_nodes;
        attributes = st.attributes;
        max_depth = st.max_depth;
        distinct_tags = Hashtbl.length st.tags;
        text_bytes = st.text_bytes;
      }

let tag_histogram root =
  let tags = Hashtbl.create 64 in
  Xml.iter_elements
    (fun e ->
      let count = try Hashtbl.find tags e.Xml.tag with Not_found -> 0 in
      Hashtbl.replace tags e.Xml.tag (count + 1))
    root;
  let entries = Hashtbl.fold (fun tag count acc -> (tag, count) :: acc) tags [] in
  List.sort
    (fun (ta, ca) (tb, cb) ->
      let c = Int.compare cb ca in
      if c <> 0 then c else String.compare ta tb)
    entries

let pp ppf (t : t) =
  Format.fprintf ppf
    "elements: %d@ text nodes: %d@ attributes: %d@ max depth: %d@ distinct \
     tags: %d@ text bytes: %d"
    t.elements t.text_nodes t.attributes t.max_depth t.distinct_tags
    t.text_bytes
