(** Dewey labels for XML nodes.

    A Dewey label is the path of child ordinals from the document root
    ([[]]) to a node ([[0; 2; 1]] = second child of third child of first
    child of the root). The search substrate labels every element this way:
    Dewey order coincides with document order, and the longest common prefix
    of two labels is the label of their lowest common ancestor — the two
    facts the SLCA algorithm relies on. *)

type t = private int array
(** A label; immutable by convention (the private type blocks construction
    of aliased arrays from outside). *)

val root : t
(** The document root's label, [[||]]. *)

val of_list : int list -> t
(** @raise Invalid_argument on negative components. *)

val to_list : t -> int list

val child : t -> int -> t
(** [child d i] labels the [i]-th element child ([i >= 0]). *)

val depth : t -> int

val compare : t -> t -> int
(** Document order: lexicographic, prefix-first ([compare a (child a i) < 0]). *)

val equal : t -> t -> bool

val is_ancestor : t -> t -> bool
(** [is_ancestor a b] — strict ancestor: [a] a proper prefix of [b]. *)

val is_ancestor_or_self : t -> t -> bool

val lca : t -> t -> t
(** Longest common prefix = label of the lowest common ancestor. *)

val parent : t -> t option
(** [None] for the root. *)

val to_string : t -> string
(** Dotted form, e.g. ["0.2.1"]; [""] for the root. *)

val pp : Format.formatter -> t -> unit
