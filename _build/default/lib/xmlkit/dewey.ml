type t = int array

let root = [||]

let of_list l =
  List.iter
    (fun i -> if i < 0 then invalid_arg "Dewey.of_list: negative component")
    l;
  Array.of_list l

let to_list = Array.to_list

let child d i =
  if i < 0 then invalid_arg "Dewey.child: negative ordinal";
  Array.append d [| i |]

let depth = Array.length

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let is_prefix a b =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let is_ancestor a b = Array.length a < Array.length b && is_prefix a b
let is_ancestor_or_self = is_prefix

let lca a b =
  let n = min (Array.length a) (Array.length b) in
  let rec common i = if i < n && a.(i) = b.(i) then common (i + 1) else i in
  Array.sub a 0 (common 0)

let parent d =
  let n = Array.length d in
  if n = 0 then None else Some (Array.sub d 0 (n - 1))

let to_string d =
  String.concat "." (List.map string_of_int (Array.to_list d))

let pp ppf d = Format.pp_print_string ppf (to_string d)
