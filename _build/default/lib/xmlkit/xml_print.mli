(** XML serialization.

    Inverse of {!Xml_parse}: [parse (to_string doc)] returns a document equal
    to [doc] for any tree built from the {!Xml} constructors (the printer
    escapes all markup-significant characters; qcheck tests pin the
    round-trip down). *)

val escape_text : string -> string
(** Escape ['&'], ['<'], ['>'] for character-data position. *)

val escape_attr : string -> string
(** Escape ['&'], ['<'], ['>'], ['"'] for double-quoted attribute position. *)

val node_to_string : Xml.node -> string
(** Compact serialization of one node (no added whitespace). *)

val to_string : ?decl:bool -> Xml.document -> string
(** Compact serialization; [decl] (default [true]) prepends the XML
    declaration. *)

val to_string_pretty : ?decl:bool -> ?indent:int -> Xml.document -> string
(** Human-readable serialization: each element on its own line, children
    indented by [indent] spaces (default 2). Elements whose children are only
    text are kept on one line so that values stay readable. Mixed content is
    printed compactly to avoid injecting significant whitespace. *)

val to_file : string -> Xml.document -> unit
(** Write the pretty form to [path]. @raise Sys_error on I/O failure. *)
