(** Minimal path queries over {!Xml} trees.

    A tiny XPath-like selector sufficient for the dataset loaders and tests:
    steps are element names separated by ['/'], a leading ["//"] (or a step
    written ["//name"]) selects descendants instead of children, and ["*"]
    matches any element. No predicates, attributes or axes. *)

type step = Child of string | Descendant of string
(** [Child "*"] / [Descendant "*"] act as wildcards. *)

val parse : string -> step list
(** [parse "a/b//c"] = [[Child "a"; Child "b"; Descendant "c"]].
    @raise Invalid_argument on empty steps (["a//"], [""]). *)

val select : Xml.element -> string -> Xml.element list
(** [select root path] returns matching elements in document order, starting
    the path at [root]'s children (so ["review"] selects [root]'s [review]
    children, not [root] itself). Duplicates arising from overlapping
    descendant steps are removed. *)

val select_first : Xml.element -> string -> Xml.element option

val texts : Xml.element -> string -> string list
(** [texts root path] is [select] followed by {!Xml.text_content}. *)
