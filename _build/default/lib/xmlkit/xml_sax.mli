(** Streaming (SAX-style) XML parser.

    The event core of the XML substrate: scans a document left to right and
    hands each markup event to a fold function, without ever materializing a
    tree. {!Xml_parse} builds its DOM on top of this module; large corpora
    can be scanned (counted, filtered, indexed) in constant memory via
    {!fold}.

    Well-formedness is enforced during the scan: mismatched or unterminated
    tags, bad entities, duplicate attributes, content after the root — all
    the failures {!Xml_parse} reports — surface here as located errors.
    Whitespace-only text is reported like any other text; policy (e.g.
    dropping formatting whitespace) belongs to consumers. *)

type position = { line : int; col : int }
(** 1-based line and column. *)

type error = { position : position; message : string }

val error_to_string : error -> string
(** ["line L, column C: message"]. *)

type event =
  | Start_element of Xml.name * Xml.attribute list
  | End_element of Xml.name
  | Text of string  (** character data, entities decoded; may be
                        whitespace-only *)
  | Cdata of string
  | Comment of string
  | Pi of string * string
      (** processing instructions, including any prolog XML declaration and
          instructions after the root *)

val fold :
  string -> init:'a -> f:('a -> event -> 'a) -> ('a, error) result
(** [fold src ~init ~f] scans [src], threading [f] through every event in
    document order. Exactly one root element is required; DOCTYPE
    declarations are skipped silently. *)

val iter : string -> f:(event -> unit) -> (unit, error) result

val events : string -> (event list, error) result
(** Materialize the event stream (tests, small inputs). *)

val fold_file :
  string -> init:'a -> f:('a -> event -> 'a) -> ('a, error) result
(** Like {!fold}, reading the document from a file. I/O failures map to an
    error at position 0,0. *)
