(** XML document model.

    Both demo datasets and the IMDB corpus are "stored in XML format" (paper,
    Section 3); this module is the in-memory representation shared by the
    generators, the search engine and the feature extractor. It is a plain
    immutable rose tree — no namespaces, DTDs or validation, which the paper's
    pipeline does not need. *)

type name = string
(** Element and attribute names (no namespace splitting). *)

type attribute = name * string

type node =
  | Element of element
  | Text of string  (** character data, entity references already decoded *)
  | Cdata of string  (** CDATA section contents, kept verbatim *)
  | Comment of string
  | Pi of string * string  (** processing instruction: target, body *)

and element = { tag : name; attrs : attribute list; children : node list }

type document = { root : element }

(** {1 Construction} *)

val elem : ?attrs:attribute list -> name -> node list -> node
(** [elem tag children] builds an element node. *)

val text : string -> node
(** [text s] builds a text node. *)

val leaf : ?attrs:attribute list -> name -> string -> node
(** [leaf tag value] is [elem tag [text value]] — the common
    attribute-with-value shape in the datasets. *)

val document : element -> document

(** {1 Accessors} *)

val tag : element -> name

val attr : element -> name -> string option
(** [attr e name] is the value of attribute [name], if present. *)

val children_elements : element -> element list
(** Element children in document order (text/comment nodes skipped). *)

val child : element -> name -> element option
(** First element child with the given tag. *)

val children_named : element -> name -> element list
(** All element children with the given tag, in order. *)

val text_content : element -> string
(** Concatenation of all descendant text and CDATA, in document order,
    trimmed of leading/trailing ASCII whitespace. *)

val immediate_text : element -> string
(** Concatenation of the element's direct text/CDATA children only,
    trimmed. *)

(** {1 Traversal} *)

val iter_elements : (element -> unit) -> element -> unit
(** Pre-order visit of [e] and all its element descendants. *)

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Pre-order fold over [e] and all its element descendants. *)

val count_elements : element -> int
(** Number of element nodes in the subtree (including the root). *)

val depth : element -> int
(** Height of the element tree ([1] for a leaf element). *)

(** {1 Comparison} *)

val equal_node : node -> node -> bool
(** Structural equality ignoring attribute order. *)

val equal : document -> document -> bool
