let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (name, value) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      Buffer.add_string buf "=\"";
      escape buf ~quot:true value;
      Buffer.add_char buf '"')
    attrs

let add_cdata buf s =
  (* A literal "]]>" inside CDATA must be split across two sections. *)
  Buffer.add_string buf "<![CDATA[";
  let parts = ref [] in
  let rec split s =
    match String.index_opt s ']' with
    | Some i
      when i + 2 < String.length s && s.[i + 1] = ']' && s.[i + 2] = '>' ->
      parts := String.sub s 0 (i + 2) :: !parts;
      split (String.sub s (i + 2) (String.length s - i - 2))
    | _ -> parts := s :: !parts
  in
  split s;
  let parts = List.rev !parts in
  List.iteri
    (fun i part ->
      if i > 0 then Buffer.add_string buf "]]><![CDATA[";
      Buffer.add_string buf part)
    parts;
  Buffer.add_string buf "]]>"

let rec add_node buf node =
  match node with
  | Xml.Text s -> escape buf ~quot:false s
  | Xml.Cdata s -> add_cdata buf s
  | Xml.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Xml.Pi (target, body) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if body <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf body
    end;
    Buffer.add_string buf "?>"
  | Xml.Element e -> add_element buf e

and add_element buf (e : Xml.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  add_attrs buf e.attrs;
  match e.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
    Buffer.add_char buf '>';
    List.iter (add_node buf) children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_char buf '>'

let node_to_string node =
  let buf = Buffer.create 256 in
  add_node buf node;
  Buffer.contents buf

let xml_decl = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"

let to_string ?(decl = true) (doc : Xml.document) =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf xml_decl;
  add_element buf doc.root;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let only_text children =
  List.for_all (function Xml.Text _ | Xml.Cdata _ -> true | _ -> false) children

let has_text children =
  List.exists (function Xml.Text _ | Xml.Cdata _ -> true | _ -> false) children

let rec add_pretty buf ~indent ~level (node : Xml.node) =
  let pad = String.make (indent * level) ' ' in
  Buffer.add_string buf pad;
  (match node with
  | Xml.Element e when e.children = [] ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    add_attrs buf e.attrs;
    Buffer.add_string buf "/>"
  | Xml.Element e when only_text e.children || has_text e.children ->
    (* One line: pure-text content stays readable; mixed content must stay
       compact so no significant whitespace is invented. *)
    add_element buf e
  | Xml.Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    add_attrs buf e.attrs;
    Buffer.add_string buf ">\n";
    List.iter
      (fun c ->
        add_pretty buf ~indent ~level:(level + 1) c;
        Buffer.add_char buf '\n')
      e.children;
    Buffer.add_string buf pad;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_char buf '>'
  | other -> add_node buf other)

let to_string_pretty ?(decl = true) ?(indent = 2) (doc : Xml.document) =
  let buf = Buffer.create 4096 in
  if decl then Buffer.add_string buf xml_decl;
  add_pretty buf ~indent ~level:0 (Xml.Element doc.root);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string_pretty doc))
