type step = Child of string | Descendant of string

let parse path =
  let n = String.length path in
  let steps = ref [] in
  let i = ref 0 in
  let read_name () =
    let start = !i in
    while !i < n && path.[!i] <> '/' do incr i done;
    let name = String.sub path start (!i - start) in
    if name = "" then invalid_arg "Xml_path.parse: empty step";
    name
  in
  while !i < n do
    if path.[!i] = '/' then
      if !i + 1 < n && path.[!i + 1] = '/' then begin
        i := !i + 2;
        steps := Descendant (read_name ()) :: !steps
      end
      else begin
        incr i;
        steps := Child (read_name ()) :: !steps
      end
    else steps := Child (read_name ()) :: !steps
  done;
  if !steps = [] then invalid_arg "Xml_path.parse: empty path";
  List.rev !steps

let matches name (e : Xml.element) = name = "*" || e.Xml.tag = name

let descendants_matching name e =
  (* All proper descendants of [e] matching [name], pre-order. *)
  let acc = ref [] in
  let rec go (c : Xml.element) =
    List.iter
      (function
        | Xml.Element child ->
          if matches name child then acc := child :: !acc;
          go child
        | _ -> ())
      c.Xml.children
  in
  go e;
  List.rev !acc

let apply_step frontier step =
  let next =
    List.concat_map
      (fun e ->
        match step with
        | Child name -> List.filter (matches name) (Xml.children_elements e)
        | Descendant name -> descendants_matching name e)
      frontier
  in
  (* Physical dedup is enough: overlapping descendant steps revisit the very
     same element values. *)
  let seen = ref [] in
  List.filter
    (fun e ->
      if List.memq e !seen then false
      else begin
        seen := e :: !seen;
        true
      end)
    next

let select root path =
  List.fold_left apply_step [ root ] (parse path)

let select_first root path =
  match select root path with [] -> None | e :: _ -> Some e

let texts root path = List.map Xml.text_content (select root path)
