(** XSeek-style node categorization.

    XSACT's entity identifier "infers entities and attributes in the results
    [3], defined in the spirit of the Entity-Relationship model". Following
    XSeek, categories are inferred per {e node type} (element tag) from the
    data itself, with no schema:

    - a tag names an {b entity} if somewhere in the corpus several siblings
      share it (a "*-node" in DTD terms) {e and} it has internal structure
      (an instance with two or more element children): [review] under
      [reviews];
    - a tag names an {b attribute} if it carries a value directly ([name],
      [rating]), or if it repeats but is value-like — a multi-valued
      attribute such as [genre] or the [pro] wrappers of Figure 1;
    - any remaining tag is a {b connection} node that merely groups others:
      [reviews], [pros]. *)

type category = Entity | Attribute | Connection

val category_to_string : category -> string

type t
(** Per-tag category assignment inferred from one corpus. *)

val infer : Doctree.t -> t
(** Single pass over the node table. *)

val category : t -> string -> category
(** Category of a tag; unknown tags default to [Attribute] (a safe default
    for tags introduced by small test fixtures). *)

val is_entity : t -> string -> bool
val is_attribute : t -> string -> bool

val entity_of : t -> Doctree.t -> int -> int
(** [entity_of cats tree id] is the id of the nearest ancestor-or-self of
    [id] whose tag is an entity, falling back to the root when none is. This
    is the node XSACT attaches a feature's {e entity} to. *)

val tags : t -> (string * category) list
(** All inferred tags with categories, sorted by tag name. *)
