let log_src = Logs.Src.create "xsact.search" ~doc:"XSACT search engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type engine = {
  tree : Doctree.t;
  idx : Index.t;
  cats : Node_category.t;
}

type result = {
  rank : int;
  node_id : int;
  dewey : Dewey.t;
  element : Xml.element;
  score : float;
  slca_ids : int list;
}

let of_element root =
  let tree = Doctree.of_element root in
  let idx = Index.build tree in
  let cats = Node_category.infer tree in
  Log.info (fun m ->
      m "indexed corpus: %d nodes, %d tokens, %d postings" (Doctree.size tree)
        (Index.vocabulary_size idx)
        (Index.total_postings idx));
  { tree; idx; cats }

let create (doc : Xml.document) = of_element doc.root

let doctree e = e.tree
let index e = e.idx
let categories e = e.cats

type scoring = Occurrence | Tf_idf

(* Count posting ids of [kw] inside the subtree interval by binary search. *)
let occurrences_in engine kw ~lo ~hi =
  let posts = Index.postings engine.idx kw in
  let count_from target =
    let l = ref 0 and r = ref (Array.length posts) in
    while !l < !r do
      let mid = (!l + !r) / 2 in
      if posts.(mid) < target then l := mid + 1 else r := mid
    done;
    !l
  in
  count_from hi - count_from lo

(* Score a candidate result: keyword weight inside the subtree, damped by
   subtree size so that enormous results do not dominate. Under [Tf_idf]
   each keyword occurrence is worth the keyword's inverse document
   frequency; under [Occurrence] every occurrence is worth 1. *)
let score_result engine scoring keywords node_id =
  let tree = engine.tree in
  let lo = node_id and hi = Doctree.subtree_end tree node_id in
  let size = hi - lo in
  let weight_of kw =
    match scoring with
    | Occurrence -> 1.0
    | Tf_idf ->
      let df = Index.doc_frequency engine.idx kw in
      if df = 0 then 0.0
      else log (float_of_int (Doctree.size tree) /. float_of_int df)
  in
  let mass =
    List.fold_left
      (fun acc kw ->
        acc +. (float_of_int (occurrences_in engine kw ~lo ~hi) *. weight_of kw))
      0.0 keywords
  in
  mass /. log (float_of_int (size + 2))

(* Nearest ancestor-or-self of [id] with tag [tag]; falls back to entity
   lifting when the path to the root has no such tag. *)
let lift_to_tag engine tag id =
  let rec up id =
    let node = Doctree.node engine.tree id in
    if node.tag = tag then Some id
    else match node.parent with -1 -> None | p -> up p
  in
  match up id with
  | Some id -> id
  | None -> Node_category.entity_of engine.cats engine.tree id

type semantics = Slca | Elca

let query ?limit ?lift_to ?(semantics = Slca) ?(scoring = Occurrence) engine
    keyword_string =
  let keywords = Token.normalize_query keyword_string in
  match keywords with
  | [] -> []
  | _ ->
    let slcas =
      match semantics with
      | Slca -> Slca.by_aggregation engine.idx keywords
      | Elca -> Slca.elca engine.idx keywords
    in
    (* Lift each SLCA to its nearest enclosing entity (or the requested
       tag); several SLCAs may land on the same node (merge their witness
       lists). *)
    let lift =
      match lift_to with
      | Some tag -> lift_to_tag engine tag
      | None -> Node_category.entity_of engine.cats engine.tree
    in
    let table : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun slca_id ->
        let entity_id = lift slca_id in
        match Hashtbl.find_opt table entity_id with
        | Some witnesses -> witnesses := slca_id :: !witnesses
        | None ->
          Hashtbl.add table entity_id (ref [ slca_id ]);
          order := entity_id :: !order)
      slcas;
    let candidates = List.rev !order in
    (* Drop candidates nested inside other candidates: lifting can make one
       result subtree contain another, and the outer one subsumes it. *)
    let minimal =
      List.filter
        (fun id ->
          not
            (List.exists
               (fun other ->
                 other <> id
                 && Doctree.is_descendant_or_self engine.tree ~ancestor:other id)
               candidates))
        candidates
    in
    let scored =
      List.map
        (fun id ->
          let node = Doctree.node engine.tree id in
          let witnesses = List.rev !(Hashtbl.find table id) in
          (id, node, score_result engine scoring keywords id, witnesses))
        minimal
    in
    let sorted =
      List.sort
        (fun (ida, _, sa, _) (idb, _, sb, _) ->
          let c = Float.compare sb sa in
          if c <> 0 then c else Int.compare ida idb)
        scored
    in
    Log.debug (fun m ->
        m "query %S: %d keywords, %d SLCAs, %d results after lifting"
          keyword_string (List.length keywords) (List.length slcas)
          (List.length minimal));
    let truncated =
      match limit with
      | Some l -> List.filteri (fun i _ -> i < l) sorted
      | None -> sorted
    in
    List.mapi
      (fun i (id, (node : Doctree.node), score, witnesses) ->
        {
          rank = i + 1;
          node_id = id;
          dewey = node.dewey;
          element = node.element;
          score;
          slca_ids = witnesses;
        })
      truncated

let result_title engine r =
  let candidates = Xml.children_elements r.element in
  let attribute_child =
    List.find_opt
      (fun (c : Xml.element) ->
        Node_category.is_attribute engine.cats c.tag
        && Xml.text_content c <> "")
      candidates
  in
  match attribute_child with
  | Some c -> Xml.text_content c
  | None -> r.element.tag
