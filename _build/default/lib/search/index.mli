(** Inverted index over a {!Doctree}.

    Maps each token to the ascending list of element ids that contain it
    directly (in tag name, immediate text, or attribute values). Subtree
    containment is recovered at query time via {!Doctree.subtree_end}
    intervals, so the index stays linear in corpus size. *)

type t

val build : Doctree.t -> t
(** One pass over the node table. *)

val doctree : t -> Doctree.t

val postings : t -> string -> int array
(** Ascending ids of nodes directly containing the token; [[||]] for unknown
    tokens. The returned array is shared — do not mutate. *)

val doc_frequency : t -> string -> int
(** [Array.length (postings t tok)]. *)

val vocabulary_size : t -> int

val total_postings : t -> int
(** Sum of posting-list lengths (index size measure for benches). *)

val mark_matches : t -> string list -> int -> bool array array
(** [mark_matches t keywords n] gives, per keyword, a direct-match bitmap
    over node ids [0..n-1] — the input of the SLCA algorithms. *)
