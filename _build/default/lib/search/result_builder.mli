(** Result subtree construction policies (XSeek's "return information").

    XSACT compares whatever subtree the search engine returns, and what that
    subtree should contain is a semantics decision XSeek [3] studies: the
    whole entity, only the parts related to the query, or just the entity's
    own attributes. Three policies are provided:

    - {!Full}: the entire entity subtree — the demo's default (a product
      result keeps all of its hundreds of reviews);
    - {!Matched_entities}: nested entity instances are kept only when their
      subtree contains {e all} query keywords; attributes and connection
      structure are always kept. Comparing brands for "men jackets" under
      this policy contrasts the brands' {e matching products} (their men's
      jackets) rather than their whole catalogs;
    - {!Attributes_only}: only the entity's attribute children (transitively
      through connection nodes); nested entities are dropped entirely — a
      head-matter summary view. *)

type mode = Full | Matched_entities | Attributes_only

val mode_to_string : mode -> string
(** ["full"], ["matched"], ["attributes"]. *)

val mode_of_string : string -> mode option

val matches : keywords:string list -> Xml.element -> bool
(** Does the subtree contain {e every} one of the (already-normalized)
    keywords — in tag names, text, or attribute values? Conjunctive, like
    the engine's match semantics. [false] for an empty keyword list.
    Exposed for tests. *)

val prune :
  categories:Node_category.t ->
  keywords:string list ->
  mode ->
  Xml.element ->
  Xml.element
(** Rebuild the result subtree under the given policy. [Full] is the
    identity. The root element itself is never dropped. Under
    [Matched_entities], if {e no} nested entity matches (the keywords all
    sit in the entity's own attributes), the result keeps all nested
    entities — an empty comparison profile would be strictly less useful
    than the full one. *)
