(** Flattened, Dewey-labelled view of an XML document.

    The search engine never walks the raw {!Xsact_xml.Xml} tree at query
    time; it works over this node table, where every element has a pre-order
    integer id, a Dewey label, and a parent pointer. Pre-order ids give two
    invariants the query algorithms exploit:

    - [parent.id < child.id] for every edge (bottom-up passes can simply scan
      ids in descending order), and
    - id order = document order = Dewey order. *)

type node = {
  id : int;  (** pre-order index, root = 0 *)
  parent : int;  (** parent id, [-1] for the root *)
  dewey : Dewey.t;
  tag : string;
  element : Xml.element;  (** the subtree rooted at this node (shared) *)
  text : string;  (** immediate text content (direct text children) *)
  depth : int;  (** root = 1 *)
}

type t

val of_document : Xml.document -> t

val of_element : Xml.element -> t
(** Treat [element] as a document root. *)

val size : t -> int
(** Number of element nodes. *)

val node : t -> int -> node
(** @raise Invalid_argument on an out-of-range id. *)

val root : t -> node

val nodes : t -> node array
(** The underlying table (do not mutate). *)

val parent : t -> int -> node option

val subtree_end : t -> int -> int
(** [subtree_end t id] is the id one past the last descendant of [id]: the
    subtree of [id] is exactly the id interval [\[id, subtree_end t id)]. *)

val is_descendant_or_self : t -> ancestor:int -> int -> bool

val find_by_dewey : t -> Dewey.t -> node option
(** Binary search by document order. *)

val ancestors : t -> int -> node list
(** Ancestors of a node from parent up to the root (excluding the node). *)
