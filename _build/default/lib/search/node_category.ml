type category = Entity | Attribute | Connection

let category_to_string = function
  | Entity -> "entity"
  | Attribute -> "attribute"
  | Connection -> "connection"

type t = (string, category) Hashtbl.t

(* Per-tag evidence gathered in one pass. A tag is an entity when it both
   repeats among siblings somewhere (a "*-node") and has internal structure
   (some instance with at least two element children). Repeating tags without
   structure — <genre>, <pro> wrapping a single value — are multi-valued
   attributes of their enclosing entity, matching how the paper reads
   Figure 1 (pro:compact is a feature type of the review entity, not an
   entity of its own). *)
let infer tree =
  let repeats : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let structured : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let has_value : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let has_element_children : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let all_tags : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (node : Doctree.node) ->
      let e = node.element in
      if not (Hashtbl.mem all_tags node.tag) then
        Hashtbl.add all_tags node.tag ();
      if node.text <> "" || e.attrs <> [] then
        Hashtbl.replace has_value node.tag ();
      let children = Xml.children_elements e in
      if children <> [] then Hashtbl.replace has_element_children node.tag ();
      if List.length children >= 2 then Hashtbl.replace structured node.tag ();
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (c : Xml.element) ->
          let k = try Hashtbl.find counts c.tag with Not_found -> 0 in
          Hashtbl.replace counts c.tag (k + 1))
        children;
      Hashtbl.iter
        (fun tag k -> if k > 1 then Hashtbl.replace repeats tag ())
        counts)
    (Doctree.nodes tree);
  let table = Hashtbl.create (Hashtbl.length all_tags) in
  Hashtbl.iter
    (fun tag () ->
      let cat =
        if Hashtbl.mem repeats tag && Hashtbl.mem structured tag then Entity
        else if
          Hashtbl.mem has_value tag
          || not (Hashtbl.mem has_element_children tag)
        then Attribute
        else if Hashtbl.mem repeats tag then Attribute
          (* repeating but value-like: multi-valued attribute *)
        else Connection
      in
      Hashtbl.replace table tag cat)
    all_tags;
  table

let category t tag =
  match Hashtbl.find_opt t tag with Some c -> c | None -> Attribute

let is_entity t tag = category t tag = Entity
let is_attribute t tag = category t tag = Attribute

let entity_of t tree id =
  let rec up id =
    let node = Doctree.node tree id in
    if is_entity t node.tag then id
    else
      match node.parent with
      | -1 -> id
      | p -> up p
  in
  up id

let tags t =
  Hashtbl.fold (fun tag cat acc -> (tag, cat) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
