(** Smallest Lowest Common Ancestor computation.

    The match semantics XSeek [3,4] builds on: a node is an LCA candidate if
    its subtree contains at least one direct match of every query keyword; it
    is a {e smallest} LCA (SLCA) if additionally no proper descendant is
    itself an LCA candidate. Two independent implementations are provided —
    the production one (linear bottom-up aggregation over the node table) and
    a Dewey-merge one in the style of Xu & Papakonstantinou's indexed lookup,
    kept as an oracle for property tests. *)

val by_aggregation : Index.t -> string list -> int list
(** Ascending ids of the SLCAs of the keywords' match lists. Keywords with
    empty posting lists make the result empty (conjunctive semantics). An
    empty keyword list yields []. *)

val by_merge : Index.t -> string list -> int list
(** Same contract, computed via Dewey-label binary searches. *)

val lca_candidates : Index.t -> string list -> int list
(** Ascending ids of {e all} LCA candidates (every node whose subtree covers
    all keywords), used by tests and by result widening. *)

val elca : Index.t -> string list -> int list
(** Exclusive LCAs (XRank semantics): [v] is an ELCA iff every keyword has a
    witness match inside [v]'s subtree that does not sit inside any
    descendant LCA candidate. Every SLCA is an ELCA; an ELCA may additionally
    own matches "of its own" above nested results (e.g. a department node
    naming a keyword that also appears in each of its employees). Ascending
    ids; same conjunctive contract as {!by_aggregation}. *)
