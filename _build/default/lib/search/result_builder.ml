type mode = Full | Matched_entities | Attributes_only

let mode_to_string = function
  | Full -> "full"
  | Matched_entities -> "matched"
  | Attributes_only -> "attributes"

let mode_of_string = function
  | "full" -> Some Full
  | "matched" -> Some Matched_entities
  | "attributes" -> Some Attributes_only
  | _ -> None

let matches ~keywords e =
  match keywords with
  | [] -> false
  | _ ->
    (* Conjunctive, like the search semantics: the subtree must contain
       every keyword (a men's bicycle is not a result for "men jackets"). *)
    let pending = Hashtbl.create 8 in
    List.iter (fun k -> Hashtbl.replace pending k ()) keywords;
    let rec go (e : Xml.element) =
      if Hashtbl.length pending > 0 then begin
        List.iter (Hashtbl.remove pending) (Token.element_tokens e);
        List.iter
          (function Xml.Element c -> go c | _ -> ())
          e.Xml.children
      end
    in
    go e;
    Hashtbl.length pending = 0

let rec prune_matched ~categories ~keywords (e : Xml.element) =
  let children =
    List.filter_map
      (fun node ->
        match node with
        | Xml.Element c ->
          if Node_category.is_entity categories c.Xml.tag then
            if matches ~keywords c then
              Some (Xml.Element (prune_matched ~categories ~keywords c))
            else None
          else Some (Xml.Element (prune_matched ~categories ~keywords c))
        | other -> Some other)
      e.Xml.children
  in
  { e with Xml.children }

let rec prune_attributes ~categories (e : Xml.element) =
  let children =
    List.filter_map
      (fun node ->
        match node with
        | Xml.Element c -> begin
          match Node_category.category categories c.Xml.tag with
          | Node_category.Entity -> None
          | Node_category.Attribute -> Some (Xml.Element c)
          | Node_category.Connection ->
            Some (Xml.Element (prune_attributes ~categories c))
        end
        | other -> Some other)
      e.Xml.children
  in
  { e with Xml.children }

let prune ~categories ~keywords mode e =
  match mode with
  | Full -> e
  | Attributes_only -> prune_attributes ~categories e
  | Matched_entities ->
    let pruned = prune_matched ~categories ~keywords e in
    (* If pruning removed every nested entity because the matches all live
       in the root's own attributes, fall back to the full subtree. *)
    let has_entity el =
      let found = ref false in
      Xml.iter_elements
        (fun c ->
          if c != el && Node_category.is_entity categories c.Xml.tag then
            found := true)
        el;
      !found
    in
    if has_entity e && not (has_entity pruned) then e else pruned
