(** Keyword search over an XML corpus — the XSeek-style engine XSACT sits on.

    Query processing: normalize the keywords, look up their posting lists,
    compute SLCAs, lift each SLCA to the nearest enclosing entity node (the
    "meaningful return information" step of XSeek [3]), deduplicate, rank,
    and return the entity subtrees as results. *)

type engine
(** A corpus loaded and indexed, ready to serve queries. *)

type result = {
  rank : int;  (** 1-based position in the ranked list *)
  node_id : int;  (** id of the returned entity node *)
  dewey : Dewey.t;
  element : Xml.element;  (** the full result subtree *)
  score : float;  (** ranking score (higher is better) *)
  slca_ids : int list;  (** the SLCA witnesses this result was lifted from *)
}

val create : Xml.document -> engine
(** Build the doctree, the inverted index and the node-category table. *)

val of_element : Xml.element -> engine

val doctree : engine -> Doctree.t
val index : engine -> Index.t
val categories : engine -> Node_category.t

type semantics = Slca | Elca
(** Match semantics: smallest LCAs (default) or exclusive LCAs, which may
    additionally return ancestors owning witnesses of their own above
    nested results. *)

type scoring =
  | Occurrence  (** total keyword occurrences, damped by subtree size *)
  | Tf_idf
      (** occurrences weighted by inverse document frequency: results
          matching the query's {e rare} keywords strongly outrank those
          padding on common ones *)

val query :
  ?limit:int ->
  ?lift_to:string ->
  ?semantics:semantics ->
  ?scoring:scoring ->
  engine ->
  string ->
  result list
(** [query engine keywords] runs the full pipeline on the whitespace-
    separated keyword string. Results are ranked by score (descending), ties
    broken by document order; [limit] truncates the list (default: all). An
    unmatched keyword yields [] (conjunctive semantics).

    [lift_to] overrides the entity-lifting step: each SLCA is lifted to its
    nearest ancestor-or-self with that tag instead (falling back to entity
    lifting when no such ancestor exists). This models the demo's coarser
    comparison granularities — e.g. comparing {e brands} on the Outdoor
    Retailer dataset while the SLCAs land on individual products. *)

val result_title : engine -> result -> string
(** Snippet-line title for a result: the text of its first attribute-ish
    child (e.g. the product name), or its tag if none. *)
