lib/search/search.ml: Array Dewey Doctree Float Hashtbl Index Int List Logs Node_category Slca Token Xml
