lib/search/result_builder.mli: Node_category Xml
