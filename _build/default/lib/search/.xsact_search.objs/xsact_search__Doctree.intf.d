lib/search/doctree.mli: Dewey Xml
