lib/search/result_builder.ml: Hashtbl List Node_category Token Xml
