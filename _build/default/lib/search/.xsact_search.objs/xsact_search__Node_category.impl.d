lib/search/node_category.ml: Array Doctree Hashtbl List String Xml
