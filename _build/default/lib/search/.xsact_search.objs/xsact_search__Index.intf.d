lib/search/index.mli: Doctree
