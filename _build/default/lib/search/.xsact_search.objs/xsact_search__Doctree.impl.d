lib/search/doctree.ml: Array Dewey List Xml
