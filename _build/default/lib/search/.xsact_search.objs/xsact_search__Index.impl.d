lib/search/index.ml: Array Doctree Hashtbl List Token
