lib/search/token.mli: Xml
