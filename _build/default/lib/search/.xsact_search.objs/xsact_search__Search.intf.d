lib/search/search.mli: Dewey Doctree Index Node_category Xml
