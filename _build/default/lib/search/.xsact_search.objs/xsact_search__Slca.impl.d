lib/search/slca.ml: Array Dewey Doctree Index Int List Option
