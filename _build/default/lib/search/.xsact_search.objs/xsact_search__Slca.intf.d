lib/search/slca.mli: Index
