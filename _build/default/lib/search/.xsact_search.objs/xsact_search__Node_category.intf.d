lib/search/node_category.mli: Doctree
