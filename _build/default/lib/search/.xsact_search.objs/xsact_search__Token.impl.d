lib/search/token.ml: Hashtbl List Xml Xsact_util
