let full_mask k = (1 lsl k) - 1

(* Bottom-up keyword-mask aggregation: masks.(id) accumulates the set of
   keywords matched in the subtree of [id]. Pre-order ids guarantee
   parent < child, so one descending scan pushes every mask to the parent. *)
let subtree_masks index keywords =
  let tree = Index.doctree index in
  let n = Doctree.size tree in
  let masks = Array.make n 0 in
  List.iteri
    (fun ki kw ->
      let bit = 1 lsl ki in
      Array.iter
        (fun id -> masks.(id) <- masks.(id) lor bit)
        (Index.postings index kw))
    keywords;
  let nodes = Doctree.nodes tree in
  for id = n - 1 downto 1 do
    let p = nodes.(id).parent in
    masks.(p) <- masks.(p) lor masks.(id)
  done;
  masks

let lca_candidates index keywords =
  match keywords with
  | [] -> []
  | _ ->
    let k = List.length keywords in
    let full = full_mask k in
    let masks = subtree_masks index keywords in
    let acc = ref [] in
    for id = Array.length masks - 1 downto 0 do
      if masks.(id) = full then acc := id :: !acc
    done;
    !acc

let by_aggregation index keywords =
  match keywords with
  | [] -> []
  | _ ->
    let k = List.length keywords in
    let full = full_mask k in
    let tree = Index.doctree index in
    let masks = subtree_masks index keywords in
    let n = Array.length masks in
    (* A candidate is smallest iff no child subtree is also a candidate.
       covered.(id) = some proper descendant of id is a candidate. *)
    let covered = Array.make n false in
    let nodes = Doctree.nodes tree in
    for id = n - 1 downto 1 do
      if masks.(id) = full then begin
        let p = nodes.(id).parent in
        covered.(p) <- true
      end
    done;
    (* Propagate coverage upward: a node whose child is covered is covered
       too (the candidate sits deeper). *)
    for id = n - 1 downto 1 do
      if covered.(id) then covered.(nodes.(id).parent) <- true
    done;
    let acc = ref [] in
    for id = n - 1 downto 0 do
      if masks.(id) = full && not covered.(id) then acc := id :: !acc
    done;
    !acc

let elca index keywords =
  match keywords with
  | [] -> []
  | _ ->
    let k = List.length keywords in
    let full = full_mask k in
    let tree = Index.doctree index in
    let n = Doctree.size tree in
    let masks = subtree_masks index keywords in
    (* Direct-match bits per node. *)
    let direct = Array.make n 0 in
    List.iteri
      (fun ki kw ->
        let bit = 1 lsl ki in
        Array.iter
          (fun id -> direct.(id) <- direct.(id) lor bit)
          (Index.postings index kw))
      keywords;
    (* contribution.(v) = keywords witnessed in v's subtree outside every
       descendant LCA candidate. Children have larger pre-order ids, so a
       descending pass sees each child's final contribution before its
       parent accumulates it; full-mask children contribute nothing (their
       witnesses belong to the nested result). *)
    let contribution = Array.copy direct in
    let nodes = Doctree.nodes tree in
    for id = n - 1 downto 1 do
      let p = nodes.(id).parent in
      if masks.(id) <> full then
        contribution.(p) <- contribution.(p) lor contribution.(id)
    done;
    let acc = ref [] in
    for id = n - 1 downto 0 do
      if contribution.(id) = full then acc := id :: !acc
    done;
    !acc

(* Dewey-merge implementation, used as a testing oracle.

   For each match v of the rarest keyword, and for each other keyword list L,
   find the elements of L closest to v in document order (predecessor and
   successor); the deeper of lca(v, pred) and lca(v, succ) is the lowest
   ancestor of v with a match of that keyword. Intersecting over all lists
   (taking the shallowest of the per-list lowest ancestors) gives the lowest
   ancestor of v covering all keywords. The SLCAs are the minimal elements of
   that candidate set. *)
let by_merge index keywords =
  match keywords with
  | [] -> []
  | _ ->
    let tree = Index.doctree index in
    let lists = List.map (fun kw -> Index.postings index kw) keywords in
    if List.exists (fun arr -> Array.length arr = 0) lists then []
    else
      let deweys = Array.map (fun (n : Doctree.node) -> n.dewey) (Doctree.nodes tree) in
      let rarest, others =
        let sorted =
          List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists
        in
        (List.hd sorted, List.tl sorted)
      in
      (* Binary search in [arr] (ascending ids = ascending dewey order) for
         the rightmost id whose dewey <= target's, and its successor. *)
      let neighbors arr target_dewey =
        let lo = ref 0 and hi = ref (Array.length arr - 1) in
        let pred = ref None in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if Dewey.compare deweys.(arr.(mid)) target_dewey <= 0 then begin
            pred := Some mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        let succ =
          match !pred with
          | None -> if Array.length arr > 0 then Some 0 else None
          | Some i -> if i + 1 < Array.length arr then Some (i + 1) else None
        in
        ( Option.map (fun i -> arr.(i)) !pred,
          Option.map (fun i -> arr.(i)) succ )
      in
      let candidate_for v =
        let vd = deweys.(v) in
        List.fold_left
          (fun acc arr ->
            match acc with
            | None -> None
            | Some ancestor_dewey ->
              let pred, succ = neighbors arr vd in
              let lca_of = function
                | None -> None
                | Some u -> Some (Dewey.lca vd deweys.(u))
              in
              let best =
                match (lca_of pred, lca_of succ) with
                | None, None -> None
                | Some d, None | None, Some d -> Some d
                | Some d1, Some d2 ->
                  Some (if Dewey.depth d1 >= Dewey.depth d2 then d1 else d2)
              in
              (match best with
              | None -> None
              | Some d ->
                (* The covering ancestor for all lists so far is the
                   shallower of the two (it must contain both). *)
                Some
                  (if Dewey.depth d <= Dewey.depth ancestor_dewey then d
                   else ancestor_dewey)))
          (Some vd) others
      in
      let candidates =
        Array.to_list rarest
        |> List.filter_map (fun v ->
               match candidate_for v with
               | None -> None
               | Some d ->
                 (match Doctree.find_by_dewey tree d with
                 | Some node -> Some node.id
                 | None -> None))
      in
      let sorted = List.sort_uniq Int.compare candidates in
      (* Keep minimal candidates only: drop any candidate that is a proper
         ancestor of another candidate. *)
      List.filter
        (fun id ->
          not
            (List.exists
               (fun other ->
                 other <> id
                 && Doctree.is_descendant_or_self tree ~ancestor:id other)
               sorted))
        sorted
