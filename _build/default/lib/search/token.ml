let tokenize s = Xsact_util.Textutil.lowercase_ascii_words s

let tokenize_unique s =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun tok ->
      if Hashtbl.mem seen tok then false
      else begin
        Hashtbl.add seen tok ();
        true
      end)
    (tokenize s)

let stopwords =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "by"; "for"; "from"; "has";
    "he"; "in"; "is"; "it"; "its"; "of"; "on"; "or"; "that"; "the"; "to";
    "was"; "were"; "will"; "with";
  ]

let stopword_table =
  let table = Hashtbl.create 32 in
  List.iter (fun w -> Hashtbl.add table w ()) stopwords;
  table

let is_stopword w = Hashtbl.mem stopword_table w

let normalize_query s =
  let toks = tokenize_unique s in
  match List.filter (fun t -> not (is_stopword t)) toks with
  | [] -> toks
  | kept -> kept

let element_tokens (e : Xml.element) =
  let from_attrs =
    List.concat_map (fun (_, value) -> tokenize value) e.attrs
  in
  tokenize e.tag @ tokenize (Xml.immediate_text e) @ from_attrs
