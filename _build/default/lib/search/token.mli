(** Keyword tokenization, shared by index construction and query parsing. *)

val tokenize : string -> string list
(** Lowercased alphanumeric runs, in order, duplicates kept. *)

val tokenize_unique : string -> string list
(** Like {!tokenize} but duplicates removed, first occurrence order kept —
    the form a keyword query is normalized to. *)

val is_stopword : string -> bool
(** A small closed-class English stopword list. The engine indexes
    stopwords (structured values like "best use" matter) but drops them from
    queries when at least one non-stopword remains. *)

val normalize_query : string -> string list
(** [tokenize_unique] then stopword-drop (keeping everything if the query is
    all stopwords). *)

val element_tokens : Xml.element -> string list
(** Tokens contributed by one node for indexing: its tag name, its immediate
    text, and its attribute values (not attribute names). *)
