type node = {
  id : int;
  parent : int;
  dewey : Dewey.t;
  tag : string;
  element : Xml.element;
  text : string;
  depth : int;
}

type t = { table : node array; ends : int array }

let of_element root_elem =
  let acc = ref [] in
  let count = ref 0 in
  let rec go parent dewey depth (e : Xml.element) =
    let id = !count in
    incr count;
    acc :=
      {
        id;
        parent;
        dewey;
        tag = e.tag;
        element = e;
        text = Xml.immediate_text e;
        depth;
      }
      :: !acc;
    let child_ord = ref 0 in
    List.iter
      (fun n ->
        match n with
        | Xml.Element c ->
          go id (Dewey.child dewey !child_ord) (depth + 1) c;
          incr child_ord
        | _ -> ())
      e.children
  in
  go (-1) Dewey.root 1 root_elem;
  let table = Array.of_list (List.rev !acc) in
  let n = Array.length table in
  (* A pre-order subtree is a contiguous id interval, so its end is the next
     id whose depth is <= the node's own depth. One left-to-right pass with a
     stack of still-open subtrees computes all ends. *)
  let ends = Array.make n n in
  let stack = ref [] in
  for id = 0 to n - 1 do
    let d = table.(id).depth in
    let rec pop () =
      match !stack with
      | (sid, sd) :: rest when sd >= d ->
        ends.(sid) <- id;
        stack := rest;
        pop ()
      | _ -> ()
    in
    pop ();
    stack := (id, d) :: !stack
  done;
  List.iter (fun (sid, _) -> ends.(sid) <- n) !stack;
  { table; ends }

let of_document (doc : Xml.document) = of_element doc.root

let size t = Array.length t.table

let node t id =
  if id < 0 || id >= Array.length t.table then
    invalid_arg "Doctree.node: id out of range";
  t.table.(id)

let root t = t.table.(0)
let nodes t = t.table

let parent t id =
  let p = (node t id).parent in
  if p < 0 then None else Some t.table.(p)

let subtree_end t id =
  if id < 0 || id >= Array.length t.table then
    invalid_arg "Doctree.subtree_end: id out of range";
  t.ends.(id)

let is_descendant_or_self t ~ancestor id =
  id >= ancestor && id < subtree_end t ancestor

let find_by_dewey t dewey =
  let lo = ref 0 and hi = ref (Array.length t.table - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Dewey.compare t.table.(mid).dewey dewey in
    if c = 0 then found := Some t.table.(mid)
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let ancestors t id =
  let rec go acc id =
    let p = t.table.(id).parent in
    if p < 0 then List.rev acc else go (t.table.(p) :: acc) p
  in
  go [] id
