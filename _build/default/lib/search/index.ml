type t = {
  tree : Doctree.t;
  table : (string, int array) Hashtbl.t;
  total : int;
}

let build tree =
  let lists : (string, int list ref) Hashtbl.t = Hashtbl.create 4096 in
  let total = ref 0 in
  Array.iter
    (fun (node : Doctree.node) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun tok ->
          if not (Hashtbl.mem seen tok) then begin
            Hashtbl.add seen tok ();
            incr total;
            match Hashtbl.find_opt lists tok with
            | Some l -> l := node.id :: !l
            | None -> Hashtbl.add lists tok (ref [ node.id ])
          end)
        (Token.element_tokens node.element))
    (Doctree.nodes tree);
  let table = Hashtbl.create (Hashtbl.length lists) in
  Hashtbl.iter
    (fun tok l ->
      (* Ids were consed while scanning ascending ids, so reversing restores
         ascending order. *)
      Hashtbl.add table tok (Array.of_list (List.rev !l)))
    lists;
  { tree; table; total = !total }

let doctree t = t.tree

let empty_postings = [||]

let postings t tok =
  match Hashtbl.find_opt t.table tok with
  | Some arr -> arr
  | None -> empty_postings

let doc_frequency t tok = Array.length (postings t tok)
let vocabulary_size t = Hashtbl.length t.table
let total_postings t = t.total

let mark_matches t keywords n =
  List.map
    (fun kw ->
      let bitmap = Array.make n false in
      Array.iter (fun id -> bitmap.(id) <- true) (postings t kw);
      bitmap)
    keywords
  |> Array.of_list
