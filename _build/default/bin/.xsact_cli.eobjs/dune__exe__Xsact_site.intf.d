bin/xsact_site.mli:
