bin/xsact_site.ml: Arg Array Cmd Cmdliner Dod Extractor Filename Fun List Multi_swap Printf Render_html Search String Sys Table Term Unix Xml Xml_stats Xsact_dataset Xsact_util Xsact_workload
