bin/xsact_cli.mli:
