(* Unit and property tests for xsact_util: PRNG, sampling, text helpers,
   grid layout, timing. *)

open Xsact_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Prng -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 5)

let test_prng_copy_independent () =
  let a = Prng.of_int 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing a does not advance b *)
  let a2 = Prng.next_int64 a and b2 = Prng.next_int64 b in
  check Alcotest.bool "diverged after extra draw" true (a2 <> b2)

let test_prng_split () =
  let a = Prng.of_int 13 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let g = Prng.of_int 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    check Alcotest.bool "0 <= v < 7" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_int_in () =
  let g = Prng.of_int 6 in
  for _ = 1 to 500 do
    let v = Prng.int_in g (-3) 3 in
    check Alcotest.bool "in range" true (v >= -3 && v <= 3)
  done;
  check Alcotest.int "singleton range" 9 (Prng.int_in g 9 9);
  Alcotest.check_raises "empty range"
    (Invalid_argument "Prng.int_in: empty range") (fun () ->
      ignore (Prng.int_in g 4 3))

let test_prng_float () =
  let g = Prng.of_int 11 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    check Alcotest.bool "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_prng_chance () =
  let g = Prng.of_int 3 in
  check Alcotest.bool "p=0 never" false (Prng.chance g 0.0);
  check Alcotest.bool "p=1 always" true (Prng.chance g 1.0);
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Prng.chance g 0.3 then incr hits
  done;
  check Alcotest.bool "p=0.3 plausible" true (!hits > 2500 && !hits < 3500)

let test_prng_bool_balanced () =
  let g = Prng.of_int 17 in
  let heads = ref 0 in
  for _ = 1 to 10000 do
    if Prng.bool g then incr heads
  done;
  check Alcotest.bool "fair-ish" true (!heads > 4500 && !heads < 5500)

(* ---- Sampling ---------------------------------------------------------- *)

let test_pick () =
  let g = Prng.of_int 1 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    check Alcotest.bool "member" true (Array.mem (Sampling.pick g arr) arr)
  done;
  Alcotest.check_raises "empty"
    (Invalid_argument "Sampling.pick: empty array") (fun () ->
      ignore (Sampling.pick g [||]))

let test_weighted_index () =
  let g = Prng.of_int 2 in
  let w = [| 0.0; 5.0; 0.0; 5.0 |] in
  for _ = 1 to 200 do
    let i = Sampling.weighted_index g w in
    check Alcotest.bool "only positive-weight indices" true (i = 1 || i = 3)
  done;
  Alcotest.check_raises "all zero"
    (Invalid_argument "Sampling.weighted_index: zero total weight") (fun () ->
      ignore (Sampling.weighted_index g [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Sampling.weighted_index: negative weight") (fun () ->
      ignore (Sampling.weighted_index g [| 1.0; -1.0 |]))

let test_weighted_skew () =
  let g = Prng.of_int 4 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 10000 do
    let v = Sampling.weighted g [ (0, 9.0); (1, 1.0) ] in
    counts.(v) <- counts.(v) + 1
  done;
  check Alcotest.bool "9:1 skew observed" true
    (counts.(0) > 8 * counts.(1))

let test_zipf () =
  let g = Prng.of_int 8 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10000 do
    let r = Sampling.zipf g ~n:10 ~s:1.2 in
    check Alcotest.bool "rank in range" true (r >= 0 && r < 10);
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank 0 most frequent" true
    (Array.for_all (fun c -> counts.(0) >= c) counts)

let test_shuffle_permutation () =
  let g = Prng.of_int 9 in
  let arr = Array.init 50 (fun i -> i) in
  let copy = Array.copy arr in
  Sampling.shuffle g copy;
  Array.sort compare copy;
  check Alcotest.(array int) "same multiset" arr copy

let test_sample_without_replacement () =
  let g = Prng.of_int 10 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Sampling.sample_without_replacement g 8 arr in
  check Alcotest.int "size 8" 8 (List.length s);
  check Alcotest.int "distinct" 8 (List.length (List.sort_uniq compare s));
  let all = Sampling.sample_without_replacement g 100 arr in
  check Alcotest.int "capped at population" 20 (List.length all)

let test_binomial () =
  let g = Prng.of_int 12 in
  for _ = 1 to 50 do
    let v = Sampling.binomial g ~n:10 ~p:0.5 in
    check Alcotest.bool "0..10" true (v >= 0 && v <= 10)
  done;
  check Alcotest.int "p=0" 0 (Sampling.binomial g ~n:10 ~p:0.0);
  check Alcotest.int "p=1" 10 (Sampling.binomial g ~n:10 ~p:1.0)

(* ---- Textutil ----------------------------------------------------------- *)

let test_words () =
  check
    Alcotest.(list string)
    "basic split" [ "tomtom"; "go"; "630" ]
    (Textutil.lowercase_ascii_words "TomTom, Go-630!");
  check Alcotest.(list string) "empty" [] (Textutil.lowercase_ascii_words " .,;");
  check
    Alcotest.(list string)
    "digits kept" [ "a1"; "b2" ]
    (Textutil.lowercase_ascii_words "a1 b2")

let test_slug () =
  check Alcotest.string "slug" "tomtom-go-630-gps"
    (Textutil.slug "TomTom Go 630 GPS!")

let test_pad_truncate () =
  check Alcotest.string "pad" "ab   " (Textutil.pad_right "ab" 5);
  check Alcotest.string "no pad needed" "abcdef" (Textutil.pad_right "abcdef" 3);
  check Alcotest.string "truncate keeps ends" "abc...xyz"
    (Textutil.truncate_middle "abcdefuvwxyz" 9);
  check Alcotest.string "short string untouched" "abc"
    (Textutil.truncate_middle "abc" 9);
  check Alcotest.string "tiny width" "ab" (Textutil.truncate_middle "abcdef" 2)

let test_misc_text () =
  check Alcotest.string "capitalize" "Mobile Phone"
    (Textutil.capitalize_words "mobile phone");
  check Alcotest.string "join nonempty" "a, b"
    (Textutil.join_nonempty ", " [ "a"; ""; "b" ]);
  check Alcotest.bool "contains" true
    (Textutil.contains_substring "hello world" "lo wo");
  check Alcotest.bool "not contains" false
    (Textutil.contains_substring "hello" "xyz");
  check Alcotest.bool "empty needle" true (Textutil.contains_substring "abc" "")

(* ---- Grid ---------------------------------------------------------------- *)

let test_grid_alignment () =
  let g = Grid.create () in
  Grid.add_row g [ "a"; "bbb" ];
  Grid.add_separator g;
  Grid.add_row g [ "cc"; "d" ];
  let out = Grid.render g in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | [ l1; sep; l3; "" ] ->
    check Alcotest.string "row 1" "a  | bbb" l1;
    check Alcotest.string "separator" "--------" sep;
    check Alcotest.string "row 2" "cc | d  " l3
  | _ -> Alcotest.fail "unexpected line structure")

let test_grid_right_align () =
  let g = Grid.create () in
  Grid.add_row g [ "x"; "1" ];
  Grid.add_row g [ "yy"; "22" ];
  let out = Grid.render ~aligns:[ Grid.Left; Grid.Right ] g in
  check Alcotest.bool "right aligned" true
    (Textutil.contains_substring out "x  |  1");
  check Alcotest.bool "empty grid" true (Grid.render (Grid.create ()) = "")

let test_grid_ragged_rows () =
  let g = Grid.create () in
  Grid.add_row g [ "a" ];
  Grid.add_row g [ "b"; "c" ];
  let out = Grid.render g in
  check Alcotest.bool "renders" true (String.length out > 0)

(* ---- Timing -------------------------------------------------------------- *)

let test_timing () =
  let calls = ref 0 in
  let result, stats =
    Timing.time ~warmup:2 ~runs:5 (fun () ->
        incr calls;
        !calls)
  in
  check Alcotest.int "warmup + runs calls" 7 !calls;
  check Alcotest.int "last result" 7 result;
  check Alcotest.int "runs recorded" 5 stats.Timing.runs;
  check Alcotest.bool "min <= median <= max" true
    (stats.Timing.min_s <= stats.Timing.median_s
    && stats.Timing.median_s <= stats.Timing.max_s);
  let v, elapsed = Timing.once (fun () -> 42) in
  check Alcotest.int "once result" 42 v;
  check Alcotest.bool "elapsed nonnegative" true (elapsed >= 0.0)

(* ---- Properties ----------------------------------------------------------- *)

let prop_truncate_bound =
  QCheck.Test.make ~name:"truncate_middle respects width" ~count:500
    QCheck.(pair (string_of_size (Gen.int_bound 80)) (int_range 1 60))
    (fun (s, w) -> String.length (Textutil.truncate_middle s w) <= max w 3)

let prop_pad_width =
  QCheck.Test.make ~name:"pad_right reaches width" ~count:500
    QCheck.(pair (string_of_size (Gen.int_bound 30)) (int_range 0 40))
    (fun (s, w) -> String.length (Textutil.pad_right s w) >= w)

let prop_words_lowercase =
  QCheck.Test.make ~name:"tokenizer output is lowercase alnum" ~count:500
    QCheck.(string_of_size (Gen.int_bound 60))
    (fun s ->
      List.for_all
        (fun w ->
          w <> ""
          && String.for_all
               (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
               w)
        (Textutil.lowercase_ascii_words s))

let () =
  Alcotest.run "xsact_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "float" `Quick test_prng_float;
          Alcotest.test_case "chance" `Quick test_prng_chance;
          Alcotest.test_case "bool" `Quick test_prng_bool_balanced;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "weighted_index" `Quick test_weighted_index;
          Alcotest.test_case "weighted skew" `Quick test_weighted_skew;
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "binomial" `Quick test_binomial;
        ] );
      ( "textutil",
        [
          Alcotest.test_case "words" `Quick test_words;
          Alcotest.test_case "slug" `Quick test_slug;
          Alcotest.test_case "pad/truncate" `Quick test_pad_truncate;
          Alcotest.test_case "misc" `Quick test_misc_text;
          qtest prop_truncate_bound;
          qtest prop_pad_width;
          qtest prop_words_lowercase;
        ] );
      ( "grid",
        [
          Alcotest.test_case "alignment" `Quick test_grid_alignment;
          Alcotest.test_case "right align" `Quick test_grid_right_align;
          Alcotest.test_case "ragged rows" `Quick test_grid_ragged_rows;
        ] );
      ("timing", [ Alcotest.test_case "stats" `Quick test_timing ]);
    ]
