(* Tests for the search substrate: doctree, tokenizer, inverted index, the
   two SLCA implementations (and their agreement on random corpora), node
   categorization and the end-to-end query pipeline. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let parse_ok src =
  match Xml_parse.parse_string src with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse failed: %s" (Xml_parse.error_to_string e)

let shop_doc =
  parse_ok
    {|<shop>
        <product><name>TomTom Go 630</name><price>199</price>
          <reviews>
            <review><stars>5</stars><pro>compact</pro></review>
            <review><stars>3</stars><pro>cheap</pro></review>
          </reviews>
        </product>
        <product><name>Garmin Nuvi</name><price>149</price>
          <reviews>
            <review><stars>4</stars><pro>compact</pro></review>
          </reviews>
        </product>
      </shop>|}

let shop_tree = Doctree.of_document shop_doc
let shop_index = Index.build shop_tree

(* ---- Doctree -------------------------------------------------------------- *)

let test_doctree_preorder () =
  let nodes = Doctree.nodes shop_tree in
  check Alcotest.int "node count" 18 (Array.length nodes);
  check Alcotest.string "root first" "shop" nodes.(0).Doctree.tag;
  Array.iteri
    (fun i (n : Doctree.node) ->
      check Alcotest.int "id = index" i n.Doctree.id;
      if i > 0 then
        check Alcotest.bool "parent before child" true (n.Doctree.parent < i))
    nodes

let test_doctree_dewey_order () =
  let nodes = Doctree.nodes shop_tree in
  for i = 0 to Array.length nodes - 2 do
    check Alcotest.bool "dewey ascending" true
      (Dewey.compare nodes.(i).Doctree.dewey nodes.(i + 1).Doctree.dewey < 0)
  done

let test_doctree_subtree_end () =
  let nodes = Doctree.nodes shop_tree in
  check Alcotest.int "root spans all" (Array.length nodes)
    (Doctree.subtree_end shop_tree 0);
  (* Every node's subtree interval contains exactly its descendants. *)
  Array.iter
    (fun (n : Doctree.node) ->
      let hi = Doctree.subtree_end shop_tree n.Doctree.id in
      Array.iter
        (fun (m : Doctree.node) ->
          let inside = m.Doctree.id >= n.Doctree.id && m.Doctree.id < hi in
          let is_desc =
            Dewey.is_ancestor_or_self n.Doctree.dewey m.Doctree.dewey
          in
          check Alcotest.bool "interval = descendants" is_desc inside)
        nodes)
    nodes

let test_doctree_lookup () =
  let nodes = Doctree.nodes shop_tree in
  Array.iter
    (fun (n : Doctree.node) ->
      match Doctree.find_by_dewey shop_tree n.Doctree.dewey with
      | Some found -> check Alcotest.int "find_by_dewey" n.Doctree.id found.Doctree.id
      | None -> Alcotest.fail "dewey not found")
    nodes;
  check Alcotest.bool "missing dewey" true
    (Doctree.find_by_dewey shop_tree (Dewey.of_list [ 9; 9 ]) = None)

let test_doctree_ancestors () =
  (* Find a <pro> node and check its ancestor chain. *)
  let pro =
    Array.to_list (Doctree.nodes shop_tree)
    |> List.find (fun (n : Doctree.node) -> n.Doctree.tag = "pro")
  in
  let chain =
    List.map (fun (n : Doctree.node) -> n.Doctree.tag)
      (Doctree.ancestors shop_tree pro.Doctree.id)
  in
  check Alcotest.(list string) "chain to root"
    [ "review"; "reviews"; "product"; "shop" ]
    chain;
  check Alcotest.bool "root has no parent" true
    (Doctree.parent shop_tree 0 = None)

(* ---- Token ----------------------------------------------------------------- *)

let test_token () =
  check
    Alcotest.(list string)
    "tokenize" [ "tomtom"; "go"; "630" ]
    (Token.tokenize "TomTom Go 630");
  check
    Alcotest.(list string)
    "unique keeps order" [ "a"; "b" ]
    (Token.tokenize_unique "a b a b a");
  check Alcotest.bool "stopword" true (Token.is_stopword "the");
  check
    Alcotest.(list string)
    "query drops stopwords" [ "jackets" ]
    (Token.normalize_query "the jackets");
  check
    Alcotest.(list string)
    "all-stopword query kept" [ "the"; "and" ]
    (Token.normalize_query "the and")

let test_element_tokens () =
  let e =
    match (parse_ok {|<best-use kind="Road Trips">auto</best-use>|}).Xml.root with
    | r -> r
  in
  let toks = Token.element_tokens e in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true (List.mem expected toks))
    [ "best"; "use"; "auto"; "road"; "trips" ]

(* ---- Index ------------------------------------------------------------------ *)

let test_index_postings () =
  let posts = Index.postings shop_index "compact" in
  check Alcotest.int "compact in two pros" 2 (Array.length posts);
  Array.iter
    (fun id ->
      check Alcotest.string "posting is a pro node" "pro"
        (Doctree.node shop_tree id).Doctree.tag)
    posts;
  check Alcotest.int "unknown token" 0 (Array.length (Index.postings shop_index "zzz"));
  check Alcotest.int "tag tokens indexed" 3
    (Array.length (Index.postings shop_index "review"));
  (* ascending ids *)
  let tomtom = Index.postings shop_index "tomtom" in
  check Alcotest.int "tomtom" 1 (Array.length tomtom);
  check Alcotest.bool "df" true (Index.doc_frequency shop_index "compact" = 2);
  check Alcotest.bool "vocabulary" true (Index.vocabulary_size shop_index > 10);
  check Alcotest.bool "total postings" true (Index.total_postings shop_index > 20)

(* ---- SLCA -------------------------------------------------------------------- *)

let tags_of ids =
  List.map (fun id -> (Doctree.node shop_tree id).Doctree.tag) ids

let test_slca_basic () =
  (* "tomtom compact": tomtom is in product 1's name, compact in its pro and
     in product 2's pro. SLCA should be product 1 (its subtree has both; no
     deeper node has both). *)
  let slcas = Slca.by_aggregation shop_index [ "tomtom"; "compact" ] in
  check Alcotest.(list string) "product slca" [ "product" ] (tags_of slcas);
  (* single keyword: the match nodes themselves are the SLCAs *)
  let single = Slca.by_aggregation shop_index [ "compact" ] in
  check Alcotest.(list string) "leaf slcas" [ "pro"; "pro" ] (tags_of single);
  check Alcotest.(list int) "empty keyword list" []
    (Slca.by_aggregation shop_index []);
  check Alcotest.(list int) "unmatched keyword" []
    (Slca.by_aggregation shop_index [ "tomtom"; "zzz" ])

let test_slca_merge_agrees_basic () =
  List.iter
    (fun keywords ->
      check Alcotest.(list int)
        (String.concat "+" keywords)
        (Slca.by_aggregation shop_index keywords)
        (Slca.by_merge shop_index keywords))
    [
      [ "tomtom"; "compact" ];
      [ "compact" ];
      [ "stars" ];
      [ "garmin"; "compact" ];
      [ "5"; "3" ];
      [ "tomtom"; "zzz" ];
      [ "product" ];
    ]

let test_elca_basic () =
  (* A department whose name contains "sales" and whose two employees each
     mention "report": the department is an ELCA for {sales, report} (its
     own "sales" witness is outside both employees). With nested full
     candidates: none here, so ELCA = candidates-minimal = the department. *)
  let doc =
    parse_ok
      "<org><dept><dname>sales</dname><emp><note>report</note><who>ann</who></emp><emp><note>report</note><who>bob</who></emp></dept><dept><dname>hr</dname><emp><note>report</note><who>eve</who></emp></dept></org>"
  in
  let tree = Doctree.of_element doc.Xml.root in
  let index = Index.build tree in
  let name id = (Doctree.node tree id).Doctree.tag in
  let slcas = Slca.by_aggregation index [ "sales"; "report" ] in
  let elcas = Slca.elca index [ "sales"; "report" ] in
  check Alcotest.(list string) "slca = dept" [ "dept" ] (List.map name slcas);
  check Alcotest.(list string) "elca = dept" [ "dept" ] (List.map name elcas);
  (* Now a query where an ancestor owns a witness above nested results:
     {report} alone — each note is an SLCA; ELCA agrees (single keyword). *)
  let slcas1 = Slca.by_aggregation index [ "report" ] in
  let elcas1 = Slca.elca index [ "report" ] in
  check Alcotest.(list int) "single keyword: elca = slca" slcas1 elcas1;
  (* {ann, report}: slca is the first emp. The dept also contains both, but
     its only "ann"/"report" witnesses sit inside the emp candidate, so the
     dept is NOT an elca. *)
  let elcas2 = Slca.elca index [ "ann"; "report" ] in
  check Alcotest.(list string) "no spurious ancestor elca" [ "emp" ]
    (List.map name elcas2)

let test_elca_owns_witness () =
  (* The store names "gps" itself and has two products matching "cheap";
     the store is an ELCA for {gps, cheap} in addition to any product that
     matches both on its own. *)
  let doc =
    parse_ok
      "<store><title>gps warehouse</title><item><tag>cheap</tag><d>gps</d></item><item><tag>cheap</tag><d>radio</d></item></store>"
  in
  let tree = Doctree.of_element doc.Xml.root in
  let index = Index.build tree in
  let name id = (Doctree.node tree id).Doctree.tag in
  let slcas = Slca.by_aggregation index [ "gps"; "cheap" ] in
  let elcas = Slca.elca index [ "gps"; "cheap" ] in
  (* SLCA: the first item (contains both gps and cheap). *)
  check Alcotest.(list string) "slca = first item" [ "item" ]
    (List.map name slcas);
  (* ELCA: the item AND the store (store's own gps witness in <title> plus
     the second item's cheap, both outside the full first item). *)
  check Alcotest.(list string) "elca = store + item" [ "store"; "item" ]
    (List.map name elcas)

let test_lca_candidates_superset () =
  let keywords = [ "compact"; "stars" ] in
  let slcas = Slca.by_aggregation shop_index keywords in
  let candidates = Slca.lca_candidates shop_index keywords in
  List.iter
    (fun s ->
      check Alcotest.bool "slca is a candidate" true (List.mem s candidates))
    slcas;
  (* candidates are closed under ancestors: the root qualifies *)
  check Alcotest.bool "root is candidate" true (List.mem 0 candidates)

(* Random corpus: random trees with small tag/word alphabets; property: the
   two SLCA implementations agree. *)
let gen_corpus =
  QCheck.Gen.(
    let gen_word = oneofl [ "red"; "blue"; "gps"; "cheap"; "fast"; "new" ] in
    let gen_tag = oneofl [ "a"; "b"; "c"; "d" ] in
    let rec gen_elem depth =
      let* tag = gen_tag in
      let* text = if depth = 0 then gen_word else oneof [ gen_word; return "" ] in
      let* nchildren = if depth = 0 then return 0 else int_range 0 3 in
      let* children = list_size (return nchildren) (gen_elem (depth - 1)) in
      let text_children = if text = "" then [] else [ Xml.text text ] in
      return { Xml.tag; attrs = []; children = text_children @ List.map (fun e -> Xml.Element e) children }
    in
    let* root = gen_elem 4 in
    let* nkw = int_range 1 3 in
    let* keywords = list_size (return nkw) gen_word in
    return (root, keywords))

let prop_slca_agreement =
  QCheck.Test.make ~name:"by_aggregation = by_merge on random corpora"
    ~count:500
    (QCheck.make gen_corpus ~print:(fun (root, kws) ->
         Xml_print.node_to_string (Xml.Element root)
         ^ " / "
         ^ String.concat "," kws))
    (fun (root, keywords) ->
      let tree = Doctree.of_element root in
      let index = Index.build tree in
      Slca.by_aggregation index keywords = Slca.by_merge index keywords)

let prop_slca_minimality =
  QCheck.Test.make ~name:"SLCAs are minimal and cover all keywords" ~count:300
    (QCheck.make gen_corpus)
    (fun (root, keywords) ->
      let tree = Doctree.of_element root in
      let index = Index.build tree in
      let slcas = Slca.by_aggregation index keywords in
      let candidates = Slca.lca_candidates index keywords in
      List.for_all
        (fun s ->
          List.mem s candidates
          && not
               (List.exists
                  (fun c ->
                    c <> s && Doctree.is_descendant_or_self tree ~ancestor:s c)
                  candidates))
        slcas)

let prop_slca_subset_elca =
  QCheck.Test.make ~name:"slca subset of elca subset of candidates" ~count:300
    (QCheck.make gen_corpus)
    (fun (root, keywords) ->
      let tree = Doctree.of_element root in
      let index = Index.build tree in
      let slcas = Slca.by_aggregation index keywords in
      let elcas = Slca.elca index keywords in
      let candidates = Slca.lca_candidates index keywords in
      List.for_all (fun s -> List.mem s elcas) slcas
      && List.for_all (fun e -> List.mem e candidates) elcas)

(* ---- Node_category --------------------------------------------------------- *)

let test_categories () =
  let cats = Node_category.infer shop_tree in
  check Alcotest.string "product entity" "entity"
    (Node_category.category_to_string (Node_category.category cats "product"));
  check Alcotest.string "review entity" "entity"
    (Node_category.category_to_string (Node_category.category cats "review"));
  check Alcotest.string "reviews connection" "connection"
    (Node_category.category_to_string (Node_category.category cats "reviews"));
  check Alcotest.string "name attribute" "attribute"
    (Node_category.category_to_string (Node_category.category cats "name"));
  check Alcotest.string "unknown defaults to attribute" "attribute"
    (Node_category.category_to_string (Node_category.category cats "nope"));
  check Alcotest.bool "is_entity" true (Node_category.is_entity cats "product")

let test_multivalued_attribute () =
  (* genre repeats but is value-like: classified attribute, not entity. *)
  let doc =
    parse_ok
      "<movies><movie><title>A</title><genres><genre>X</genre><genre>Y</genre></genres></movie><movie><title>B</title><genres><genre>X</genre></genres></movie></movies>"
  in
  let tree = Doctree.of_document doc in
  let cats = Node_category.infer tree in
  check Alcotest.string "movie" "entity"
    (Node_category.category_to_string (Node_category.category cats "movie"));
  check Alcotest.string "genre multi-valued attribute" "attribute"
    (Node_category.category_to_string (Node_category.category cats "genre"));
  check Alcotest.string "genres connection" "connection"
    (Node_category.category_to_string (Node_category.category cats "genres"))

let test_entity_of () =
  let cats = Node_category.infer shop_tree in
  let pro =
    Array.to_list (Doctree.nodes shop_tree)
    |> List.find (fun (n : Doctree.node) -> n.Doctree.tag = "pro")
  in
  let entity_id = Node_category.entity_of cats shop_tree pro.Doctree.id in
  check Alcotest.string "pro's entity is review" "review"
    (Doctree.node shop_tree entity_id).Doctree.tag;
  (* entity_of on the root falls back to the root *)
  check Alcotest.int "root fallback" 0 (Node_category.entity_of cats shop_tree 0)

(* ---- Search ------------------------------------------------------------------ *)

let engine = Search.create shop_doc

let test_query_basic () =
  let results = Search.query engine "tomtom" in
  check Alcotest.int "one result" 1 (List.length results);
  let r = List.hd results in
  check Alcotest.string "lifted to product" "product" r.Search.element.Xml.tag;
  check Alcotest.string "title" "TomTom Go 630" (Search.result_title engine r);
  check Alcotest.int "rank" 1 r.Search.rank

let test_query_conjunctive () =
  check Alcotest.int "both products match compact" 2
    (List.length (Search.query engine "compact"));
  check Alcotest.int "conjunctive empty" 0
    (List.length (Search.query engine "tomtom garmin zzz"));
  check Alcotest.int "empty query" 0 (List.length (Search.query engine ""))

let test_query_limit_and_ranks () =
  let results = Search.query ~limit:1 engine "compact" in
  check Alcotest.int "limit" 1 (List.length results);
  let all = Search.query engine "compact" in
  List.iteri
    (fun i r -> check Alcotest.int "ranks sequential" (i + 1) r.Search.rank)
    all;
  (* scores are non-increasing *)
  let rec non_increasing = function
    | (a : Search.result) :: (b :: _ as rest) ->
      a.Search.score >= b.Search.score && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "sorted by score" true (non_increasing all)

let test_query_lift_to () =
  let results = Search.query ~lift_to:"shop" engine "compact" in
  check Alcotest.int "merged into one shop result" 1 (List.length results);
  check Alcotest.string "shop root" "shop" (List.hd results).Search.element.Xml.tag;
  (* lift_to a nonexistent tag falls back to entity lifting *)
  let fallback = Search.query ~lift_to:"warehouse" engine "compact" in
  check Alcotest.int "fallback" 2 (List.length fallback)

let test_tfidf_scoring () =
  (* Ten items mention "common"; item X is rich in the rare keyword, item Y
     pads on the common one. Occurrence scoring prefers Y (more matches);
     tf-idf prefers X (rare matches are worth more). *)
  let item name words =
    Xml.elem "item"
      (Xml.leaf "name" name :: List.map (fun w -> Xml.leaf "w" w) words)
  in
  let filler i = item (Printf.sprintf "f%d" i) [ "common" ] in
  let x = item "X" [ "rare"; "rare"; "rare"; "common" ] in
  let y = item "Y" [ "common"; "common"; "common"; "common"; "rare" ] in
  let root =
    { Xml.tag = "items"; attrs = [];
      children =
        List.map (fun e -> e) (x :: y :: List.init 10 filler) }
  in
  let engine = Search.of_element root in
  let title r = Search.result_title engine r in
  let occ = Search.query ~scoring:Search.Occurrence engine "common rare" in
  let tfidf = Search.query ~scoring:Search.Tf_idf engine "common rare" in
  check Alcotest.int "both find two results" 2 (List.length occ);
  check Alcotest.string "occurrence prefers the padder" "Y"
    (title (List.hd occ));
  check Alcotest.string "tf-idf prefers the rare-rich" "X"
    (title (List.hd tfidf))

let test_nested_results_deduped () =
  (* "5 3" matches stars in two different reviews of product 1: SLCA is the
     reviews node, lifted to product. No nested duplicates. *)
  let results = Search.query engine "5 3" in
  check Alcotest.int "one product" 1 (List.length results);
  check Alcotest.string "product" "product" (List.hd results).Search.element.Xml.tag

let () =
  Alcotest.run "xsact_search"
    [
      ( "doctree",
        [
          Alcotest.test_case "preorder ids" `Quick test_doctree_preorder;
          Alcotest.test_case "dewey order" `Quick test_doctree_dewey_order;
          Alcotest.test_case "subtree intervals" `Quick test_doctree_subtree_end;
          Alcotest.test_case "dewey lookup" `Quick test_doctree_lookup;
          Alcotest.test_case "ancestors" `Quick test_doctree_ancestors;
        ] );
      ( "token",
        [
          Alcotest.test_case "tokenize/normalize" `Quick test_token;
          Alcotest.test_case "element tokens" `Quick test_element_tokens;
        ] );
      ("index", [ Alcotest.test_case "postings" `Quick test_index_postings ]);
      ( "slca",
        [
          Alcotest.test_case "basics" `Quick test_slca_basic;
          Alcotest.test_case "merge agreement (fixed)" `Quick
            test_slca_merge_agrees_basic;
          Alcotest.test_case "candidates superset" `Quick
            test_lca_candidates_superset;
          Alcotest.test_case "elca basics" `Quick test_elca_basic;
          Alcotest.test_case "elca ancestor witness" `Quick
            test_elca_owns_witness;
          qtest prop_slca_agreement;
          qtest prop_slca_minimality;
          qtest prop_slca_subset_elca;
        ] );
      ( "categories",
        [
          Alcotest.test_case "shop corpus" `Quick test_categories;
          Alcotest.test_case "multi-valued attribute" `Quick
            test_multivalued_attribute;
          Alcotest.test_case "entity_of" `Quick test_entity_of;
        ] );
      ( "query",
        [
          Alcotest.test_case "basic" `Quick test_query_basic;
          Alcotest.test_case "conjunctive" `Quick test_query_conjunctive;
          Alcotest.test_case "limit and ranks" `Quick test_query_limit_and_ranks;
          Alcotest.test_case "lift_to" `Quick test_query_lift_to;
          Alcotest.test_case "tf-idf scoring" `Quick test_tfidf_scoring;
          Alcotest.test_case "nested dedup" `Quick test_nested_results_deduped;
        ] );
    ]
