(* Tests for the core data model: features, result profiles (canonical
   ordering, significance classes), the extractor, and DFS validity. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

(* ---- Feature ------------------------------------------------------------- *)

let test_feature_compare () =
  let a = f ~e:"review" ~a:"pro:compact" ~v:"yes" in
  let b = f ~e:"review" ~a:"pro:compact" ~v:"yes" in
  let c = f ~e:"review" ~a:"pro:compact" ~v:"no" in
  let d = f ~e:"product" ~a:"name" ~v:"yes" in
  check Alcotest.bool "equal" true (Feature.equal a b);
  check Alcotest.bool "value differs" false (Feature.equal a c);
  check Alcotest.bool "entity ordering" true (Feature.compare d a < 0);
  check Alcotest.bool "ftype equal" true
    (Feature.equal_ftype (Feature.ftype a) (Feature.ftype c));
  check Alcotest.string "to_string" "review.pro:compact = yes"
    (Feature.to_string a);
  check Alcotest.string "ftype_to_string" "review.pro:compact"
    (Feature.ftype_to_string (Feature.ftype a))

(* ---- Result_profile -------------------------------------------------------- *)

(* A two-entity profile with ties, used across several tests. *)
let profile_fixture () =
  Result_profile.make ~label:"GPS 1"
    ~populations:[ ("review", 11); ("product", 1) ]
    [
      (f ~e:"review" ~a:"pro:easy-to-read" ~v:"yes", 10);
      (f ~e:"review" ~a:"pro:compact" ~v:"yes", 8);
      (f ~e:"review" ~a:"best-use:auto" ~v:"yes", 6);
      (f ~e:"review" ~a:"user-category:casual" ~v:"yes", 6);
      (f ~e:"review" ~a:"pro:large-screen" ~v:"yes", 1);
      (f ~e:"review" ~a:"stars" ~v:"5", 6);
      (f ~e:"review" ~a:"stars" ~v:"3", 4);
      (f ~e:"review" ~a:"stars" ~v:"1", 1);
      (f ~e:"product" ~a:"name" ~v:"TomTom Go 630", 1);
      (f ~e:"product" ~a:"rating" ~v:"4.2", 1);
    ]

let test_profile_structure () =
  let p = profile_fixture () in
  check Alcotest.string "label" "GPS 1" p.Result_profile.label;
  check Alcotest.int "two entities" 2 (Array.length p.Result_profile.entities);
  (* entities sorted by name: product < review *)
  check Alcotest.string "entity order" "product"
    p.Result_profile.entities.(0).Result_profile.entity;
  check Alcotest.int "population" 11 (Result_profile.population p "review");
  check Alcotest.int "unknown population" 1 (Result_profile.population p "zzz");
  check Alcotest.int "total features" 10 p.Result_profile.total_features;
  check Alcotest.int "num types" 8 (Result_profile.num_types p)

let test_profile_type_ordering () =
  let p = profile_fixture () in
  let review = p.Result_profile.entities.(1) in
  let sigs =
    Array.to_list review.Result_profile.types
    |> List.map (fun (t : Result_profile.type_info) ->
           (t.Result_profile.ftype.Feature.attribute, t.Result_profile.significance))
  in
  (* significance = max feature count; stars has features 6,4,1 -> sig 6.
     Order: sig desc, then attribute asc. *)
  check
    Alcotest.(list (pair string int))
    "significance order"
    [
      ("pro:easy-to-read", 10);
      ("pro:compact", 8);
      ("best-use:auto", 6);
      ("stars", 6);
      ("user-category:casual", 6);
      ("pro:large-screen", 1);
    ]
    sigs

let test_profile_classes () =
  let p = profile_fixture () in
  let review = p.Result_profile.entities.(1) in
  check
    Alcotest.(list (pair int int))
    "classes are runs of equal significance"
    [ (0, 1); (1, 1); (2, 3); (5, 1) ]
    (Array.to_list review.Result_profile.classes);
  let product = p.Result_profile.entities.(0) in
  check
    Alcotest.(list (pair int int))
    "product single tie class"
    [ (0, 2) ]
    (Array.to_list product.Result_profile.classes)

let test_profile_features_sorted () =
  let p = profile_fixture () in
  let stars_gi =
    Option.get
      (Result_profile.find_type p { Feature.entity = "review"; attribute = "stars" })
  in
  let info = Result_profile.type_info p stars_gi in
  check Alcotest.int "stars total" 11 info.Result_profile.total;
  check
    Alcotest.(list (pair string int))
    "features count desc"
    [ ("5", 6); ("3", 4); ("1", 1) ]
    (Array.to_list info.Result_profile.features
    |> List.map (fun (fi : Result_profile.feat_info) ->
           (fi.Result_profile.feature.Feature.value, fi.Result_profile.count)))

let test_profile_duplicate_merge () =
  let p =
    Result_profile.make ~label:"r" ~populations:[]
      [
        (f ~e:"e" ~a:"a" ~v:"x", 2);
        (f ~e:"e" ~a:"a" ~v:"x", 3);
      ]
  in
  check Alcotest.int "merged" 1 p.Result_profile.total_features;
  let gi = Option.get (Result_profile.find_type p { Feature.entity = "e"; attribute = "a" }) in
  let info = Result_profile.type_info p gi in
  check Alcotest.int "counts summed" 5 info.Result_profile.features.(0).Result_profile.count

let test_profile_errors () =
  Alcotest.check_raises "non-positive count"
    (Invalid_argument "Result_profile.make: non-positive count for e.a = x")
    (fun () ->
      ignore (Result_profile.make ~label:"r" ~populations:[] [ (f ~e:"e" ~a:"a" ~v:"x", 0) ]));
  Alcotest.check_raises "non-positive population"
    (Invalid_argument "Result_profile.make: non-positive population for e")
    (fun () ->
      ignore
        (Result_profile.make ~label:"r"
           ~populations:[ ("e", 0) ]
           [ (f ~e:"e" ~a:"a" ~v:"x", 1) ]))

let test_global_index_roundtrip () =
  let p = profile_fixture () in
  for gi = 0 to Result_profile.num_types p - 1 do
    let ei = Result_profile.entity_index_of_type p gi in
    let _, ti = p.Result_profile.type_index.(gi) in
    check Alcotest.int "roundtrip" gi
      (Result_profile.global_index p ~entity_index:ei ~type_index:ti)
  done;
  check Alcotest.int "types_seq length" (Result_profile.num_types p)
    (Seq.length (Result_profile.types_seq p))

(* ---- Extractor --------------------------------------------------------------- *)

let parse_ok src =
  match Xml_parse.parse_string src with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse failed: %s" (Xml_parse.error_to_string e)

(* Figure-1-shaped corpus: two products; extraction happens against the
   corpus-wide category table, then per result subtree. *)
let corpus =
  parse_ok
    {|<products>
        <product>
          <name>TomTom Go 630</name><rating>4.2</rating>
          <reviews>
            <review><reviewer><nickname>bob</nickname></reviewer><stars>5</stars>
              <pros><pro><compact>yes</compact></pro><pro><easy-to-read>yes</easy-to-read></pro></pros>
              <uses><best-use><auto>yes</auto></best-use></uses>
            </review>
            <review><reviewer><nickname>amy</nickname></reviewer><stars>4</stars>
              <pros><pro><compact>yes</compact></pro></pros>
            </review>
            <review><reviewer><nickname>joe</nickname></reviewer><stars>5</stars>
              <pros><pro><easy-to-read>yes</easy-to-read></pro></pros>
            </review>
          </reviews>
        </product>
        <product>
          <name>TomTom Go 730</name><rating>4.1</rating>
          <reviews>
            <review><reviewer><nickname>zed</nickname></reviewer><stars>4</stars>
              <pros><pro><compact>yes</compact></pro></pros>
            </review>
            <review><reviewer><nickname>kim</nickname></reviewer><stars>2</stars>
              <pros><pro><easy-to-setup>yes</easy-to-setup></pro></pros>
              <uses><best-use><routers>yes</routers></best-use><best-use><travel>yes</travel></best-use></uses>
            </review>
          </reviews>
        </product>
      </products>|}

let extract_product index =
  let tree = Doctree.of_document corpus in
  let cats = Node_category.infer tree in
  let product =
    List.nth (Xml.children_named corpus.Xml.root "product") index
  in
  Extractor.extract ~categories:cats ~label:(Printf.sprintf "P%d" index) product

let count_of p ~e ~a ~v =
  match Result_profile.find_type p { Feature.entity = e; attribute = a } with
  | None -> 0
  | Some gi ->
    let info = Result_profile.type_info p gi in
    Array.fold_left
      (fun acc (fi : Result_profile.feat_info) ->
        if fi.Result_profile.feature.Feature.value = v then fi.Result_profile.count
        else acc)
      0 info.Result_profile.features

let test_extract_counts () =
  let p = extract_product 0 in
  check Alcotest.int "population review" 3 (Result_profile.population p "review");
  check Alcotest.int "population product" 1 (Result_profile.population p "product");
  check Alcotest.int "compact 2/3" 2 (count_of p ~e:"review" ~a:"pro:compact" ~v:"yes");
  check Alcotest.int "easy-to-read 2/3" 2
    (count_of p ~e:"review" ~a:"pro:easy-to-read" ~v:"yes");
  check Alcotest.int "auto 1" 1 (count_of p ~e:"review" ~a:"best-use:auto" ~v:"yes");
  check Alcotest.int "stars 5 twice" 2 (count_of p ~e:"review" ~a:"stars" ~v:"5");
  check Alcotest.int "name" 1 (count_of p ~e:"product" ~a:"name" ~v:"TomTom Go 630");
  check Alcotest.int "nicknames distinct" 1
    (count_of p ~e:"review" ~a:"nickname" ~v:"bob")

let test_extract_flatten () =
  let p = extract_product 0 in
  (* pro -> compact -> yes flattens to attribute "pro:compact", value "yes";
     there is no bare "pro" or "compact" type. *)
  check Alcotest.bool "no bare pro type" true
    (Result_profile.find_type p { Feature.entity = "review"; attribute = "pro" } = None);
  check Alcotest.bool "no compact type" true
    (Result_profile.find_type p { Feature.entity = "review"; attribute = "compact" }
    = None)

let test_extract_fallback () =
  let doc = parse_ok "<leaf>just text</leaf>" in
  let tree = Doctree.of_document doc in
  let cats = Node_category.infer tree in
  let p = Extractor.extract ~categories:cats ~label:"L" doc.Xml.root in
  check Alcotest.int "fallback text feature" 1
    (count_of p ~e:"leaf" ~a:"text" ~v:"just text")

let test_extract_xml_attrs () =
  let doc =
    parse_ok
      {|<items><item sku="A1"><name>X</name><name2>Y</name2></item><item sku="B2"><name>Z</name><name2>W</name2></item></items>|}
  in
  let tree = Doctree.of_document doc in
  let cats = Node_category.infer tree in
  let item = List.hd (Xml.children_named doc.Xml.root "item") in
  let p = Extractor.extract ~categories:cats ~label:"I" item in
  check Alcotest.int "xml attribute feature" 1
    (count_of p ~e:"item" ~a:"item@sku" ~v:"A1")

let test_extract_presence_value () =
  let doc =
    parse_ok
      "<ps><p><name>a</name><flags><waterproof/><sealed/></flags></p><p><name>b</name><flags><waterproof/><light/></flags></p></ps>"
  in
  let tree = Doctree.of_document doc in
  let cats = Node_category.infer tree in
  let p0 = List.hd (Xml.children_named doc.Xml.root "p") in
  let p = Extractor.extract ~categories:cats ~label:"P" p0 in
  check Alcotest.int "presence flag becomes yes" 1
    (count_of p ~e:"p" ~a:"waterproof" ~v:"yes")

(* ---- Dfs -------------------------------------------------------------------- *)

let test_dfs_empty_and_set () =
  let p = profile_fixture () in
  let d = Dfs.empty p in
  check Alcotest.int "empty size" 0 (Dfs.size d);
  check Alcotest.bool "empty valid" true (Dfs.is_valid ~limit:0 d);
  let gi =
    Option.get
      (Result_profile.find_type p
         { Feature.entity = "review"; attribute = "pro:easy-to-read" })
  in
  let d = Dfs.set_q d gi 1 in
  check Alcotest.int "size 1" 1 (Dfs.size d);
  check Alcotest.(list int) "selected" [ gi ] (Dfs.selected_types d);
  check Alcotest.int "q read back" 1 (Dfs.q d gi);
  Alcotest.check_raises "q too large"
    (Invalid_argument "Dfs.set_q: q out of range") (fun () ->
      ignore (Dfs.set_q d gi 2))

let find p ~e ~a =
  Option.get (Result_profile.find_type p { Feature.entity = e; attribute = a })

let test_dfs_validity_closure () =
  let p = profile_fixture () in
  let etr = find p ~e:"review" ~a:"pro:easy-to-read" in
  let compact = find p ~e:"review" ~a:"pro:compact" in
  let auto = find p ~e:"review" ~a:"best-use:auto" in
  let stars = find p ~e:"review" ~a:"stars" in
  let name = find p ~e:"product" ~a:"name" in
  (* Selecting compact without the more significant easy-to-read: invalid. *)
  let d = Dfs.set_q (Dfs.empty p) compact 1 in
  check Alcotest.bool "skipping etr invalid" false (Dfs.is_valid ~limit:9 d);
  let d = Dfs.set_q d etr 1 in
  check Alcotest.bool "prefix valid" true (Dfs.is_valid ~limit:9 d);
  (* Within the 6-tie class, any subset is fine. *)
  let d = Dfs.set_q d stars 2 in
  check Alcotest.bool "tied class subset valid" true (Dfs.is_valid ~limit:9 d);
  let _ = auto in
  (* Another entity is independent: product.name alone is valid. *)
  let d2 = Dfs.set_q (Dfs.empty p) name 1 in
  check Alcotest.bool "other entity independent" true (Dfs.is_valid ~limit:9 d2);
  (* Size bound enforced. *)
  check Alcotest.bool "size bound" false (Dfs.is_valid ~limit:0 d2)

let test_dfs_can_open_close () =
  let p = profile_fixture () in
  let etr = find p ~e:"review" ~a:"pro:easy-to-read" in
  let compact = find p ~e:"review" ~a:"pro:compact" in
  let auto = find p ~e:"review" ~a:"best-use:auto" in
  let stars = find p ~e:"review" ~a:"stars" in
  let d = Dfs.empty p in
  check Alcotest.bool "top type openable" true (Dfs.can_open d etr);
  check Alcotest.bool "compact blocked" false (Dfs.can_open d compact);
  let d = Dfs.set_q d etr 1 in
  check Alcotest.bool "compact now openable" true (Dfs.can_open d compact);
  let d = Dfs.set_q d compact 1 in
  let d = Dfs.set_q d auto 1 in
  (* stars is in the same tie class as auto: openable without casual. *)
  check Alcotest.bool "tied type openable" true (Dfs.can_open d stars);
  (* closing compact while auto (lower class) is selected: invalid. *)
  check Alcotest.bool "cannot close middle" false (Dfs.can_close d compact);
  check Alcotest.bool "can close last class" true (Dfs.can_close d auto);
  check Alcotest.bool "closing unselected ok" true (Dfs.can_close d stars)

let test_dfs_features_listing () =
  let p = profile_fixture () in
  let stars = find p ~e:"review" ~a:"stars" in
  let etr = find p ~e:"review" ~a:"pro:easy-to-read" in
  let compact = find p ~e:"review" ~a:"pro:compact" in
  let d = Dfs.empty p in
  let d = Dfs.set_q d etr 1 in
  let d = Dfs.set_q d compact 1 in
  let d = Dfs.set_q d stars 2 in
  let feats = Dfs.features d in
  check Alcotest.int "4 features" 4 (List.length feats);
  (* stars prefix = two most frequent values *)
  let stars_values =
    List.filter_map
      (fun ((ft : Feature.t), _) ->
        if ft.Feature.ftype.Feature.attribute = "stars" then Some ft.Feature.value
        else None)
      feats
  in
  check Alcotest.(list string) "stars prefix" [ "5"; "3" ] stars_values

let test_dfs_of_q_array () =
  let p = profile_fixture () in
  let q = Array.make (Result_profile.num_types p) 0 in
  q.(0) <- 1;
  let d = Dfs.of_q_array p q in
  q.(0) <- 9;
  (* mutation after construction must not leak in *)
  check Alcotest.int "copied" 1 (Dfs.q d 0);
  check Alcotest.bool "to_q_array copies" true (Dfs.to_q_array d <> [||]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dfs.of_q_array: length mismatch") (fun () ->
      ignore (Dfs.of_q_array p [| 1 |]))

(* Property: topk output is always valid and exactly min(limit, total). *)
let gen_profile_params = QCheck.Gen.(pair (int_range 0 1000000) (int_range 2 6))

let prop_topk_valid =
  QCheck.Test.make ~name:"topk fills to min(limit,total) and stays valid"
    ~count:200
    (QCheck.make gen_profile_params)
    (fun (seed, limit) ->
      let profiles =
        Xsact_workload.Workload.synthetic_profiles ~seed ~results:1 ~entities:2
          ~types_per_entity:3 ~values_per_type:3 ~max_count:5
      in
      let p = profiles.(0) in
      let d = Topk.generate_one ~limit p in
      Dfs.is_valid ~limit d
      && Dfs.size d = min limit p.Result_profile.total_features)

let () =
  Alcotest.run "xsact_model"
    [
      ("feature", [ Alcotest.test_case "compare" `Quick test_feature_compare ]);
      ( "profile",
        [
          Alcotest.test_case "structure" `Quick test_profile_structure;
          Alcotest.test_case "type ordering" `Quick test_profile_type_ordering;
          Alcotest.test_case "classes" `Quick test_profile_classes;
          Alcotest.test_case "features sorted" `Quick test_profile_features_sorted;
          Alcotest.test_case "duplicates merged" `Quick test_profile_duplicate_merge;
          Alcotest.test_case "errors" `Quick test_profile_errors;
          Alcotest.test_case "global index" `Quick test_global_index_roundtrip;
        ] );
      ( "extractor",
        [
          Alcotest.test_case "figure-1 counts" `Quick test_extract_counts;
          Alcotest.test_case "wrapper flattening" `Quick test_extract_flatten;
          Alcotest.test_case "fallback feature" `Quick test_extract_fallback;
          Alcotest.test_case "xml attributes" `Quick test_extract_xml_attrs;
          Alcotest.test_case "presence flags" `Quick test_extract_presence_value;
        ] );
      ( "dfs",
        [
          Alcotest.test_case "empty/set" `Quick test_dfs_empty_and_set;
          Alcotest.test_case "validity closure" `Quick test_dfs_validity_closure;
          Alcotest.test_case "can_open/can_close" `Quick test_dfs_can_open_close;
          Alcotest.test_case "features listing" `Quick test_dfs_features_listing;
          Alcotest.test_case "of_q_array" `Quick test_dfs_of_q_array;
          qtest prop_topk_valid;
        ] );
    ]
