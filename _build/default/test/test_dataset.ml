(* Tests for the synthetic dataset generators: determinism, structural
   soundness (round-trip through the real parser), category inference on the
   generated corpora, and query coverage. *)

open Xsact_dataset

let check = Alcotest.check

(* Small parameters so the whole suite stays fast. *)
let pr_params =
  { Product_reviews.seed = 99; products = 9; min_reviews = 3; max_reviews = 10 }

let or_params =
  { Outdoor_retailer.seed = 7; brands = 4; min_products = 10; max_products = 25 }

let imdb_params = { Imdb.seed = 3; movies = 60; year_range = (1990, 1999) }

let pr_doc = Product_reviews.generate pr_params
let or_doc = Outdoor_retailer.generate or_params
let imdb_doc = Imdb.generate imdb_params

let test_deterministic () =
  check Alcotest.bool "product reviews deterministic" true
    (Xml.equal pr_doc (Product_reviews.generate pr_params));
  check Alcotest.bool "outdoor deterministic" true
    (Xml.equal or_doc (Outdoor_retailer.generate or_params));
  check Alcotest.bool "imdb deterministic" true
    (Xml.equal imdb_doc (Imdb.generate imdb_params));
  let other = Product_reviews.generate { pr_params with seed = 100 } in
  check Alcotest.bool "different seed differs" false (Xml.equal pr_doc other)

let roundtrip name doc =
  match Xml_parse.parse_string (Xml_print.to_string_pretty doc) with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "%s does not re-parse: %s" name (Xml_parse.error_to_string e)

let test_wellformed () =
  roundtrip "product reviews" pr_doc;
  roundtrip "outdoor" or_doc;
  roundtrip "imdb" imdb_doc

let test_pr_structure () =
  let root = pr_doc.Xml.root in
  check Alcotest.string "root" "products" root.Xml.tag;
  let products = Xml.children_named root "product" in
  check Alcotest.int "product count" pr_params.Product_reviews.products
    (List.length products);
  List.iter
    (fun p ->
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " present") true (Xml.child p field <> None))
        [ "name"; "brand"; "category"; "price"; "rating"; "url"; "reviews" ];
      let reviews = Xml_path.select p "reviews/review" in
      let n = List.length reviews in
      check Alcotest.bool "review count in bounds" true
        (n >= pr_params.Product_reviews.min_reviews
        && n <= pr_params.Product_reviews.max_reviews);
      List.iter
        (fun r ->
          check Alcotest.bool "review has reviewer" true
            (Xml.child r "reviewer" <> None);
          check Alcotest.bool "review has stars" true
            (match Xml.child r "stars" with
            | Some s ->
              let v = int_of_string (Xml.text_content s) in
              v >= 1 && v <= 5
            | None -> false))
        reviews)
    products

let test_pr_categories_inferred () =
  let tree = Doctree.of_document pr_doc in
  let cats = Node_category.infer tree in
  check Alcotest.bool "product entity" true (Node_category.is_entity cats "product");
  check Alcotest.bool "review entity" true (Node_category.is_entity cats "review");
  check Alcotest.bool "pro is attribute" true (Node_category.is_attribute cats "pro");
  check Alcotest.bool "pros is connection" true
    (Node_category.category cats "pros" = Node_category.Connection)

let test_pr_brand_coverage () =
  (* Round-robin assignment must cover TomTom in any corpus with >= 12 GPS
     products; with 9 products (3 GPS), the first three GPS brands appear. *)
  let brands = Xml_path.texts pr_doc.Xml.root "product/brand" in
  check Alcotest.bool "tomtom exists" true (List.mem "TomTom" brands);
  (* name uniqueness *)
  let names = Xml_path.texts pr_doc.Xml.root "product/name" in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_or_structure () =
  let root = or_doc.Xml.root in
  check Alcotest.string "root" "brands" root.Xml.tag;
  let brands = Xml.children_named root "brand" in
  check Alcotest.int "brand count" or_params.Outdoor_retailer.brands
    (List.length brands);
  List.iter
    (fun b ->
      let products = Xml_path.select b "products/product" in
      let n = List.length products in
      check Alcotest.bool "products in bounds" true
        (n >= or_params.Outdoor_retailer.min_products
        && n <= or_params.Outdoor_retailer.max_products);
      List.iter
        (fun p ->
          List.iter
            (fun field ->
              check Alcotest.bool (field ^ " present") true
                (Xml.child p field <> None))
            [ "name"; "category"; "subcategory"; "gender"; "price" ])
        products)
    brands

let test_or_brand_focus () =
  (* Each brand has a dominant category: its top category should hold a
     clear plurality of its products. *)
  let root = or_doc.Xml.root in
  List.iter
    (fun b ->
      let cats = Xml_path.texts b "products/product/category" in
      let tally = Hashtbl.create 8 in
      List.iter
        (fun c ->
          Hashtbl.replace tally c
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally c)))
        cats;
      let top = Hashtbl.fold (fun _ v acc -> max v acc) tally 0 in
      let total = List.length cats in
      check Alcotest.bool "dominant category >= 25%" true
        (float_of_int top >= 0.25 *. float_of_int total))
    (Xml.children_named root "brand")

let test_imdb_structure () =
  let root = imdb_doc.Xml.root in
  check Alcotest.string "root" "movies" root.Xml.tag;
  let movies = Xml.children_named root "movie" in
  check Alcotest.int "movie count" imdb_params.Imdb.movies (List.length movies);
  List.iter
    (fun m ->
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " present") true (Xml.child m field <> None))
        [
          "title"; "year"; "runtime"; "rating"; "votes"; "certificate";
          "company"; "country"; "language"; "genres"; "directors"; "actors";
          "keywords";
        ];
      let year = int_of_string (Xml.text_content (Option.get (Xml.child m "year"))) in
      check Alcotest.bool "year in range" true (year >= 1990 && year <= 1999);
      let genres = Xml_path.select m "genres/genre" in
      check Alcotest.bool "1..3 genres" true
        (List.length genres >= 1 && List.length genres <= 3);
      let actors = Xml_path.select m "actors/actor" in
      check Alcotest.bool "4..12 actors" true
        (List.length actors >= 4 && List.length actors <= 12))
    movies

let test_imdb_famous_directors_present () =
  let directors =
    Xml_path.texts imdb_doc.Xml.root "movie/directors/director"
  in
  let spielberg =
    List.exists (fun d -> d = "Steven Spielberg") directors
  in
  check Alcotest.bool "spielberg directs something (60 movies, p~1)" true
    spielberg

let test_default_queries_have_results () =
  (* On the default corpora, every advertised sample query must return at
     least two results (so the demo comparisons are possible). This is the
     contract the benches rely on. *)
  let check_ds (ds : Dataset.t) ~lift_to =
    let engine = Search.create ds.Dataset.document in
    List.iter
      (fun (label, keywords) ->
        let n = List.length (Search.query ?lift_to engine keywords) in
        if n < 2 then
          Alcotest.failf "%s/%s %S: only %d results" ds.Dataset.name label
            keywords n)
      ds.Dataset.queries
  in
  check_ds (Dataset.product_reviews ()) ~lift_to:None;
  check_ds (Dataset.outdoor_retailer ()) ~lift_to:(Some "brand");
  check_ds (Dataset.imdb ()) ~lift_to:None

let test_registry () =
  check Alcotest.int "three datasets" 3 (List.length Dataset.names);
  List.iter
    (fun name ->
      match Dataset.by_name name with
      | Some ds -> check Alcotest.string "name matches" name ds.Dataset.name
      | None -> Alcotest.failf "dataset %s missing" name)
    Dataset.names;
  check Alcotest.bool "unknown name" true (Dataset.by_name "nope" = None)

(* ---- IMDB list-file format ------------------------------------------------- *)

let small_imdb = Imdb.generate { Imdb.seed = 21; movies = 40; year_range = (1993, 1996) }

let test_list_roundtrip_document () =
  (* XML -> movies -> list files -> movies -> XML reproduces the document
     exactly (billing positions preserve credit order; qualifiers
     disambiguate duplicate title/year pairs). *)
  match Imdb_list.movies_of_document small_imdb with
  | Error e -> Alcotest.failf "movies_of_document: %s" e
  | Ok movies ->
    let files = Imdb_list.write movies in
    (match Imdb_list.parse files with
    | Error e -> Alcotest.failf "parse: %s" e
    | Ok movies' ->
      check Alcotest.int "movie count" (List.length movies) (List.length movies');
      check Alcotest.bool "records equal" true (movies = movies');
      let rebuilt = Imdb_list.document_of_movies movies' in
      check Alcotest.bool "document equal" true (Xml.equal small_imdb rebuilt))

let test_list_duplicate_titles () =
  let mk qualifier =
    {
      Imdb_list.title = "The Mirror"; year = 1995; qualifier; runtime = 100;
      rating = 7.0; votes = 1000; certificate = "PG"; color = "Color";
      company = "C";
      country = "USA"; language = "English"; genres = [ "Drama" ];
      directors = [ "A B" ]; actors = [ "C D"; "E F" ]; keywords = [ "k" ];
    }
  in
  let movies = [ mk 1; mk 2; mk 3 ] in
  check Alcotest.string "key I" "The Mirror (1995)" (Imdb_list.key (mk 1));
  check Alcotest.string "key II" "The Mirror (1995/II)" (Imdb_list.key (mk 2));
  let files = Imdb_list.write movies in
  match Imdb_list.parse files with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok movies' -> check Alcotest.bool "duplicates round-trip" true (movies = movies')

let test_list_parse_errors () =
  let base =
    match Imdb_list.movies_of_document small_imdb with
    | Ok m -> Imdb_list.write m
    | Error e -> Alcotest.failf "setup: %s" e
  in
  let expect_error what files =
    match Imdb_list.parse files with
    | Ok _ -> Alcotest.failf "expected %s to fail" what
    | Error msg ->
      check Alcotest.bool (what ^ " mentions line") true
        (Xsact_util.Textutil.contains_substring msg "line")
  in
  expect_error "bad movies.list"
    { base with Imdb_list.movies = "not a movie key\n" ^ base.Imdb_list.movies };
  expect_error "unknown key in genres"
    { base with Imdb_list.genres = "Nope (1999)\tDrama\n" };
  expect_error "malformed rating"
    { base with Imdb_list.ratings = "      000  x  y  Nope\n" };
  expect_error "continuation before name"
    { base with Imdb_list.directors = "\tNope (1999)  <1>\n" };
  expect_error "bad attribute"
    {
      base with
      Imdb_list.attributes =
        (match String.index_opt base.Imdb_list.attributes '\n' with
        | Some i -> String.sub base.Imdb_list.attributes 0 i ^ "\tbogus=1\n"
        | None -> "bogus\n");
    }

let test_list_dir_io () =
  let dir = Filename.temp_file "xsact_lists" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      match Imdb_list.movies_of_document small_imdb with
      | Error e -> Alcotest.failf "setup: %s" e
      | Ok movies ->
        Imdb_list.write_dir dir movies;
        let _, names = Imdb_list.file_names in
        List.iter
          (fun name ->
            check Alcotest.bool (name ^ " exists") true
              (Sys.file_exists (Filename.concat dir name)))
          names;
        (match Imdb_list.parse_dir dir with
        | Ok movies' -> check Alcotest.bool "dir round-trip" true (movies = movies')
        | Error e -> Alcotest.failf "parse_dir: %s" e))

let test_names_module () =
  let open Xsact_util in
  let g = Prng.of_int 1 in
  for _ = 1 to 50 do
    let n = Names.full_name g in
    check Alcotest.bool "two words" true
      (List.length (String.split_on_char ' ' n) = 2);
    let u = Names.username g in
    check Alcotest.bool "username nonempty lowercase" true
      (u <> "" && String.lowercase_ascii u = u)
  done

let () =
  Alcotest.run "xsact_dataset"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "well-formed XML" `Quick test_wellformed;
          Alcotest.test_case "names module" `Quick test_names_module;
        ] );
      ( "product-reviews",
        [
          Alcotest.test_case "structure" `Quick test_pr_structure;
          Alcotest.test_case "categories inferred" `Quick
            test_pr_categories_inferred;
          Alcotest.test_case "brand coverage" `Quick test_pr_brand_coverage;
        ] );
      ( "outdoor-retailer",
        [
          Alcotest.test_case "structure" `Quick test_or_structure;
          Alcotest.test_case "brand focus" `Quick test_or_brand_focus;
        ] );
      ( "imdb",
        [
          Alcotest.test_case "structure" `Quick test_imdb_structure;
          Alcotest.test_case "famous directors" `Quick
            test_imdb_famous_directors_present;
        ] );
      ( "imdb-lists",
        [
          Alcotest.test_case "document round-trip" `Quick
            test_list_roundtrip_document;
          Alcotest.test_case "duplicate titles" `Quick test_list_duplicate_titles;
          Alcotest.test_case "parse errors" `Quick test_list_parse_errors;
          Alcotest.test_case "directory I/O" `Quick test_list_dir_io;
        ] );
      ( "registry",
        [
          Alcotest.test_case "sample queries return results" `Slow
            test_default_queries_have_results;
          Alcotest.test_case "lookup" `Quick test_registry;
        ] );
    ]
