(* End-to-end property tests: random corpora and queries through the whole
   pipeline (parse -> index -> search -> extract -> DFS -> table -> render),
   asserting the global invariants that must survive any input. *)

let qtest = QCheck_alcotest.to_alcotest

(* Random shop-like corpora: a root with entity-ish repeated children that
   carry scalar attributes, multi-valued attributes and nested repeated
   sub-entities. Vocabulary is small so queries hit often. *)
let words = [| "red"; "blue"; "gps"; "fast"; "cheap"; "new"; "big" |]
let attrs = [| "name"; "color"; "speed"; "price" |]
let multis = [| "tag"; "feat" |]

let gen_corpus =
  QCheck.Gen.(
    let word = oneofl (Array.to_list words) in
    let gen_item =
      let* scalars = int_range 1 4 in
      let* scalar_fields =
        flatten_l
          (List.init scalars (fun i ->
               let* v = word in
               return (Xml.leaf attrs.(i) v)))
      in
      let* nmulti = int_range 0 4 in
      let* multi_fields =
        flatten_l
          (List.init nmulti (fun _ ->
               let* tag = oneofl (Array.to_list multis) in
               let* v = word in
               return (Xml.leaf tag v)))
      in
      let* nsubs = int_range 0 3 in
      let* subs =
        flatten_l
          (List.init nsubs (fun _ ->
               let* v1 = word in
               let* v2 = word in
               return
                 (Xml.elem "review"
                    [ Xml.leaf "opinion" v1; Xml.leaf "stars" v2 ])))
      in
      return (Xml.elem "item" (scalar_fields @ multi_fields @ subs))
    in
    let* nitems = int_range 2 8 in
    let* items = list_size (return nitems) gen_item in
    let* nkw = int_range 1 2 in
    let* keywords = list_size (return nkw) word in
    let* limit = int_range 1 6 in
    let root = { Xml.tag = "shop"; attrs = []; children = items } in
    return (root, String.concat " " keywords, limit))

let arbitrary =
  QCheck.make gen_corpus ~print:(fun (root, q, limit) ->
      Printf.sprintf "query=%S limit=%d\n%s" q limit
        (Xml_print.node_to_string (Xml.Element root)))

(* The invariants checked on every random instance. Returns true or raises
   via QCheck.Test.fail_report with a description. *)
let pipeline_invariants (root, keywords, limit) =
  let fail fmt = Printf.ksprintf QCheck.Test.fail_report fmt in
  (* Print -> parse round-trip of the corpus. *)
  let doc = Xml.document root in
  let printed = Xml_print.to_string_pretty doc in
  let doc =
    match Xml_parse.parse_string printed with
    | Ok d -> d
    | Error e -> fail "corpus does not reparse: %s" (Xml_parse.error_to_string e)
  in
  let pipeline = Pipeline.create doc in
  let results = Pipeline.search pipeline keywords in
  (* Results must be ranked 1..n with non-increasing scores and distinct
     node subtrees. *)
  let rec check_ranks i = function
    | [] -> ()
    | (r : Search.result) :: rest ->
      if r.Search.rank <> i then fail "rank %d out of order" r.Search.rank;
      (match rest with
      | next :: _ when next.Search.score > r.Search.score ->
        fail "scores not sorted"
      | _ -> ());
      check_ranks (i + 1) rest
  in
  check_ranks 1 results;
  (* Every result subtree must contain all keywords (conjunctive search +
     lifting preserves containment). *)
  let normalized = Token.normalize_query keywords in
  List.iter
    (fun (r : Search.result) ->
      if not (Result_builder.matches ~keywords:normalized r.Search.element)
      then fail "result misses a keyword")
    results;
  (match results with
  | r1 :: r2 :: _ ->
    let profiles =
      Array.of_list (List.map (Pipeline.profile_of pipeline) [ r1; r2 ])
    in
    let context = Dod.make_context profiles in
    List.iter
      (fun alg ->
        let dfss = Algorithm.generate alg context ~limit in
        (* Validity of every DFS. *)
        Array.iter
          (fun d ->
            if not (Dfs.is_valid ~limit d) then
              fail "%s produced an invalid DFS" (Algorithm.to_string alg))
          dfss;
        (* DoD via total = sum over pairs, and symmetric. *)
        let total = Dod.total context dfss in
        let pair = Dod.dod_pair context ~i:0 ~j:1 dfss.(0) dfss.(1) in
        if total <> pair then fail "total <> pair sum";
        if total < 0 then fail "negative DoD";
        (* Table construction and both renderers never raise, and the table
           is consistent with the DFSs. *)
        let table = Table.build ~size_bound:limit context dfss in
        if Array.length table.Table.labels <> 2 then fail "label count";
        if table.Table.dod <> total then fail "table DoD mismatch";
        let text = Render_text.table table in
        if String.length text = 0 then fail "empty text rendering";
        let html = Render_html.table table in
        if not (Xsact_util.Textutil.contains_substring html "</html>") then
          fail "truncated html";
        (* Each table row's filled cells carry only features of that row's
           type. *)
        List.iter
          (fun (row : Table.row) ->
            Array.iter
              (function
                | Table.Unknown -> ()
                | Table.Entries entries ->
                  List.iter
                    (fun (e : Table.entry) ->
                      if
                        not
                          (Feature.equal_ftype
                             (Feature.ftype e.Table.feature)
                             row.Table.ftype)
                      then fail "cell feature type mismatch")
                    entries)
              row.Table.cells)
          table.Table.rows)
      [ Algorithm.Topk; Algorithm.Single_swap; Algorithm.Multi_swap ]
  | _ -> ());
  true

let prop_pipeline =
  QCheck.Test.make ~name:"pipeline invariants on random corpora" ~count:250
    arbitrary pipeline_invariants

(* Sessions over random instances: operations preserve invariants. *)
let prop_session =
  QCheck.Test.make ~name:"session operations keep invariants" ~count:100
    arbitrary
    (fun (root, keywords, limit) ->
      let pipeline = Pipeline.of_element root in
      match Pipeline.search pipeline keywords with
      | r1 :: r2 :: rest ->
        let p = Pipeline.profile_of pipeline in
        (match Session.create ~size_bound:limit [ p r1; p r2 ] with
        | Error _ -> true (* e.g. degenerate profiles; nothing to check *)
        | Ok s ->
          let s =
            match rest with r3 :: _ -> Session.add s (p r3) | [] -> s
          in
          let s =
            match Session.set_size_bound s (limit + 2) with
            | Ok s -> s
            | Error _ -> s
          in
          Array.for_all
            (fun d -> Dfs.is_valid ~limit:(limit + 2) d)
            (Session.dfss s)
          && Session.dod s >= 0)
      | _ -> true)

(* Weighted contexts on random instances: scaling all weights by a constant
   scales the optimal total; per-type uniform weight w multiplies DoD. *)
let prop_weight_scaling =
  QCheck.Test.make ~name:"uniform weight w scales DoD by w" ~count:100
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 5)))
    (fun (seed, w) ->
      let profiles =
        Xsact_workload.Workload.synthetic_profiles ~seed ~results:3 ~entities:2
          ~types_per_entity:3 ~values_per_type:2 ~max_count:4
      in
      let c1 = Dod.make_context profiles in
      let cw = Dod.make_context ~weight:(fun _ -> w) profiles in
      let d1 = Multi_swap.generate c1 ~limit:5 in
      let dw = Multi_swap.generate cw ~limit:5 in
      (* The optima coincide up to scaling (the objective is a positive
         multiple), so the achieved values must satisfy the scaling too. *)
      Dod.total cw dw = w * Dod.total c1 d1)

let () =
  Alcotest.run "xsact_endtoend"
    [
      ( "properties",
        [ qtest prop_pipeline; qtest prop_session; qtest prop_weight_scaling ]
      );
    ]
