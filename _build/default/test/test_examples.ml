(* The four example programs are documentation that must keep working: run
   each as a subprocess and check its key output. *)

let check = Alcotest.check
let contains = Xsact_util.Textutil.contains_substring

let example name =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../examples")
    (name ^ ".exe")

let run_ok name =
  let tmp = Filename.temp_file "xsact_example" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" (example name) tmp) in
  let ic = open_in_bin tmp in
  let output =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  if code <> 0 then
    Alcotest.failf "example %s failed (%d):\n%s" name code output;
  output

let test_quickstart () =
  let out = run_ok "quickstart" in
  check Alcotest.bool "search results" true (contains out "2 results");
  check Alcotest.bool "figure 1 stats" true (contains out "ATTR:VALUE:# of occ");
  check Alcotest.bool "snippets" true (contains out "independent snippets");
  check Alcotest.bool "comparison table" true (contains out "DoD =")

let test_product_compare () =
  let out = run_ok "product_compare" in
  check Alcotest.bool "result list" true (contains out "[1]");
  check Alcotest.bool "sweep table" true (contains out "multi-swap");
  check Alcotest.bool "html written" true (contains out ".html")

let test_outdoor_brands () =
  let out = run_ok "outdoor_brands" in
  check Alcotest.bool "brand list" true (contains out "Brands selling");
  check Alcotest.bool "matched-products table" true
    (contains out "MATCHING products");
  check Alcotest.bool "full-catalog table" true (contains out "full catalogs");
  check Alcotest.bool "brand focus" true (contains out "Brand focus")

let test_movie_explorer () =
  let out = run_ok "movie_explorer" in
  check Alcotest.bool "qm table header" true (contains out "single-swap");
  check Alcotest.bool "eight queries" true (contains out "QM8");
  check Alcotest.bool "comparison table" true (contains out "DoD =")

let test_interactive_session () =
  let out = run_ok "interactive_session" in
  check Alcotest.bool "steps logged" true (contains out "step 5");
  check Alcotest.bool "final table" true (contains out "final table");
  check Alcotest.bool "weighted rerun" true (contains out "re-weighted")

let () =
  Alcotest.run "xsact_examples"
    [
      ( "examples",
        [
          Alcotest.test_case "quickstart" `Slow test_quickstart;
          Alcotest.test_case "product_compare" `Slow test_product_compare;
          Alcotest.test_case "outdoor_brands" `Slow test_outdoor_brands;
          Alcotest.test_case "movie_explorer" `Slow test_movie_explorer;
          Alcotest.test_case "interactive_session" `Slow
            test_interactive_session;
        ] );
    ]
