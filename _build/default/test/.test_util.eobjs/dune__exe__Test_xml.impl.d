test/test_xml.ml: Alcotest Dewey Gen List Option QCheck QCheck_alcotest String Xml Xml_parse Xml_path Xml_print Xml_sax Xml_stats Xsact_util
