test/test_model.ml: Alcotest Array Dfs Doctree Extractor Feature List Node_category Option Printf QCheck QCheck_alcotest Result_profile Seq Topk Xml Xml_parse Xsact_workload
