test/test_examples.ml: Alcotest Filename Fun Printf Sys Xsact_util
