test/test_algorithms.ml: Alcotest Algorithm Array Dfs Dod Exhaustive Feature Gen Greedy List Multi_swap Printf QCheck QCheck_alcotest Result_profile Single_swap Topk Xsact_workload
