test/test_cli.ml: Alcotest Array Filename Fun List Printf String Sys Unix Xsact_util
