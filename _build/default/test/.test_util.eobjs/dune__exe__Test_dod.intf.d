test/test_dod.mli:
