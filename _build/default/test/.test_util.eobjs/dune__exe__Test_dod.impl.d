test/test_dod.ml: Alcotest Array Dfs Dod Feature Float Gen List Multi_swap Option QCheck QCheck_alcotest Render_text Result_profile Topk Xsact_util Xsact_workload
