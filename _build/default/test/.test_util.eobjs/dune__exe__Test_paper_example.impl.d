test/test_paper_example.ml: Alcotest Array Dfs Dod Exhaustive Feature List Multi_swap Option Printf Render_html Render_text Result_profile Table Topk Xsact_util
