test/test_util.ml: Alcotest Array Gen Grid List Prng QCheck QCheck_alcotest Sampling String Textutil Timing Xsact_util
