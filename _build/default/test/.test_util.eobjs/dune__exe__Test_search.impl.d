test/test_search.ml: Alcotest Array Dewey Doctree Index List Node_category Printf QCheck QCheck_alcotest Search Slca String Token Xml Xml_parse Xml_print
