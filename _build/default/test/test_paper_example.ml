(* Golden tests against the paper's running example (Figures 1 and 2).

   Figure 1 gives exact per-result statistics for two TomTom GPS results of
   the query {TomTom, GPS}:

     GPS 1 (11 reviews):  pro:easy-to-read 10, pro:compact 8,
                          best-use:auto 6, user-category:casual 6,
                          pro:large-screen 1
     GPS 3 (68 reviews):  pro:satellites 44, pro:easy-to-setup 40,
                          pro:compact 38, best-use:routers 26,
                          pro:large-screen 4

   We rebuild exactly these profiles and assert the paper's qualitative
   claims: the snippet-style summaries compare poorly (their DoD is the
   paper's "2"-style low value), XSACT's DFSs do better, the shared
   pro:compact type differentiates (8/11 = 73% vs 38/68 = 56%, raw gap 30),
   and the comparison table contains the rows Figure 2 shows. *)

let check = Alcotest.check
let contains = Xsact_util.Textutil.contains_substring

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

let gps1 =
  Result_profile.make ~label:"TomTom Go 630 Portable GPS"
    ~populations:[ ("review", 11); ("product", 1) ]
    [
      (f ~e:"product" ~a:"name" ~v:"TomTom Go 630 Portable GPS", 1);
      (f ~e:"product" ~a:"rating" ~v:"4.2", 1);
      (f ~e:"review" ~a:"pro:easy-to-read" ~v:"yes", 10);
      (f ~e:"review" ~a:"pro:compact" ~v:"yes", 8);
      (f ~e:"review" ~a:"best-use:auto" ~v:"yes", 6);
      (f ~e:"review" ~a:"user-category:casual" ~v:"yes", 6);
      (f ~e:"review" ~a:"pro:large-screen" ~v:"yes", 1);
    ]

let gps3 =
  Result_profile.make ~label:"TomTom Go 730 (Tri-linguial) BOX"
    ~populations:[ ("review", 68); ("product", 1) ]
    [
      (f ~e:"product" ~a:"name" ~v:"TomTom Go 730 (Tri-linguial) BOX", 1);
      (f ~e:"product" ~a:"rating" ~v:"4.1", 1);
      (f ~e:"review" ~a:"pro:acquires-satellites-quickly" ~v:"yes", 44);
      (f ~e:"review" ~a:"pro:easy-to-setup" ~v:"yes", 40);
      (f ~e:"review" ~a:"pro:compact" ~v:"yes", 38);
      (f ~e:"review" ~a:"best-use:faster-routers" ~v:"yes", 26);
      (f ~e:"review" ~a:"pro:large-screen" ~v:"yes", 4);
    ]

let context () = Dod.make_context [| gps1; gps3 |]

let find p ~e ~a =
  Option.get (Result_profile.find_type p { Feature.entity = e; attribute = a })

let test_figure1_statistics () =
  (* The Figure 1 stats blocks print the expected lines. *)
  let s1 = Render_text.result_stats gps1 in
  check Alcotest.bool "# of reviews: 11" true (contains s1 "# of review: 11");
  check Alcotest.bool "easy to read: 10" true
    (contains s1 "pro:easy-to-read: yes: 10");
  check Alcotest.bool "compact: 8" true (contains s1 "pro:compact: yes: 8");
  check Alcotest.bool "auto: 6" true (contains s1 "best-use:auto: yes: 6");
  let s3 = Render_text.result_stats gps3 in
  check Alcotest.bool "# of reviews: 68" true (contains s3 "# of review: 68");
  check Alcotest.bool "satellites: 44" true
    (contains s3 "pro:acquires-satellites-quickly: yes: 44")

let test_significance_order_matches_paper () =
  (* Figure 1 lists GPS 1's statistics most-frequent first; our canonical
     type order must agree. *)
  let review_entity =
    gps1.Result_profile.entities.(Array.length gps1.Result_profile.entities - 1)
  in
  let attrs =
    Array.to_list review_entity.Result_profile.types
    |> List.map (fun (t : Result_profile.type_info) ->
           t.Result_profile.ftype.Feature.attribute)
  in
  check
    Alcotest.(list string)
    "GPS1 order"
    [
      "pro:easy-to-read"; "pro:compact"; "best-use:auto";
      "user-category:casual"; "pro:large-screen";
    ]
    attrs

let test_compact_differentiates () =
  (* pro:compact: 8 vs 38 -> |8-38| = 30 > 10% * 8: differentiable when both
     DFSs include it. *)
  let c = context () in
  let gi1 = find gps1 ~e:"review" ~a:"pro:compact" in
  match
    List.filter (fun l -> l.Dod.other = 1) (Dod.links c ~i:0 ~gi:gi1)
  with
  | [ link ] ->
    check Alcotest.int "gap at first feature" 1 link.Dod.gap_self;
    check Alcotest.bool "differentiable at q=1/q=1" true
      (Dod.differentiable link ~q_self:1 ~q_other:1)
  | _ -> Alcotest.fail "expected exactly one link"

let test_large_screen_also_gaps () =
  (* 1/11 = 9% vs 4/68 = 6%: raw counts 1 vs 4 differ by 3 > 0.1 -> the paper
     notes large-screen COULD differentiate but is not significant enough to
     be a faithful summary; validity keeps it out of small DFSs. *)
  let c = context () in
  let gi1 = find gps1 ~e:"review" ~a:"pro:large-screen" in
  (match List.filter (fun l -> l.Dod.other = 1) (Dod.links c ~i:0 ~gi:gi1) with
  | [ link ] -> check Alcotest.int "gap exists" 1 link.Dod.gap_self
  | _ -> Alcotest.fail "link missing");
  (* With L = 6 the XSACT DFS of GPS1 cannot contain large-screen: the four
     more significant review types plus it would be fine (5 features), but
     every algorithm prefers shared differentiating types; more to the
     point, validity would force all four above it first. *)
  let dfss = Multi_swap.generate c ~limit:6 in
  let gi_ls = find gps1 ~e:"review" ~a:"pro:large-screen" in
  let included = Dfs.q dfss.(0) gi_ls > 0 in
  (* If included, then all more significant review types are too. *)
  if included then
    List.iter
      (fun a ->
        check Alcotest.bool (a ^ " forced in") true
          (Dfs.q dfss.(0) (find gps1 ~e:"review" ~a) > 0))
      [ "pro:easy-to-read"; "pro:compact"; "best-use:auto"; "user-category:casual" ]

let test_xsact_beats_snippets () =
  (* The paper: snippet DFSs have DoD 2; XSACT's reach 5 (with their L).
     Exact numbers depend on the snippet algorithm, so assert the shape:
     XSACT's multi-swap DoD strictly exceeds the independent snippet DoD
     and reaches the instance optimum. *)
  let c = context () in
  let limit = 6 in
  let snippet_dod = Dod.total c (Topk.generate c ~limit) in
  let xsact_dod = Dod.total c (Multi_swap.generate c ~limit) in
  let optimum = Exhaustive.optimum c ~limit in
  check Alcotest.bool
    (Printf.sprintf "xsact (%d) > snippets (%d)" xsact_dod snippet_dod)
    true (xsact_dod > snippet_dod);
  check Alcotest.int "xsact reaches the optimum on this instance" optimum
    xsact_dod;
  (* Figure 2's table: DoD is clearly positive. *)
  check Alcotest.bool "positive differentiation" true (xsact_dod >= 3)

let test_figure2_table_contents () =
  let c = context () in
  let dfss = Multi_swap.generate c ~limit:6 in
  let table = Table.build ~size_bound:6 c dfss in
  let text = Render_text.table table in
  (* Both product names head the columns. *)
  check Alcotest.bool "GPS1 column" true (contains text "TomTom Go 630");
  check Alcotest.bool "GPS3 column" true (contains text "TomTom Go 730");
  (* The shared compact row with Figure 1's counts. *)
  check Alcotest.bool "compact row shows 8/11" true (contains text "yes (8/11)");
  check Alcotest.bool "compact row shows 38/68" true
    (contains text "yes (38/68)");
  (* Name differentiates (distinct values, both selected). *)
  let name_row =
    List.find_opt
      (fun (r : Table.row) -> r.Table.ftype.Feature.attribute = "name")
      table.Table.rows
  in
  (match name_row with
  | Some row -> check Alcotest.bool "name differentiates" true row.Table.differentiating
  | None -> Alcotest.fail "name row missing");
  (* HTML rendering works on the paper example too. *)
  let html = Render_html.table table in
  check Alcotest.bool "html has both columns" true
    (contains html "TomTom Go 630" && contains html "TomTom Go 730")

let test_rate_measure_on_paper_example () =
  (* Under the rate measure, compact is 73% vs 56%: still differentiable. *)
  let c =
    Dod.make_context
      ~params:{ Dod.threshold_pct = 10.0; measure = Dod.Rate }
      [| gps1; gps3 |]
  in
  let gi1 = find gps1 ~e:"review" ~a:"pro:compact" in
  match List.filter (fun l -> l.Dod.other = 1) (Dod.links c ~i:0 ~gi:gi1) with
  | [ link ] ->
    check Alcotest.bool "73% vs 56% differentiable" true
      (Dod.differentiable link ~q_self:1 ~q_other:1)
  | _ -> Alcotest.fail "link missing"

let () =
  Alcotest.run "xsact_paper_example"
    [
      ( "figure1",
        [
          Alcotest.test_case "statistics block" `Quick test_figure1_statistics;
          Alcotest.test_case "significance order" `Quick
            test_significance_order_matches_paper;
          Alcotest.test_case "compact gap" `Quick test_compact_differentiates;
          Alcotest.test_case "large-screen validity" `Quick
            test_large_screen_also_gaps;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "xsact beats snippets" `Quick
            test_xsact_beats_snippets;
          Alcotest.test_case "table contents" `Quick test_figure2_table_contents;
          Alcotest.test_case "rate measure" `Quick
            test_rate_measure_on_paper_example;
        ] );
    ]
