(* Integration tests for the two executables, run as real subprocesses.
   The binaries are declared as dune deps of this test, so their paths are
   stable relative to the build directory. *)

let check = Alcotest.check
let contains = Xsact_util.Textutil.contains_substring

(* Resolve the binaries relative to this test executable so the suite works
   both under `dune runtest` and `dune exec test/test_cli.exe`. *)
let bin name =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    name

let cli = bin "xsact_cli.exe"
let site = bin "xsact_site.exe"

(* Run a command, capture stdout+stderr, return (exit_code, output). *)
let run cmd =
  let tmp = Filename.temp_file "xsact_cli_test" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd tmp) in
  let ic = open_in_bin tmp in
  let output =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  (code, output)

let run_ok cmd =
  let code, output = run cmd in
  if code <> 0 then
    Alcotest.failf "command failed (%d): %s\n%s" code cmd output;
  output

let test_search () =
  let out = run_ok (cli ^ " search -d imdb -q 'thriller heist' --limit 3") in
  check Alcotest.bool "lists movies" true (contains out "<movie>");
  check Alcotest.bool "ranked" true (contains out " 1. ")

let test_search_no_results () =
  let out = run_ok (cli ^ " search -d imdb -q zzzznope") in
  check Alcotest.bool "no results message" true (contains out "no results")

let test_compare () =
  let out =
    run_ok (cli ^ " compare -d imdb -q 'thriller heist' -L 6 --top 3 -a multi-swap")
  in
  check Alcotest.bool "table rendered" true (contains out "feature type");
  check Alcotest.bool "dod footer" true (contains out "DoD =");
  check Alcotest.bool "algorithm line" true (contains out "multi-swap")

let test_compare_html () =
  let tmp = Filename.temp_file "xsact_cmp" ".html" in
  let _ =
    run_ok
      (Printf.sprintf "%s compare -d product-reviews -q gps -L 6 --top 2 --html %s"
         cli tmp)
  in
  let ic = open_in_bin tmp in
  let html =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  check Alcotest.bool "html document" true (contains html "<!DOCTYPE html>");
  check Alcotest.bool "dod shown" true (contains html "Degree of differentiation")

let test_compare_errors () =
  let code, output = run (cli ^ " compare -d imdb -q zzzznope -L 6") in
  check Alcotest.bool "nonzero exit" true (code <> 0);
  check Alcotest.bool "error message" true (contains output "no results");
  let code2, output2 = run (cli ^ " compare -q x -L 6") in
  check Alcotest.bool "missing corpus rejected" true (code2 <> 0);
  check Alcotest.bool "mentions required option" true
    (contains output2 "--dataset" || contains output2 "required")

let test_stats_and_categories () =
  let out = run_ok (cli ^ " stats -d outdoor-retailer") in
  check Alcotest.bool "element count" true (contains out "elements:");
  check Alcotest.bool "tag histogram" true (contains out "top tags:");
  let cats = run_ok (cli ^ " categories -d outdoor-retailer") in
  check Alcotest.bool "brand entity" true (contains cats "brand");
  check Alcotest.bool "entity label" true (contains cats "entity")

let test_snippets () =
  let out = run_ok (cli ^ " snippets -d imdb -q spielberg -L 4 --top 2") in
  (* two snippet blocks, each with indented "attribute: value" lines *)
  let indented =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 2 && l.[0] = ' ' && l.[1] = ' ')
  in
  check Alcotest.int "4 features per snippet, 2 snippets" 8
    (List.length indented);
  List.iter
    (fun l -> check Alcotest.bool "attr: value shape" true (contains l ": "))
    indented

let test_generate_roundtrip () =
  let tmp = Filename.temp_file "xsact_corpus" ".xml" in
  let _ =
    run_ok (Printf.sprintf "%s generate imdb -o %s --scale 0.05" cli tmp)
  in
  let out =
    run_ok (Printf.sprintf "%s search -f %s -q drama --limit 2" cli tmp)
  in
  Sys.remove tmp;
  check Alcotest.bool "file corpus searchable" true (contains out "<movie>")

let test_generate_lists_roundtrip () =
  let dir = Filename.temp_file "xsact_lists_cli" "" in
  Sys.remove dir;
  let _ =
    run_ok
      (Printf.sprintf "%s generate imdb -o %s --format lists --scale 0.05" cli dir)
  in
  let out =
    run_ok (Printf.sprintf "%s compare --lists %s -q drama -L 4 --top 2" cli dir)
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  check Alcotest.bool "lists corpus comparable" true (contains out "DoD =")

let test_explain_option () =
  let out =
    run_ok
      (cli ^ " compare -d product-reviews -q 'tomtom gps' -L 6 --top 2 --explain")
  in
  check Alcotest.bool "explanation lines" true (contains out " vs ");
  check Alcotest.bool "measures shown" true (contains out "measures")

let test_markdown_option () =
  let out =
    run_ok (cli ^ " compare -d imdb -q spielberg -L 5 --top 2 --markdown")
  in
  check Alcotest.bool "markdown table" true (contains out "| feature type |");
  check Alcotest.bool "markdown footer" true (contains out "*DoD =")

let test_weight_option () =
  let out =
    run_ok
      (cli
     ^ " compare -d imdb -q 'horror vampire' -L 6 --top 3 --weight title=5")
  in
  check Alcotest.bool "weighted run renders" true (contains out "DoD =")

let test_bad_dataset () =
  let code, output = run (cli ^ " stats -d nope") in
  check Alcotest.bool "nonzero exit" true (code <> 0);
  check Alcotest.bool "helpful message" true (contains output "unknown dataset")

let test_repl_scripted () =
  let script =
    "search tomtom gps\nselect 1 2\nsize 6\nweight battery=3\ncompare\nstats 1\nprune matched\nhelp\nquit\n"
  in
  let out =
    run_ok
      (Printf.sprintf "printf '%s' | %s repl -d product-reviews"
         (String.concat "\\n" (String.split_on_char '\n' script))
         cli)
  in
  check Alcotest.bool "banner" true (contains out "xsact repl");
  check Alcotest.bool "results listed" true (contains out "TomTom");
  check Alcotest.bool "selection marks" true (contains out "]*");
  check Alcotest.bool "table rendered" true (contains out "DoD =");
  check Alcotest.bool "stats block" true (contains out "ATTR:VALUE");
  check Alcotest.bool "help text" true (contains out "commands:");
  check Alcotest.bool "clean exit" true (contains out "bye")

let test_repl_errors () =
  let out =
    run_ok
      (Printf.sprintf
         "printf 'compare\\nbogus\\nsize x\\nquit\\n' | %s repl -d imdb" cli)
  in
  check Alcotest.bool "needs selection" true
    (contains out "select at least two");
  check Alcotest.bool "unknown command" true (contains out "unknown command");
  check Alcotest.bool "usage message" true (contains out "usage: size")

let test_site_generation () =
  let dir = Filename.temp_file "xsact_site_test" "" in
  Sys.remove dir;
  let _ = run_ok (Printf.sprintf "%s -o %s -L 6 --top 3" site dir) in
  check Alcotest.bool "index exists" true
    (Sys.file_exists (Filename.concat dir "index.html"));
  check Alcotest.bool "imdb pages" true
    (Sys.file_exists (Filename.concat dir "imdb/index.html"));
  let count = ref 0 in
  let rec sweep d =
    Array.iter
      (fun entry ->
        let path = Filename.concat d entry in
        if Sys.is_directory path then sweep path
        else begin
          incr count;
          Sys.remove path
        end)
      (Sys.readdir d);
    Unix.rmdir d
  in
  sweep dir;
  check Alcotest.bool "many pages" true (!count > 10)

let () =
  Alcotest.run "xsact_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "search" `Slow test_search;
          Alcotest.test_case "search no results" `Slow test_search_no_results;
          Alcotest.test_case "compare" `Slow test_compare;
          Alcotest.test_case "compare html" `Slow test_compare_html;
          Alcotest.test_case "compare errors" `Slow test_compare_errors;
          Alcotest.test_case "stats/categories" `Slow test_stats_and_categories;
          Alcotest.test_case "snippets" `Slow test_snippets;
          Alcotest.test_case "generate xml" `Slow test_generate_roundtrip;
          Alcotest.test_case "generate lists" `Slow test_generate_lists_roundtrip;
          Alcotest.test_case "weight option" `Slow test_weight_option;
          Alcotest.test_case "explain option" `Slow test_explain_option;
          Alcotest.test_case "markdown option" `Slow test_markdown_option;
          Alcotest.test_case "bad dataset" `Slow test_bad_dataset;
          Alcotest.test_case "repl scripted" `Slow test_repl_scripted;
          Alcotest.test_case "repl errors" `Slow test_repl_errors;
        ] );
      ("site", [ Alcotest.test_case "generation" `Slow test_site_generation ]);
    ]
