(* Tests for the DFS generation algorithms: validity post-conditions,
   local-optimality oracles, the multi-swap DP checked exactly against
   brute-force enumeration, and the expected quality ordering
   topk <= single-swap / multi-swap <= exhaustive optimum. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

let synthetic ~seed ~results =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results ~entities:2
    ~types_per_entity:3 ~values_per_type:2 ~max_count:4

let tiny ~seed ~results =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results ~entities:1
    ~types_per_entity:3 ~values_per_type:2 ~max_count:3

(* ---- Validity post-conditions (property, all algorithms) --------------- *)

let prop_outputs_valid =
  QCheck.Test.make ~name:"all algorithms produce valid DFSs" ~count:100
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 8)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      let c = Dod.make_context profiles in
      List.for_all
        (fun alg ->
          let dfss = Algorithm.generate alg c ~limit in
          Array.for_all (fun d -> Dfs.is_valid ~limit d) dfss)
        Algorithm.practical)

(* Monotone objective => swap algorithms use the whole budget. *)
let prop_budget_used =
  QCheck.Test.make ~name:"swap algorithms fill min(limit, total)" ~count:100
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 8)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      let c = Dod.make_context profiles in
      List.for_all
        (fun alg ->
          let dfss = Algorithm.generate alg c ~limit in
          Array.for_all2
            (fun d (p : Result_profile.t) ->
              Dfs.size d = min limit p.Result_profile.total_features)
            dfss profiles)
        [ Algorithm.Topk; Algorithm.Single_swap; Algorithm.Multi_swap ])

(* ---- Quality ordering ----------------------------------------------------- *)

let prop_swaps_dominate_topk =
  QCheck.Test.make ~name:"single/multi-swap DoD >= topk DoD" ~count:150
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 8)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      let c = Dod.make_context profiles in
      let dod alg = Dod.total c (Algorithm.generate alg c ~limit) in
      let topk = dod Algorithm.Topk in
      dod Algorithm.Single_swap >= topk && dod Algorithm.Multi_swap >= topk)

let prop_bounded_by_optimum =
  QCheck.Test.make ~name:"all methods <= exhaustive optimum" ~count:60
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 4)))
    (fun (seed, limit) ->
      let profiles = tiny ~seed ~results:2 in
      let c = Dod.make_context profiles in
      match Exhaustive.optimum ~max_states:400_000 c ~limit with
      | exception Exhaustive.Too_large _ -> QCheck.assume_fail ()
      | opt ->
        List.for_all
          (fun alg -> Dod.total c (Algorithm.generate alg c ~limit) <= opt)
          Algorithm.practical)

(* ---- Local-optimality post-conditions -------------------------------------- *)

let prop_single_swap_no_improving_move =
  QCheck.Test.make ~name:"single-swap output has no improving move" ~count:80
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 6)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      let c = Dod.make_context profiles in
      let dfss = Single_swap.generate c ~limit in
      not (Single_swap.improving_move_exists c ~limit dfss))

let prop_multi_swap_is_single_swap_optimal =
  QCheck.Test.make ~name:"multi-swap output is also single-swap optimal"
    ~count:80
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 6)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      let c = Dod.make_context profiles in
      let dfss = Multi_swap.generate c ~limit in
      (* A multi-swap optimum admits no DoD-improving single move either
         (single moves are a special case of reshaping one DFS). *)
      let before = Dod.total c dfss in
      not (Single_swap.improving_move_exists c ~limit dfss)
      ||
      (* The oracle also reports packed (type-spreading) moves; only genuine
         DoD improvements violate multi-swap optimality. *)
      let climbed = Single_swap.generate ~init:dfss c ~limit in
      Dod.total c climbed = before)

(* ---- Multi-swap best response vs. brute force ------------------------------- *)

(* The DP maximizes gain = type_tie_base * DoD-vs-others + spread bonus,
   where a selected type's bonus is 1 plus the number of other results
   sharing it. Enumerate all valid DFSs of result 0 and verify none beats
   the DP's answer on that packed objective. *)
let prop_best_response_exact =
  QCheck.Test.make ~name:"best_response matches brute-force enumeration"
    ~count:120
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 5)))
    (fun (seed, limit) ->
      let profiles = tiny ~seed ~results:3 in
      let c = Dod.make_context profiles in
      let dfss = Topk.generate c ~limit in
      let response = Multi_swap.best_response c ~limit dfss 0 in
      let packed d =
        let with_d = Array.copy dfss in
        with_d.(0) <- d;
        let dod =
          Dod.dod_pair c ~i:0 ~j:1 with_d.(0) with_d.(1)
          + Dod.dod_pair c ~i:0 ~j:2 with_d.(0) with_d.(2)
        in
        let bonus =
          List.fold_left
            (fun acc gi -> acc + 1 + List.length (Dod.links c ~i:0 ~gi))
            0 (Dfs.selected_types d)
        in
        (dod * 4096) + bonus
      in
      let best_enum =
        List.fold_left
          (fun acc d -> max acc (packed d))
          0
          (Exhaustive.enumerate_valid ~limit profiles.(0))
      in
      packed response = best_enum)

(* ---- Deterministic fixed cases ----------------------------------------------- *)

(* Tie-rich instances (counts in {1,2}, many types and values) are where the
   coordinated multi-feature reshapes of the DP pay off: single-feature hill
   climbing gets stuck when reaching a deep gap feature costs strictly-worse
   intermediate states. This pinned instance is a regression witness for
   that separation (found by scanning the synthetic family). *)
let deep_gap_config seed =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results:5 ~entities:1
    ~types_per_entity:8 ~values_per_type:5 ~max_count:2

let test_multi_beats_single_on_pinned_instance () =
  let witnesses =
    List.filter
      (fun seed ->
        let profiles = deep_gap_config seed in
        let c = Dod.make_context profiles in
        let single = Dod.total c (Single_swap.generate c ~limit:5) in
        let multi = Dod.total c (Multi_swap.generate c ~limit:5) in
        multi > single)
      [ 2; 4; 10; 24; 29; 31; 33; 40 ]
  in
  (* All eight seeds separated the algorithms when pinned; demand that at
     least half still do, so the test survives benign tie-break shifts while
     still catching a collapse of the DP's advantage. *)
  check Alcotest.bool
    (Printf.sprintf "multi > single on >= 4 of 8 pinned seeds (got %d)"
       (List.length witnesses))
    true
    (List.length witnesses >= 4)

let test_fixed_instance_values () =
  (* Three movies, shared scalar schema: title always differs, year differs
     only against the third, rating all equal. L=3 lets everything in. *)
  let mk label year =
    Result_profile.make ~label ~populations:[]
      [
        (f ~e:"m" ~a:"title" ~v:label, 1);
        (f ~e:"m" ~a:"year" ~v:year, 1);
        (f ~e:"m" ~a:"rating" ~v:"7.0", 1);
      ]
  in
  let profiles = [| mk "A" "1999"; mk "B" "1999"; mk "C" "2005" |] in
  let c = Dod.make_context profiles in
  List.iter
    (fun alg ->
      let dfss = Algorithm.generate alg c ~limit:3 in
      (* titles: 3 pairs; years: 2 pairs; rating: 0 -> optimum 5. *)
      check Alcotest.int
        (Algorithm.to_string alg ^ " reaches optimum")
        5 (Dod.total c dfss))
    [ Algorithm.Single_swap; Algorithm.Multi_swap ];
  check Alcotest.int "exhaustive agrees" 5 (Exhaustive.optimum c ~limit:3)

let test_stats_reported () =
  let profiles = synthetic ~seed:42 ~results:3 in
  let c = Dod.make_context profiles in
  let _, sstats = Single_swap.generate_with_stats c ~limit:4 in
  check Alcotest.bool "rounds >= 1" true (sstats.Single_swap.rounds >= 1);
  let _, mstats = Multi_swap.generate_with_stats c ~limit:4 in
  check Alcotest.bool "rounds >= 1" true (mstats.Multi_swap.rounds >= 1)

let test_invalid_init_rejected () =
  let profiles = synthetic ~seed:5 ~results:2 in
  let c = Dod.make_context profiles in
  let oversized = Array.map (fun p -> Topk.generate_one ~limit:100 p) profiles in
  Alcotest.check_raises "single-swap rejects oversized init"
    (Invalid_argument "Single_swap.generate: invalid initial DFS 0") (fun () ->
      ignore (Single_swap.generate ~init:oversized c ~limit:1));
  Alcotest.check_raises "multi-swap rejects oversized init"
    (Invalid_argument "Multi_swap.generate: invalid initial DFS 0") (fun () ->
      ignore (Multi_swap.generate ~init:oversized c ~limit:1))

let test_exhaustive_guard () =
  let profiles =
    Xsact_workload.Workload.synthetic_profiles ~seed:1 ~results:4 ~entities:3
      ~types_per_entity:6 ~values_per_type:4 ~max_count:9
  in
  let c = Dod.make_context profiles in
  match Exhaustive.generate ~max_states:1000 c ~limit:10 with
  | exception Exhaustive.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large"

let test_enumerate_valid_small () =
  (* One entity, two types with significances 2 > 1, one feature each.
     Valid selections within limit 2: {}, {t_hi}, {t_hi, t_lo}. *)
  let p =
    Result_profile.make ~label:"r" ~populations:[]
      [ (f ~e:"e" ~a:"hi" ~v:"x", 2); (f ~e:"e" ~a:"lo" ~v:"y", 1) ]
  in
  let all = Exhaustive.enumerate_valid ~limit:2 p in
  check Alcotest.int "3 valid DFSs" 3 (List.length all);
  List.iter
    (fun d -> check Alcotest.bool "each valid" true (Dfs.is_valid ~limit:2 d))
    all

let test_greedy_comparable () =
  let profiles = synthetic ~seed:7 ~results:3 in
  let c = Dod.make_context profiles in
  let greedy = Dod.total c (Greedy.generate c ~limit:5) in
  let topk = Dod.total c (Topk.generate c ~limit:5) in
  check Alcotest.bool "greedy >= topk here" true (greedy >= topk)

(* Multi-swap strictly beats single-swap on a measurable fraction of random
   instances (the Figure 4(a) phenomenon); equality is common, regression
   would be multi < single somewhere. *)
let test_multi_vs_single_statistics () =
  let wins = ref 0 and losses = ref 0 in
  for seed = 0 to 120 do
    let profiles = deep_gap_config seed in
    let c = Dod.make_context profiles in
    let s = Dod.total c (Single_swap.generate c ~limit:5) in
    let m = Dod.total c (Multi_swap.generate c ~limit:5) in
    if m > s then incr wins;
    if m < s then incr losses
  done;
  check Alcotest.bool
    (Printf.sprintf "multi wins on several instances (got %d)" !wins)
    true (!wins >= 5);
  (* Not a theorem that multi >= single pointwise (they reach different
     local optima), but wins should dominate losses. *)
  check Alcotest.bool
    (Printf.sprintf "multi wins (%d) outnumber losses (%d)" !wins !losses)
    true
    (!wins > !losses)

let () =
  Alcotest.run "xsact_algorithms"
    [
      ( "postconditions",
        [
          qtest prop_outputs_valid;
          qtest prop_budget_used;
          qtest prop_single_swap_no_improving_move;
          qtest prop_multi_swap_is_single_swap_optimal;
        ] );
      ( "quality",
        [
          qtest prop_swaps_dominate_topk;
          qtest prop_bounded_by_optimum;
          qtest prop_best_response_exact;
          Alcotest.test_case "pinned seeds: multi beats single" `Quick
            test_multi_beats_single_on_pinned_instance;
          Alcotest.test_case "fixed instance optimum" `Quick
            test_fixed_instance_values;
          Alcotest.test_case "multi vs single statistics" `Slow
            test_multi_vs_single_statistics;
          Alcotest.test_case "greedy sanity" `Quick test_greedy_comparable;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "stats" `Quick test_stats_reported;
          Alcotest.test_case "invalid init" `Quick test_invalid_init_rejected;
          Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "enumerate_valid" `Quick test_enumerate_valid_small;
        ] );
    ]
