(** XML parser (DOM construction over the {!Xml_sax} event stream).

    Covers the subset of XML 1.0 our datasets use: element trees with
    attributes, character data, CDATA sections, comments, processing
    instructions, an optional XML declaration, a skipped DOCTYPE, and the
    five predefined entities plus numeric character references. Namespaces
    and DTD-defined entities are out of scope (the corpora never use them).

    Whitespace-only character runs between markup are treated as formatting
    and dropped, except when adjacent to a CDATA section (whose character
    data they belong to) — so pretty-printed and compact documents parse to
    equal trees.

    All failures are reported as located {!error} values; no exception
    escapes {!parse_string}. *)

type position = Xml_sax.position = { line : int; col : int }
(** 1-based line and column of the offending byte. *)

type error = Xml_sax.error = { position : position; message : string }

val error_to_string : error -> string
(** ["line L, column C: message"]. *)

val default_max_depth : int
(** 512 — deep enough for any real dataset, shallow enough that a hostile
    document can't provoke unbounded recursion downstream. *)

val parse_string : ?max_depth:int -> string -> (Xml.document, error) result
(** Parse a complete document (exactly one root element; trailing content
    other than whitespace, comments and PIs is an error). Element nesting
    deeper than [max_depth] (default {!default_max_depth}) is an [error]
    (reported at position 0,0 — the document is rejected, not truncated).
    @raise Invalid_argument if [max_depth < 1]. *)

val parse_file : ?max_depth:int -> string -> (Xml.document, error) result
(** [parse_file path] reads the file and parses it. I/O failures are mapped
    to an [error] at position 0,0. *)
