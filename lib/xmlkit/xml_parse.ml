type position = Xml_sax.position = { line : int; col : int }
type error = Xml_sax.error = { position : position; message : string }

let error_to_string = Xml_sax.error_to_string

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let all_space s = String.for_all is_space s

(* DOM construction is a fold over the SAX event stream. One policy lives
   here rather than in the scanner: whitespace-only character runs between
   markup are formatting, not data, and are dropped — unless they touch a
   CDATA section, whose character data they belong to. [pending_ws] holds a
   whitespace run whose fate depends on the next event. *)
type frame = {
  tag : Xml.name;
  attrs : Xml.attribute list;
  mutable children : Xml.node list;  (* reversed *)
  mutable pending_ws : string option;
}

type builder = {
  mutable stack : frame list;
  mutable depth : int;
  max_depth : int;
  mutable root : Xml.element option;
}

let default_max_depth = 512

(* Escapes [on_event] only; [parse_string] maps it to an [error]. *)
exception Too_deep

let flush_ws frame =
  match frame.pending_ws with
  | None -> ()
  | Some ws ->
    frame.children <- Xml.Text ws :: frame.children;
    frame.pending_ws <- None

let drop_ws frame = frame.pending_ws <- None

let add_child b node =
  match b.stack with
  | frame :: _ -> frame.children <- node :: frame.children
  | [] -> () (* prolog/epilog comments and PIs are not part of the tree *)

let on_event b (event : Xml_sax.event) =
  match event with
  | Xml_sax.Start_element (tag, attrs) ->
    if b.depth >= b.max_depth then raise Too_deep;
    b.depth <- b.depth + 1;
    (match b.stack with frame :: _ -> drop_ws frame | [] -> ());
    b.stack <- { tag; attrs; children = []; pending_ws = None } :: b.stack
  | Xml_sax.End_element _ ->
    (match b.stack with
    | frame :: rest ->
      b.depth <- b.depth - 1;
      drop_ws frame;
      let element =
        { Xml.tag = frame.tag; attrs = frame.attrs;
          children = List.rev frame.children }
      in
      b.stack <- rest;
      (match rest with
      | parent :: _ -> parent.children <- Xml.Element element :: parent.children
      | [] -> b.root <- Some element)
    | [] -> assert false (* the scanner validated nesting *))
  | Xml_sax.Text s ->
    (match b.stack with
    | [] -> ()
    | frame :: _ ->
      if not (all_space s) then frame.children <- Xml.Text s :: frame.children
      else begin
        (* Keep the run right away when it follows CDATA; otherwise park it
           until we know whether CDATA follows. *)
        match frame.children with
        | Xml.Cdata _ :: _ -> frame.children <- Xml.Text s :: frame.children
        | _ -> frame.pending_ws <- Some s
      end)
  | Xml_sax.Cdata s ->
    (match b.stack with
    | [] -> ()
    | frame :: _ ->
      flush_ws frame;
      frame.children <- Xml.Cdata s :: frame.children)
  | Xml_sax.Comment s ->
    (match b.stack with frame :: _ -> drop_ws frame | [] -> ());
    add_child b (Xml.Comment s)
  | Xml_sax.Pi (target, body) ->
    (match b.stack with frame :: _ -> drop_ws frame | [] -> ());
    add_child b (Xml.Pi (target, body))

let parse_string ?(max_depth = default_max_depth) src =
  if max_depth < 1 then invalid_arg "Xml_parse.parse_string: max_depth < 1";
  let b = { stack = []; depth = 0; max_depth; root = None } in
  match Xml_sax.fold src ~init:() ~f:(fun () e -> on_event b e) with
  | exception Too_deep ->
    Error
      { position = { line = 0; col = 0 };
        message =
          Printf.sprintf "element nesting deeper than %d (max_depth)"
            max_depth }
  | Error e -> Error e
  | Ok () ->
    (match b.root with
    | Some root -> Ok { Xml.root }
    | None ->
      (* The scanner guarantees a root element on success. *)
      assert false)

let parse_file ?max_depth path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
    Error { position = { line = 0; col = 0 }; message = msg }
  | src -> parse_string ?max_depth src
