(** Multi-swap-optimal DFS generation via dynamic programming.

    The paper: "A set of DFSs is multi-swap optimal if, by making changes to
    any number of features in a DFS, while keeping its validity and size
    limit bound, the degree of differentiation cannot increase. [...] We
    proposed a dynamic programming algorithm to achieve it efficiently."

    Realized here as iterated exact best responses. With all other DFSs
    fixed, the contribution of result [i]'s DFS to the total DoD decomposes
    additively over feature types, and each type's gain is a monotone step
    function of its selected-prefix length (see {!Dod.threshold_q}). The
    optimal valid DFS for [i] then falls to a three-level DP:

    + within a significance class: a knapsack over the class's types,
      choosing a feature-prefix length per type (variant A: any subset of
      types; variant B: every type selected, for classes that must be fully
      included before a lower class opens);
    + across the classes of one entity: a full-prefix-of-classes recursion —
      either the current class is the last one touched (variant A), or it is
      fully included (variant B) and the recursion continues below;
    + across entities: a knapsack allocating the size budget [L].

    Applying best responses round-robin strictly increases the total DoD
    until a fixpoint, which is by construction multi-swap optimal (no
    reshaping of any single DFS can improve it). *)

type stats = {
  iterations : int;  (** adopted best responses *)
  rounds : int;  (** full passes over the results *)
  converged : bool;
      (** [true]: reached the multi-swap fixpoint; [false]: the deadline
          tripped first and the output is the (valid) best-so-far *)
}

val compute_thresholds :
  ?pool:Xsact_util.Domain_pool.t -> Dod.context -> Dfs.t array -> int ->
  int array array
(** [compute_thresholds context dfss i] is, per type of result [i], the
    sorted array of minimal prefix lengths at which each linked pair
    becomes differentiable given the other results' current selections
    ({!Dod.threshold_q} with infinite entries dropped) — the per-type gain
    curves the DP maximizes over. Depends only on the {e other} results'
    DFSs. With [pool], the per-type arrays are built in parallel across the
    pool's domains; the result is identical for every pool size. *)

val best_response :
  ?spread:bool -> ?thresholds:int array array -> Dod.context -> limit:int ->
  Dfs.t array -> int -> Dfs.t
(** [best_response context ~limit dfss i] is an optimal valid DFS for result
    [i] holding the other DFSs fixed. DoD ties are resolved toward more
    distinct selected types, preferring types more of the other results
    share (then toward fewer features): at zero cost, a response "spreads"
    over types the others can align on, which is what lets iterated
    responses escape the poor equilibria of pure best-response dynamics on
    corpora whose significances are all tied (see the implementation comment
    on the packed potential Φ; termination is still guaranteed). Exposed for
    tests, which compare its packed gain against exhaustive enumeration.

    [thresholds] supplies precomputed gain curves (from
    {!compute_thresholds} against the same [dfss]); without it they are
    recomputed, which is exact but wasteful inside the iteration. *)

val generate :
  ?init:Dfs.t array -> ?spread:bool -> ?cache:bool -> ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array
(** Iterate best responses from {!Topk.generate} (or [init]) to a multi-swap
    optimum. [spread] (default [true]) enables the type-spreading
    tie-break; disabling it is the coordination ablation DESIGN.md calls
    out.

    [deadline] makes the iteration anytime: the token is polled before
    every best response, and once it trips the current configuration —
    valid after every adopted response — is returned as is with
    [converged = false] in the stats. A run whose deadline never trips is
    bit-identical to an undeadlined run. Carries the ["compare.round"]
    {!Xsact_util.Failpoint} at every round start.

    [cache] (default [true]) shares each result's threshold arrays between
    its best response and both adoption-check evaluations, and keeps them
    across rounds until another result adopts a new DFS — every use is
    provably identical to a fresh computation, so the output never changes;
    [~cache:false] is the recompute-everything baseline kept for the
    micro-bench (see EXPERIMENTS.md). [domains] (default
    {!Xsact_util.Domain_pool.default_domains}) additionally builds the
    arrays in parallel on the shared domain pool when profiles are wide
    enough. *)

val generate_with_stats :
  ?init:Dfs.t array -> ?spread:bool -> ?cache:bool -> ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array * stats
