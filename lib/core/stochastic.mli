(** Stochastic DFS optimizers: simulated annealing and random-restart hill
    climbing.

    The paper closes asking for "better algorithms" for the NP-hard DFS
    construction problem; these two classics probe how much headroom the
    single-/multi-swap local optima leave. Both are deterministic given the
    seed, so benches and tests are reproducible. *)

type anneal_params = {
  seed : int;
  steps : int;  (** proposed moves *)
  initial_temperature : float;
  cooling : float;  (** geometric factor per step, in (0, 1) *)
}

val default_anneal : anneal_params
(** [{ seed = 0xA11EA; steps = 20_000; initial_temperature = 2.0;
      cooling = 0.9995 }]. *)

val anneal :
  ?params:anneal_params -> Dod.context -> limit:int -> Dfs.t array
(** Simulated annealing over the single-swap move space (grow / swap on a
    random result), Metropolis acceptance on the DoD delta, starting from
    the top-k solution. Returns the best configuration seen, polished to a
    single-swap optimum. Output is valid for [limit]. *)

val anneal_within :
  ?params:anneal_params -> ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array * [ `Complete | `Degraded ]
(** Like {!anneal}, but anytime: [deadline] is polled before every proposed
    move and inside the final polish; a tripped token returns the best
    configuration seen so far, tagged [`Degraded]. A run whose deadline
    never trips returns [`Complete] and is bit-identical to {!anneal}. *)

val restarts :
  ?seed:int -> ?rounds:int -> Dod.context -> limit:int -> Dfs.t array
(** [rounds] (default 8) independent single-swap climbs from random valid
    budget-filling initial DFSs (plus one from top-k); returns the best
    final configuration. *)

val restarts_within :
  ?seed:int -> ?rounds:int -> ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array * [ `Complete | `Degraded ]
(** Like {!restarts}, but anytime: [deadline] is polled between restarts and
    inside every climb; a tripped token returns the best configuration
    found so far (always at least the partially climbed top-k start),
    tagged [`Degraded]. A run whose deadline never trips returns
    [`Complete] and is bit-identical to {!restarts}. *)

val random_valid_dfs : Xsact_util.Prng.t -> limit:int -> Result_profile.t -> Dfs.t
(** A uniform-ish random valid DFS of size [min limit total]: repeatedly
    grows a uniformly chosen legal type. Exposed for tests. *)
