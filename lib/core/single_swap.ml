type stats = { iterations : int; rounds : int; converged : bool }

type move =
  | Grow of int  (* type index *)
  | Swap of int * int  (* shrink first, grow second *)

(* Legality of swaps, checked analytically so move enumeration allocates
   nothing. See dfs.mli for the closure rules. *)
let swap_legal dfs gm gp =
  gm <> gp
  && Dfs.q dfs gm >= 1
  && Dfs.q dfs gp < Dfs.max_q dfs gp
  &&
  let profile = Dfs.profile dfs in
  if Dfs.q dfs gm >= 2 then Dfs.q dfs gp > 0 || Dfs.can_open dfs gp
  else
    (* Shrinking gm closes it: the closure must survive both the close and
       the (possible) open of gp. *)
    Dfs.can_close dfs gm
    && (Dfs.q dfs gp > 0
       || Dfs.can_open dfs gp
          && (Result_profile.entity_index_of_type profile gm
              <> Result_profile.entity_index_of_type profile gp
             || (Result_profile.type_info profile gm).significance
                <= (Result_profile.type_info profile gp).significance))

(* Move values are packed as [dod_delta * type_tie_base + bonus_delta],
   where a type's spread bonus is 1 plus the number of other results sharing
   it: at equal DoD, moves that open distinct — and preferably alignable —
   types win, and zero-DoD moves that open such a type still count as
   improvements. This mirrors the multi-swap tie-breaking (see
   multi_swap.ml) and is what lets hill climbing escape the all-actors
   equilibria of all-tied corpora; each accepted move strictly increases the
   bounded potential Φ = type_tie_base · DoD + Σ bonuses (bonuses are static
   per type), so the climb still terminates. *)
let type_tie_base = 4096

let apply_move dfss i = function
  | Grow gi -> dfss.(i) <- Dfs.set_q dfss.(i) gi (Dfs.q dfss.(i) gi + 1)
  | Swap (gm, gp) ->
    let shrunk = Dfs.set_q dfss.(i) gm (Dfs.q dfss.(i) gm - 1) in
    dfss.(i) <- Dfs.set_q shrunk gp (Dfs.q shrunk gp + 1)

(* Best strictly-improving move for result i, if any.

   The DoD contribution of a type depends only on its own q (and the fixed
   other DFSs), so a swap's value decomposes exactly as
   shrink_delta(gm) + grow_delta(gp). Instead of scanning all O(T^2) pairs,
   rank the legal shrinks and grows independently and combine: for each
   shrink (best first), the first legality-compatible grow in rank order is
   its best partner, and the search stops as soon as the remaining shrinks
   cannot beat the incumbent even with the best grow overall. *)
let best_move ?(spread = true) context ~limit dfss i =
  let dfs = dfss.(i) in
  let n = Result_profile.num_types (Dfs.profile dfs) in
  let size = Dfs.size dfs in
  let best = ref None in
  let better delta =
    match !best with Some (b, _) -> delta > b | None -> delta > 0
  in
  (* Packed deltas of elementary half-moves (packing described above). The
     spread bonus of a type is 1 plus the number of other results sharing
     it, so zero-DoD moves align on comparable types (mirrors
     Multi_swap.spread_bonus). *)
  let type_bonus gi =
    if spread then 1 + Dod.num_links context ~i ~gi else 0
  in
  let grow_delta gi =
    let old_q = Dfs.q dfs gi in
    (Dod.delta_for_type context ~dfss ~i ~gi ~old_q ~new_q:(old_q + 1)
    * type_tie_base)
    + if old_q = 0 then type_bonus gi else 0
  in
  let shrink_delta gm =
    let old_q = Dfs.q dfs gm in
    (Dod.delta_for_type context ~dfss ~i ~gi:gm ~old_q ~new_q:(old_q - 1)
    * type_tie_base)
    - if old_q = 1 then type_bonus gm else 0
  in
  (* Pure grows (when the budget allows). *)
  let grows = ref [] in
  for gi = n - 1 downto 0 do
    if
      Dfs.q dfs gi < Dfs.max_q dfs gi
      && (Dfs.q dfs gi > 0 || Dfs.can_open dfs gi)
    then begin
      let delta = grow_delta gi in
      grows := (delta, gi) :: !grows;
      if size < limit && better delta then best := Some (delta, Grow gi)
    end
  done;
  (* Swaps: combine ranked shrinks with ranked grows. *)
  let grows = List.sort (fun (a, _) (b, _) -> Int.compare b a) !grows in
  let shrinks = ref [] in
  for gm = n - 1 downto 0 do
    if Dfs.q dfs gm >= 1 && (Dfs.q dfs gm >= 2 || Dfs.can_close dfs gm) then
      shrinks := (shrink_delta gm, gm) :: !shrinks
  done;
  let shrinks = List.sort (fun (a, _) (b, _) -> Int.compare b a) !shrinks in
  let best_grow = match grows with (d, _) :: _ -> d | [] -> min_int in
  List.iter
    (fun (sd, gm) ->
      (* The remaining shrinks are no better than sd; prune when even the
         best grow cannot improve on the incumbent. *)
      if best_grow <> min_int && better (sd + best_grow) then begin
        let rec scan = function
          | [] -> ()
          | (gd, gp) :: rest ->
            if not (better (sd + gd)) then () (* grows only get worse *)
            else if swap_legal dfs gm gp then
              best := Some (sd + gd, Swap (gm, gp))
            else scan rest
        in
        scan grows
      end)
    shrinks;
  !best

(* The climb is an anytime computation: [dfss] is valid after every
   applied move, so when the deadline trips (polled before each move
   search, the expensive unit) the loop just stops and the best-so-far
   configuration stands, flagged [converged = false]. Without a deadline
   the code path is untouched — outputs are bit-identical to an
   undeadlined run. *)
let climb ?spread ?deadline context ~limit dfss =
  let n = Array.length dfss in
  let iterations = ref 0 in
  let rounds = ref 0 in
  let stopped = ref false in
  let improved_in_round = ref true in
  while !improved_in_round && not !stopped do
    improved_in_round := false;
    incr rounds;
    Failpoint.hit "compare.round";
    for i = 0 to n - 1 do
      (* Exhaust improvements on result i before moving on. *)
      let continue = ref (not !stopped) in
      while !continue do
        if Deadline.over deadline then begin
          stopped := true;
          continue := false
        end
        else
          match best_move ?spread context ~limit dfss i with
          | None -> continue := false
          | Some (_, move) ->
            apply_move dfss i move;
            incr iterations;
            improved_in_round := true
      done
    done
  done;
  { iterations = !iterations; rounds = !rounds; converged = not !stopped }

let prepare ?init context ~limit =
  match init with
  | Some dfss ->
    Array.iteri
      (fun i d ->
        if not (Dfs.is_valid ~limit d) then
          invalid_arg
            (Printf.sprintf "Single_swap.generate: invalid initial DFS %d" i))
      dfss;
    Array.copy dfss
  | None -> Topk.generate context ~limit

let generate_with_stats ?init ?spread ?deadline context ~limit =
  let dfss = prepare ?init context ~limit in
  let stats = climb ?spread ?deadline context ~limit dfss in
  (dfss, stats)

let generate ?init ?spread ?deadline context ~limit =
  fst (generate_with_stats ?init ?spread ?deadline context ~limit)

let improving_move_exists context ~limit dfss =
  let n = Array.length dfss in
  let rec scan i =
    if i >= n then false
    else
      match best_move context ~limit dfss i with
      | Some _ -> true
      | None -> scan (i + 1)
  in
  scan 0
