let generate_within ?deadline context ~limit =
  let results = Dod.results context in
  let dfss = Array.map Dfs.empty results in
  (* Anytime loop: every accepted grow leaves [dfss] valid, and the final
     Topk.fill pads whatever prefix of the greedy schedule completed, so a
     tripped deadline — polled once per accepted move, the unit of work —
     simply ends the scan early with a `Degraded tag. Without a deadline
     the path is untouched and bit-identical to the original. *)
  let stopped = ref false in
  let continue = ref true in
  while !continue do
    if Deadline.over deadline then begin
      stopped := true;
      continue := false
    end
    else begin
      Failpoint.hit "compare.round";
      let best = ref None in
      Array.iteri
        (fun i dfs ->
          if Dfs.size dfs < limit then
            let nt = Result_profile.num_types results.(i) in
            for gi = 0 to nt - 1 do
              let q = Dfs.q dfs gi in
              if q < Dfs.max_q dfs gi && (q > 0 || Dfs.can_open dfs gi) then begin
                let delta =
                  Dod.delta_for_type context ~dfss ~i ~gi ~old_q:q
                    ~new_q:(q + 1)
                in
                if delta > 0 then
                  match !best with
                  | Some (bd, _, _) when bd >= delta -> ()
                  | _ -> best := Some (delta, i, gi)
              end
            done)
        dfss;
      match !best with
      | None -> continue := false
      | Some (_, i, gi) ->
        dfss.(i) <- Dfs.set_q dfss.(i) gi (Dfs.q dfss.(i) gi + 1)
    end
  done;
  let dfss = Array.map (Topk.fill ~limit) dfss in
  (dfss, if !stopped then `Degraded else `Complete)

let generate context ~limit = fst (generate_within context ~limit)
