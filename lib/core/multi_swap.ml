type stats = { iterations : int; rounds : int; converged : bool }

let neg_inf = min_int / 4

(* Values in the DP are packed as [dod_gain * type_tie_base + spread bonus],
   where a selected type's bonus is 1 plus the number of other results
   sharing the type: at equal DoD gain, best responses prefer touching more
   distinct feature types, and among those, types the other results can
   align on. Pure best responses stall in poor equilibria on corpora with
   all-tied significances: if every current DFS shows only actors, no
   unilateral reshaping gains DoD by selecting titles nobody else shows, yet
   the all-titles configuration dominates. Spreading at zero cost seeds the
   shared types that later responses can cash in on, and termination is
   preserved — each adopted response strictly increases the global potential
   Φ = type_tie_base · Σ_{i<j} DoD(D_i,D_j) + Σ_i Σ_{t∈D_i} bonus_i(t)
   (bonuses are static per (result, type)), which is bounded. *)
let type_tie_base = 4096

(* ---- Per-type gain curves -------------------------------------------- *)

(* Sorted array of minimal prefix lengths at which each pair (i, j) becomes
   differentiable on this type, infinite thresholds dropped. The gain of
   selecting a q-prefix is the number of thresholds <= q. *)
let thresholds_for context dfss i gi =
  let acc = ref [] in
  Dod.iter_links context ~i ~gi
    (fun ~other ~gi_other ~gap_self ~gap_other ->
      let q_other = Dfs.q dfss.(other) gi_other in
      (* Dod.threshold_q over the unpacked fields, without the record *)
      let a =
        if q_other < 1 then Dod.infinity_gap
        else if gap_other <= q_other then 1
        else gap_self
      in
      if a <> Dod.infinity_gap then acc := a :: !acc);
  let thresholds = Array.of_list !acc in
  Array.sort Int.compare thresholds;
  thresholds

let gain_at thresholds q =
  (* thresholds is sorted ascending; count entries <= q. *)
  let n = Array.length thresholds in
  let rec count k = if k < n && thresholds.(k) <= q then count (k + 1) else k in
  count 0

(* All threshold arrays of result [i] at once — the unit the per-round
   cache stores and the pool parallelizes. Each type's array lands in a
   private slot from reads of immutable data ([dfss] is not mutated while
   a response is being computed), so the result is identical for every
   domain count. *)
let min_types_per_domain = 4

let compute_thresholds ?pool context dfss i =
  let nt = Result_profile.num_types (Dod.results context).(i) in
  match pool with
  | Some pool
    when Domain_pool.domains pool > 1
         && nt >= min_types_per_domain * Domain_pool.domains pool ->
    let arrays = Array.make nt [||] in
    Domain_pool.parallel_for pool ~n:nt ~chunk:(fun lo hi ->
        for gi = lo to hi - 1 do
          arrays.(gi) <- thresholds_for context dfss i gi
        done);
    arrays
  | _ -> Array.init nt (fun gi -> thresholds_for context dfss i gi)

(* ---- Knapsack over the types of one significance class ---------------- *)

(* Items are within-class type positions. Item [t] takes q in
   [qmin .. qmax.(t)] features for gain [gain t q]. Layers are kept for
   reconstruction; budget has at-most semantics (layer 0 is all-zero). *)
let class_knapsack ~qmin ~qmax ~gain ~budget =
  let k = Array.length qmax in
  let layers = Array.make_matrix (k + 1) (budget + 1) neg_inf in
  Array.fill layers.(0) 0 (budget + 1) 0;
  for t = 1 to k do
    for b = 0 to budget do
      let best = ref neg_inf in
      let q_hi = min qmax.(t - 1) b in
      for q = qmin to q_hi do
        let prev = layers.(t - 1).(b - q) in
        if prev > neg_inf then begin
          let v = prev + gain (t - 1) q in
          if v > !best then best := v
        end
      done;
      (* qmin = 0 case is included in the loop when q_hi >= 0; when qmin = 1
         and the item cannot fit, the slot stays infeasible. *)
      layers.(t).(b) <- !best
    done
  done;
  layers

(* Reconstruct per-item q choices achieving layers.(k).(budget). *)
let class_choices ~qmin ~qmax ~gain layers budget =
  let k = Array.length qmax in
  let qs = Array.make k 0 in
  let b = ref budget in
  for t = k downto 1 do
    let target = layers.(t).(!b) in
    let q_hi = min qmax.(t - 1) !b in
    let found = ref false in
    let q = ref qmin in
    while (not !found) && !q <= q_hi do
      let prev = layers.(t - 1).(!b - !q) in
      if prev > neg_inf && prev + gain (t - 1) !q = target then begin
        qs.(t - 1) <- !q;
        b := !b - !q;
        found := true
      end
      else incr q
    done;
    if not !found then assert false
  done;
  qs

(* ---- One entity: prefix-of-classes recursion -------------------------- *)

type entity_plan = {
  f : int array array;  (** f.(ci).(b): best gain from classes ci.. *)
  any_layers : int array array array;  (** per class: variant-A layers *)
  full_layers : int array array array;  (** per class: variant-B layers *)
  class_ranges : (int * int) array;  (** (start, len) within the entity *)
  qmaxes : int array array;  (** per class, per item *)
}

let plan_entity ~limit ~gain_for (entity : Result_profile.entity_info) =
  let nc = Array.length entity.classes in
  let qmaxes =
    Array.map
      (fun (start, len) ->
        Array.init len (fun t ->
            Array.length entity.types.(start + t).features))
      entity.classes
  in
  let gains =
    Array.map
      (fun (start, len) -> Array.init len (fun t -> gain_for (start + t)))
      entity.classes
  in
  let any_layers =
    Array.init nc (fun ci ->
        class_knapsack ~qmin:0 ~qmax:qmaxes.(ci)
          ~gain:(fun t q -> gains.(ci).(t) q)
          ~budget:limit)
  in
  let full_layers =
    Array.init nc (fun ci ->
        class_knapsack ~qmin:1 ~qmax:qmaxes.(ci)
          ~gain:(fun t q -> gains.(ci).(t) q)
          ~budget:limit)
  in
  let f = Array.make_matrix (nc + 1) (limit + 1) 0 in
  for ci = nc - 1 downto 0 do
    let k = Array.length qmaxes.(ci) in
    for b = 0 to limit do
      let best = ref any_layers.(ci).(k).(b) in
      for m = 0 to b do
        let full = full_layers.(ci).(k).(m) in
        if full > neg_inf then begin
          let v = full + f.(ci + 1).(b - m) in
          if v > !best then best := v
        end
      done;
      f.(ci).(b) <- !best
    done
  done;
  { f; any_layers; full_layers; class_ranges = entity.classes; qmaxes }

(* Reconstruct the per-type q choices of one entity given its allocated
   budget. Returns q indexed by within-entity type position. *)
let reconstruct_entity ~gain_for plan budget =
  let nc = Array.length plan.class_ranges in
  let total_types =
    Array.fold_left (fun acc (_, len) -> acc + len) 0 plan.class_ranges
  in
  let qs = Array.make total_types 0 in
  let rec walk ci b =
    if ci < nc then begin
      let start, len = plan.class_ranges.(ci) in
      let k = len in
      let gain t q = gain_for (start + t) q in
      if plan.f.(ci).(b) = plan.any_layers.(ci).(k).(b) then begin
        (* Variant A: this class is the last one used. *)
        let choice =
          class_choices ~qmin:0 ~qmax:plan.qmaxes.(ci) ~gain
            plan.any_layers.(ci) b
        in
        Array.iteri (fun t q -> qs.(start + t) <- q) choice
      end
      else begin
        (* Variant B: find the split budget m. *)
        let m = ref 0 in
        let found = ref false in
        while (not !found) && !m <= b do
          let full = plan.full_layers.(ci).(k).(!m) in
          if full > neg_inf && full + plan.f.(ci + 1).(b - !m) = plan.f.(ci).(b)
          then found := true
          else incr m
        done;
        if not !found then assert false;
        let choice =
          class_choices ~qmin:1 ~qmax:plan.qmaxes.(ci) ~gain
            plan.full_layers.(ci) !m
        in
        Array.iteri (fun t q -> qs.(start + t) <- q) choice;
        walk (ci + 1) (b - !m)
      end
    end
  in
  walk 0 budget;
  qs

(* ---- Best response ----------------------------------------------------- *)

(* Spread bonus of a selected type: 1 plus the number of other results that
   share the type, so zero-gain spreading prefers types the others can align
   on. Static per (result, type), which keeps the potential argument above
   valid. *)
let spread_bonus context ~i ~gi = 1 + Dod.num_links context ~i ~gi

let best_response ?(spread = true) ?thresholds context ~limit dfss i =
  let profile = (Dod.results context).(i) in
  let nt = Result_profile.num_types profile in
  let thresholds =
    match thresholds with
    | Some arrays -> arrays
    | None -> compute_thresholds context dfss i
  in
  let gain_global gi q =
    if q = 0 then 0
    else
      (gain_at thresholds.(gi) q * Dod.weight_of context ~i ~gi * type_tie_base)
      + (if spread then spread_bonus context ~i ~gi else 0)
  in
  let entities = profile.Result_profile.entities in
  let ne = Array.length entities in
  let plans =
    Array.mapi
      (fun ei entity ->
        let base = Result_profile.global_index profile ~entity_index:ei ~type_index:0 in
        plan_entity ~limit ~gain_for:(fun ti q -> gain_global (base + ti) q) entity)
      entities
  in
  (* Outer knapsack across entities: entity ei with allocated budget b gains
     plans.(ei).f.(0).(b). *)
  let outer = Array.make_matrix (ne + 1) (limit + 1) 0 in
  for e = 1 to ne do
    for b = 0 to limit do
      let best = ref neg_inf in
      for m = 0 to b do
        let v = outer.(e - 1).(b - m) + plans.(e - 1).f.(0).(m) in
        if v > !best then best := v
      done;
      outer.(e).(b) <- !best
    done
  done;
  (* Choose the smallest total budget achieving the optimum (ties toward
     fewer features). *)
  let best_value = outer.(ne).(limit) in
  let q = Array.make nt 0 in
  let b = ref limit in
  while !b > 0 && outer.(ne).(!b - 1) = best_value do
    decr b
  done;
  let budget = ref !b in
  for e = ne downto 1 do
    (* Find the allocation m for entity e-1. *)
    let m = ref 0 in
    let found = ref false in
    while (not !found) && !m <= !budget do
      if outer.(e - 1).(!budget - !m) + plans.(e - 1).f.(0).(!m) = outer.(e).(!budget)
      then found := true
      else incr m
    done;
    if not !found then assert false;
    let base = Result_profile.global_index profile ~entity_index:(e - 1) ~type_index:0 in
    let entity_qs =
      reconstruct_entity
        ~gain_for:(fun ti qq -> gain_global (base + ti) qq)
        plans.(e - 1) !m
    in
    Array.iteri (fun ti qq -> q.(base + ti) <- qq) entity_qs;
    budget := !budget - !m
  done;
  Dfs.of_q_array profile q

(* Packed gain of a DFS for result i given the others — the same objective
   the DP maximizes, so adoption decisions compare like with like. Without
   [thresholds] every array is recomputed per call (the pre-cache
   behavior, kept as the ablation baseline for the bench). *)
let packed_gain ?(spread = true) ?thresholds context dfss i dfs =
  let profile = (Dod.results context).(i) in
  let nt = Result_profile.num_types profile in
  let thresholds_of gi =
    match thresholds with
    | Some arrays -> arrays.(gi)
    | None -> thresholds_for context dfss i gi
  in
  let sum = ref 0 in
  for gi = 0 to nt - 1 do
    let q = Dfs.q dfs gi in
    if q > 0 then
      sum :=
        !sum
        + gain_at (thresholds_of gi) q
          * Dod.weight_of context ~i ~gi * type_tie_base
        + (if spread then spread_bonus context ~i ~gi else 0)
  done;
  !sum

let prepare ?init context ~limit =
  match init with
  | Some dfss ->
    Array.iteri
      (fun i d ->
        if not (Dfs.is_valid ~limit d) then
          invalid_arg
            (Printf.sprintf "Multi_swap.generate: invalid initial DFS %d" i))
      dfss;
    Array.copy dfss
  | None -> Topk.generate context ~limit

let generate_with_stats ?init ?spread ?(cache = true) ?domains ?deadline
    context ~limit =
  let dfss = prepare ?init context ~limit in
  let n = Array.length dfss in
  let pool =
    let d =
      match domains with
      | Some d -> max 1 d
      | None -> Domain_pool.default_domains ()
    in
    if d > 1 then Some (Domain_pool.get ~domains:d) else None
  in
  (* Threshold cache. Result [i]'s threshold arrays depend only on the
     OTHER results' current selections, so an entry stays exact until some
     j <> i adopts a new response: each adoption bumps [version] and stamps
     [adopted_at], and an entry computed at stamp [s] is valid while
     [adopted_at.(j) <= s] for every other [j]. In particular result i's
     own adoption never invalidates its own entry, and once a round stops
     adopting, the fixpoint check reuses every entry. The cached arrays are
     what best_response and both packed_gain calls share — previously
     packed_gain silently recomputed every array per adoption check. *)
  let version = ref 0 in
  let adopted_at = Array.make n 0 in
  let cached = Array.make n ([||] : int array array) in
  let cached_at = Array.make n (-1) in
  let thresholds_of i =
    let valid =
      cached_at.(i) >= 0
      &&
      let s = cached_at.(i) in
      let ok = ref true in
      for j = 0 to n - 1 do
        if j <> i && adopted_at.(j) > s then ok := false
      done;
      !ok
    in
    if not valid then begin
      cached.(i) <- compute_thresholds ?pool context dfss i;
      cached_at.(i) <- !version
    end;
    cached.(i)
  in
  let iterations = ref 0 in
  let rounds = ref 0 in
  (* Anytime loop: [dfss] is a valid configuration after every adopted
     response (it starts as Topk and only ever swaps in valid responses),
     so when the deadline trips — polled before each per-result response,
     the expensive unit — iteration just stops and the best-so-far stands,
     flagged [converged = false]. With no deadline the path is untouched
     and outputs stay bit-identical to an undeadlined run. *)
  let stopped = ref false in
  let improved_in_round = ref true in
  while !improved_in_round && not !stopped do
    improved_in_round := false;
    incr rounds;
    Failpoint.hit "compare.round";
    for i = 0 to n - 1 do
      if not !stopped then begin
        if Deadline.over deadline then stopped := true
        else begin
          let thresholds = if cache then Some (thresholds_of i) else None in
          (* Pad the response to the full budget: extra features never reduce
             the packed objective (gains and the type bonus are monotone) and
             keep the summaries budget-filling like every other method. *)
          let candidate =
            Topk.fill ~limit
              (best_response ?spread ?thresholds context ~limit dfss i)
          in
          let cur = packed_gain ?spread ?thresholds context dfss i dfss.(i) in
          let cand_gain =
            packed_gain ?spread ?thresholds context dfss i candidate
          in
          if cand_gain > cur then begin
            dfss.(i) <- candidate;
            incr version;
            adopted_at.(i) <- !version;
            incr iterations;
            improved_in_round := true
          end
        end
      end
    done
  done;
  (dfss, { iterations = !iterations; rounds = !rounds;
           converged = not !stopped })

let generate ?init ?spread ?cache ?domains ?deadline context ~limit =
  fst (generate_with_stats ?init ?spread ?cache ?domains ?deadline context
         ~limit)
