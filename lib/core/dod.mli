(** The Degree of Differentiation objective (Desideratum 3).

    DFSs [D_i] and [D_j] are {b differentiable in a feature type} [t] iff
    both select at least one feature of [t] and some feature of [t] visible
    in [D_i] or [D_j] has occurrence measures in the two results differing
    by more than [threshold_pct]% of the smaller (an absent feature measures
    0, making any non-zero gap qualify). [DoD(D_i, D_j)] counts such types,
    and the total objective is the sum over all result pairs.

    The occurrence measure is either the raw count (the paper's wording) or
    the count normalized by the entity population in its result — "8 of 11
    reviews" vs "38 of 68" — exposed as an ablation.

    A {!context} precomputes, for every result pair and every shared feature
    type, the {e first-gap index}: the smallest prefix length whose features
    witness a gap. Differentiability then becomes two integer comparisons,
    which is what makes the swap algorithms cheap:
    [diff(t, q_i, q_j) = q_i >= 1 && q_j >= 1 &&
     (first_gap_i <= q_i || first_gap_j <= q_j)]. *)

type measure = Raw | Rate

type params = { threshold_pct : float; measure : measure }

val default_params : params
(** [{ threshold_pct = 10.0; measure = Raw }] — the paper's setting. *)

type context

val make_context :
  ?params:params ->
  ?weight:(Feature.ftype -> int) ->
  ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  Result_profile.t array ->
  context
(** Precompute pair tables for a set of results (O(pairs × shared types ×
    features)). @raise Invalid_argument on fewer than 2 results.

    [deadline] bounds the build cooperatively: the token is polled between
    result pairs (and between pool chunks on the parallel path), and a
    tripped token raises {!Xsact_util.Deadline.Expired} — a context is
    all-or-nothing, so there is no degraded partial form.

    [domains] (default {!Xsact_util.Domain_pool.default_domains}) sets the
    parallelism of the pair-table build: the unordered result pairs are
    partitioned across a reusable domain pool and each pair's links are
    merged back deterministically, so the context is {e bit-identical} to
    the sequential one ([domains = 1]) for every domain count. Small
    inputs fall back to the sequential path automatically.

    [weight] (default [fun _ -> 1]) realizes the paper's "interestingness"
    future-work direction: each feature type contributes its weight, rather
    than 1, to the degree of differentiation, so users can prioritize
    attributes they care about ("considering more factors (e.g.,
    interestingness) when selecting features for DFS"). Weights must be
    non-negative; a zero weight makes a type worthless to the objective
    while it can still be selected as filler. All algorithms optimize the
    weighted objective transparently. @raise Invalid_argument on a negative
    weight. *)

val weight_of : context -> i:int -> gi:int -> int
(** The weight of a type of result [i] under the context's weighting. *)

(** {1 Delta operations}

    A context caches each pair's precomputed table independently, keyed by
    stable result identities, so mutations recompute only the pairs they
    touch and replay the rest. All three operations return a {e new}
    context — the input stays fully usable, which is what lets sessions
    keep history and lets a deadline tripping mid-delta leave the live
    context intact — and the result is {e bit-identical} to a fresh
    {!make_context} over the same result array (same params, weighting and
    domain-count independence as the batch build). *)

val add_result :
  ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  context ->
  Result_profile.t ->
  context
(** Append one result: computes only the [n] new pairs against the
    existing results (on the domain pool when the worklist is large
    enough) and splices their links onto the live table — the untouched
    lists are shared, not replayed. O(n × shared types × features)
    instead of the batch O(n² × …).
    @raise Xsact_util.Deadline.Expired on a tripped deadline (the input
    context is untouched).
    @raise Invalid_argument if the context's weighting is negative on one
    of the new result's types. *)

val remove_result : context -> int -> context
(** Drop the result at an index — no first-gap scan, no pair replay, and
    O(what changed) list surgery instead of a full filter+reindex. Link
    lists are strictly descending in the partner index (a consequence of
    the batch merge order), so only the prefix of each list at or above
    the removed index is rebuilt; the rest is reused {e physically}.
    Removing the {e newest} result (the interactive undo) is the extreme
    case: nothing shifts, the pairs map serves as a per-result membership
    index naming exactly the lists that link to the removed result, and
    every untouched list, tail and row of the new table is the input's
    own allocation ([==], which the tests assert).
    @raise Invalid_argument if the index is out of range or the context
    has only two results (a context needs at least two). *)

val reparams :
  ?params:params ->
  ?weight:(Feature.ftype -> int) ->
  ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  context ->
  context
(** Re-derive the context under new parameters and/or weighting without
    re-extracting profiles. A weighting change alone rebuilds just the
    weight rows (the pair tables don't depend on weights); a [params]
    change invalidates the first-gap data and recomputes every pair, but
    still reuses the per-result count and type maps.
    @raise Xsact_util.Deadline.Expired on a tripped deadline.
    @raise Invalid_argument on a negative weight. *)

(** One step of a batched mutation, consumed by {!apply}. *)
type op =
  | Add of Result_profile.t
  | Remove of int
      (** Index into the array as it stands {e at that point of the op
          list} — the same convention as folding the single-op deltas. *)
  | Reparams of {
      params : params option;
      weight : (Feature.ftype -> int) option;
    }

val apply :
  ?domains:int ->
  ?deadline:Xsact_util.Deadline.t ->
  context ->
  op list ->
  context
(** Coalesce a batch of mutations into one delta. Semantically the
    sequential fold of the single-op operations, and bit-identical to a
    fresh {!make_context} over the final result array — but the work is
    O(final change): the batch is first simulated symbolically, so a
    cancelling add/remove pair costs nothing, k adds share one pair
    worklist, and the link table is replayed exactly once at the end
    regardless of k. The last [Reparams] in the batch wins; when it
    changes [params], surviving pair tables are recomputed as part of the
    same single pass. [[]] returns the input context itself ([==]);
    singleton batches route to the surgical single-op deltas.
    @raise Invalid_argument if a [Remove] index is out of range at its
    point in the sequence, if the batch would leave fewer than two
    results, or on a negative weight.
    @raise Xsact_util.Deadline.Expired on a tripped deadline (the input
    context is untouched — all-or-nothing, like every delta). *)

val equal_context : context -> context -> bool
(** Observable equality: same params, the same result profiles
    (physically), and logically identical link tables (the packed link
    sequences, compared across segment boundaries — physical
    segmentation is a mutation-history artifact), weight rows and count
    maps — the bit-identity contract the delta operations promise
    against {!make_context}. Internal cache bookkeeping (stable ids) is
    deliberately ignored. *)

val num_pair_tables : context -> int
(** Cached per-pair tables currently held — [n (n - 1) / 2]. *)

val approx_bytes : context -> int
(** Rough heap footprint of the context (flat link buffers, cached pair
    entry tables, count/type maps) in bytes — the currency of the serve
    layer's unified warm-context memory budget. An estimate from
    heap-word accounting, not a measurement, and a function of the
    {e logical} content only: a delta-built context reports the same
    footprint as a fresh build of the same results, regardless of how
    its link storage happens to be segmented by the mutation history. *)

val approx_bytes_boxed : context -> int
(** What the same logical content would cost under the pre-flat boxed
    representation (a 4-field record plus a cons cell per oriented
    link). The baseline the flat layout is measured against in
    BENCH_incremental's bytes-per-context column and the CI memory
    smoke; not used for budgeting. *)

val fresh_link_words : parent:context -> context -> int
(** Diagnostic for the sharing tests: heap words of link-buffer storage
    in the second context that are {e not} physically shared with
    [parent]. Removing the newest result allocates zero fresh words;
    a general remove allocates only the rewritten prefixes. *)

val params : context -> params
val results : context -> Result_profile.t array
val num_results : context -> int

val infinity_gap : int
(** Sentinel first-gap value meaning "no prefix of this side witnesses a
    gap". *)

type link = {
  other : int;  (** index of the other result *)
  gi_other : int;  (** the type's global index in the other result *)
  gap_self : int;  (** first-gap index on this side (1-based), or
                       {!infinity_gap} *)
  gap_other : int;  (** first-gap index on the other side *)
}

val links : context -> i:int -> gi:int -> link list
(** All results sharing type [gi] of result [i], with gap data oriented from
    [i]'s point of view. A materialized view of the packed storage —
    convenient for tests and cold paths; hot loops should use
    {!iter_links} or {!num_links}, which allocate nothing. *)

val iter_links :
  context ->
  i:int ->
  gi:int ->
  (other:int -> gi_other:int -> gap_self:int -> gap_other:int -> unit) ->
  unit
(** Iterate the links of type [gi] of result [i] in list order
    (strictly descending [other]) without materializing records. *)

val num_links : context -> i:int -> gi:int -> int
(** Number of links of type [gi] of result [i] — [List.length] of
    {!links} without building it. *)

val differentiable : link -> q_self:int -> q_other:int -> bool

val dod_pair : context -> i:int -> j:int -> Dfs.t -> Dfs.t -> int
(** [DoD(D_i, D_j)] — the weighted sum over differentiable shared types
    (the plain type count under the default uniform weighting). The DFSs
    must belong to results [i] and [j] of the context. *)

val total : context -> Dfs.t array -> int
(** Σ_{i<j} DoD(D_i, D_j). @raise Invalid_argument if the array length does
    not match the context. *)

val threshold_q : link -> q_other:int -> int
(** Minimal [q_self] making the pair differentiable on this type, given the
    other side's current selection ({!infinity_gap} when impossible). *)

val delta_for_type :
  context -> dfss:Dfs.t array -> i:int -> gi:int -> old_q:int -> new_q:int -> int
(** Change in total DoD from setting type [gi] of result [i] from [old_q] to
    [new_q] selected features, all other selections fixed. *)

val upper_bound_pair : context -> i:int -> j:int -> int
(** Total weight of the shared types of the pair that can possibly be
    differentiable (both sides fully selected) — a cheap upper bound on the
    weighted {!dod_pair}, used by tests. Under the default uniform
    weighting this is the plain type count. *)

(** {1 Serialization} *)

val serialize_context : context -> string
(** The warm-boot wire form (DESIGN.md §14): params, stable result ids
    and the cached pair entry tables — exactly the data whose recompute
    is the O(n² × features) first-gap scan. Profiles and the weighting
    are {e not} included: the caller stores profiles beside the blob and
    reconstructs the weighting from its own request state, and
    {!deserialize_context} derives every remaining field from those. *)

val deserialize_context :
  ?weight:(Feature.ftype -> int) ->
  Result_profile.t array ->
  string ->
  (context, string) result
(** Rebuild a context from {!serialize_context}'s blob over the given
    profiles (which must be the same results, in the same order, as at
    serialization time — ids, counts and pair keys are cross-checked and
    any inconsistency, truncation or corruption is an [Error], never an
    exception or an unchecked allocation). The result is bit-identical
    to the serialized context, with [O(total links)] replay work and no
    first-gap scans. [weight] defaults to the uniform weighting, as in
    {!make_context}. *)

(** {1 Explanations} *)

type witness = {
  feature : Feature.t;  (** the gap-witnessing feature *)
  measure_i : float;  (** its measure in result [i] (0 when absent) *)
  measure_j : float;  (** its measure in result [j] *)
}
(** Why a feature type differentiates a result pair: the first selected
    feature whose measures differ by more than the threshold. *)

val witness :
  context -> i:int -> j:int -> Dfs.t -> Dfs.t -> gi:int -> witness option
(** [witness c ~i ~j di dj ~gi] explains why type [gi] (of result [i])
    differentiates the pair under the given DFSs — [None] when it does not.
    The witness is the first gapped feature of [i]'s selected prefix, or
    failing that of [j]'s. *)

val explain_pair :
  context -> i:int -> j:int -> Dfs.t -> Dfs.t -> (Feature.ftype * witness) list
(** All differentiating types of the pair with their witnesses, in result
    [i]'s type order. *)
