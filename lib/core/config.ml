type t = {
  params : Dod.params;
  weight : Feature.ftype -> int;
  algorithm : Algorithm.t;
  domains : int option;
  incremental : bool;
}

let default =
  {
    params = Dod.default_params;
    weight = Weighting.uniform;
    algorithm = Algorithm.Multi_swap;
    domains = None;
    incremental = true;
  }

let with_params params t = { t with params }
let with_weight weight t = { t with weight }
let with_algorithm algorithm t = { t with algorithm }

let with_domains domains t =
  if domains < 1 then
    invalid_arg "Config.with_domains: domain count must be positive";
  { t with domains = Some domains }

let with_default_domains t = { t with domains = None }
let with_incremental incremental t = { t with incremental }
