type t =
  | Topk
  | Greedy
  | Single_swap
  | Multi_swap
  | Annealing
  | Restarts
  | Exhaustive

let all =
  [ Topk; Greedy; Single_swap; Multi_swap; Annealing; Restarts; Exhaustive ]

let practical = [ Topk; Greedy; Single_swap; Multi_swap; Annealing; Restarts ]
let paper = [ Single_swap; Multi_swap ]

let to_string = function
  | Topk -> "topk"
  | Greedy -> "greedy"
  | Single_swap -> "single-swap"
  | Multi_swap -> "multi-swap"
  | Annealing -> "annealing"
  | Restarts -> "restarts"
  | Exhaustive -> "exhaustive"

let of_string = function
  | "topk" -> Some Topk
  | "greedy" -> Some Greedy
  | "single-swap" -> Some Single_swap
  | "multi-swap" -> Some Multi_swap
  | "annealing" -> Some Annealing
  | "restarts" -> Some Restarts
  | "exhaustive" -> Some Exhaustive
  | _ -> None

let generate ?domains t context ~limit =
  match t with
  | Topk -> Topk.generate context ~limit
  | Greedy -> Greedy.generate context ~limit
  | Single_swap -> Single_swap.generate context ~limit
  | Multi_swap -> Multi_swap.generate ?domains context ~limit
  | Annealing -> Stochastic.anneal context ~limit
  | Restarts -> Stochastic.restarts context ~limit
  | Exhaustive -> Exhaustive.generate context ~limit
