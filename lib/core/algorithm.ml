type t =
  | Topk
  | Greedy
  | Single_swap
  | Multi_swap
  | Annealing
  | Restarts
  | Exhaustive

let all =
  [ Topk; Greedy; Single_swap; Multi_swap; Annealing; Restarts; Exhaustive ]

let practical = [ Topk; Greedy; Single_swap; Multi_swap; Annealing; Restarts ]
let paper = [ Single_swap; Multi_swap ]

let to_string = function
  | Topk -> "topk"
  | Greedy -> "greedy"
  | Single_swap -> "single-swap"
  | Multi_swap -> "multi-swap"
  | Annealing -> "annealing"
  | Restarts -> "restarts"
  | Exhaustive -> "exhaustive"

let of_string = function
  | "topk" -> Some Topk
  | "greedy" -> Some Greedy
  | "single-swap" -> Some Single_swap
  | "multi-swap" -> Some Multi_swap
  | "annealing" -> Some Annealing
  | "restarts" -> Some Restarts
  | "exhaustive" -> Some Exhaustive
  | _ -> None

let generate_within ?domains ?deadline t context ~limit =
  match t with
  | Topk -> (Topk.generate context ~limit, `Complete)
  | Greedy -> Greedy.generate_within ?deadline context ~limit
  | Single_swap ->
    let dfss, stats =
      Single_swap.generate_with_stats ?deadline context ~limit
    in
    (dfss, if stats.Single_swap.converged then `Complete else `Degraded)
  | Multi_swap ->
    let dfss, stats =
      Multi_swap.generate_with_stats ?domains ?deadline context ~limit
    in
    (dfss, if stats.Multi_swap.converged then `Complete else `Degraded)
  | Annealing -> Stochastic.anneal_within ?deadline context ~limit
  | Restarts -> Stochastic.restarts_within ?deadline context ~limit
  | Exhaustive -> (Exhaustive.generate context ~limit, `Complete)

let generate ?domains t context ~limit =
  fst (generate_within ?domains t context ~limit)
