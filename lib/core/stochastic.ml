open Xsact_util

type anneal_params = {
  seed : int;
  steps : int;
  initial_temperature : float;
  cooling : float;
}

let default_anneal =
  { seed = 0xA11EA; steps = 20_000; initial_temperature = 2.0; cooling = 0.9995 }

let random_valid_dfs g ~limit profile =
  let nt = Result_profile.num_types profile in
  let dfs = ref (Dfs.empty profile) in
  let target = min limit profile.Result_profile.total_features in
  let size = ref 0 in
  while !size < target do
    (* Uniform choice among currently growable types (an openable type, or
       an open one with features left). Topk's no-deadlock argument applies:
       while size < total there is always at least one. *)
    let growable = ref [] in
    for gi = 0 to nt - 1 do
      if
        Dfs.q !dfs gi < Dfs.max_q !dfs gi
        && (Dfs.q !dfs gi > 0 || Dfs.can_open !dfs gi)
      then growable := gi :: !growable
    done;
    let gi = Sampling.pick_list g !growable in
    dfs := Dfs.set_q !dfs gi (Dfs.q !dfs gi + 1);
    incr size
  done;
  !dfs

(* One random legal elementary move on dfss.(i); None if the sampled shape
   is illegal (callers just resample). *)
let sample_move g context ~limit dfss =
  let n = Array.length dfss in
  let i = Prng.int g n in
  let dfs = dfss.(i) in
  let nt = Result_profile.num_types (Dfs.profile dfs) in
  if nt = 0 then None
  else if Prng.bool g && Dfs.size dfs < limit then begin
    (* grow *)
    let gi = Prng.int g nt in
    if
      Dfs.q dfs gi < Dfs.max_q dfs gi
      && (Dfs.q dfs gi > 0 || Dfs.can_open dfs gi)
    then
      let delta =
        Dod.delta_for_type context ~dfss ~i ~gi ~old_q:(Dfs.q dfs gi)
          ~new_q:(Dfs.q dfs gi + 1)
      in
      Some (i, `Grow gi, delta)
    else None
  end
  else begin
    (* swap: shrink gm, grow gp *)
    let gm = Prng.int g nt and gp = Prng.int g nt in
    if gm = gp || Dfs.q dfs gm < 1 || Dfs.q dfs gp >= Dfs.max_q dfs gp then None
    else
      let shrunk_ok =
        Dfs.q dfs gm >= 2 || Dfs.can_close dfs gm
      in
      if not shrunk_ok then None
      else
        let candidate =
          let d = Dfs.set_q dfs gm (Dfs.q dfs gm - 1) in
          Dfs.set_q d gp (Dfs.q d gp + 1)
        in
        if not (Dfs.is_valid ~limit candidate) then None
        else
          let delta =
            Dod.delta_for_type context ~dfss ~i ~gi:gm ~old_q:(Dfs.q dfs gm)
              ~new_q:(Dfs.q dfs gm - 1)
            + Dod.delta_for_type context ~dfss ~i ~gi:gp ~old_q:(Dfs.q dfs gp)
                ~new_q:(Dfs.q dfs gp + 1)
          in
          Some (i, `Swap (gm, gp), delta)
  end

let apply dfss i = function
  | `Grow gi -> dfss.(i) <- Dfs.set_q dfss.(i) gi (Dfs.q dfss.(i) gi + 1)
  | `Swap (gm, gp) ->
    let d = Dfs.set_q dfss.(i) gm (Dfs.q dfss.(i) gm - 1) in
    dfss.(i) <- Dfs.set_q d gp (Dfs.q d gp + 1)

(* Both optimizers only ever improve on a valid starting configuration, so
   cancellation is a clean early-exit: whatever best-so-far stands when the
   deadline trips is returned, tagged `Degraded. With no deadline the
   polling is inert and the runs are bit-identical to the originals. *)

let anneal_within ?(params = default_anneal) ?deadline context ~limit =
  let g = Prng.of_int params.seed in
  let dfss = Topk.generate context ~limit in
  let current = ref (Dod.total context dfss) in
  let best = ref (Array.copy dfss) in
  let best_value = ref !current in
  let temperature = ref params.initial_temperature in
  let stopped = ref false in
  let step = ref 1 in
  while !step <= params.steps && not !stopped do
    if Deadline.over deadline then stopped := true
    else begin
      (match sample_move g context ~limit dfss with
      | None -> ()
      | Some (i, move, delta) ->
        let accept =
          delta >= 0
          || Prng.float g 1.0 < exp (float_of_int delta /. !temperature)
        in
        if accept then begin
          apply dfss i move;
          current := !current + delta;
          if !current > !best_value then begin
            best_value := !current;
            best := Array.copy dfss
          end
        end);
      temperature := Float.max 1e-6 (!temperature *. params.cooling);
      incr step
    end
  done;
  (* Polish the best configuration to a single-swap optimum so the result is
     never worse than plain hill climbing from that point (itself anytime
     under the same deadline). *)
  let polished, stats =
    Single_swap.generate_with_stats ~init:!best ?deadline context ~limit
  in
  (polished, if !stopped || not stats.Single_swap.converged then `Degraded
             else `Complete)

let anneal ?params context ~limit =
  fst (anneal_within ?params context ~limit)

let restarts_within ?(seed = 0x5EED) ?(rounds = 8) ?deadline context ~limit =
  let g = Prng.of_int seed in
  let results = Dod.results context in
  let first, first_stats =
    Single_swap.generate_with_stats ?deadline context ~limit
  in
  let complete = ref first_stats.Single_swap.converged in
  let best = ref first in
  let best_value = ref (Dod.total context !best) in
  let round = ref 1 in
  while !round <= rounds && not (Deadline.over deadline) do
    let init = Array.map (fun p -> random_valid_dfs g ~limit p) results in
    let climbed, stats =
      Single_swap.generate_with_stats ~init ?deadline context ~limit
    in
    if not stats.Single_swap.converged then complete := false;
    let value = Dod.total context climbed in
    if value > !best_value then begin
      best_value := value;
      best := climbed
    end;
    incr round
  done;
  if !round <= rounds then complete := false;
  (!best, if !complete then `Complete else `Degraded)

let restarts ?seed ?rounds context ~limit =
  fst (restarts_within ?seed ?rounds context ~limit)
