(** The unified comparison configuration.

    {!Pipeline.compare}, {!Pipeline.compare_profiles} and {!Session.create}
    used to re-declare the same [?params ?weight ?algorithm ?domains]
    optional arguments — inconsistently ([Session.create] silently dropped
    [?domains]). They now all take one [?config:Config.t], built from
    {!default} in a functional-update style:

    {[
      let config =
        Config.default
        |> Config.with_algorithm Algorithm.Single_swap
        |> Config.with_domains 4
    ]} *)

type t = {
  params : Dod.params;  (** differentiation threshold and measure *)
  weight : Feature.ftype -> int;  (** interestingness weighting *)
  algorithm : Algorithm.t;  (** DFS generation method *)
  domains : int option;
      (** domain-pool parallelism; [None] defers to
          {!Xsact_util.Domain_pool.default_domains} *)
  incremental : bool;
      (** maintain session contexts by delta ({!Dod.apply} — surgical
          add/remove, coalesced op batches, and in-place reparams)
          instead of full rebuilds. Output is bit-identical either way —
          this is a cost knob (and the ablation lever for benchmarks),
          not a semantics knob. *)
}

val default : t
(** The paper's setting: {!Dod.default_params}, uniform weighting,
    [Multi_swap], hardware-default parallelism. *)

val with_params : Dod.params -> t -> t
val with_weight : (Feature.ftype -> int) -> t -> t
val with_algorithm : Algorithm.t -> t -> t

val with_domains : int -> t -> t
(** Pin the domain count. @raise Invalid_argument if not positive. *)

val with_default_domains : t -> t
(** Back to the hardware-default parallelism ([domains = None]). *)

val with_incremental : bool -> t -> t
(** Toggle delta maintenance of session contexts (default [true]). *)
