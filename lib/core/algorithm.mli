(** Uniform dispatch over the DFS generation methods. *)

type t =
  | Topk  (** snippet-style greedy by count, no cross-result awareness *)
  | Greedy  (** global marginal-gain greedy *)
  | Single_swap  (** hill climbing over single-feature moves *)
  | Multi_swap  (** iterated exact best responses (dynamic programming) *)
  | Annealing  (** simulated annealing + polish (fixed seed) *)
  | Restarts  (** random-restart hill climbing (fixed seed) *)
  | Exhaustive  (** brute-force optimum; tiny instances only *)

val all : t list
(** In the order above. *)

val practical : t list
(** Everything except [Exhaustive]. *)

val paper : t list
(** The two methods of the paper: [Single_swap; Multi_swap]. *)

val to_string : t -> string
(** Registry key: ["topk"], ["greedy"], ["single-swap"], ["multi-swap"],
    ["annealing"], ["restarts"], ["exhaustive"]. *)

val of_string : string -> t option

val generate : ?domains:int -> t -> Dod.context -> limit:int -> Dfs.t array
(** Run the method. [Exhaustive] may raise {!Exhaustive.Too_large}.
    [domains] sets the domain-pool parallelism of the methods that use it
    (currently [Multi_swap] threshold construction); the others ignore
    it. Every method is deterministic in it — outputs are identical for
    every domain count. *)

val generate_within :
  ?domains:int -> ?deadline:Xsact_util.Deadline.t ->
  t -> Dod.context -> limit:int -> Dfs.t array * [ `Complete | `Degraded ]
(** Like {!generate}, under a cooperative deadline: the iterative methods
    poll the token between work units and, once it trips, return their
    (always valid, budget-filling) best-so-far tagged [`Degraded].
    [Topk] and [Exhaustive] are not anytime — they run to completion and
    always report [`Complete]. A run whose deadline never trips is
    bit-identical to {!generate}. *)
