(** Greedy marginal-gain baseline (ablation).

    Starts from empty DFSs and repeatedly applies the single legal grow move
    — over all results — with the largest strictly positive DoD increase;
    once no positive move remains, fills the leftover budget per result by
    occurrence count ({!Topk.fill}) so its summaries stay comparable to the
    other methods. A useful midpoint between top-k (no cross-result
    awareness) and the swap algorithms (which can also undo choices). *)

val generate : Dod.context -> limit:int -> Dfs.t array

val generate_within :
  ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array * [ `Complete | `Degraded ]
(** Like {!generate}, but anytime: [deadline] is polled before every greedy
    step, and a tripped token stops the scan — the budget fill still runs,
    so the output is always a valid, budget-filling set of DFSs — tagged
    [`Degraded]. A run whose deadline never trips returns [`Complete] and
    is bit-identical to {!generate}. Carries the ["compare.round"]
    {!Xsact_util.Failpoint} before every step. *)
