(** Interactive comparison sessions.

    The demo's UI lets a user tick and untick result checkboxes and adjust
    the table size; recomputing each table from scratch wastes the work
    already done. A session keeps the current DFSs and warm-starts the
    generation algorithm from them after every change — previous selections
    remain valid for the unchanged results, so the climb (or best-response
    loop) resumes near its fixpoint instead of from top-k. (Warm starting
    applies to the two swap algorithms; the other methods recompute - they
    are cheap or stochastic by nature.)

    The precomputed {!Dod.context} is maintained the same way: mutations
    update it by delta ({!Dod.add_result} / {!Dod.remove_result}) instead
    of rebuilding the O(n²) pair tables, and resizing reuses it verbatim —
    bit-identical to a fresh build in every case. [Config.incremental =
    false] restores full rebuilds as an ablation baseline.

    Sessions are immutable: every operation returns a new session, so the
    UI's undo is free — and a deadline tripping mid-mutation leaves the
    input session (context included) fully usable. *)

type t

val create :
  ?config:Config.t ->
  size_bound:int ->
  Result_profile.t list ->
  (t, Error.t) result
(** Start a session over at least two results. The session keeps [config]
    (default {!Config.default}) for its whole lifetime: every rebuild —
    including warm-started ones — honors its parameters, weighting,
    algorithm {e and domain-pool parallelism}. [Exhaustive] is rejected
    with [Unsupported_algorithm]. *)

(** {1 State} *)

val config : t -> Config.t
val profiles : t -> Result_profile.t array
val dfss : t -> Dfs.t array
val dod : t -> int
val size_bound : t -> int

val context : t -> Dod.context
(** The live precomputed pair tables — what the serve layer keeps warm
    across requests and accounts for in its memory budget. *)

val table : t -> Table.t
(** Built on demand from the current state. *)

(** {1 Operations}

    Each operation takes an optional [deadline] bounding the context
    maintenance (the anytime DFS regeneration that follows is not
    deadline-bound — warm-started, it is cheap). A tripped deadline raises
    {!Xsact_util.Deadline.Expired} and leaves the input session intact. *)

val add : ?deadline:Xsact_util.Deadline.t -> t -> Result_profile.t -> t
(** Add one result to the comparison (appended last). Computes only the
    n−1 new context pairs (delta), then warm-starts generation. *)

val remove : ?deadline:Xsact_util.Deadline.t -> t -> int -> (t, Error.t) result
(** Remove the result at 0-based index; drops that result's pair tables
    without recomputing the survivors. Fails with [Index_out_of_range]
    when out of range, [Too_few_selected] when only two results remain. *)

val set_size_bound : ?deadline:Xsact_util.Deadline.t -> t -> int -> (t, Error.t) result
(** Change L, reusing the live context (it does not depend on the bound).
    Growing warm-starts from the current DFSs; shrinking warm-starts from
    their truncated prefixes — dropping features from the least
    significant selected types keeps every intermediate DFS valid
    (Desideratum 2), so no cold restart is needed. Fails with
    [Bound_too_small]. *)

val stats : t -> int
(** Number of algorithm invocations performed by this session so far
    (diagnostic; shared along the history chain). *)
