(** Interactive comparison sessions.

    The demo's UI lets a user tick and untick result checkboxes and adjust
    the table size; recomputing each table from scratch wastes the work
    already done. A session keeps the current DFSs and warm-starts the
    generation algorithm from them after every change — previous selections
    remain valid for the unchanged results, so the climb (or best-response
    loop) resumes near its fixpoint instead of from top-k. (Warm starting
    applies to the two swap algorithms; the other methods recompute - they
    are cheap or stochastic by nature.)

    Sessions are immutable: every operation returns a new session, so the
    UI's undo is free. *)

type t

val create :
  ?config:Config.t ->
  size_bound:int ->
  Result_profile.t list ->
  (t, Error.t) result
(** Start a session over at least two results. The session keeps [config]
    (default {!Config.default}) for its whole lifetime: every rebuild —
    including warm-started ones — honors its parameters, weighting,
    algorithm {e and domain-pool parallelism}. [Exhaustive] is rejected
    with [Unsupported_algorithm]. *)

(** {1 State} *)

val config : t -> Config.t
val profiles : t -> Result_profile.t array
val dfss : t -> Dfs.t array
val dod : t -> int
val size_bound : t -> int
val table : t -> Table.t
(** Built on demand from the current state. *)

(** {1 Operations} *)

val add : t -> Result_profile.t -> t
(** Add one result to the comparison (appended last). *)

val remove : t -> int -> (t, Error.t) result
(** Remove the result at 0-based index; fails with [Index_out_of_range]
    when out of range, [Too_few_selected] when only two results remain. *)

val set_size_bound : t -> int -> (t, Error.t) result
(** Change L. Shrinking restarts from scratch (old selections may violate
    the bound); growing warm-starts. Fails with [Bound_too_small]. *)

val stats : t -> int
(** Number of algorithm invocations performed by this session so far
    (diagnostic; shared along the history chain). *)
