(** Interactive comparison sessions.

    The demo's UI lets a user tick and untick result checkboxes and adjust
    the table size; recomputing each table from scratch wastes the work
    already done. A session keeps the current DFSs and warm-starts the
    generation algorithm from them after every change — previous selections
    remain valid for the unchanged results, so the climb (or best-response
    loop) resumes near its fixpoint instead of from top-k. (Warm starting
    applies to the two swap algorithms; the other methods recompute - they
    are cheap or stochastic by nature.)

    The precomputed {!Dod.context} is maintained the same way: every
    mutation routes through the batched delta path ({!Dod.apply}), so a
    single op costs its surgical delta, a batch of k ops coalesces into
    one context pass and one DFS regeneration, resizing reuses the
    context verbatim, and a parameter or weighting change ({!Reparams})
    never re-extracts profiles — bit-identical to a fresh build in every
    case. [Config.incremental = false] restores full rebuilds as an
    ablation baseline.

    Sessions are immutable: every operation returns a new session, so the
    UI's undo is free — and a deadline tripping mid-mutation leaves the
    input session (context included) fully usable. *)

type t

val create :
  ?config:Config.t ->
  ?context:Dod.context ->
  size_bound:int ->
  Result_profile.t list ->
  (t, Error.t) result
(** Start a session over at least two results. The session keeps [config]
    (default {!Config.default}) for its whole lifetime: every rebuild —
    including warm-started ones — honors its parameters, weighting,
    algorithm {e and domain-pool parallelism}. [Exhaustive] is rejected
    with [Unsupported_algorithm].

    [context], when given, is adopted instead of building one — the
    caller (the serve layer's intern table) guarantees it is the context
    a fresh build over [profiles] under [config] would produce, which the
    delta operations' bit-identity contract makes checkable. @raise
    Invalid_argument when its arity does not match [profiles]. *)

val restore :
  ?runs:int ->
  config:Config.t ->
  size_bound:int ->
  profiles:Result_profile.t array ->
  context:Dod.context ->
  dfss:Dfs.t array ->
  unit ->
  (t, Error.t) result
(** Adopt fully-materialized state with {e no} search, extraction,
    context build or DFS generation — the warm-boot path
    (DESIGN.md §14): the caller deserialized [context]
    ({!Dod.deserialize_context}) and the DFS q-vectors from a context
    snapshot. The same request-level validations as {!create} apply
    ([Exhaustive], arity, bound), and every DFS is re-checked for size
    and downward closure at [size_bound]. A restored session is
    observably identical to the one that was serialized — including its
    {!stats} run count when the caller snapshotted it ([runs],
    default 1, clamped from below to 1).
    @raise Invalid_argument on an arity mismatch, a DFS over a foreign
    profile, or an invalid DFS — snapshot corruption, which the caller
    turns into a cold rebuild. *)

val intern : t -> profiles:Result_profile.t array -> context:Dod.context -> t
(** Swap in a canonical, physically shared (profiles, context) pair that
    is structurally identical to the session's own — how a session adopts
    the intern table's copy after publishing a context another session
    already holds. Purely a sharing change: every observable output is
    unchanged. @raise Invalid_argument on an arity mismatch. *)

(** {1 State} *)

val config : t -> Config.t
val profiles : t -> Result_profile.t array
val dfss : t -> Dfs.t array
val dod : t -> int
val size_bound : t -> int

val context : t -> Dod.context
(** The live precomputed pair tables — what the serve layer keeps warm
    across requests and accounts for in its memory budget. *)

val table : t -> Table.t
(** Built on demand from the current state. *)

(** {1 Operations}

    Each operation takes an optional [deadline] bounding the context
    maintenance (the anytime DFS regeneration that follows is not
    deadline-bound — warm-started, it is cheap). A tripped deadline raises
    {!Xsact_util.Deadline.Expired} and leaves the input session intact. *)

(** One step of a session mutation, consumed by {!apply}. [Remove]
    indexes the profile array as it stands at that point of the op list
    (resizes do not shift indices). *)
type op =
  | Add of Result_profile.t
  | Remove of int
  | Set_size_bound of int
  | Reparams of {
      params : Dod.params option;
      weight : (Feature.ftype -> int) option;
    }

val apply : ?deadline:Xsact_util.Deadline.t -> t -> op list -> (t, Error.t) result
(** Apply a batch of mutations as one step: the ops are simulated
    symbolically first (so validation, and a batch that cancels itself
    out, cost no pair work), the context is updated by a single
    {!Dod.apply} delta — or one rebuild under the ablation config — and
    the DFSs regenerate {e exactly once}, warm-started uniformly:
    surviving results resume from their current DFS (truncated if the
    final bound shrank), added ones seed from top-k at the final bound.
    The last [Reparams] values win and are kept in the session's config
    for all later operations. A singleton batch is observably identical
    to the corresponding single operation; a batch whose net effect is
    nothing (e.g. only cancelling add/remove pairs, or a resize to the
    current bound) returns the input session itself. Errors mirror the
    single ops: [Index_out_of_range], [Too_few_selected],
    [Bound_too_small] — checked against the {e sequential} state, before
    any work. *)

val add : ?deadline:Xsact_util.Deadline.t -> t -> Result_profile.t -> t
(** Add one result to the comparison (appended last). Computes only the
    n−1 new context pairs (delta), then warm-starts generation. *)

val remove : ?deadline:Xsact_util.Deadline.t -> t -> int -> (t, Error.t) result
(** Remove the result at 0-based index; drops that result's pair tables
    and surgically unlinks it from the survivors' lists (sharing every
    untouched tail) without recomputing any pair. Fails with
    [Index_out_of_range] when out of range, [Too_few_selected] when only
    two results remain. *)

val set_size_bound : ?deadline:Xsact_util.Deadline.t -> t -> int -> (t, Error.t) result
(** Change L, reusing the live context (it does not depend on the bound).
    Growing warm-starts from the current DFSs; shrinking warm-starts from
    their truncated prefixes — dropping features from the least
    significant selected types keeps every intermediate DFS valid
    (Desideratum 2), so no cold restart is needed. Fails with
    [Bound_too_small]. *)

val reparams :
  ?deadline:Xsact_util.Deadline.t ->
  ?params:Dod.params ->
  ?weight:(Feature.ftype -> int) ->
  t ->
  t
(** Change the differentiation parameters and/or weighting of a live
    session without re-extracting profiles: the context re-derives by
    delta ({!Dod.reparams} — a weighting change alone rebuilds just the
    weight rows) and the DFSs regenerate once, warm-started from the
    current selections. The new values persist in the session's config.
    @raise Invalid_argument on a negative weight. *)

val stats : t -> int
(** Number of algorithm invocations performed by this session so far
    (diagnostic; shared along the history chain). *)
