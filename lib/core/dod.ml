type measure = Raw | Rate
type params = { threshold_pct : float; measure : measure }

let default_params = { threshold_pct = 10.0; measure = Raw }

let infinity_gap = max_int

type link = {
  other : int;
  gi_other : int;
  gap_self : int;
  gap_other : int;
}

(* A pair's link table, before orientation: the shared types of results
   (i, j), i < j, as (gi_i, gi_j, gap_i, gap_j) in the iteration order of
   result i's type map. Pure data — a function of the two profiles and the
   params only — which is what makes pairs independently computable and
   cacheable across context mutations. *)
module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type context = {
  params : params;
  (* the weighting the context was built with, kept so delta operations
     can weight types of results added later *)
  weight_fn : Feature.ftype -> int;
  results : Result_profile.t array;
  (* links_table.(i).(gi) = all pair links of type gi of result i *)
  links_table : link list array array;
  (* weights.(i).(gi) = interestingness weight of that type *)
  weights : int array array;
  (* per-result feature -> count, kept for witness explanations *)
  counts : int Feature.Map.t array;
  (* per-result ftype -> global index, cached for delta recomputation *)
  fmaps : int Feature.Ftype_map.t array;
  (* ids.(i) = stable identity of result i. Contexts mutate only by
     appending (add) and order-preserving filtering (remove), so ids are
     strictly increasing with position — (ids.(i), ids.(j)) for i < j is
     always (lo, hi), and a cached pair entry list never needs
     re-orienting. *)
  ids : int array;
  next_id : int;
  (* (id_lo, id_hi) -> that pair's entries. The links_table is a pure
     fold of this map in canonical pair order, so deltas rebuild it by
     replay instead of recomputing first-gap scans. *)
  pairs : (int * int * int * int) list Pair_map.t;
}

let params c = c.params
let results c = c.results
let num_results c = Array.length c.results

(* Occurrence measure of a feature count within a result. *)
let measure_of params (profile : Result_profile.t) (f : Feature.t) count =
  match params.measure with
  | Raw -> float_of_int count
  | Rate ->
    let pop = Result_profile.population profile f.Feature.ftype.Feature.entity in
    float_of_int count /. float_of_int pop

let gap_exceeds params a b =
  let diff = Float.abs (a -. b) in
  let smaller = Float.min a b in
  diff > params.threshold_pct /. 100.0 *. smaller
  && diff > 0.0

(* First 1-based prefix index of [self_type]'s features witnessing a gap
   against [other]'s counts. *)
let first_gap params (self_profile : Result_profile.t)
    (self_type : Result_profile.type_info) (other_profile : Result_profile.t)
    other_counts =
  let n = Array.length self_type.features in
  let rec scan k =
    if k >= n then infinity_gap
    else
      let fi = self_type.features.(k) in
      let f = fi.Result_profile.feature in
      let self_measure = measure_of params self_profile f fi.Result_profile.count in
      let other_count =
        match Feature.Map.find_opt f other_counts with
        | Some c -> c
        | None -> 0
      in
      let other_measure = measure_of params other_profile f other_count in
      if gap_exceeds params self_measure other_measure then k + 1
      else scan (k + 1)
  in
  scan 0

let counts_map (profile : Result_profile.t) =
  Array.fold_left
    (fun acc (e : Result_profile.entity_info) ->
      Array.fold_left
        (fun acc (ti : Result_profile.type_info) ->
          Array.fold_left
            (fun acc (fi : Result_profile.feat_info) ->
              Feature.Map.add fi.feature fi.count acc)
            acc ti.features)
        acc e.types)
    Feature.Map.empty profile.entities

let ftype_map (profile : Result_profile.t) =
  Seq.fold_left
    (fun acc (gi, (ti : Result_profile.type_info)) ->
      Feature.Ftype_map.add ti.ftype gi acc)
    Feature.Ftype_map.empty
    (Result_profile.types_seq profile)

(* Below this many pairs per domain the fork/join round-trip costs more
   than the first_gap work it distributes. *)
let min_pairs_per_domain = 8

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Domain_pool.default_domains ()

let weights_row weight profile =
  Array.init (Result_profile.num_types profile) (fun gi ->
      let w = weight (Result_profile.type_info profile gi).Result_profile.ftype in
      if w < 0 then invalid_arg "Dod.make_context: negative weight";
      w)

(* Shared types of pair (i, j) with both first-gap indices, in the
   iteration order of result i's type map. Reads only immutable data, so
   pairs are computed independently (and in parallel) in any order. *)
let compute_pair params results counts fmaps i j =
  let acc = ref [] in
  Feature.Ftype_map.iter
    (fun ftype gi_i ->
      match Feature.Ftype_map.find_opt ftype fmaps.(j) with
      | None -> ()
      | Some gi_j ->
        let ti = Result_profile.type_info results.(i) gi_i in
        let tj = Result_profile.type_info results.(j) gi_j in
        let gap_i = first_gap params results.(i) ti results.(j) counts.(j) in
        let gap_j = first_gap params results.(j) tj results.(i) counts.(i) in
        acc := (gi_i, gi_j, gap_i, gap_j) :: !acc)
    fmaps.(i);
  List.rev !acc

(* Replay the cached pair entries into a fresh links_table, visiting the
   unordered pairs (i, j), i < j, in row-major order and prepending each
   entry's two oriented links — exactly the merge order of the original
   batch build, so a table derived from any mix of cached and
   freshly-computed pairs is bit-identical to a from-scratch one. O(total
   links): no first-gap scans, no feature-map lookups. *)
let derive_links_table results ids pairs =
  let n = Array.length results in
  let links_table =
    Array.map
      (fun profile ->
        Array.make (Result_profile.num_types profile) ([] : link list))
      results
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let entries =
        match Pair_map.find_opt (ids.(i), ids.(j)) pairs with
        | Some e -> e
        | None -> invalid_arg "Dod: missing pair table"
      in
      List.iter
        (fun (gi_i, gi_j, gap_i, gap_j) ->
          links_table.(i).(gi_i) <-
            { other = j; gi_other = gi_j; gap_self = gap_i; gap_other = gap_j }
            :: links_table.(i).(gi_i);
          links_table.(j).(gi_j) <-
            { other = i; gi_other = gi_i; gap_self = gap_j; gap_other = gap_i }
            :: links_table.(j).(gi_j))
        entries
    done
  done;
  links_table

(* Extend a links_table for one appended result, bit-identically to a
   batch rebuild over the extended array. In the batch's row-major merge,
   every new pair (k, n) is the last pair of row k, so for an existing
   result k the new links are the final prepends to its lists — they sit
   at the head, with the old links behind them in their old order
   (physically shared; [equal_context] and the tests compare
   structurally). The appended result's own lists see pairs (0, n) …
   (n−1, n) in that order, exactly the batch order. O(n × types), not the
   O(n²) of a full replay. *)
let extend_links_table links_table results new_buffers =
  let n = Array.length links_table in
  let table =
    Array.init (n + 1) (fun k ->
        if k < n then Array.copy links_table.(k)
        else
          Array.make (Result_profile.num_types results.(n)) ([] : link list))
  in
  for k = 0 to n - 1 do
    List.iter
      (fun (gi_k, gi_n, gap_k, gap_n) ->
        table.(k).(gi_k) <-
          { other = n; gi_other = gi_n; gap_self = gap_k; gap_other = gap_n }
          :: table.(k).(gi_k);
        table.(n).(gi_n) <-
          { other = k; gi_other = gi_k; gap_self = gap_n; gap_other = gap_k }
          :: table.(n).(gi_n))
      new_buffers.(k)
  done;
  table

(* Shrink a links_table past a removed result. The batch merge order makes
   every list strictly descending in [other] (row k's prepends run (0,k) …
   (k−1,k) then (k,k+1) … (k,n−1), so the head holds the largest index),
   which turns the old full filter+reindex into prefix surgery: rebuild
   the head links with [other >= index] (drop the removed one, shift the
   rest down) and stop at the first link below — the whole remaining tail
   is reused {e physically}, cons cells and all. Cost O(links above the
   removed index), not O(total links); lists (and whole per-result rows)
   the removed result never reached are shared untouched. *)
let shrink_list index l =
  let rec go = function
    | link :: tl when link.other > index ->
      { link with other = link.other - 1 } :: go tl
    | link :: tl when link.other = index -> tl (* shared tail *)
    | rest -> rest (* every remaining [other] < index: shared physically *)
  in
  go l

let shrink_row index row =
  let changed = ref false in
  let row' =
    Array.map
      (fun l ->
        let l' = shrink_list index l in
        if l' != l then changed := true;
        l')
      row
  in
  if !changed then row' else row

let shrink_links_table links_table index =
  let n = Array.length links_table in
  Array.init (n - 1) (fun k' ->
      let k = if k' < index then k' else k' + 1 in
      shrink_row index links_table.(k))

(* Fast path for removing the {e newest} result (the interactive undo):
   its links were the final prepends of every row, so they sit at the list
   heads and no surviving index shifts — the new table is the old one
   minus those heads. The pairs map doubles as a per-result membership
   index: the entries of pair (id_k, removed_id) name exactly the lists of
   survivor k that link to the removed result, so the surgery touches
   nothing else — untouched lists, tails, and whole rows (when the pair
   shares no types) are the input's own, physically. *)
let remove_last_links_table c ~index ~removed =
  Array.init index (fun k ->
      match Pair_map.find_opt (c.ids.(k), removed) c.pairs with
      | None | Some [] -> c.links_table.(k)
      | Some entries ->
        let row = Array.copy c.links_table.(k) in
        List.iter
          (fun (gi_k, _, _, _) ->
            match row.(gi_k) with
            | { other; _ } :: tail when other = index -> row.(gi_k) <- tail
            | _ -> assert false (* membership index out of sync *))
          entries;
        row)

(* Compute the entry lists for an explicit worklist of pairs, sequentially
   or on the domain pool. A context is all-or-nothing — a partially linked
   table would silently change the objective — so a tripped deadline raises
   Deadline.Expired (between pairs, or inside parallel_for between chunks)
   instead of returning something degraded. *)
let compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j =
  let npairs = Array.length pair_i in
  let buffers = Array.make npairs [] in
  if domains = 1 || npairs < min_pairs_per_domain * domains then
    for p = 0 to npairs - 1 do
      Deadline.check deadline;
      buffers.(p) <-
        compute_pair params results counts fmaps pair_i.(p) pair_j.(p)
    done
  else begin
    let pool = Domain_pool.get ~domains in
    Domain_pool.parallel_for ?deadline pool ~n:npairs ~chunk:(fun lo hi ->
        for p = lo to hi - 1 do
          buffers.(p) <-
            compute_pair params results counts fmaps pair_i.(p) pair_j.(p)
        done)
  end;
  buffers

(* All unordered pairs (i, j), i < j, flattened in row-major order. *)
let all_pairs n =
  let npairs = n * (n - 1) / 2 in
  let pair_i = Array.make npairs 0 and pair_j = Array.make npairs 0 in
  let p = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pair_i.(!p) <- i;
      pair_j.(!p) <- j;
      incr p
    done
  done;
  (pair_i, pair_j)

let make_context ?(params = default_params) ?(weight = fun _ -> 1) ?domains
    ?deadline results =
  if Array.length results < 2 then
    invalid_arg "Dod.make_context: need at least two results";
  Deadline.check deadline;
  let domains = resolve_domains domains in
  let weights = Array.map (weights_row weight) results in
  let n = Array.length results in
  let counts = Array.map counts_map results in
  let fmaps = Array.map ftype_map results in
  let pair_i, pair_j = all_pairs n in
  let buffers =
    compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j
  in
  let ids = Array.init n (fun i -> i) in
  let pairs = ref Pair_map.empty in
  Array.iteri
    (fun p entries ->
      pairs := Pair_map.add (pair_i.(p), pair_j.(p)) entries !pairs)
    buffers;
  let links_table = derive_links_table results ids !pairs in
  {
    params;
    weight_fn = weight;
    results;
    links_table;
    weights;
    counts;
    fmaps;
    ids;
    next_id = n;
    pairs = !pairs;
  }

(* {2 Delta operations}

   All three return a fresh context sharing the surviving pair entry lists
   with the input — the input context stays fully usable (sessions keep
   their history, and a deadline tripping mid-delta leaves it intact).
   Because [compute_pair] is a pure function of the two profiles and the
   params, and the table surgery ([extend_links_table] /
   [shrink_links_table]) reproduces the canonical batch merge order,
   every delta result is bit-identical to [make_context] over the same
   result array. *)

let add_result ?domains ?deadline c profile =
  Deadline.check deadline;
  let domains = resolve_domains domains in
  let n = Array.length c.results in
  let results = Array.append c.results [| profile |] in
  let weights = Array.append c.weights [| weights_row c.weight_fn profile |] in
  let counts = Array.append c.counts [| counts_map profile |] in
  let fmaps = Array.append c.fmaps [| ftype_map profile |] in
  let ids = Array.append c.ids [| c.next_id |] in
  (* only the n new pairs (i, n), i < n — the surviving O(n²) are cached *)
  let pair_i = Array.init n (fun i -> i) in
  let pair_j = Array.make n n in
  let buffers =
    compute_pairs ~domains ?deadline c.params results counts fmaps pair_i
      pair_j
  in
  let pairs = ref c.pairs in
  Array.iteri
    (fun i entries -> pairs := Pair_map.add (c.ids.(i), c.next_id) entries !pairs)
    buffers;
  let links_table = extend_links_table c.links_table results buffers in
  {
    c with
    results;
    weights;
    counts;
    fmaps;
    ids;
    next_id = c.next_id + 1;
    pairs = !pairs;
    links_table;
  }

let remove_result c index =
  let n = Array.length c.results in
  if index < 0 || index >= n then
    invalid_arg "Dod.remove_result: index out of range";
  if n <= 2 then invalid_arg "Dod.remove_result: need at least two results";
  let removed = c.ids.(index) in
  let keep = Array.init (n - 1) (fun i -> if i < index then i else i + 1) in
  let take a = Array.map (fun i -> a.(i)) keep in
  let results = take c.results in
  let weights = take c.weights in
  let counts = take c.counts in
  let fmaps = take c.fmaps in
  let ids = take c.ids in
  let pairs =
    Pair_map.filter (fun (a, b) _ -> a <> removed && b <> removed) c.pairs
  in
  let links_table =
    if index = n - 1 then remove_last_links_table c ~index ~removed
    else shrink_links_table c.links_table index
  in
  { c with results; weights; counts; fmaps; ids; pairs; links_table }

let reparams ?params ?weight ?domains ?deadline c =
  Deadline.check deadline;
  let weight_fn = match weight with Some w -> w | None -> c.weight_fn in
  let weights =
    match weight with
    | Some _ -> Array.map (weights_row weight_fn) c.results
    | None -> c.weights
  in
  let params_changed =
    match params with Some p -> p <> c.params | None -> false
  in
  if not params_changed then { c with weight_fn; weights }
  else begin
    (* threshold/measure feed the first-gap scans, so every pair entry is
       stale — recompute them all (still reusing counts and type maps) *)
    let params = Option.get params in
    let domains = resolve_domains domains in
    let n = Array.length c.results in
    let pair_i, pair_j = all_pairs n in
    let buffers =
      compute_pairs ~domains ?deadline params c.results c.counts c.fmaps
        pair_i pair_j
    in
    let pairs = ref Pair_map.empty in
    Array.iteri
      (fun p entries ->
        pairs :=
          Pair_map.add (c.ids.(pair_i.(p)), c.ids.(pair_j.(p))) entries !pairs)
      buffers;
    let links_table = derive_links_table c.results c.ids !pairs in
    { c with params; weight_fn; weights; pairs = !pairs; links_table }
  end

type op =
  | Add of Result_profile.t
  | Remove of int
  | Reparams of {
      params : params option;
      weight : (Feature.ftype -> int) option;
    }

(* A slot of the batch's final arrangement: a survivor of the input
   context, or a result added (and not re-removed) along the way. *)
type slot = Old of int | New of int * Result_profile.t

(* Coalesce a whole op list into one delta. The sequence is simulated over
   slot descriptors first — O(ops × n) bookkeeping, no pair work — which
   is where the dedup falls out: a result added and later removed within
   the batch never becomes a slot, so its pairs are never computed, and
   only the last params/weight matter. Then one pair worklist (everything
   not cached: pairs touching new results, or all of them after a params
   change) and one link-table replay produce the final context.

   The arrangement invariant holds throughout: removes preserve relative
   order and adds append with fresh (larger) ids, so ids stay strictly
   increasing with position and every cached entry list keeps its
   orientation. *)
let apply_batch ~domains ?deadline c ops =
  let slots =
    ref (List.init (Array.length c.results) (fun i -> Old i))
  in
  let next_id = ref c.next_id in
  let final_params = ref c.params in
  let weight_fn = ref c.weight_fn in
  let weight_dirty = ref false in
  List.iter
    (function
      | Add p ->
        slots := !slots @ [ New (!next_id, p) ];
        incr next_id
      | Remove i ->
        let len = List.length !slots in
        if i < 0 || i >= len then
          invalid_arg "Dod.apply: remove index out of range";
        if len <= 2 then invalid_arg "Dod.apply: need at least two results";
        slots := List.filteri (fun j _ -> j <> i) !slots
      | Reparams { params; weight } ->
        (match params with Some p -> final_params := p | None -> ());
        (match weight with
        | Some w ->
          weight_fn := w;
          weight_dirty := true
        | None -> ()))
    ops;
  let slots = Array.of_list !slots in
  let params = !final_params in
  let params_changed = params <> c.params in
  let results =
    Array.map (function Old i -> c.results.(i) | New (_, p) -> p) slots
  in
  let counts =
    Array.map (function Old i -> c.counts.(i) | New (_, p) -> counts_map p)
      slots
  in
  let fmaps =
    Array.map (function Old i -> c.fmaps.(i) | New (_, p) -> ftype_map p)
      slots
  in
  let ids =
    Array.map (function Old i -> c.ids.(i) | New (id, _) -> id) slots
  in
  let weights =
    if !weight_dirty then Array.map (weights_row !weight_fn) results
    else
      Array.map
        (function
          | Old i -> c.weights.(i) | New (_, p) -> weights_row !weight_fn p)
        slots
  in
  let n = Array.length results in
  (* One worklist of every pair not served by the cache, in row-major
     order (the order is irrelevant to the result — entries are keyed —
     but keeps chunking deterministic). *)
  let pairs = ref Pair_map.empty in
  let missing = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let key = (ids.(i), ids.(j)) in
      match
        if params_changed then None else Pair_map.find_opt key c.pairs
      with
      | Some entries -> pairs := Pair_map.add key entries !pairs
      | None -> missing := (i, j) :: !missing
    done
  done;
  let missing = Array.of_list (List.rev !missing) in
  let pair_i = Array.map fst missing and pair_j = Array.map snd missing in
  let buffers =
    compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j
  in
  Array.iteri
    (fun p entries ->
      pairs := Pair_map.add (ids.(pair_i.(p)), ids.(pair_j.(p))) entries !pairs)
    buffers;
  let links_table = derive_links_table results ids !pairs in
  {
    params;
    weight_fn = !weight_fn;
    results;
    links_table;
    weights;
    counts;
    fmaps;
    ids;
    next_id = !next_id;
    pairs = !pairs;
  }

let apply ?domains ?deadline c ops =
  Deadline.check deadline;
  match ops with
  | [] -> c
  (* Single ops keep their dedicated surgical paths — an appended result
     splices links instead of replaying the table, a removed one shares
     every untouched tail — so routing session history through [apply]
     costs nothing over calling the specific operation. *)
  | [ Add p ] -> add_result ?domains ?deadline c p
  | [ Remove i ] -> remove_result c i
  | [ Reparams { params; weight } ] ->
    reparams ?params ?weight ?domains ?deadline c
  | ops -> apply_batch ~domains:(resolve_domains domains) ?deadline c ops

(* {2 Observation helpers for the serve layer and tests} *)

let equal_context a b =
  a.params = b.params
  && Array.length a.results = Array.length b.results
  && Array.for_all2 (fun (x : Result_profile.t) y -> x == y) a.results b.results
  && a.links_table = b.links_table
  && a.weights = b.weights
  && Array.for_all2 (Feature.Map.equal ( = )) a.counts b.counts

let num_pair_tables c = Pair_map.cardinal c.pairs

let approx_bytes c =
  (* rough heap words: links (record of 4 + header + cons = 8 words each),
     map/array spines, and the per-result count and type maps (~6 words
     per AVL binding; keys are shared with the profiles and not charged
     here). Each cached pair entry is the same four ints its two oriented
     links already charge, merged into the links table at derivation —
     billing the tuples again on top of the links double-counted every
     pair's payload, inflating the estimate (and the --max-context-mb
     demotion pressure) by a third. The Pair_map contributes only its
     spine: ~8 words per tree node. *)
  let words = ref 64 in
  Array.iter
    (fun per_type ->
      words := !words + Array.length per_type + 2;
      Array.iter
        (fun links -> words := !words + (8 * List.length links))
        per_type)
    c.links_table;
  Pair_map.iter (fun _ _ -> words := !words + 8) c.pairs;
  Array.iter (fun m -> words := !words + (6 * Feature.Map.cardinal m)) c.counts;
  Array.iter
    (fun m -> words := !words + (6 * Feature.Ftype_map.cardinal m))
    c.fmaps;
  Array.iter (fun w -> words := !words + Array.length w + 2) c.weights;
  !words * (Sys.word_size / 8)

let links c ~i ~gi = c.links_table.(i).(gi)

let weight_of c ~i ~gi = c.weights.(i).(gi)

let differentiable link ~q_self ~q_other =
  q_self >= 1 && q_other >= 1
  && (link.gap_self <= q_self || link.gap_other <= q_other)

let threshold_q link ~q_other =
  if q_other < 1 then infinity_gap
  else if link.gap_other <= q_other then 1
  else link.gap_self

let dod_pair c ~i ~j di dj =
  let count = ref 0 in
  Array.iteri
    (fun gi link_list ->
      let q_self = Dfs.q di gi in
      if q_self > 0 then
        List.iter
          (fun link ->
            if link.other = j then
              let q_other = Dfs.q dj link.gi_other in
              if differentiable link ~q_self ~q_other then
                count := !count + c.weights.(i).(gi))
          link_list)
    c.links_table.(i);
  !count

let total c dfss =
  if Array.length dfss <> Array.length c.results then
    invalid_arg "Dod.total: arity mismatch";
  let sum = ref 0 in
  let n = Array.length c.results in
  for i = 0 to n - 1 do
    Array.iteri
      (fun gi link_list ->
        let q_self = Dfs.q dfss.(i) gi in
        if q_self > 0 then
          List.iter
            (fun link ->
              (* Count each unordered pair once, from the lower index. *)
              if link.other > i then
                let q_other = Dfs.q dfss.(link.other) link.gi_other in
                if differentiable link ~q_self ~q_other then
                  sum := !sum + c.weights.(i).(gi))
            link_list)
      c.links_table.(i)
  done;
  !sum

let delta_for_type c ~dfss ~i ~gi ~old_q ~new_q =
  let delta = ref 0 in
  let w = c.weights.(i).(gi) in
  List.iter
    (fun link ->
      let q_other = Dfs.q dfss.(link.other) link.gi_other in
      let before = differentiable link ~q_self:old_q ~q_other in
      let after = differentiable link ~q_self:new_q ~q_other in
      if before && not after then delta := !delta - w
      else if (not before) && after then delta := !delta + w)
    c.links_table.(i).(gi);
  !delta

type witness = {
  feature : Feature.t;
  measure_i : float;
  measure_j : float;
}

let measures_of c ~i ~j f =
  let count_in r =
    match Feature.Map.find_opt f c.counts.(r) with Some n -> n | None -> 0
  in
  ( measure_of c.params c.results.(i) f (count_in i),
    measure_of c.params c.results.(j) f (count_in j) )

let witness c ~i ~j di dj ~gi =
  let link_opt =
    List.find_opt (fun l -> l.other = j) (links c ~i ~gi)
  in
  match link_opt with
  | None -> None
  | Some link ->
    let q_self = Dfs.q di gi and q_other = Dfs.q dj link.gi_other in
    if not (differentiable link ~q_self ~q_other) then None
    else
      let f =
        if link.gap_self <= q_self then
          (Result_profile.type_info c.results.(i) gi).features.(link.gap_self - 1)
            .Result_profile.feature
        else
          (Result_profile.type_info c.results.(j) link.gi_other).features.(link
                                                                             .gap_other
                                                                           - 1)
            .Result_profile.feature
      in
      let measure_i, measure_j = measures_of c ~i ~j f in
      Some { feature = f; measure_i; measure_j }

let explain_pair c ~i ~j di dj =
  let acc = ref [] in
  Array.iteri
    (fun gi _ ->
      match witness c ~i ~j di dj ~gi with
      | Some w ->
        acc := ((Result_profile.type_info c.results.(i) gi).ftype, w) :: !acc
      | None -> ())
    c.links_table.(i);
  List.rev !acc

let upper_bound_pair c ~i ~j =
  let sum = ref 0 in
  Array.iteri
    (fun gi link_list ->
      List.iter
        (fun link ->
          if
            link.other = j
            && (link.gap_self < infinity_gap || link.gap_other < infinity_gap)
          then sum := !sum + c.weights.(i).(gi))
        link_list)
    c.links_table.(i);
  !sum
