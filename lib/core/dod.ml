type measure = Raw | Rate
type params = { threshold_pct : float; measure : measure }

let default_params = { threshold_pct = 10.0; measure = Raw }

(* {2 Packed link storage}

   A link is two unboxed ints in a flat [int array]:
     word A = (other  lsl 20) lor gi_other
     word B = (gap_self lsl 31) lor gap_other
   so a list of links is a run of 2×len words. The sentinel first-gap
   value fits the 31-bit field, which is why [infinity_gap] is
   [2^31 - 1] rather than [max_int]; real gaps are 1-based prefix
   indices and never approach it. [gi] indices are bounded by
   [weights_row] at context construction, so the packing is checked,
   not assumed. *)

let gi_bits = 20
let gi_mask = (1 lsl gi_bits) - 1
let gap_bits = 31
let gap_mask = (1 lsl gap_bits) - 1
let infinity_gap = gap_mask

type link = {
  other : int;
  gi_other : int;
  gap_self : int;
  gap_other : int;
}

(* A link list is a chain of segments aliasing shared buffers: a fresh
   build is one contiguous segment per list into one context-wide buffer;
   delta operations cons short fresh segments in front of (or alias
   suffixes of) the input's segments instead of copying. [slen] counts
   links; each link is 2 words at [sbuf.(soff + 2k)]. The nil sentinel is
   its own tail so iteration needs one physical-equality test, no option
   boxing. *)
type seg = { sbuf : int array; soff : int; slen : int; snext : seg }

let rec nil_seg = { sbuf = [||]; soff = 0; slen = 0; snext = nil_seg }

let rec chain_len s acc =
  if s == nil_seg then acc else chain_len s.snext (acc + s.slen)

(* A pair's entry table, before orientation: the shared types of results
   (i, j), i < j, packed two words per entry in the iteration order of
   result i's type map:
     word A = (gi_i lsl 20) lor gi_j
     word B = (gap_i lsl 31) lor gap_j
   Pure data — a function of the two profiles and the params only — which
   is what makes pairs independently computable and cacheable across
   context mutations. *)
module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type context = {
  params : params;
  (* the weighting the context was built with, kept so delta operations
     can weight types of results added later *)
  weight_fn : Feature.ftype -> int;
  results : Result_profile.t array;
  (* links_table.(i).(gi) = all pair links of type gi of result i, as a
     segment chain over packed buffers *)
  links_table : seg array array;
  (* weights.(i).(gi) = interestingness weight of that type *)
  weights : int array array;
  (* per-result feature -> count, kept for witness explanations *)
  counts : int Feature.Map.t array;
  (* per-result ftype -> global index, cached for delta recomputation *)
  fmaps : int Feature.Ftype_map.t array;
  (* ids.(i) = stable identity of result i. Contexts mutate only by
     appending (add) and order-preserving filtering (remove), so ids are
     strictly increasing with position — (ids.(i), ids.(j)) for i < j is
     always (lo, hi), and a cached pair entry table never needs
     re-orienting. *)
  ids : int array;
  next_id : int;
  (* (id_lo, id_hi) -> that pair's packed entries. The links_table is a
     pure fold of this map in canonical pair order, so deltas rebuild it
     by replay instead of recomputing first-gap scans. *)
  pairs : int array Pair_map.t;
}

let params c = c.params
let results c = c.results
let num_results c = Array.length c.results

(* Occurrence measure of a feature count within a result. *)
let measure_of params (profile : Result_profile.t) (f : Feature.t) count =
  match params.measure with
  | Raw -> float_of_int count
  | Rate ->
    let pop = Result_profile.population profile f.Feature.ftype.Feature.entity in
    float_of_int count /. float_of_int pop

let gap_exceeds params a b =
  let diff = Float.abs (a -. b) in
  let smaller = Float.min a b in
  diff > params.threshold_pct /. 100.0 *. smaller
  && diff > 0.0

(* First 1-based prefix index of [self_type]'s features witnessing a gap
   against [other]'s counts. *)
let first_gap params (self_profile : Result_profile.t)
    (self_type : Result_profile.type_info) (other_profile : Result_profile.t)
    other_counts =
  let n = Array.length self_type.features in
  let rec scan k =
    if k >= n then infinity_gap
    else
      let fi = self_type.features.(k) in
      let f = fi.Result_profile.feature in
      let self_measure = measure_of params self_profile f fi.Result_profile.count in
      let other_count =
        match Feature.Map.find_opt f other_counts with
        | Some c -> c
        | None -> 0
      in
      let other_measure = measure_of params other_profile f other_count in
      if gap_exceeds params self_measure other_measure then k + 1
      else scan (k + 1)
  in
  scan 0

let counts_map (profile : Result_profile.t) =
  Array.fold_left
    (fun acc (e : Result_profile.entity_info) ->
      Array.fold_left
        (fun acc (ti : Result_profile.type_info) ->
          Array.fold_left
            (fun acc (fi : Result_profile.feat_info) ->
              Feature.Map.add fi.feature fi.count acc)
            acc ti.features)
        acc e.types)
    Feature.Map.empty profile.entities

let ftype_map (profile : Result_profile.t) =
  Seq.fold_left
    (fun acc (gi, (ti : Result_profile.type_info)) ->
      Feature.Ftype_map.add ti.ftype gi acc)
    Feature.Ftype_map.empty
    (Result_profile.types_seq profile)

(* Below this many pairs per domain the fork/join round-trip costs more
   than the first_gap work it distributes. *)
let min_pairs_per_domain = 8

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Domain_pool.default_domains ()

let weights_row weight profile =
  let nt = Result_profile.num_types profile in
  if nt > gi_mask then
    invalid_arg "Dod: too many feature types for the packed link encoding";
  Array.init nt (fun gi ->
      let w = weight (Result_profile.type_info profile gi).Result_profile.ftype in
      if w < 0 then invalid_arg "Dod.make_context: negative weight";
      w)

(* Shared types of pair (i, j) packed as entry words, in the iteration
   order of result i's type map. Reads only immutable data, so pairs are
   computed independently (and in parallel) in any order. *)
let compute_pair params results counts fmaps i j =
  let shared = ref 0 in
  Feature.Ftype_map.iter
    (fun ftype _ ->
      if Feature.Ftype_map.mem ftype fmaps.(j) then incr shared)
    fmaps.(i);
  let e = Array.make (2 * !shared) 0 in
  let pos = ref 0 in
  Feature.Ftype_map.iter
    (fun ftype gi_i ->
      match Feature.Ftype_map.find_opt ftype fmaps.(j) with
      | None -> ()
      | Some gi_j ->
        let ti = Result_profile.type_info results.(i) gi_i in
        let tj = Result_profile.type_info results.(j) gi_j in
        let gap_i = first_gap params results.(i) ti results.(j) counts.(j) in
        let gap_j = first_gap params results.(j) tj results.(i) counts.(i) in
        e.(!pos) <- (gi_i lsl gi_bits) lor gi_j;
        e.(!pos + 1) <- (gap_i lsl gap_bits) lor gap_j;
        pos := !pos + 2)
    fmaps.(i);
  e

(* Replay the cached pair entries into a fresh links_table, visiting the
   unordered pairs (i, j), i < j, in row-major order — exactly the merge
   order of the original batch build, so a table derived from any mix of
   cached and freshly-computed pairs is bit-identical to a from-scratch
   one. Two passes: count per-list lengths, then fill one context-wide
   packed buffer backward per list, so the last-merged link (the logical
   head of the old prepend order) lands at each segment's start. Every
   list is a single contiguous segment. O(total links): no first-gap
   scans, no feature-map lookups. *)
let derive_links_table results ids pairs =
  let n = Array.length results in
  let find_entries i j =
    match Pair_map.find_opt (ids.(i), ids.(j)) pairs with
    | Some e -> e
    | None -> invalid_arg "Dod: missing pair table"
  in
  let lens =
    Array.map
      (fun profile -> Array.make (Result_profile.num_types profile) 0)
      results
  in
  let total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let e = find_entries i j in
      let ne = Array.length e / 2 in
      total := !total + (2 * ne);
      for k = 0 to ne - 1 do
        let a = e.(2 * k) in
        let gi_i = a lsr gi_bits and gi_j = a land gi_mask in
        lens.(i).(gi_i) <- lens.(i).(gi_i) + 1;
        lens.(j).(gi_j) <- lens.(j).(gi_j) + 1
      done
    done
  done;
  let buf = Array.make (2 * !total) 0 in
  let offs = Array.map (fun row -> Array.make (Array.length row) 0) lens in
  let cur = Array.map (fun row -> Array.make (Array.length row) 0) lens in
  let pos = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun gi len ->
          offs.(i).(gi) <- !pos;
          cur.(i).(gi) <- !pos + (2 * len);
          pos := !pos + (2 * len))
        row)
    lens;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let e = find_entries i j in
      let ne = Array.length e / 2 in
      for k = 0 to ne - 1 do
        let a = e.(2 * k) and b = e.(2 * k + 1) in
        let gi_i = a lsr gi_bits and gi_j = a land gi_mask in
        let gap_i = b lsr gap_bits and gap_j = b land gap_mask in
        let p = cur.(i).(gi_i) - 2 in
        cur.(i).(gi_i) <- p;
        buf.(p) <- (j lsl gi_bits) lor gi_j;
        buf.(p + 1) <- b;
        let p = cur.(j).(gi_j) - 2 in
        cur.(j).(gi_j) <- p;
        buf.(p) <- (i lsl gi_bits) lor gi_i;
        buf.(p + 1) <- (gap_j lsl gap_bits) lor gap_i
      done
    done
  done;
  Array.init n (fun i ->
      Array.mapi
        (fun gi len ->
          if len = 0 then nil_seg
          else { sbuf = buf; soff = offs.(i).(gi); slen = len; snext = nil_seg })
        lens.(i))

(* Extend a links_table for one appended result, bit-identically to a
   batch rebuild over the extended array. In the batch's row-major merge,
   every new pair (k, n) is the last pair of row k, so for an existing
   result k the new links are the final prepends to its lists — each
   affected list gains a fresh 1-link segment at its head, with the old
   chain behind it (physically shared; [equal_context] compares the
   logical sequences). The appended result's own lists see pairs (0, n) …
   (n−1, n) in that order, built contiguously into their own buffer.
   O(n × types) fresh words, not the O(n²) of a full replay. *)
let extend_links_table links_table results new_buffers =
  let n = Array.length links_table in
  let n_entries =
    Array.fold_left (fun acc e -> acc + (Array.length e / 2)) 0 new_buffers
  in
  let addbuf = Array.make (2 * n_entries) 0 in
  let apos = ref 0 in
  let nt = Result_profile.num_types results.(n) in
  let lens_n = Array.make nt 0 in
  Array.iter
    (fun e ->
      let ne = Array.length e / 2 in
      for k = 0 to ne - 1 do
        let gi_n = e.(2 * k) land gi_mask in
        lens_n.(gi_n) <- lens_n.(gi_n) + 1
      done)
    new_buffers;
  let nbuf = Array.make (2 * n_entries) 0 in
  let offs_n = Array.make nt 0 and cur_n = Array.make nt 0 in
  let pos = ref 0 in
  for gi = 0 to nt - 1 do
    offs_n.(gi) <- !pos;
    cur_n.(gi) <- !pos + (2 * lens_n.(gi));
    pos := !pos + (2 * lens_n.(gi))
  done;
  let table =
    Array.init (n + 1) (fun k ->
        if k < n then Array.copy links_table.(k)
        else
          Array.init nt (fun gi ->
              if lens_n.(gi) = 0 then nil_seg
              else
                {
                  sbuf = nbuf;
                  soff = offs_n.(gi);
                  slen = lens_n.(gi);
                  snext = nil_seg;
                }))
  in
  for k = 0 to n - 1 do
    let e = new_buffers.(k) in
    let ne = Array.length e / 2 in
    for m = 0 to ne - 1 do
      let a = e.(2 * m) and b = e.(2 * m + 1) in
      let gi_k = a lsr gi_bits and gi_n = a land gi_mask in
      let gap_k = b lsr gap_bits and gap_n = b land gap_mask in
      let p = !apos in
      apos := p + 2;
      addbuf.(p) <- (n lsl gi_bits) lor gi_n;
      addbuf.(p + 1) <- b;
      table.(k).(gi_k) <-
        { sbuf = addbuf; soff = p; slen = 1; snext = table.(k).(gi_k) };
      let p = cur_n.(gi_n) - 2 in
      cur_n.(gi_n) <- p;
      nbuf.(p) <- (k lsl gi_bits) lor gi_k;
      nbuf.(p + 1) <- (gap_n lsl gap_bits) lor gap_k
    done
  done;
  table

(* Shrink a link chain past a removed result. The batch merge order makes
   every chain strictly descending in the partner index (row k's prepends
   run (0,k) … (k−1,k) then (k,k+1) … (k,n−1), so the head holds the
   largest index), which turns the old full filter+reindex into prefix
   surgery: locate the boundary, rewrite the links with [other > index]
   (shift down) into one fresh segment and alias the whole remainder of
   the chain — possibly mid-segment — physically. Cost O(links above the
   removed index); chains the removed result never reached are returned
   as-is ([==]). *)
let locate_cut index chain =
  (* (links above the removed index, the shared tail below it, whether a
     link to the removed result itself was found and skipped) *)
  let rec go s npre =
    if s == nil_seg then (npre, nil_seg, false)
    else begin
      let rec scan k =
        if k >= s.slen then None
        else
          let other = s.sbuf.(s.soff + (2 * k)) lsr gi_bits in
          if other > index then scan (k + 1) else Some (k, other = index)
      in
      match scan 0 with
      | None -> go s.snext (npre + s.slen)
      | Some (k, hit) ->
        let cut = if hit then k + 1 else k in
        let tail =
          if cut >= s.slen then s.snext
          else if cut = 0 then s
          else
            {
              sbuf = s.sbuf;
              soff = s.soff + (2 * cut);
              slen = s.slen - cut;
              snext = s.snext;
            }
        in
        (npre + k, tail, hit)
    end
  in
  go chain 0

let shrink_chain index chain =
  let npre, tail, hit = locate_cut index chain in
  if npre = 0 && not hit then chain (* every [other] < index: shared *)
  else if npre = 0 then tail (* head drop: shared tail *)
  else begin
    let buf = Array.make (2 * npre) 0 in
    let pos = ref 0 in
    let rec copy s =
      if !pos < 2 * npre then begin
        let take = min s.slen ((2 * npre - !pos) / 2) in
        for k = 0 to take - 1 do
          buf.(!pos) <- s.sbuf.(s.soff + (2 * k)) - (1 lsl gi_bits);
          buf.(!pos + 1) <- s.sbuf.(s.soff + (2 * k) + 1);
          pos := !pos + 2
        done;
        copy s.snext
      end
    in
    copy chain;
    { sbuf = buf; soff = 0; slen = npre; snext = tail }
  end

let shrink_row index row =
  let changed = ref false in
  let row' =
    Array.map
      (fun s ->
        let s' = shrink_chain index s in
        if s' != s then changed := true;
        s')
      row
  in
  if !changed then row' else row

let shrink_links_table links_table index =
  let n = Array.length links_table in
  Array.init (n - 1) (fun k' ->
      let k = if k' < index then k' else k' + 1 in
      shrink_row index links_table.(k))

(* Fast path for removing the {e newest} result (the interactive undo):
   its links were the final prepends of every row, so they sit at the
   chain heads and no surviving index shifts — the new table is the old
   one minus those heads, and dropping a head is pure offset arithmetic
   (or stepping to the next segment), zero fresh link words. The pairs
   map doubles as a per-result membership index: the entries of pair
   (id_k, removed_id) name exactly the lists of survivor k that link to
   the removed result, so the surgery touches nothing else — untouched
   chains, tails, and whole rows (when the pair shares no types) are the
   input's own, physically. *)
let drop_head s =
  if s.slen > 1 then { s with soff = s.soff + 2; slen = s.slen - 1 }
  else s.snext

let remove_last_links_table c ~index ~removed =
  Array.init index (fun k ->
      match Pair_map.find_opt (c.ids.(k), removed) c.pairs with
      | None -> c.links_table.(k)
      | Some e when Array.length e = 0 -> c.links_table.(k)
      | Some e ->
        let row = Array.copy c.links_table.(k) in
        let ne = Array.length e / 2 in
        for m = 0 to ne - 1 do
          let gi_k = e.(2 * m) lsr gi_bits in
          let s = row.(gi_k) in
          (* membership index out of sync if the head is not the removed
             result's link *)
          assert (s != nil_seg && s.sbuf.(s.soff) lsr gi_bits = index);
          row.(gi_k) <- drop_head s
        done;
        row)

(* Compute the entry tables for an explicit worklist of pairs, sequentially
   or on the domain pool. A context is all-or-nothing — a partially linked
   table would silently change the objective — so a tripped deadline raises
   Deadline.Expired (between pairs, or inside parallel_for between chunks)
   instead of returning something degraded. *)
let compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j =
  let npairs = Array.length pair_i in
  let buffers = Array.make npairs [||] in
  if domains = 1 || npairs < min_pairs_per_domain * domains then
    for p = 0 to npairs - 1 do
      Deadline.check deadline;
      buffers.(p) <-
        compute_pair params results counts fmaps pair_i.(p) pair_j.(p)
    done
  else begin
    let pool = Domain_pool.get ~domains in
    Domain_pool.parallel_for ?deadline pool ~n:npairs ~chunk:(fun lo hi ->
        for p = lo to hi - 1 do
          buffers.(p) <-
            compute_pair params results counts fmaps pair_i.(p) pair_j.(p)
        done)
  end;
  buffers

(* All unordered pairs (i, j), i < j, flattened in row-major order. *)
let all_pairs n =
  let npairs = n * (n - 1) / 2 in
  let pair_i = Array.make npairs 0 and pair_j = Array.make npairs 0 in
  let p = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pair_i.(!p) <- i;
      pair_j.(!p) <- j;
      incr p
    done
  done;
  (pair_i, pair_j)

let make_context ?(params = default_params) ?(weight = fun _ -> 1) ?domains
    ?deadline results =
  if Array.length results < 2 then
    invalid_arg "Dod.make_context: need at least two results";
  Deadline.check deadline;
  let domains = resolve_domains domains in
  let weights = Array.map (weights_row weight) results in
  let n = Array.length results in
  let counts = Array.map counts_map results in
  let fmaps = Array.map ftype_map results in
  let pair_i, pair_j = all_pairs n in
  let buffers =
    compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j
  in
  let ids = Array.init n (fun i -> i) in
  let pairs = ref Pair_map.empty in
  Array.iteri
    (fun p entries ->
      pairs := Pair_map.add (pair_i.(p), pair_j.(p)) entries !pairs)
    buffers;
  let links_table = derive_links_table results ids !pairs in
  {
    params;
    weight_fn = weight;
    results;
    links_table;
    weights;
    counts;
    fmaps;
    ids;
    next_id = n;
    pairs = !pairs;
  }

(* {2 Delta operations}

   All three return a fresh context sharing the surviving pair entry
   tables and link buffers with the input — the input context stays fully
   usable (sessions keep their history, and a deadline tripping mid-delta
   leaves it intact). Because [compute_pair] is a pure function of the
   two profiles and the params, and the table surgery
   ([extend_links_table] / [shrink_links_table]) reproduces the canonical
   batch merge order, every delta result is bit-identical to
   [make_context] over the same result array. *)

let add_result ?domains ?deadline c profile =
  Deadline.check deadline;
  let domains = resolve_domains domains in
  let n = Array.length c.results in
  let results = Array.append c.results [| profile |] in
  let weights = Array.append c.weights [| weights_row c.weight_fn profile |] in
  let counts = Array.append c.counts [| counts_map profile |] in
  let fmaps = Array.append c.fmaps [| ftype_map profile |] in
  let ids = Array.append c.ids [| c.next_id |] in
  (* only the n new pairs (i, n), i < n — the surviving O(n²) are cached *)
  let pair_i = Array.init n (fun i -> i) in
  let pair_j = Array.make n n in
  let buffers =
    compute_pairs ~domains ?deadline c.params results counts fmaps pair_i
      pair_j
  in
  let pairs = ref c.pairs in
  Array.iteri
    (fun i entries -> pairs := Pair_map.add (c.ids.(i), c.next_id) entries !pairs)
    buffers;
  let links_table = extend_links_table c.links_table results buffers in
  {
    c with
    results;
    weights;
    counts;
    fmaps;
    ids;
    next_id = c.next_id + 1;
    pairs = !pairs;
    links_table;
  }

let remove_result c index =
  let n = Array.length c.results in
  if index < 0 || index >= n then
    invalid_arg "Dod.remove_result: index out of range";
  if n <= 2 then invalid_arg "Dod.remove_result: need at least two results";
  let removed = c.ids.(index) in
  let keep = Array.init (n - 1) (fun i -> if i < index then i else i + 1) in
  let take a = Array.map (fun i -> a.(i)) keep in
  let results = take c.results in
  let weights = take c.weights in
  let counts = take c.counts in
  let fmaps = take c.fmaps in
  let ids = take c.ids in
  let pairs =
    Pair_map.filter (fun (a, b) _ -> a <> removed && b <> removed) c.pairs
  in
  let links_table =
    if index = n - 1 then remove_last_links_table c ~index ~removed
    else shrink_links_table c.links_table index
  in
  { c with results; weights; counts; fmaps; ids; pairs; links_table }

let reparams ?params ?weight ?domains ?deadline c =
  Deadline.check deadline;
  let weight_fn = match weight with Some w -> w | None -> c.weight_fn in
  let weights =
    match weight with
    | Some _ -> Array.map (weights_row weight_fn) c.results
    | None -> c.weights
  in
  let params_changed =
    match params with Some p -> p <> c.params | None -> false
  in
  if not params_changed then { c with weight_fn; weights }
  else begin
    (* threshold/measure feed the first-gap scans, so every pair entry is
       stale — recompute them all (still reusing counts and type maps) *)
    let params = Option.get params in
    let domains = resolve_domains domains in
    let n = Array.length c.results in
    let pair_i, pair_j = all_pairs n in
    let buffers =
      compute_pairs ~domains ?deadline params c.results c.counts c.fmaps
        pair_i pair_j
    in
    let pairs = ref Pair_map.empty in
    Array.iteri
      (fun p entries ->
        pairs :=
          Pair_map.add (c.ids.(pair_i.(p)), c.ids.(pair_j.(p))) entries !pairs)
      buffers;
    let links_table = derive_links_table c.results c.ids !pairs in
    { c with params; weight_fn; weights; pairs = !pairs; links_table }
  end

type op =
  | Add of Result_profile.t
  | Remove of int
  | Reparams of {
      params : params option;
      weight : (Feature.ftype -> int) option;
    }

(* A slot of the batch's final arrangement: a survivor of the input
   context, or a result added (and not re-removed) along the way. *)
type slot = Old of int | New of int * Result_profile.t

(* Coalesce a whole op list into one delta. The sequence is simulated over
   slot descriptors first — O(ops × n) bookkeeping, no pair work — which
   is where the dedup falls out: a result added and later removed within
   the batch never becomes a slot, so its pairs are never computed, and
   only the last params/weight matter. Then one pair worklist (everything
   not cached: pairs touching new results, or all of them after a params
   change) and one link-table replay produce the final context.

   The arrangement invariant holds throughout: removes preserve relative
   order and adds append with fresh (larger) ids, so ids stay strictly
   increasing with position and every cached entry table keeps its
   orientation. *)
let apply_batch ~domains ?deadline c ops =
  let slots =
    ref (List.init (Array.length c.results) (fun i -> Old i))
  in
  let next_id = ref c.next_id in
  let final_params = ref c.params in
  let weight_fn = ref c.weight_fn in
  let weight_dirty = ref false in
  List.iter
    (function
      | Add p ->
        slots := !slots @ [ New (!next_id, p) ];
        incr next_id
      | Remove i ->
        let len = List.length !slots in
        if i < 0 || i >= len then
          invalid_arg "Dod.apply: remove index out of range";
        if len <= 2 then invalid_arg "Dod.apply: need at least two results";
        slots := List.filteri (fun j _ -> j <> i) !slots
      | Reparams { params; weight } ->
        (match params with Some p -> final_params := p | None -> ());
        (match weight with
        | Some w ->
          weight_fn := w;
          weight_dirty := true
        | None -> ()))
    ops;
  let slots = Array.of_list !slots in
  let params = !final_params in
  let params_changed = params <> c.params in
  let results =
    Array.map (function Old i -> c.results.(i) | New (_, p) -> p) slots
  in
  let counts =
    Array.map (function Old i -> c.counts.(i) | New (_, p) -> counts_map p)
      slots
  in
  let fmaps =
    Array.map (function Old i -> c.fmaps.(i) | New (_, p) -> ftype_map p)
      slots
  in
  let ids =
    Array.map (function Old i -> c.ids.(i) | New (id, _) -> id) slots
  in
  let weights =
    if !weight_dirty then Array.map (weights_row !weight_fn) results
    else
      Array.map
        (function
          | Old i -> c.weights.(i) | New (_, p) -> weights_row !weight_fn p)
        slots
  in
  let n = Array.length results in
  (* One worklist of every pair not served by the cache, in row-major
     order (the order is irrelevant to the result — entries are keyed —
     but keeps chunking deterministic). *)
  let pairs = ref Pair_map.empty in
  let missing = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let key = (ids.(i), ids.(j)) in
      match
        if params_changed then None else Pair_map.find_opt key c.pairs
      with
      | Some entries -> pairs := Pair_map.add key entries !pairs
      | None -> missing := (i, j) :: !missing
    done
  done;
  let missing = Array.of_list (List.rev !missing) in
  let pair_i = Array.map fst missing and pair_j = Array.map snd missing in
  let buffers =
    compute_pairs ~domains ?deadline params results counts fmaps pair_i pair_j
  in
  Array.iteri
    (fun p entries ->
      pairs := Pair_map.add (ids.(pair_i.(p)), ids.(pair_j.(p))) entries !pairs)
    buffers;
  let links_table = derive_links_table results ids !pairs in
  {
    params;
    weight_fn = !weight_fn;
    results;
    links_table;
    weights;
    counts;
    fmaps;
    ids;
    next_id = !next_id;
    pairs = !pairs;
  }

let apply ?domains ?deadline c ops =
  Deadline.check deadline;
  match ops with
  | [] -> c
  (* Single ops keep their dedicated surgical paths — an appended result
     splices links instead of replaying the table, a removed one shares
     every untouched tail — so routing session history through [apply]
     costs nothing over calling the specific operation. *)
  | [ Add p ] -> add_result ?domains ?deadline c p
  | [ Remove i ] -> remove_result c i
  | [ Reparams { params; weight } ] ->
    reparams ?params ?weight ?domains ?deadline c
  | ops -> apply_batch ~domains:(resolve_domains domains) ?deadline c ops

(* {2 Observation helpers for the serve layer and tests} *)

(* Logical link-sequence equality across differently-segmented chains:
   the bit-identity contract is over the packed words, not the
   segmentation, which is an artifact of the mutation history. *)
let equal_chain a b =
  let rec norm s k = if s != nil_seg && k >= s.slen then norm s.snext 0 else (s, k) in
  let rec go sa ka sb kb =
    let sa, ka = norm sa ka in
    let sb, kb = norm sb kb in
    if sa == nil_seg then sb == nil_seg
    else if sb == nil_seg then false
    else
      sa.sbuf.(sa.soff + (2 * ka)) = sb.sbuf.(sb.soff + (2 * kb))
      && sa.sbuf.(sa.soff + (2 * ka) + 1) = sb.sbuf.(sb.soff + (2 * kb) + 1)
      && go sa (ka + 1) sb (kb + 1)
  in
  go a 0 b 0

let equal_links_table a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb && Array.for_all2 equal_chain ra rb)
       a b

let equal_context a b =
  a.params = b.params
  && Array.length a.results = Array.length b.results
  && Array.for_all2 (fun (x : Result_profile.t) y -> x == y) a.results b.results
  && equal_links_table a.links_table b.links_table
  && a.weights = b.weights
  && Array.for_all2 (Feature.Map.equal ( = )) a.counts b.counts

let num_pair_tables c = Pair_map.cardinal c.pairs

let approx_bytes c =
  (* rough heap words of the flat representation, charged as a function
     of the logical content only: a delta-built context and a fresh build
     of the same results report the same footprint even when their
     physical segmentation differs (segmentation is a mutation-history
     artifact; billing it would make footprints drift under churn while
     the data stays the same). Links are 2 packed words; a non-empty list
     is charged one segment header (5 words) and its buffer words. Cached
     pair entries are separate packed storage in this representation (the
     boxed one merged the tuples into the links at derivation), so they
     are billed: 2 words per entry plus array header, plus ~8 words of
     map spine per node. Count/type maps: ~6 words per AVL binding; keys
     are shared with the profiles and not charged here. *)
  let words = ref 64 in
  Array.iter
    (fun row ->
      words := !words + Array.length row + 2;
      Array.iter
        (fun s ->
          let len = chain_len s 0 in
          if len > 0 then words := !words + 5 + (2 * len))
        row)
    c.links_table;
  Pair_map.iter
    (fun _ e -> words := !words + 8 + Array.length e + 1)
    c.pairs;
  Array.iter (fun m -> words := !words + (6 * Feature.Map.cardinal m)) c.counts;
  Array.iter
    (fun m -> words := !words + (6 * Feature.Ftype_map.cardinal m))
    c.fmaps;
  Array.iter (fun w -> words := !words + Array.length w + 2) c.weights;
  !words * (Sys.word_size / 8)

let approx_bytes_boxed c =
  (* what the same logical content cost under the boxed representation
     (one 4-field record + cons cell = 8 words per oriented link; pair
     tuples not billed — they were merged into the links at derivation;
     ~8 words of map spine per pair node): the baseline the flat layout
     is measured against in BENCH_incremental and the CI memory smoke. *)
  let words = ref 64 in
  Array.iter
    (fun row ->
      words := !words + Array.length row + 2;
      Array.iter (fun s -> words := !words + (8 * chain_len s 0)) row)
    c.links_table;
  Pair_map.iter (fun _ _ -> words := !words + 8) c.pairs;
  Array.iter (fun m -> words := !words + (6 * Feature.Map.cardinal m)) c.counts;
  Array.iter
    (fun m -> words := !words + (6 * Feature.Ftype_map.cardinal m))
    c.fmaps;
  Array.iter (fun w -> words := !words + Array.length w + 2) c.weights;
  !words * (Sys.word_size / 8)

let link_buffers c =
  let bufs = ref [] in
  Array.iter
    (fun row ->
      Array.iter
        (fun s ->
          let rec go s =
            if s != nil_seg then begin
              if not (List.memq s.sbuf !bufs) then bufs := s.sbuf :: !bufs;
              go s.snext
            end
          in
          go s)
        row)
    c.links_table;
  !bufs

let fresh_link_words ~parent c =
  let pb = link_buffers parent in
  List.fold_left
    (fun acc b -> if List.memq b pb then acc else acc + Array.length b)
    0 (link_buffers c)

let iter_links c ~i ~gi f =
  let rec go s =
    if s != nil_seg then begin
      for k = 0 to s.slen - 1 do
        let a = s.sbuf.(s.soff + (2 * k)) and b = s.sbuf.(s.soff + (2 * k) + 1) in
        f ~other:(a lsr gi_bits) ~gi_other:(a land gi_mask)
          ~gap_self:(b lsr gap_bits) ~gap_other:(b land gap_mask)
      done;
      go s.snext
    end
  in
  go c.links_table.(i).(gi)

let num_links c ~i ~gi = chain_len c.links_table.(i).(gi) 0

let links c ~i ~gi =
  let acc = ref [] in
  iter_links c ~i ~gi (fun ~other ~gi_other ~gap_self ~gap_other ->
      acc := { other; gi_other; gap_self; gap_other } :: !acc);
  List.rev !acc

let weight_of c ~i ~gi = c.weights.(i).(gi)

let differentiable link ~q_self ~q_other =
  q_self >= 1 && q_other >= 1
  && (link.gap_self <= q_self || link.gap_other <= q_other)

let threshold_q link ~q_other =
  if q_other < 1 then infinity_gap
  else if link.gap_other <= q_other then 1
  else link.gap_self

let dod_pair c ~i ~j di dj =
  let count = ref 0 in
  let row = c.links_table.(i) in
  for gi = 0 to Array.length row - 1 do
    let q_self = Dfs.q di gi in
    if q_self >= 1 then begin
      let rec go s =
        if s != nil_seg then begin
          for k = 0 to s.slen - 1 do
            let a = s.sbuf.(s.soff + (2 * k)) in
            if a lsr gi_bits = j then begin
              let q_other = Dfs.q dj (a land gi_mask) in
              if q_other >= 1 then begin
                let b = s.sbuf.(s.soff + (2 * k) + 1) in
                if b lsr gap_bits <= q_self || b land gap_mask <= q_other then
                  count := !count + c.weights.(i).(gi)
              end
            end
          done;
          go s.snext
        end
      in
      go row.(gi)
    end
  done;
  !count

let total c dfss =
  if Array.length dfss <> Array.length c.results then
    invalid_arg "Dod.total: arity mismatch";
  let sum = ref 0 in
  let n = Array.length c.results in
  for i = 0 to n - 1 do
    let row = c.links_table.(i) in
    for gi = 0 to Array.length row - 1 do
      let q_self = Dfs.q dfss.(i) gi in
      if q_self >= 1 then begin
        let w = c.weights.(i).(gi) in
        let rec go s =
          if s != nil_seg then begin
            for k = 0 to s.slen - 1 do
              let a = s.sbuf.(s.soff + (2 * k)) in
              let other = a lsr gi_bits in
              (* Count each unordered pair once, from the lower index. *)
              if other > i then begin
                let q_other = Dfs.q dfss.(other) (a land gi_mask) in
                if q_other >= 1 then begin
                  let b = s.sbuf.(s.soff + (2 * k) + 1) in
                  if b lsr gap_bits <= q_self || b land gap_mask <= q_other
                  then sum := !sum + w
                end
              end
            done;
            go s.snext
          end
        in
        go row.(gi)
      end
    done
  done;
  !sum

let delta_for_type c ~dfss ~i ~gi ~old_q ~new_q =
  let delta = ref 0 in
  let w = c.weights.(i).(gi) in
  let rec go s =
    if s != nil_seg then begin
      for k = 0 to s.slen - 1 do
        let a = s.sbuf.(s.soff + (2 * k)) in
        let q_other = Dfs.q dfss.(a lsr gi_bits) (a land gi_mask) in
        if q_other >= 1 then begin
          let b = s.sbuf.(s.soff + (2 * k) + 1) in
          let gap_self = b lsr gap_bits and gap_other = b land gap_mask in
          let before =
            old_q >= 1 && (gap_self <= old_q || gap_other <= q_other)
          in
          let after =
            new_q >= 1 && (gap_self <= new_q || gap_other <= q_other)
          in
          if before && not after then delta := !delta - w
          else if (not before) && after then delta := !delta + w
        end
      done;
      go s.snext
    end
  in
  go c.links_table.(i).(gi);
  !delta

type witness = {
  feature : Feature.t;
  measure_i : float;
  measure_j : float;
}

let measures_of c ~i ~j f =
  let count_in r =
    match Feature.Map.find_opt f c.counts.(r) with Some n -> n | None -> 0
  in
  ( measure_of c.params c.results.(i) f (count_in i),
    measure_of c.params c.results.(j) f (count_in j) )

let find_link c ~i ~gi ~j =
  let rec go s =
    if s == nil_seg then None
    else begin
      let rec scan k =
        if k >= s.slen then go s.snext
        else
          let a = s.sbuf.(s.soff + (2 * k)) in
          if a lsr gi_bits = j then
            let b = s.sbuf.(s.soff + (2 * k) + 1) in
            Some
              {
                other = j;
                gi_other = a land gi_mask;
                gap_self = b lsr gap_bits;
                gap_other = b land gap_mask;
              }
          else scan (k + 1)
      in
      scan 0
    end
  in
  go c.links_table.(i).(gi)

let witness c ~i ~j di dj ~gi =
  match find_link c ~i ~gi ~j with
  | None -> None
  | Some link ->
    let q_self = Dfs.q di gi and q_other = Dfs.q dj link.gi_other in
    if not (differentiable link ~q_self ~q_other) then None
    else
      let f =
        if link.gap_self <= q_self then
          (Result_profile.type_info c.results.(i) gi).features.(link.gap_self - 1)
            .Result_profile.feature
        else
          (Result_profile.type_info c.results.(j) link.gi_other).features.(link
                                                                             .gap_other
                                                                           - 1)
            .Result_profile.feature
      in
      let measure_i, measure_j = measures_of c ~i ~j f in
      Some { feature = f; measure_i; measure_j }

let explain_pair c ~i ~j di dj =
  let acc = ref [] in
  Array.iteri
    (fun gi _ ->
      match witness c ~i ~j di dj ~gi with
      | Some w ->
        acc := ((Result_profile.type_info c.results.(i) gi).ftype, w) :: !acc
      | None -> ())
    c.links_table.(i);
  List.rev !acc

(* Both gap fields at the sentinel: the packed word of a never-
   differentiable link. *)
let inf_both = (infinity_gap lsl gap_bits) lor infinity_gap

let upper_bound_pair c ~i ~j =
  let sum = ref 0 in
  let row = c.links_table.(i) in
  for gi = 0 to Array.length row - 1 do
    let rec go s =
      if s != nil_seg then begin
        for k = 0 to s.slen - 1 do
          let a = s.sbuf.(s.soff + (2 * k)) in
          if a lsr gi_bits = j && s.sbuf.(s.soff + (2 * k) + 1) <> inf_both
          then sum := !sum + c.weights.(i).(gi)
        done;
        go s.snext
      end
    in
    go row.(gi)
  done;
  !sum

(* {2 Serialization}

   The warm-boot wire form (DESIGN.md §14): params + stable ids + the
   cached pair entry tables, i.e. exactly the expensive-to-recompute
   first-gap data. Everything else in the record is a cheap pure
   function of the profiles ([counts_map], [ftype_map], [weights_row])
   or of the pairs map itself ([derive_links_table]), so
   [deserialize_context] rebuilds those on load and the result is
   bit-identical to the context that was serialized. All values are
   64-bit LE words — packed entry word B reaches 2^62, past int32. *)

let ser_version = 1

let serialize_context c =
  let buf = Buffer.create 1024 in
  let add_int v = Buffer.add_int64_le buf (Int64.of_int v) in
  add_int ser_version;
  Buffer.add_int64_le buf (Int64.bits_of_float c.params.threshold_pct);
  add_int (match c.params.measure with Raw -> 0 | Rate -> 1);
  let n = Array.length c.results in
  add_int n;
  Array.iter add_int c.ids;
  add_int c.next_id;
  add_int (Pair_map.cardinal c.pairs);
  Pair_map.iter
    (fun (lo, hi) entries ->
      add_int lo;
      add_int hi;
      add_int (Array.length entries);
      Array.iter add_int entries)
    c.pairs;
  Buffer.contents buf

let deserialize_context ?(weight = fun _ -> 1) profiles blob =
  let fail msg = failwith ("Dod.deserialize_context: " ^ msg) in
  try
    let len = String.length blob in
    let pos = ref 0 in
    let rd () =
      if !pos + 8 > len then fail "truncated";
      let v = Int64.to_int (String.get_int64_le blob !pos) in
      pos := !pos + 8;
      v
    in
    let rd_float () =
      if !pos + 8 > len then fail "truncated";
      let v = Int64.float_of_bits (String.get_int64_le blob !pos) in
      pos := !pos + 8;
      v
    in
    if rd () <> ser_version then fail "version mismatch";
    let threshold_pct = rd_float () in
    let measure =
      match rd () with 0 -> Raw | 1 -> Rate | _ -> fail "bad measure"
    in
    let n = rd () in
    if n <> Array.length profiles then fail "result count mismatch";
    if n < 2 then fail "fewer than two results";
    let ids = Array.make n 0 in
    for i = 0 to n - 1 do
      ids.(i) <- rd ();
      if ids.(i) < 0 || (i > 0 && ids.(i) <= ids.(i - 1)) then
        fail "ids not strictly increasing"
    done;
    let next_id = rd () in
    if next_id <= ids.(n - 1) then fail "stale next_id";
    let npairs = rd () in
    if npairs <> n * (n - 1) / 2 then fail "pair count mismatch";
    let pairs = ref Pair_map.empty in
    for _ = 1 to npairs do
      let lo = rd () in
      let hi = rd () in
      let ne = rd () in
      (* bound the claimed length by the bytes actually left — a corrupt
         count must not become an allocation attempt *)
      if ne < 0 || ne mod 2 <> 0 || ne > (len - !pos) / 8 then
        fail "bad entry table length";
      if lo >= hi then fail "bad pair key";
      let entries = Array.make ne 0 in
      for k = 0 to ne - 1 do
        entries.(k) <- rd ()
      done;
      pairs := Pair_map.add (lo, hi) entries !pairs
    done;
    if !pos <> len then fail "trailing bytes";
    if Pair_map.cardinal !pairs <> npairs then fail "duplicate pair key";
    let params = { threshold_pct; measure } in
    let weights = Array.map (weights_row weight) profiles in
    let counts = Array.map counts_map profiles in
    let fmaps = Array.map ftype_map profiles in
    (* entry gi fields must index the profiles' type rows — checked here
       so [derive_links_table] (and every later link walk) never reads a
       word this blob smuggled out of range *)
    Pair_map.iter
      (fun (lo, hi) entries ->
        let idx_of id =
          let rec go i =
            if i >= n then fail "pair key names an unknown id"
            else if ids.(i) = id then i
            else go (i + 1)
          in
          go 0
        in
        let i = idx_of lo and j = idx_of hi in
        let ne = Array.length entries / 2 in
        for k = 0 to ne - 1 do
          let a = entries.(2 * k) in
          let gi_i = a lsr gi_bits and gi_j = a land gi_mask in
          if gi_i >= Array.length weights.(i) || gi_j >= Array.length weights.(j)
          then fail "entry type index out of range"
        done)
      !pairs;
    let links_table = derive_links_table profiles ids !pairs in
    Ok
      {
        params;
        weight_fn = weight;
        results = profiles;
        links_table;
        weights;
        counts;
        fmaps;
        ids;
        next_id;
        pairs = !pairs;
      }
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error ("Dod.deserialize_context: " ^ msg)
