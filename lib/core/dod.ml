type measure = Raw | Rate
type params = { threshold_pct : float; measure : measure }

let default_params = { threshold_pct = 10.0; measure = Raw }

let infinity_gap = max_int

type link = {
  other : int;
  gi_other : int;
  gap_self : int;
  gap_other : int;
}

type context = {
  params : params;
  results : Result_profile.t array;
  (* links_table.(i).(gi) = all pair links of type gi of result i *)
  links_table : link list array array;
  (* weights.(i).(gi) = interestingness weight of that type *)
  weights : int array array;
  (* per-result feature -> count, kept for witness explanations *)
  counts : int Feature.Map.t array;
}

let params c = c.params
let results c = c.results
let num_results c = Array.length c.results

(* Occurrence measure of a feature count within a result. *)
let measure_of params (profile : Result_profile.t) (f : Feature.t) count =
  match params.measure with
  | Raw -> float_of_int count
  | Rate ->
    let pop = Result_profile.population profile f.Feature.ftype.Feature.entity in
    float_of_int count /. float_of_int pop

let gap_exceeds params a b =
  let diff = Float.abs (a -. b) in
  let smaller = Float.min a b in
  diff > params.threshold_pct /. 100.0 *. smaller
  && diff > 0.0

(* First 1-based prefix index of [self_type]'s features witnessing a gap
   against [other]'s counts. *)
let first_gap params (self_profile : Result_profile.t)
    (self_type : Result_profile.type_info) (other_profile : Result_profile.t)
    other_counts =
  let n = Array.length self_type.features in
  let rec scan k =
    if k >= n then infinity_gap
    else
      let fi = self_type.features.(k) in
      let f = fi.Result_profile.feature in
      let self_measure = measure_of params self_profile f fi.Result_profile.count in
      let other_count =
        match Feature.Map.find_opt f other_counts with
        | Some c -> c
        | None -> 0
      in
      let other_measure = measure_of params other_profile f other_count in
      if gap_exceeds params self_measure other_measure then k + 1
      else scan (k + 1)
  in
  scan 0

let counts_map (profile : Result_profile.t) =
  Array.fold_left
    (fun acc (e : Result_profile.entity_info) ->
      Array.fold_left
        (fun acc (ti : Result_profile.type_info) ->
          Array.fold_left
            (fun acc (fi : Result_profile.feat_info) ->
              Feature.Map.add fi.feature fi.count acc)
            acc ti.features)
        acc e.types)
    Feature.Map.empty profile.entities

let ftype_map (profile : Result_profile.t) =
  Seq.fold_left
    (fun acc (gi, (ti : Result_profile.type_info)) ->
      Feature.Ftype_map.add ti.ftype gi acc)
    Feature.Ftype_map.empty
    (Result_profile.types_seq profile)

(* Below this many pairs per domain the fork/join round-trip costs more
   than the first_gap work it distributes. *)
let min_pairs_per_domain = 8

let make_context ?(params = default_params) ?(weight = fun _ -> 1) ?domains
    ?deadline results =
  if Array.length results < 2 then
    invalid_arg "Dod.make_context: need at least two results";
  Deadline.check deadline;
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Domain_pool.default_domains ()
  in
  let weights =
    Array.map
      (fun profile ->
        Array.init (Result_profile.num_types profile) (fun gi ->
            let w = weight (Result_profile.type_info profile gi).ftype in
            if w < 0 then invalid_arg "Dod.make_context: negative weight";
            w))
      results
  in
  let n = Array.length results in
  let counts = Array.map counts_map results in
  let fmaps = Array.map ftype_map results in
  let links_table =
    Array.map
      (fun profile ->
        Array.make (Result_profile.num_types profile) ([] : link list))
      results
  in
  (* The unordered pairs (i, j), i < j, flattened in the order the
     sequential double loop visits them. Pair work (first_gap scans over the
     shared types) is independent across pairs, so the pairs partition
     across domains; each pair's links land in a private slot and a
     sequential merge replays them in pair order, making the resulting
     links_table bit-identical to the sequential build for every domain
     count. *)
  let npairs = n * (n - 1) / 2 in
  let pair_i = Array.make npairs 0 and pair_j = Array.make npairs 0 in
  let p = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pair_i.(!p) <- i;
      pair_j.(!p) <- j;
      incr p
    done
  done;
  (* Shared types of pair [p], with both first-gap indices, in the
     iteration order of result i's type map. Reads only immutable data. *)
  let compute_pair p =
    let i = pair_i.(p) and j = pair_j.(p) in
    let acc = ref [] in
    Feature.Ftype_map.iter
      (fun ftype gi_i ->
        match Feature.Ftype_map.find_opt ftype fmaps.(j) with
        | None -> ()
        | Some gi_j ->
          let ti = Result_profile.type_info results.(i) gi_i in
          let tj = Result_profile.type_info results.(j) gi_j in
          let gap_i = first_gap params results.(i) ti results.(j) counts.(j) in
          let gap_j = first_gap params results.(j) tj results.(i) counts.(i) in
          acc := (gi_i, gi_j, gap_i, gap_j) :: !acc)
      fmaps.(i);
    List.rev !acc
  in
  let merge_pair p entries =
    let i = pair_i.(p) and j = pair_j.(p) in
    List.iter
      (fun (gi_i, gi_j, gap_i, gap_j) ->
        links_table.(i).(gi_i) <-
          { other = j; gi_other = gi_j; gap_self = gap_i; gap_other = gap_j }
          :: links_table.(i).(gi_i);
        links_table.(j).(gi_j) <-
          { other = i; gi_other = gi_i; gap_self = gap_j; gap_other = gap_i }
          :: links_table.(j).(gi_j))
      entries
  in
  (* A context is all-or-nothing — a partially linked table would silently
     change the objective — so a tripped deadline raises Deadline.Expired
     (here between pairs, or inside parallel_for between chunks) instead
     of returning something degraded. *)
  if domains = 1 || npairs < min_pairs_per_domain * domains then
    for p = 0 to npairs - 1 do
      Deadline.check deadline;
      merge_pair p (compute_pair p)
    done
  else begin
    let pool = Domain_pool.get ~domains in
    let buffers = Array.make npairs [] in
    Domain_pool.parallel_for ?deadline pool ~n:npairs ~chunk:(fun lo hi ->
        for p = lo to hi - 1 do
          buffers.(p) <- compute_pair p
        done);
    Array.iteri merge_pair buffers
  end;
  { params; results; links_table; weights; counts }

let links c ~i ~gi = c.links_table.(i).(gi)

let weight_of c ~i ~gi = c.weights.(i).(gi)

let differentiable link ~q_self ~q_other =
  q_self >= 1 && q_other >= 1
  && (link.gap_self <= q_self || link.gap_other <= q_other)

let threshold_q link ~q_other =
  if q_other < 1 then infinity_gap
  else if link.gap_other <= q_other then 1
  else link.gap_self

let dod_pair c ~i ~j di dj =
  let count = ref 0 in
  Array.iteri
    (fun gi link_list ->
      let q_self = Dfs.q di gi in
      if q_self > 0 then
        List.iter
          (fun link ->
            if link.other = j then
              let q_other = Dfs.q dj link.gi_other in
              if differentiable link ~q_self ~q_other then
                count := !count + c.weights.(i).(gi))
          link_list)
    c.links_table.(i);
  !count

let total c dfss =
  if Array.length dfss <> Array.length c.results then
    invalid_arg "Dod.total: arity mismatch";
  let sum = ref 0 in
  let n = Array.length c.results in
  for i = 0 to n - 1 do
    Array.iteri
      (fun gi link_list ->
        let q_self = Dfs.q dfss.(i) gi in
        if q_self > 0 then
          List.iter
            (fun link ->
              (* Count each unordered pair once, from the lower index. *)
              if link.other > i then
                let q_other = Dfs.q dfss.(link.other) link.gi_other in
                if differentiable link ~q_self ~q_other then
                  sum := !sum + c.weights.(i).(gi))
            link_list)
      c.links_table.(i)
  done;
  !sum

let delta_for_type c ~dfss ~i ~gi ~old_q ~new_q =
  let delta = ref 0 in
  let w = c.weights.(i).(gi) in
  List.iter
    (fun link ->
      let q_other = Dfs.q dfss.(link.other) link.gi_other in
      let before = differentiable link ~q_self:old_q ~q_other in
      let after = differentiable link ~q_self:new_q ~q_other in
      if before && not after then delta := !delta - w
      else if (not before) && after then delta := !delta + w)
    c.links_table.(i).(gi);
  !delta

type witness = {
  feature : Feature.t;
  measure_i : float;
  measure_j : float;
}

let measures_of c ~i ~j f =
  let count_in r =
    match Feature.Map.find_opt f c.counts.(r) with Some n -> n | None -> 0
  in
  ( measure_of c.params c.results.(i) f (count_in i),
    measure_of c.params c.results.(j) f (count_in j) )

let witness c ~i ~j di dj ~gi =
  let link_opt =
    List.find_opt (fun l -> l.other = j) (links c ~i ~gi)
  in
  match link_opt with
  | None -> None
  | Some link ->
    let q_self = Dfs.q di gi and q_other = Dfs.q dj link.gi_other in
    if not (differentiable link ~q_self ~q_other) then None
    else
      let f =
        if link.gap_self <= q_self then
          (Result_profile.type_info c.results.(i) gi).features.(link.gap_self - 1)
            .Result_profile.feature
        else
          (Result_profile.type_info c.results.(j) link.gi_other).features.(link
                                                                             .gap_other
                                                                           - 1)
            .Result_profile.feature
      in
      let measure_i, measure_j = measures_of c ~i ~j f in
      Some { feature = f; measure_i; measure_j }

let explain_pair c ~i ~j di dj =
  let acc = ref [] in
  Array.iteri
    (fun gi _ ->
      match witness c ~i ~j di dj ~gi with
      | Some w ->
        acc := ((Result_profile.type_info c.results.(i) gi).ftype, w) :: !acc
      | None -> ())
    c.links_table.(i);
  List.rev !acc

let upper_bound_pair c ~i ~j =
  let sum = ref 0 in
  Array.iteri
    (fun gi link_list ->
      List.iter
        (fun link ->
          if
            link.other = j
            && (link.gap_self < infinity_gap || link.gap_other < infinity_gap)
          then sum := !sum + c.weights.(i).(gi))
        link_list)
    c.links_table.(i);
  !sum
