(** Single-swap-optimal DFS generation (Section 2, "Local Optimality").

    Hill climbing over single-feature moves: starting from the top-k
    solution, repeatedly apply the best strictly-improving move on some
    result's DFS — growing one type's selection by one feature, or swapping
    (shrink one type by one feature, grow another by one) — until no move on
    any DFS increases the total DoD. Pure removals are never improving
    (DoD is monotone in the selection), so they only occur inside swaps.

    The output is {b single-swap optimal}: changing or adding one feature in
    any DFS, keeping validity and the size bound, cannot increase the DoD.

    Moves are ranked by [(DoD delta, spread-bonus delta)] lexicographically
    and accepted when that pair is positive — a selected type's bonus is 1
    plus the number of other results sharing it, so a zero-DoD move that
    opens a new, alignable feature type is still taken. This matches the
    multi-swap tie-breaking: on corpora where all significances tie (the
    movie data), it lets the climbers coordinate on shared types instead of
    stalling in an equilibrium where every DFS shows only its first
    multi-valued attribute. Termination is unaffected (a bounded potential
    strictly increases with every accepted move). *)

type stats = {
  iterations : int;  (** accepted moves *)
  rounds : int;  (** full passes over the results *)
  converged : bool;
      (** [true]: reached the single-swap optimum; [false]: the deadline
          tripped first and the output is the (valid) best-so-far *)
}

val generate :
  ?init:Dfs.t array -> ?spread:bool -> ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int -> Dfs.t array
(** [generate context ~limit] starts from {!Topk.generate} (or [init],
    which must be valid for [limit]) and climbs to a single-swap optimum.
    [spread] (default [true]) enables the type-spreading tie-break; disable
    it to reproduce pure DoD hill climbing — the ablation DESIGN.md calls
    out (it stalls in poor equilibria on all-tied corpora).

    [deadline] makes the climb anytime: the token is polled before every
    move search, and once it trips the current (always-valid)
    configuration is returned as is. A run whose deadline never trips is
    bit-identical to an undeadlined run. Carries the ["compare.round"]
    {!Xsact_util.Failpoint} at every round start. *)

val generate_with_stats :
  ?init:Dfs.t array -> ?spread:bool -> ?deadline:Xsact_util.Deadline.t ->
  Dod.context -> limit:int ->
  Dfs.t array * stats

val improving_move_exists : Dod.context -> limit:int -> Dfs.t array -> bool
(** Post-condition oracle used by tests: does any single grow/swap on any
    result strictly increase the total DoD? *)
