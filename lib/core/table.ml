type entry = { feature : Feature.t; count : int; population : int }

type cell = Unknown | Entries of entry list

type row = {
  ftype : Feature.ftype;
  differentiating : bool;
  cells : cell array;
}

type t = {
  labels : string array;
  rows : row list;
  dod : int;
  size_bound : int;
}

let build ?size_bound context dfss =
  let results = Dod.results context in
  let n = Array.length results in
  if Array.length dfss <> n then invalid_arg "Table.build: arity mismatch";
  (* Collect the union of selected feature types with bookkeeping. *)
  let info : (Feature.ftype, int (* max significance *)) Hashtbl.t =
    Hashtbl.create 32
  in
  Array.iteri
    (fun i dfs ->
      List.iter
        (fun gi ->
          let ti = Result_profile.type_info results.(i) gi in
          let prev =
            match Hashtbl.find_opt info ti.ftype with Some s -> s | None -> 0
          in
          Hashtbl.replace info ti.ftype (max prev ti.significance))
        (Dfs.selected_types dfs))
    dfss;
  let ftypes =
    Hashtbl.fold (fun ftype max_sig acc -> (ftype, max_sig) :: acc) info []
    |> List.sort (fun ((ta : Feature.ftype), sa) (tb, sb) ->
           let c = String.compare ta.Feature.entity tb.Feature.entity in
           if c <> 0 then c
           else
             let c = Int.compare sb sa in
             if c <> 0 then c
             else String.compare ta.Feature.attribute tb.Feature.attribute)
    |> List.map fst
  in
  let cell_for i ftype =
    match Result_profile.find_type results.(i) ftype with
    | None -> Unknown
    | Some gi ->
      let q = Dfs.q dfss.(i) gi in
      if q = 0 then Unknown
      else
        let ti = Result_profile.type_info results.(i) gi in
        let population =
          Result_profile.population results.(i) ftype.Feature.entity
        in
        Entries
          (List.init q (fun k ->
               let fi = ti.features.(k) in
               {
                 feature = fi.Result_profile.feature;
                 count = fi.Result_profile.count;
                 population;
               }))
  in
  let differentiating_for ftype =
    (* A type differentiates if some pair is differentiable on it. *)
    let found = ref false in
    for i = 0 to n - 1 do
      match Result_profile.find_type results.(i) ftype with
      | None -> ()
      | Some gi ->
        let q_self = Dfs.q dfss.(i) gi in
        if q_self > 0 then
          Dod.iter_links context ~i ~gi
            (fun ~other ~gi_other ~gap_self ~gap_other ->
              if other > i then
                let q_other = Dfs.q dfss.(other) gi_other in
                if q_other >= 1 && (gap_self <= q_self || gap_other <= q_other)
                then found := true)
    done;
    !found
  in
  let rows =
    List.map
      (fun ftype ->
        {
          ftype;
          differentiating = differentiating_for ftype;
          cells = Array.init n (fun i -> cell_for i ftype);
        })
      ftypes
  in
  let labels = Array.map (fun (p : Result_profile.t) -> p.label) results in
  let dod = Dod.total context dfss in
  let size_bound =
    match size_bound with
    | Some l -> l
    | None -> Array.fold_left (fun acc d -> max acc (Dfs.size d)) 0 dfss
  in
  { labels; rows; dod; size_bound }
