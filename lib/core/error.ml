type t =
  | No_results of string
  | Too_few_selected of int
  | Rank_out_of_range of { rank : int; available : int }
  | Index_out_of_range of { index : int; length : int }
  | Bound_too_small of int
  | Unsupported_algorithm of string
  | Timeout

let to_string = function
  | No_results keywords -> Printf.sprintf "no results for %S" keywords
  | Too_few_selected n ->
    Printf.sprintf "need at least two results to compare (have %d)" n
  | Rank_out_of_range { rank; available } ->
    Printf.sprintf "rank %d out of range (have %d results)" rank available
  | Index_out_of_range { index; length } ->
    Printf.sprintf "index %d out of range (have %d results)" index length
  | Bound_too_small bound ->
    Printf.sprintf "size bound must be at least 1 (got %d)" bound
  | Unsupported_algorithm name ->
    Printf.sprintf "algorithm %s is not supported by this operation" name
  | Timeout -> "deadline exceeded before any complete comparison was available"

let equal (a : t) (b : t) = a = b
