let log_src = Logs.Src.create "xsact.pipeline" ~doc:"XSACT comparison pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { engine : Search.engine }

let create doc = { engine = Search.create doc }
let of_element root = { engine = Search.of_element root }
let engine t = t.engine

let search ?limit ?lift_to t keywords =
  Search.query ?limit ?lift_to t.engine keywords

let profile_of ?(prune = Result_builder.Full) ?(keywords = "") t
    (r : Search.result) =
  match prune with
  | Result_builder.Full -> Extractor.of_search_result t.engine r
  | mode ->
    let categories = Search.categories t.engine in
    let normalized = Token.normalize_query keywords in
    let pruned =
      Result_builder.prune ~categories ~keywords:normalized mode
        r.Search.element
    in
    Extractor.extract ~categories
      ~label:(Search.result_title t.engine r)
      pruned

type comparison = {
  keywords : string;
  profiles : Result_profile.t array;
  context : Dod.context;
  dfss : Dfs.t array;
  dod : int;
  table : Table.t;
  algorithm : Algorithm.t;
  size_bound : int;
  elapsed_s : float;
  degraded : bool;
}

let compare_profiles ?(config = Config.default) ?deadline ?context ~keywords
    ~size_bound profiles =
  let { Config.params; weight; algorithm; domains; incremental = _ } =
    config
  in
  if Array.length profiles < 2 then
    Error (Error.Too_few_selected (Array.length profiles))
  else if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else if Xsact_util.Deadline.over deadline then Error Error.Timeout
  else begin
    (match context with
    | Some c when Dod.num_results c <> Array.length profiles ->
      invalid_arg "Pipeline.compare_profiles: context arity mismatch"
    | _ -> ());
    (* The context build is all-or-nothing: a deadline tripping inside it
       raises Expired, and with no complete round of anything there is no
       best-so-far to degrade to — that is the one Timeout error path.
       Past the context, generation is anytime and only ever degrades. A
       caller-supplied warm [context] (the server's context cache) skips
       the build entirely. *)
    match
      match context with
      | Some c -> c
      | None -> Dod.make_context ~params ~weight ?domains ?deadline profiles
    with
    | exception Xsact_util.Deadline.Expired -> Error Error.Timeout
    | context ->
      let (dfss, outcome, elapsed_s) =
        let t0 = Unix.gettimeofday () in
        let dfss, outcome =
          Algorithm.generate_within ?domains ?deadline algorithm context
            ~limit:size_bound
        in
        (dfss, outcome, Unix.gettimeofday () -. t0)
      in
      let degraded = outcome = `Degraded in
      let table = Table.build ~size_bound context dfss in
      Log.info (fun m ->
          m "compared %d results for %S with %s (L=%d): DoD=%d in %.4fs%s"
            (Array.length profiles) keywords
            (Algorithm.to_string algorithm)
            size_bound (Dod.total context dfss) elapsed_s
            (if degraded then " (degraded: deadline hit)" else ""));
      Ok
        {
          keywords;
          profiles;
          context;
          dfss;
          dod = Dod.total context dfss;
          table;
          algorithm;
          size_bound;
          elapsed_s;
          degraded;
        }
  end

let compare ?config ?deadline ?lift_to ?prune ?select ?top t ~keywords
    ~size_bound =
  let results = search ?lift_to t keywords in
  match results with
  | [] -> Error (Error.No_results keywords)
  | _ ->
    let chosen =
      match select with
      | Some ranks ->
        let n = List.length results in
        (match List.find_opt (fun r -> r < 1 || r > n) ranks with
        | Some rank ->
          Error (Error.Rank_out_of_range { rank; available = n })
        | None ->
          Ok (List.map (fun rank -> List.nth results (rank - 1)) ranks))
      | None ->
        let top = match top with Some t -> t | None -> 4 in
        Ok (List.filteri (fun i _ -> i < top) results)
    in
    (match chosen with
    | Error e -> Error e
    | Ok chosen ->
      let profiles =
        Array.of_list (List.map (profile_of ?prune ~keywords t) chosen)
      in
      compare_profiles ?config ?deadline ~keywords ~size_bound profiles)
