(** Typed errors of the comparison API.

    {!Pipeline} and {!Session} used to report failures as bare strings,
    which a serving layer can only map to HTTP status codes by matching
    message text. Every fallible operation now returns one of these
    variants; [to_string] renders the human-readable message the CLI and
    examples print, and `xsact-serve` maps the variants to status codes
    directly (see [Xsact_serve.Api.status_of_error]). *)

type t =
  | No_results of string
      (** the keyword query matched nothing; carries the keywords *)
  | Too_few_selected of int
      (** a comparison needs at least two results; carries how many the
          operation would leave *)
  | Rank_out_of_range of { rank : int; available : int }
      (** a 1-based selection rank outside [1, available] *)
  | Index_out_of_range of { index : int; length : int }
      (** a 0-based session index outside [0, length) *)
  | Bound_too_small of int
      (** the size bound L must be at least 1; carries the offending value *)
  | Unsupported_algorithm of string
      (** the operation rejects this algorithm (e.g. sessions and the
          exhaustive oracle); carries {!Algorithm.to_string} of it *)
  | Timeout
      (** the request's {!Xsact_util.Deadline} tripped before even a
          degraded (best-so-far) answer existed — e.g. during context
          construction. The serving layer maps this to HTTP 504. *)

val to_string : t -> string
(** The human-readable message ("no results for ...", "size bound must be
    at least 1", ...) — what the pre-typed API returned as [Error msg]. *)

val equal : t -> t -> bool
