(** End-to-end XSACT pipeline (Figure 3): keyword search → result selection
    → entity/feature extraction → DFS generation → comparison table. *)

type t
(** An indexed corpus ready for search-and-compare. *)

val create : Xml.document -> t
val of_element : Xml.element -> t

val engine : t -> Search.engine

val search : ?limit:int -> ?lift_to:string -> t -> string -> Search.result list
(** Plain keyword search (see {!Xsact_search.Search.query}). *)

val profile_of :
  ?prune:Result_builder.mode -> ?keywords:string -> t -> Search.result ->
  Result_profile.t
(** Extract one result's feature profile. [prune] (default [Full]) applies
    the XSeek-style return policy first; [Matched_entities] requires the
    query [keywords]. *)

type comparison = {
  keywords : string;
  profiles : Result_profile.t array;  (** the compared results, in order *)
  context : Dod.context;
      (** the precomputed pair tables the DFSs were generated from —
          returned so callers (the server's context cache) can reuse them
          for later requests over the same result set *)
  dfss : Dfs.t array;
  dod : int;  (** total DoD of the generated DFSs *)
  table : Table.t;
  algorithm : Algorithm.t;
  size_bound : int;
  elapsed_s : float;  (** DFS generation time (excludes search) *)
  degraded : bool;
      (** [true] iff a deadline tripped mid-generation and the table is the
          algorithm's (valid, budget-filling) best-so-far rather than its
          converged output. Always [false] without a deadline. *)
}

val compare :
  ?config:Config.t ->
  ?deadline:Xsact_util.Deadline.t ->
  ?lift_to:string ->
  ?prune:Result_builder.mode ->
  ?select:int list ->
  ?top:int ->
  t ->
  keywords:string ->
  size_bound:int ->
  (comparison, Error.t) result
(** Search, pick results, and build the comparison.

    - [config] (default {!Config.default}) carries the differentiation
      parameters, interestingness weighting, generation algorithm and
      domain-pool parallelism — see {!Config}.
    - [deadline]: a cooperative time/cancellation budget over context
      construction and DFS generation. If it trips during generation the
      comparison still succeeds with [degraded = true] (anytime
      best-so-far); if it trips before any complete result is available
      (during context construction, which is all-or-nothing) the result is
      [Error Timeout]. A run whose deadline never trips is bit-identical
      to a deadline-free run.
    - [select]: 1-based ranks of the results to compare (the demo's
      checkboxes); default: the [top] first results ([top] defaults to 4).
    - Errors: [No_results], [Too_few_selected], [Rank_out_of_range],
      [Bound_too_small], [Timeout] (see {!Error}). *)

val compare_profiles :
  ?config:Config.t ->
  ?deadline:Xsact_util.Deadline.t ->
  ?context:Dod.context ->
  keywords:string ->
  size_bound:int ->
  Result_profile.t array ->
  (comparison, Error.t) result
(** Same, starting from already-extracted profiles (used by benches and by
    callers that assemble results by hand). A warm [context] — e.g. one a
    previous comparison over the same profiles returned — skips the pair
    table build entirely; it must have been built over exactly these
    profiles with the same params/weighting ([Invalid_argument] on an
    arity mismatch; the rest is the caller's contract). *)
