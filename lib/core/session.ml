type t = {
  config : Config.t;
  size_bound : int;
  profiles : Result_profile.t array;
  context : Dod.context;
  dfss : Dfs.t array;
  runs : int ref;  (* shared along the session history *)
}

let generate ?init session context =
  incr session.runs;
  let domains = session.config.Config.domains in
  match (session.config.Config.algorithm, init) with
  | Algorithm.Single_swap, Some init ->
    Single_swap.generate ~init context ~limit:session.size_bound
  | Algorithm.Multi_swap, Some init ->
    Multi_swap.generate ~init ?domains context ~limit:session.size_bound
  | alg, _ ->
    Algorithm.generate ?domains alg context ~limit:session.size_bound

let make_context config profiles =
  Dod.make_context ~params:config.Config.params
    ~weight:config.Config.weight ?domains:config.Config.domains profiles

let rebuild ?init session profiles =
  let context = make_context session.config profiles in
  let session = { session with profiles; context } in
  let dfss = generate ?init session context in
  { session with dfss }

let create ?(config = Config.default) ~size_bound profiles =
  if config.Config.algorithm = Algorithm.Exhaustive then
    Error
      (Error.Unsupported_algorithm (Algorithm.to_string Algorithm.Exhaustive))
  else if List.length profiles < 2 then
    Error (Error.Too_few_selected (List.length profiles))
  else if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else
    let profiles = Array.of_list profiles in
    let context = make_context config profiles in
    let skeleton =
      {
        config;
        size_bound;
        profiles;
        context;
        dfss = [||];
        runs = ref 0;
      }
    in
    let dfss = generate skeleton context in
    Ok { skeleton with dfss }

let config s = s.config
let profiles s = s.profiles
let dfss s = s.dfss
let dod s = Dod.total s.context s.dfss
let size_bound s = s.size_bound
let table s = Table.build ~size_bound:s.size_bound s.context s.dfss
let stats s = !(s.runs)

let add s profile =
  let profiles = Array.append s.profiles [| profile |] in
  (* Warm start: every existing DFS (its profile is unchanged) plus a top-k
     seed for the newcomer. *)
  let init =
    Array.append s.dfss [| Topk.generate_one ~limit:s.size_bound profile |]
  in
  rebuild ~init s profiles

let remove s index =
  let n = Array.length s.profiles in
  if index < 0 || index >= n then
    Error (Error.Index_out_of_range { index; length = n })
  else if n <= 2 then Error (Error.Too_few_selected (n - 1))
  else begin
    let keep i = i <> index in
    let profiles =
      Array.of_list
        (List.filteri (fun i _ -> keep i) (Array.to_list s.profiles))
    in
    let init =
      Array.of_list (List.filteri (fun i _ -> keep i) (Array.to_list s.dfss))
    in
    Ok (rebuild ~init s profiles)
  end

let set_size_bound s size_bound =
  if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else if size_bound = s.size_bound then Ok s
  else
    let s' = { s with size_bound } in
    if size_bound > s.size_bound then
      (* Growing keeps every current DFS valid: warm start. *)
      Ok (rebuild ~init:s.dfss s' s.profiles)
    else
      (* Shrinking may invalidate selections: restart from scratch. *)
      Ok (rebuild s' s.profiles)
