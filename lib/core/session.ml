type t = {
  config : Config.t;
  size_bound : int;
  profiles : Result_profile.t array;
  context : Dod.context;
  dfss : Dfs.t array;
  runs : int ref;  (* shared along the session history *)
}

let generate ?init session context =
  incr session.runs;
  let domains = session.config.Config.domains in
  match (session.config.Config.algorithm, init) with
  | Algorithm.Single_swap, Some init ->
    Single_swap.generate ~init context ~limit:session.size_bound
  | Algorithm.Multi_swap, Some init ->
    Multi_swap.generate ~init ?domains context ~limit:session.size_bound
  | alg, _ ->
    Algorithm.generate ?domains alg context ~limit:session.size_bound

let make_context ?deadline config profiles =
  Dod.make_context ~params:config.Config.params
    ~weight:config.Config.weight ?domains:config.Config.domains ?deadline
    profiles

(* Adopt an already-maintained context (delta-updated or rebuilt) and
   regenerate the DFSs from it, warm-started when [init] is given. *)
let regenerate ?init session context profiles =
  let session = { session with profiles; context } in
  let dfss = generate ?init session context in
  { session with dfss }

let create ?(config = Config.default) ~size_bound profiles =
  if config.Config.algorithm = Algorithm.Exhaustive then
    Error
      (Error.Unsupported_algorithm (Algorithm.to_string Algorithm.Exhaustive))
  else if List.length profiles < 2 then
    Error (Error.Too_few_selected (List.length profiles))
  else if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else
    let profiles = Array.of_list profiles in
    let context = make_context config profiles in
    let skeleton =
      {
        config;
        size_bound;
        profiles;
        context;
        dfss = [||];
        runs = ref 0;
      }
    in
    let dfss = generate skeleton context in
    Ok { skeleton with dfss }

let config s = s.config
let profiles s = s.profiles
let dfss s = s.dfss
let dod s = Dod.total s.context s.dfss
let size_bound s = s.size_bound
let context s = s.context
let table s = Table.build ~size_bound:s.size_bound s.context s.dfss
let stats s = !(s.runs)

let add ?deadline s profile =
  Deadline.check deadline;
  let profiles = Array.append s.profiles [| profile |] in
  (* Warm start: every existing DFS (its profile is unchanged) plus a top-k
     seed for the newcomer. *)
  let init =
    Array.append s.dfss [| Topk.generate_one ~limit:s.size_bound profile |]
  in
  let context =
    if s.config.Config.incremental then
      Dod.add_result ?domains:s.config.Config.domains ?deadline s.context
        profile
    else make_context ?deadline s.config profiles
  in
  regenerate ~init s context profiles

let remove ?deadline s index =
  let n = Array.length s.profiles in
  if index < 0 || index >= n then
    Error (Error.Index_out_of_range { index; length = n })
  else if n <= 2 then Error (Error.Too_few_selected (n - 1))
  else begin
    Deadline.check deadline;
    let keep i = i <> index in
    let profiles =
      Array.of_list
        (List.filteri (fun i _ -> keep i) (Array.to_list s.profiles))
    in
    let init =
      Array.of_list (List.filteri (fun i _ -> keep i) (Array.to_list s.dfss))
    in
    let context =
      if s.config.Config.incremental then Dod.remove_result s.context index
      else make_context ?deadline s.config profiles
    in
    Ok (regenerate ~init s context profiles)
  end

(* Shrink a DFS to the bound by repeatedly unselecting one feature of its
   globally least significant selected type. Entity type ranges are
   contiguous and significance-descending, so the largest selected global
   index never has a strictly less significant selected type in its entity
   — closing it is always legal (Desideratum 2), and every intermediate
   vector stays downward-closed. Deterministic: no search, no ties. *)
let truncate ~limit d =
  if Dfs.size d <= limit then d
  else begin
    let q = Dfs.to_q_array d in
    let size = ref (Dfs.size d) in
    let gi = ref (Array.length q - 1) in
    while !size > limit do
      if q.(!gi) > 0 then begin
        q.(!gi) <- q.(!gi) - 1;
        decr size
      end
      else decr gi
    done;
    Dfs.of_q_array (Dfs.profile d) q
  end

let set_size_bound ?deadline s size_bound =
  if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else if size_bound = s.size_bound then Ok s
  else begin
    Deadline.check deadline;
    let s' = { s with size_bound } in
    (* Growing keeps every current DFS valid; shrinking warm-starts from
       the truncated prefix, valid by the Validity ordering. The context
       does not depend on the bound at all, so the live one is reused
       verbatim (non-incremental mode rebuilds it, as the ablation
       baseline). *)
    let init =
      if size_bound > s.size_bound then s.dfss
      else Array.map (truncate ~limit:size_bound) s.dfss
    in
    let context =
      if s.config.Config.incremental then s.context
      else make_context ?deadline s.config s.profiles
    in
    Ok (regenerate ~init s' context s.profiles)
  end
