type t = {
  config : Config.t;
  size_bound : int;
  profiles : Result_profile.t array;
  context : Dod.context;
  dfss : Dfs.t array;
  runs : int ref;  (* shared along the session history *)
}

let generate ?init session context =
  incr session.runs;
  let domains = session.config.Config.domains in
  match (session.config.Config.algorithm, init) with
  | Algorithm.Single_swap, Some init ->
    Single_swap.generate ~init context ~limit:session.size_bound
  | Algorithm.Multi_swap, Some init ->
    Multi_swap.generate ~init ?domains context ~limit:session.size_bound
  | alg, _ ->
    Algorithm.generate ?domains alg context ~limit:session.size_bound

let make_context ?deadline config profiles =
  Dod.make_context ~params:config.Config.params
    ~weight:config.Config.weight ?domains:config.Config.domains ?deadline
    profiles

(* Adopt an already-maintained context (delta-updated or rebuilt) and
   regenerate the DFSs from it, warm-started when [init] is given. *)
let regenerate ?init session context profiles =
  let session = { session with profiles; context } in
  let dfss = generate ?init session context in
  { session with dfss }

let create ?(config = Config.default) ?context ~size_bound profiles =
  if config.Config.algorithm = Algorithm.Exhaustive then
    Error
      (Error.Unsupported_algorithm (Algorithm.to_string Algorithm.Exhaustive))
  else if List.length profiles < 2 then
    Error (Error.Too_few_selected (List.length profiles))
  else if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else
    let profiles = Array.of_list profiles in
    let context =
      match context with
      | Some c ->
        if Dod.num_results c <> Array.length profiles then
          invalid_arg "Session.create: context arity mismatch";
        c
      | None -> make_context config profiles
    in
    let skeleton =
      {
        config;
        size_bound;
        profiles;
        context;
        dfss = [||];
        runs = ref 0;
      }
    in
    let dfss = generate skeleton context in
    Ok { skeleton with dfss }

(* Adopt fully-materialized state — deserialized context and DFSs — with
   no search, extraction, context build or generation. The warm-boot
   path: everything here was produced by [create]/[apply] in a previous
   process, so validity is re-checked rather than re-derived. *)
let restore ?(runs = 1) ~config ~size_bound ~profiles ~context ~dfss () =
  if config.Config.algorithm = Algorithm.Exhaustive then
    Error
      (Error.Unsupported_algorithm (Algorithm.to_string Algorithm.Exhaustive))
  else if Array.length profiles < 2 then
    Error (Error.Too_few_selected (Array.length profiles))
  else if size_bound < 1 then Error (Error.Bound_too_small size_bound)
  else if
    Dod.num_results context <> Array.length profiles
    || Array.length dfss <> Array.length profiles
  then invalid_arg "Session.restore: arity mismatch"
  else if
    not
      (Array.for_all2
         (fun d p -> Dfs.profile d == p && Dfs.is_valid ~limit:size_bound d)
         dfss profiles)
  then invalid_arg "Session.restore: invalid DFS"
  else
    (* [runs] defaults to 1 — what [create] leaves behind; a warm-boot
       caller passes the run count it snapshotted so the restored session
       is indistinguishable from the live one it resumes. *)
    Ok { config; size_bound; profiles; context; dfss; runs = ref (max 1 runs) }

(* Swap in a canonical, physically shared (profiles, context) pair that
   is structurally identical to the session's own — the intern table's
   adoption hook. The DFSs are untouched: they reference the old profile
   objects, which carry the same data, and every consumer reads them by
   value. *)
let intern s ~profiles ~context =
  if
    Array.length profiles <> Array.length s.profiles
    || Dod.num_results context <> Array.length s.profiles
  then invalid_arg "Session.intern: arity mismatch";
  { s with profiles; context }

let config s = s.config
let profiles s = s.profiles
let dfss s = s.dfss
let dod s = Dod.total s.context s.dfss
let size_bound s = s.size_bound
let context s = s.context
let table s = Table.build ~size_bound:s.size_bound s.context s.dfss
let stats s = !(s.runs)

(* Shrink a DFS to the bound by repeatedly unselecting one feature of its
   globally least significant selected type. Entity type ranges are
   contiguous and significance-descending, so the largest selected global
   index never has a strictly less significant selected type in its entity
   — closing it is always legal (Desideratum 2), and every intermediate
   vector stays downward-closed. Deterministic: no search, no ties. *)
let truncate ~limit d =
  if Dfs.size d <= limit then d
  else begin
    let q = Dfs.to_q_array d in
    let size = ref (Dfs.size d) in
    let gi = ref (Array.length q - 1) in
    while !size > limit do
      if q.(!gi) > 0 then begin
        q.(!gi) <- q.(!gi) - 1;
        decr size
      end
      else decr gi
    done;
    Dfs.of_q_array (Dfs.profile d) q
  end

type op =
  | Add of Result_profile.t
  | Remove of int
  | Set_size_bound of int
  | Reparams of {
      params : Dod.params option;
      weight : (Feature.ftype -> int) option;
    }

let apply ?deadline s ops =
  let n0 = Array.length s.profiles in
  (* Simulate the batch symbolically before touching anything: validation
     and the final arrangement are O(ops × n) bookkeeping, so an invalid
     op — or a batch that cancels itself out — is decided before any pair
     work or DFS generation. *)
  let rec validate n = function
    | [] -> Ok ()
    | Add _ :: tl -> validate (n + 1) tl
    | Remove index :: tl ->
      if index < 0 || index >= n then
        Error (Error.Index_out_of_range { index; length = n })
      else if n <= 2 then Error (Error.Too_few_selected (n - 1))
      else validate (n - 1) tl
    | Set_size_bound b :: tl ->
      if b < 1 then Error (Error.Bound_too_small b) else validate n tl
    | Reparams _ :: tl -> validate n tl
  in
  match validate n0 ops with
  | Error _ as e -> e
  | Ok () ->
    let slots = ref (List.init n0 (fun i -> `Old i)) in
    let bound = ref s.size_bound in
    let config = ref s.config in
    let cfg_dirty = ref false in
    List.iter
      (function
        | Add p -> slots := !slots @ [ `New p ]
        | Remove i -> slots := List.filteri (fun j _ -> j <> i) !slots
        | Set_size_bound b -> bound := b
        | Reparams { params; weight } ->
          (match params with
          | Some p ->
            config := Config.with_params p !config;
            cfg_dirty := true
          | None -> ());
          (match weight with
          | Some w ->
            config := Config.with_weight w !config;
            cfg_dirty := true
          | None -> ()))
      ops;
    (* Removes preserve relative order, so [n0] surviving [`Old] slots can
       only be 0..n0-1 in place: the arrangement is untouched. *)
    let arrangement_kept =
      List.length !slots = n0
      && List.for_all (function `Old _ -> true | `New _ -> false) !slots
    in
    if arrangement_kept && !bound = s.size_bound && not !cfg_dirty then Ok s
    else begin
      Deadline.check deadline;
      let config = !config and bound = !bound in
      let profiles =
        Array.of_list
          (List.map (function `Old i -> s.profiles.(i) | `New p -> p) !slots)
      in
      (* Uniform warm start: survivors resume from their current DFS
         (truncated when the final bound shrank — the identity otherwise,
         physically), newcomers seed from top-k at the final bound. A
         singleton batch reproduces the op's historical warm start
         exactly. *)
      let init =
        Array.of_list
          (List.map
             (function
               | `Old i -> truncate ~limit:bound s.dfss.(i)
               | `New p -> Topk.generate_one ~limit:bound p)
             !slots)
      in
      let context =
        if config.Config.incremental then
          let dod_ops =
            List.filter_map
              (function
                | Add p -> Some (Dod.Add p)
                | Remove i -> Some (Dod.Remove i)
                | Set_size_bound _ -> None
                | Reparams { params; weight } ->
                  Some (Dod.Reparams { params; weight }))
              ops
          in
          Dod.apply ?domains:config.Config.domains ?deadline s.context dod_ops
        else make_context ?deadline config profiles
      in
      Ok
        (regenerate ~init
           { s with config; size_bound = bound }
           context profiles)
    end

let add ?deadline s profile =
  match apply ?deadline s [ Add profile ] with
  | Ok s' -> s'
  | Error _ -> assert false (* Add validates nothing *)

let remove ?deadline s index = apply ?deadline s [ Remove index ]

let set_size_bound ?deadline s size_bound =
  apply ?deadline s [ Set_size_bound size_bound ]

let reparams ?deadline ?params ?weight s =
  match apply ?deadline s [ Reparams { params; weight } ] with
  | Ok s' -> s'
  | Error _ -> assert false (* Reparams validates nothing *)
