module Store = Xsact_persist.Store
module Journal = Xsact_persist.Journal

type t = {
  mutex : Mutex.t;
  store : Store.t;
  (* id -> (last mutation stamp, entry json): the replay fold, maintained
     live so compaction never needs the session store's lock *)
  mirror : (string, float * Json.t) Hashtbl.t;
  snapshot_every : int;
  mutable since_snapshot : int;
  (* monotone over the directory's whole history (snapshot meta carries
     it), so ids are never reused even after every session is deleted *)
  mutable max_id : int;
  mutable recovery_ms : float;
  recovery_truncated : int;
  mutable recovered_sessions : int;
  mutable dropped : int;
}

type recovered = {
  entries : (string * float * Json.t) list;
  next_id : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let id_number id =
  if String.length id > 1 && id.[0] = 's' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

(* ---- Payload codec ------------------------------------------------------ *)

let meta_payload ~next =
  Json.to_string (Json.Obj [ ("meta", Json.Int 1); ("next", Json.Int next) ])

let entry_payload ~id ~at entry =
  Json.to_string
    (Json.Obj
       [ ("id", Json.String id); ("t", Json.Float at); ("entry", entry) ])

let op_payload ~op ~id ?at ?entry () =
  Json.to_string
    (Json.Obj
       ([ ("op", Json.String op); ("id", Json.String id) ]
       @ (match at with Some at -> [ ("t", Json.Float at) ] | None -> [])
       @ match entry with Some e -> [ ("entry", e) ] | None -> []))

(* ---- Replay fold -------------------------------------------------------- *)

let upsert_ops = [ "create"; "add"; "remove"; "size"; "apply"; "params"; "set" ]
let delete_ops = [ "delete"; "expire"; "evict" ]

let fold_payload t payload =
  match Json.of_string payload with
  | Error _ -> t.dropped <- t.dropped + 1
  | Ok json -> (
    let mem name = Json.member name json in
    let track_id id =
      match id_number id with
      | Some n -> t.max_id <- max t.max_id n
      | None -> ()
    in
    match Option.bind (mem "next") Json.to_int with
    | Some next -> t.max_id <- max t.max_id (next - 1)  (* snapshot meta *)
    | None -> (
      match
        ( Option.bind (mem "id") Json.to_str,
          Option.bind (mem "t") Json.to_float,
          mem "entry",
          Option.bind (mem "op") Json.to_str )
      with
      | Some id, Some at, Some entry, None ->
        (* snapshot entry record *)
        track_id id;
        Hashtbl.replace t.mirror id (at, entry)
      | Some id, at, entry, Some op when List.mem op upsert_ops -> (
        track_id id;
        match (at, entry) with
        | Some at, Some entry -> Hashtbl.replace t.mirror id (at, entry)
        | _ -> t.dropped <- t.dropped + 1)
      | Some id, _, _, Some op when List.mem op delete_ops ->
        track_id id;
        Hashtbl.remove t.mirror id
      | _ -> t.dropped <- t.dropped + 1))

(* ---- Compaction ---------------------------------------------------------- *)

(* Callers hold [t.mutex]. Mirror entries are sorted by session number so
   the snapshot — and therefore recovery — is deterministic. *)
let sorted_entries t =
  Hashtbl.fold (fun id (at, e) acc -> (id, at, e) :: acc) t.mirror []
  |> List.sort (fun (a, _, _) (b, _, _) ->
         compare
           (Option.value ~default:max_int (id_number a), a)
           (Option.value ~default:max_int (id_number b), b))

let compact_locked t =
  let payloads =
    meta_payload ~next:(t.max_id + 1)
    :: List.map (fun (id, at, e) -> entry_payload ~id ~at e) (sorted_entries t)
  in
  Store.compact t.store payloads;
  t.since_snapshot <- 0

let after_append t =
  t.since_snapshot <- t.since_snapshot + 1;
  if t.snapshot_every > 0 && t.since_snapshot >= t.snapshot_every then
    compact_locked t

(* ---- Public -------------------------------------------------------------- *)

let recover ~dir ~fsync ~snapshot_every =
  let t0 = Unix.gettimeofday () in
  let store, rec_ = Store.open_dir ~fsync dir in
  let t =
    {
      mutex = Mutex.create ();
      store;
      mirror = Hashtbl.create 16;
      snapshot_every;
      since_snapshot = List.length rec_.Store.journal;
      max_id = 0;
      recovery_ms = 0.;
      recovery_truncated = rec_.Store.truncated_records;
      recovered_sessions = 0;
      dropped = 0;
    }
  in
  List.iter (fold_payload t) rec_.Store.snapshot;
  List.iter (fold_payload t) rec_.Store.journal;
  t.recovered_sessions <- Hashtbl.length t.mirror;
  t.recovery_ms <- 1000. *. (Unix.gettimeofday () -. t0);
  (t, { entries = sorted_entries t; next_id = t.max_id + 1 })

let log_upsert t ~op ~id ~at ~entry =
  locked t (fun () ->
      Store.append t.store (op_payload ~op ~id ~at ~entry ());
      (match id_number id with
      | Some n -> t.max_id <- max t.max_id n
      | None -> ());
      Hashtbl.replace t.mirror id (at, entry);
      after_append t)

let log_delete t ~op ~id =
  locked t (fun () ->
      Store.append t.store (op_payload ~op ~id ());
      Hashtbl.remove t.mirror id;
      after_append t)

let mark_dropped t = locked t (fun () -> t.dropped <- t.dropped + 1)

let snapshot_now t =
  locked t (fun () ->
      compact_locked t;
      Store.sync t.store)

let stats_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("state_dir", Json.String (Store.dir t.store));
          ( "fsync_policy",
            Json.String (Journal.policy_to_string (Store.policy t.store)) );
          ("journal_appends", Json.Int (Store.journal_appends t.store));
          ("journal_bytes", Json.Int (Store.journal_bytes t.store));
          ("snapshots_total", Json.Int (Store.snapshots_total t.store));
          ("since_snapshot", Json.Int t.since_snapshot);
          ("recovery_ms", Json.Float t.recovery_ms);
          ("recovery_truncated_records", Json.Int t.recovery_truncated);
          ("recovered_sessions", Json.Int t.recovered_sessions);
          ("recovery_dropped", Json.Int t.dropped);
        ])
