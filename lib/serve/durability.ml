module Store = Xsact_persist.Store
module Journal = Xsact_persist.Journal
module Crc32 = Xsact_persist.Crc32

type t = {
  mutex : Mutex.t;
  store : Store.t;
  (* id -> (last mutation stamp, entry json): the replay fold, maintained
     live so compaction never needs the session store's lock *)
  mirror : (string, float * Json.t) Hashtbl.t;
  snapshot_every : int;
  mutable since_snapshot : int;
  (* monotone over the directory's whole history (snapshot meta carries
     it), so ids are never reused even after every session is deleted *)
  mutable max_id : int;
  mutable recovery_ms : float;
  recovery_truncated : int;
  mutable recovered_sessions : int;
  mutable dropped : int;
  (* process-unique: a follower whose replication cursor carries a stale
     boot id resyncs rather than trusting byte offsets across restarts *)
  boot_id : string;
  mutable replayed : int;
  (* failover fencing epoch (DESIGN.md §14): a durable, monotone counter
     minted at every promotion — NOT the compaction generation [gen],
     which merely invalidates journal byte offsets. [fence_winner] is
     recorded when a higher epoch fences this node while it was primary:
     the winner's HOST:PORT, so a restart boots fenced (read-only,
     following the winner) instead of resurrecting a split brain. *)
  mutable fence_epoch : int;
  mutable fence_winner : string option;
}

type recovered = {
  entries : (string * float * Json.t) list;
  next_id : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let id_number id =
  if String.length id > 1 && id.[0] = 's' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

(* ---- Payload codec ------------------------------------------------------ *)

let meta_payload ~next =
  Json.to_string (Json.Obj [ ("meta", Json.Int 1); ("next", Json.Int next) ])

let entry_payload ~id ~at entry =
  Json.to_string
    (Json.Obj
       [ ("id", Json.String id); ("t", Json.Float at); ("entry", entry) ])

let op_payload ~op ~id ?at ?entry () =
  Json.to_string
    (Json.Obj
       ([ ("op", Json.String op); ("id", Json.String id) ]
       @ (match at with Some at -> [ ("t", Json.Float at) ] | None -> [])
       @ match entry with Some e -> [ ("entry", e) ] | None -> []))

(* ---- Replay fold -------------------------------------------------------- *)

let upsert_ops = [ "create"; "add"; "remove"; "size"; "apply"; "params"; "set" ]
let delete_ops = [ "delete"; "expire"; "evict" ]

type parsed =
  | P_upsert of { id : string; at : float; entry : Json.t }
  | P_delete of string
  | P_meta of int
  | P_unknown

let parse_payload payload =
  match Json.of_string payload with
  | Error _ -> P_unknown
  | Ok json -> (
    let mem name = Json.member name json in
    match Option.bind (mem "next") Json.to_int with
    | Some next -> P_meta next (* snapshot meta *)
    | None -> (
      match
        ( Option.bind (mem "id") Json.to_str,
          Option.bind (mem "t") Json.to_float,
          mem "entry",
          Option.bind (mem "op") Json.to_str )
      with
      | Some id, Some at, Some entry, None ->
        (* snapshot entry record *)
        P_upsert { id; at; entry }
      | Some id, at, entry, Some op when List.mem op upsert_ops -> (
        match (at, entry) with
        | Some at, Some entry -> P_upsert { id; at; entry }
        | _ -> P_unknown)
      | Some id, _, _, Some op when List.mem op delete_ops -> P_delete id
      | _ -> P_unknown))

let fold_payload t payload =
  let track_id id =
    match id_number id with
    | Some n -> t.max_id <- max t.max_id n
    | None -> ()
  in
  match parse_payload payload with
  | P_meta next -> t.max_id <- max t.max_id (next - 1)
  | P_upsert { id; at; entry } ->
    track_id id;
    Hashtbl.replace t.mirror id (at, entry)
  | P_delete id ->
    track_id id;
    Hashtbl.remove t.mirror id
  | P_unknown -> t.dropped <- t.dropped + 1

(* ---- Compaction ---------------------------------------------------------- *)

(* Callers hold [t.mutex]. Mirror entries are sorted by session number so
   the snapshot — and therefore recovery — is deterministic. *)
let sorted_entries t =
  Hashtbl.fold (fun id (at, e) acc -> (id, at, e) :: acc) t.mirror []
  |> List.sort (fun (a, _, _) (b, _, _) ->
         compare
           (Option.value ~default:max_int (id_number a), a)
           (Option.value ~default:max_int (id_number b), b))

let compact_locked t =
  let payloads =
    meta_payload ~next:(t.max_id + 1)
    :: List.map (fun (id, at, e) -> entry_payload ~id ~at e) (sorted_entries t)
  in
  Store.compact t.store payloads;
  t.since_snapshot <- 0

let after_append t =
  t.since_snapshot <- t.since_snapshot + 1;
  if t.snapshot_every > 0 && t.since_snapshot >= t.snapshot_every then
    compact_locked t

(* ---- Fencing epoch file -------------------------------------------------- *)

(* One JSON line in <state-dir>/epoch, written atomically (tmp + rename +
   fsync file and directory): {"epoch":E} on a primary, {"epoch":E,
   "winner":"HOST:PORT"} on a fenced ex-primary. Missing or unparseable
   reads as epoch 0 — a fresh directory has never been promoted. *)

let epoch_path dir = Filename.concat dir "epoch"

let read_fence dir =
  match
    In_channel.with_open_bin (epoch_path dir) In_channel.input_all
  with
  | exception Sys_error _ -> (0, None)
  | s -> (
    match Json.of_string (String.trim s) with
    | Error _ -> (0, None)
    | Ok j ->
      ( Option.value ~default:0 (Option.bind (Json.member "epoch" j) Json.to_int),
        Option.bind (Json.member "winner" j) Json.to_str ))

let write_fence dir ~epoch ~winner =
  let path = epoch_path dir in
  let tmp = path ^ ".tmp" in
  let json =
    Json.Obj
      (("epoch", Json.Int epoch)
      ::
      (match winner with
      | Some w -> [ ("winner", Json.String w) ]
      | None -> []))
  in
  let oc = open_out_bin tmp in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path;
  try
    let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  with Unix.Unix_error _ -> ()

(* ---- Public -------------------------------------------------------------- *)

let recover ~dir ~fsync ~snapshot_every =
  let t0 = Unix.gettimeofday () in
  let store, rec_ = Store.open_dir ~fsync dir in
  let fence_epoch, fence_winner = read_fence dir in
  let t =
    {
      mutex = Mutex.create ();
      store;
      mirror = Hashtbl.create 16;
      snapshot_every;
      since_snapshot = List.length rec_.Store.journal;
      max_id = 0;
      recovery_ms = 0.;
      recovery_truncated = rec_.Store.truncated_records;
      recovered_sessions = 0;
      dropped = 0;
      boot_id =
        Printf.sprintf "%d-%.6f" (Unix.getpid ()) (Unix.gettimeofday ());
      replayed = 0;
      fence_epoch;
      fence_winner;
    }
  in
  List.iter (fold_payload t) rec_.Store.snapshot;
  List.iter (fold_payload t) rec_.Store.journal;
  t.replayed <-
    List.length rec_.Store.snapshot + List.length rec_.Store.journal;
  t.recovered_sessions <- Hashtbl.length t.mirror;
  t.recovery_ms <- 1000. *. (Unix.gettimeofday () -. t0);
  (t, { entries = sorted_entries t; next_id = t.max_id + 1 })

let log_upsert t ~op ~id ~at ~entry =
  locked t (fun () ->
      Store.append t.store (op_payload ~op ~id ~at ~entry ());
      (match id_number id with
      | Some n -> t.max_id <- max t.max_id n
      | None -> ());
      Hashtbl.replace t.mirror id (at, entry);
      after_append t)

let log_delete t ~op ~id =
  locked t (fun () ->
      Store.append t.store (op_payload ~op ~id ());
      Hashtbl.remove t.mirror id;
      after_append t)

let mark_dropped t = locked t (fun () -> t.dropped <- t.dropped + 1)

let snapshot_now t =
  locked t (fun () ->
      compact_locked t;
      Store.sync t.store)

let flush t = locked t (fun () -> Store.sync t.store)

(* ---- Replication --------------------------------------------------------- *)

(* A digest of the replay fold itself — not of journal bytes, which
   legitimately differ across replicas (compaction timing, op-vs-snapshot
   framing). Two replicas whose folds agree serve identical recoveries,
   which is the property failover needs. Callers hold [t.mutex]. *)
let digest_locked t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (id, at, e) ->
      Buffer.add_string buf (entry_payload ~id ~at e);
      Buffer.add_char buf '\n')
    (sorted_entries t);
  Int32.to_int (Crc32.string (Buffer.contents buf)) land 0xFFFFFFFF

let digest t = locked t (fun () -> digest_locked t)
let boot_id t = t.boot_id
let journal_file t = Store.journal_file t.store
let gen t = locked t (fun () -> Store.snapshots_total t.store)

let fence_epoch t = locked t (fun () -> t.fence_epoch)
let fence_winner t = locked t (fun () -> t.fence_winner)

(* The epoch never regresses: a lower [epoch] is ignored outright, an
   equal one can only update the winner. Persisted before the fields
   change meaning to callers — the write is the fence. *)
let set_fence t ~epoch ?winner () =
  locked t (fun () ->
      if
        epoch > t.fence_epoch
        || (epoch = t.fence_epoch && winner <> t.fence_winner)
      then begin
        let epoch = max epoch t.fence_epoch in
        write_fence (Store.dir t.store) ~epoch ~winner;
        t.fence_epoch <- epoch;
        t.fence_winner <- winner
      end)
let journal_offset t = locked t (fun () -> Store.journal_offset t.store)
let since_snapshot t = locked t (fun () -> t.since_snapshot)
let replayed_records t = locked t (fun () -> t.replayed)
let next_id t = locked t (fun () -> t.max_id + 1)

type resync = {
  r_boot : string;
  r_gen : int;
  r_offset : int;
  r_records : int;
  r_digest : int;
  r_payloads : string list;
}

let resync t =
  locked t (fun () ->
      {
        r_boot = t.boot_id;
        r_gen = Store.snapshots_total t.store;
        r_offset = Store.journal_offset t.store;
        r_records = t.since_snapshot;
        r_digest = digest_locked t;
        r_payloads =
          meta_payload ~next:(t.max_id + 1)
          :: List.map
               (fun (id, at, e) -> entry_payload ~id ~at e)
               (sorted_entries t);
      })

let install_resync t payloads =
  locked t (fun () ->
      Hashtbl.reset t.mirror;
      List.iter (fold_payload t) payloads;
      t.replayed <- t.replayed + List.length payloads;
      (* Fold the primary's full state into our own snapshot immediately:
         the follower's directory is self-sufficient from the first
         heartbeat on — killing it and recovering locally replays exactly
         the primary's acked state. *)
      compact_locked t;
      Store.sync t.store)

let append_replicated t payload =
  locked t (fun () ->
      Store.append t.store payload;
      fold_payload t payload;
      t.replayed <- t.replayed + 1;
      after_append t)

let stats_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("state_dir", Json.String (Store.dir t.store));
          ( "fsync_policy",
            Json.String (Journal.policy_to_string (Store.policy t.store)) );
          ("journal_appends", Json.Int (Store.journal_appends t.store));
          ("journal_bytes", Json.Int (Store.journal_bytes t.store));
          ("snapshots_total", Json.Int (Store.snapshots_total t.store));
          ("since_snapshot", Json.Int t.since_snapshot);
          ("recovery_ms", Json.Float t.recovery_ms);
          ("recovery_truncated_records", Json.Int t.recovery_truncated);
          ("recovered_sessions", Json.Int t.recovered_sessions);
          ("recovery_dropped", Json.Int t.dropped);
          ("journal_offset", Json.Int (Store.journal_offset t.store));
          ("state_digest", Json.Int (digest_locked t));
          ("fence_epoch", Json.Int t.fence_epoch);
          ( "fence_winner",
            match t.fence_winner with
            | Some w -> Json.String w
            | None -> Json.Null );
        ])
