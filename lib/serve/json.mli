(** A minimal JSON codec — the serve layer's wire format.

    The container ships no JSON library, and the API surface is small, so
    this is a from-scratch value type, printer and recursive-descent
    parser. Numbers parse to [Int] when they are integral literals
    (no fraction, no exponent) and to [Float] otherwise; the printer is
    deterministic (object fields in construction order), which is what
    makes cached response bodies byte-identical. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), RFC 8259 string
    escaping, UTF-8 passed through verbatim. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. The message
    carries a byte offset. *)

(** {1 Accessors} — total, option-returning *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing field. *)

val to_int : t -> int option
(** [Int] directly; [Float] only when integral. *)

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val obj_fields : t -> (string * t) list option
