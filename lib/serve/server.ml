type entry = { dataset : Dataset.t; pipeline : Pipeline.t }

type session_entry = {
  s_dataset : string;
  s_request : Api.compare_request;
  s_results : Search.result list;  (* the full ranked list, for /add *)
  s_ranks : int list;  (* current selection, in column order *)
  s_session : Session.t;
}

(* A stored session is either warm — the resident [Session.t] with its
   live pair-table context — or cold: just the deterministic recipe
   (originating request, current selection, current bound) that
   [build_session_entry] rebuilds the same bytes from. Recovery restores
   cold cells and the first touch rewarms them (so recovery latency no
   longer pays for sessions nobody asks for), and the warm-context memory
   budget demotes least-recently-used cells back to cold. The [state]
   field is only ever mutated under [session_update]; concurrent readers
   observe one atomic word. *)
type cold_session = {
  c_request : Api.compare_request;
  c_ranks : int list;
  c_size_bound : int;
}

type session_state = Warm of session_entry | Cold of cold_session

(* [owns] is the cell's claim on one intern-table reference for its
   context key — set iff the cell is warm on an incremental server. It is
   atomic because ownership is contended across two locks: every state
   transition (create, rewarm, demote, mutate) happens under
   [session_update], but the store's removal events (delete, TTL expiry,
   LRU eviction) fire under the store lock — so giving up the reference
   goes through a compare-and-set, and exactly one of the racing paths
   performs the one [Intern.release]. *)
type stored_session = {
  mutable state : session_state;
  owns : bool Atomic.t;
}

let cold_of_entry se =
  {
    c_request = se.s_request;
    c_ranks = se.s_ranks;
    c_size_bound = Session.size_bound se.s_session;
  }

(* A server is born [Primary] (the normal standalone daemon is just a
   primary with no followers) or — when created with [replica_of] —
   [Follower]: read-only, journaling nothing of its own, mirroring the
   primary's journal stream into live state. The word flips both ways:
   promotion makes a follower primary, and a primary that observes a
   higher fencing epoch (a demote probe, a subscriber ahead of it, an
   operator POST /v1/demote) self-demotes back to follower. *)
type role = Primary | Follower

type t = {
  entries : (string * entry) list;
  cache : string Lru.t;  (* full-scope key -> response body; under [lock] *)
  intern : Intern.t;
      (* context-scope key -> the one physical (profiles, context) pair:
         warm sessions pin entries by refcount, /compare reads them
         unpinned — one population under one byte budget. Own leaf lock. *)
  lock : Mutex.t;  (* guards [cache] and [inflight] — O(1) sections only *)
  inflight : (string, unit) Hashtbl.t;  (* compare keys being computed *)
  inflight_done : Condition.t;  (* signalled when an inflight key retires *)
  session_update : Mutex.t;  (* serializes session read-modify-write,
                                including Warm/Cold state transitions *)
  metrics : Metrics.t;
  sessions : stored_session Session_store.t;
  incremental : bool;  (* delta context maintenance (false = ablation) *)
  max_context_bytes : int option;  (* unified live-context memory budget *)
  default_domains : int option;
  default_deadline_ms : int option;  (* per-request compare budget *)
  max_deadline_ms : int;  (* cap on the X-Deadline-Ms override *)
  inflight_now : int Atomic.t;  (* requests currently inside [handle] *)
  mutable threads : int;  (* worker-pool size, recorded for /metrics *)
  (* Durable sessions (DESIGN.md §10). [persist] holds the configuration
     from [create]; [recover] opens the state directory, replays it, fills
     [durability] (from then on the session store's event hook journals
     every mutation) and flips [ready]. Without a state dir the server is
     born ready and the hook stays [None] — the hot path is unchanged. *)
  persist : (string * Xsact_persist.Journal.policy * int) option;
  durability : Durability.t option ref;
  ready : bool Atomic.t;
  (* Warm failover (DESIGN.md §14). [replica_of] names the primary this
     server follows; [recover] starts the replication client and fills
     [repl_client] (swapped out under [lock] by promotion — the join
     happens outside every lock). [streams] counts live /v1/replicate
     streams on this side. [context_snapshots] gates writing/loading the
     warm-boot [contexts] file. *)
  role : role Atomic.t;
  replica_of : (string * int) option;
  takeover_after : float option;
  context_snapshots : bool;
  repl_client : Replication.client option ref;
  streams : int Atomic.t;
  (* Coordinated failover (DESIGN.md §14). [peers] is the static cluster
     membership walked by discovery, election and the post-promotion
     fencer; [advertise] is this node's own HOST:PORT once [start] binds
     (what the fencer announces and elections rank by). [current_primary]
     tracks where mutations should go {e now} — it follows re-pointing,
     unlike the static [replica_of]. [fenced] marks an ex-primary
     superseded by a higher epoch: its mutations answer 409 (naming the
     winner) rather than the ordinary follower 503. [mem_epoch] /
     [mem_winner] back the fencing epoch for servers without a state dir
     (with one, {!Durability.fence_epoch} is the durable truth).
     [ensure_client] (filled by [recover]) starts a discovery-driven
     replication client on a freshly-demoted node; [closing] tells the
     fencer and election threads the server is shutting down. *)
  peers : (string * int) list;
  mutable advertise : (string * int) option;
  current_primary : (string * int) option ref;
  fenced : bool Atomic.t;
  mem_epoch : int Atomic.t;
  mem_winner : string option ref;
  mutable ensure_client : unit -> unit;
  closing : bool Atomic.t;
  mutable routes : Router.route list;
  (* Wired up by [start]: depth of the pending-connection queue and the
     overload predicate driving the degradation ladder. Inert (0 / false)
     when handling requests without a running listener, as the unit tests
     do. *)
  mutable queue_depth : unit -> int;
  mutable overloaded : unit -> bool;
}

let dataset_names t = List.map fst t.entries

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let with_session_update t f =
  Mutex.lock t.session_update;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.session_update) f

(* ---- Response helpers -------------------------------------------------- *)

let json_response ?headers ~status j =
  Http.response ?headers ~status (Json.to_string j)

(* Every failure, on every endpoint, is the one envelope
   {"error": {"code", "message"}} — [code] is the stable machine-readable
   name (Api.mli documents the vocabulary), the message stays free-form. *)
let error_response ~status ~code msg =
  Http.response ~status (Api.error_body ~code msg)

let core_error e =
  error_response ~status:(Api.status_of_error e) ~code:(Api.code_of_error e)
    (Error.to_string e)

let op_error_response e =
  error_response
    ~status:(Api.status_of_op_error e)
    ~code:(Api.code_of_op_error e)
    (Api.message_of_op_error e)

let find_entry t name = List.assoc_opt name t.entries

let query_param req name =
  match List.assoc_opt name req.Http.query with
  | Some "" | None -> None
  | Some v -> Some v

(* ---- Plain endpoints --------------------------------------------------- *)

let handle_root t _req _params =
  json_response ~status:200
    (Json.Obj
       [
         ("service", Json.String "xsact-serve");
         ( "datasets",
           Json.List (List.map (fun n -> Json.String n) (dataset_names t)) );
         ( "endpoints",
           Json.List
             (List.map
                (fun e -> Json.String e)
                [
                  "GET /health";
                  "GET /ready";
                  "GET /datasets";
                  "GET /search?dataset=&q=";
                  "POST /compare";
                  "GET /metrics";
                  "POST /session";
                  "GET /session";
                  "GET /session/:id";
                  "POST /session/:id/add";
                  "POST /session/:id/remove";
                  "POST /session/:id/size";
                  "POST /session/:id/apply";
                  "PATCH /session/:id/params";
                  "DELETE /session/:id";
                ]) );
       ])

(* Liveness: the process is up and serving its event loop. Deliberately
   ignores recovery state — a crash-looping recovery must not get the
   process killed by a liveness probe while it replays. *)
let handle_health _t _req _params =
  json_response ~status:200 (Json.Obj [ ("status", Json.String "ok") ])

let role_string t =
  match Atomic.get t.role with Primary -> "primary" | Follower -> "follower"

(* ---- Fencing epochs and cluster topology --------------------------------

   The fencing epoch is a durable, monotone promotion counter: promotion
   mints the next epoch before the new primary serves a mutation, and any
   node observing a higher epoch than its own knows it has been
   superseded. With a state dir the epoch lives in [Durability] (the
   [<state-dir>/epoch] file); without one it is process-local. *)

let addr_string (host, port) = Printf.sprintf "%s:%d" host port

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
    let host = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when host <> "" && port > 0 && port < 65536 ->
      Some (host, port)
    | _ -> None)

let fence_epoch t =
  match !(t.durability) with
  | Some d -> Durability.fence_epoch d
  | None -> Atomic.get t.mem_epoch

let fence_winner t =
  match !(t.durability) with
  | Some d -> Durability.fence_winner d
  | None -> !(t.mem_winner)

let set_fence t ~epoch ?winner () =
  match !(t.durability) with
  | Some d -> Durability.set_fence d ~epoch ?winner ()
  | None ->
    if epoch > Atomic.get t.mem_epoch then begin
      Atomic.set t.mem_epoch epoch;
      t.mem_winner := winner
    end

(* Who holds (or last held) the pen, as a HOST:PORT hint for error
   bodies: ourselves when primary, else the fencing winner, else
   whichever primary we currently follow. *)
let winner_hint t =
  if Atomic.get t.role = Primary then Option.map addr_string t.advertise
  else
    match fence_winner t with
    | Some w -> Some w
    | None -> Option.map addr_string !(t.current_primary)

(* The fencing 409s carry the deciding facts at top level next to the
   standard error envelope, so a superseded caller can re-point without a
   second round trip: [epoch] is this node's current fencing epoch,
   [winner] the address to talk to. *)
let fencing_error ~status ~code t msg =
  json_response ~status
    (Json.Obj
       [
         ( "error",
           Json.Obj
             [ ("code", Json.String code); ("message", Json.String msg) ] );
         ("epoch", Json.Int (fence_epoch t));
         ( "winner",
           match winner_hint t with
           | Some w -> Json.String w
           | None -> Json.Null );
       ])

(* One short timed probe: GET /v1/epoch with 0.5 s socket timeouts (the
   plain [Http.request] client has none — a wedged peer would hang
   discovery). Returns the peer's (role, epoch, primary hint). *)
let probe_timeout_s = 0.5

let probe_request ~host ~port ?meth ?body path =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> None
  | addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO probe_timeout_s;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO probe_timeout_s;
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          Http.send_request oc ~host:(addr_string (host, port)) ?meth ?body
            path;
          Http.read_response ic)
    with
    | exception (Unix.Unix_error _ | Sys_error _ | Failure _ | End_of_file)
      ->
      None
    | status, _, resp_body -> Some (status, resp_body))

type peer_state = {
  p_addr : string * int;
  p_role : string;  (* "primary" | "follower" *)
  p_epoch : int;
  p_primary : (string * int) option;  (* a follower's current target *)
}

let probe_epoch ~host ~port =
  match probe_request ~host ~port "/v1/epoch" with
  | Some (200, body) -> (
    match Json.of_string body with
    | Error _ -> None
    | Ok j ->
      let str name = Option.bind (Json.member name j) Json.to_str in
      let int name = Option.bind (Json.member name j) Json.to_int in
      (match (str "role", int "epoch") with
      | Some role, Some epoch ->
        Some
          {
            p_addr = (host, port);
            p_role = role;
            p_epoch = epoch;
            p_primary = Option.bind (str "primary") parse_hostport;
          }
      | _ -> None))
  | _ -> None

(* Every address worth probing: the static peer list, the configured
   primary, wherever we currently point, and any fencing winner on
   record — minus ourselves. *)
let candidates t =
  let extra =
    List.filter_map Fun.id
      [
        t.replica_of;
        !(t.current_primary);
        Option.bind (fence_winner t) parse_hostport;
      ]
  in
  let all = t.peers @ extra in
  let self = t.advertise in
  List.fold_left
    (fun acc hp ->
      if Some hp = self || List.mem hp acc then acc else acc @ [ hp ])
    [] all

(* Probe every candidate, following one indirection hop through
   followers' reported primaries (a follower that already re-pointed
   knows the winner before our static list does). *)
let probe_cluster t =
  let direct =
    List.filter_map (fun (h, p) -> probe_epoch ~host:h ~port:p) (candidates t)
  in
  let known = List.map (fun s -> s.p_addr) direct in
  let hops =
    List.filter_map
      (fun s ->
        match s.p_primary with
        | Some hp
          when s.p_role = "follower"
               && (not (List.mem hp known))
               && Some hp <> t.advertise ->
          Some hp
        | _ -> None)
      direct
    |> List.sort_uniq compare
  in
  direct @ List.filter_map (fun (h, p) -> probe_epoch ~host:h ~port:p) hops

(* The live primary to follow, if any: highest fencing epoch no lower
   than ours wins (a lower-epoch "primary" is a stale node the fencer has
   not reached yet — following it would roll us back). *)
let discover_primary t =
  let mine = fence_epoch t in
  probe_cluster t
  |> List.filter (fun s -> s.p_role = "primary" && s.p_epoch >= mine)
  |> List.fold_left
       (fun best s ->
         match best with
         | Some b when b.p_epoch >= s.p_epoch -> best
         | _ -> Some s)
       None
  |> Option.map (fun s -> s.p_addr)

(* Self-demotion: durably adopt the higher epoch (and winner, when we
   were primary — that is what keeps a revived ex-primary fenced across
   restarts), flip to read-only follower, and get a replication client
   hunting for the winner. Safe to call in any role; called from the
   demote endpoint, the subscriber-epoch check, and the fencer when its
   own probe is answered with a still-higher epoch. *)
let demote t ~epoch ?winner () =
  if Atomic.get t.role = Primary then begin
    set_fence t ~epoch ?winner ();
    (match Option.bind winner parse_hostport with
    | Some hp -> t.current_primary := Some hp
    | None -> ());
    Atomic.set t.fenced true;
    Atomic.set t.role Follower;
    Metrics.incr_counter t.metrics "demotions";
    t.ensure_client ()
  end
  else begin
    (* an ordinary follower just adopts the epoch; no winner is persisted
       (restarting a follower's directory standalone still boots primary,
       which is the deliberate fork-the-state operator move) *)
    set_fence t ~epoch ();
    match Option.bind winner parse_hostport with
    | Some hp -> t.current_primary := Some hp
    | None -> ()
  end

(* Operator step-down (planned handover): stop accepting mutations and
   wait to follow whoever is promoted next. No epoch change — the
   subsequent promotion mints the higher epoch that makes the handover
   stick. *)
let step_down t =
  if Atomic.get t.role = Primary then begin
    Atomic.set t.role Follower;
    Metrics.incr_counter t.metrics "demotions";
    t.ensure_client ()
  end

(* Readiness: route traffic here only once recovered state is live. Not a
   bare 200/503 — the body reports how far recovery/replication has
   progressed (records folded, warm-boot snapshot hits and misses,
   current journal offset; on a follower, replication lag and liveness),
   so an operator watching a slow boot sees movement, not a coin flip. *)
let handle_ready t _req _params =
  let counter = Metrics.counter t.metrics in
  let progress =
    [
      ("role", Json.String (role_string t));
      ("epoch", Json.Int (fence_epoch t));
      ("fenced", Json.Bool (Atomic.get t.fenced));
      ( "primary",
        match !(t.current_primary) with
        | Some hp -> Json.String (addr_string hp)
        | None -> Json.Null );
      ( "records_replayed",
        Json.Int
          (match !(t.durability) with
          | Some d -> Durability.replayed_records d
          | None -> 0) );
      ( "journal_offset",
        Json.Int
          (match !(t.durability) with
          | Some d -> Durability.journal_offset d
          | None -> 0) );
      ("context_snapshot_loads", Json.Int (counter "context_snapshot_loads"));
      ( "context_snapshot_misses",
        Json.Int (counter "context_snapshot_misses") );
    ]
    @
    match !(t.repl_client) with
    | Some c ->
      [
        ("lag_records", Json.Int (Replication.lag_records c));
        ("connected", Json.Bool (Replication.connected c));
      ]
    | None -> []
  in
  if Atomic.get t.ready then
    json_response ~status:200
      (Json.Obj (("status", Json.String "ready") :: progress))
  else
    json_response ~status:503
      ~headers:[ ("Retry-After", "1") ]
      (Json.Obj (("status", Json.String "recovering") :: progress))

let handle_datasets t _req _params =
  json_response ~status:200
    (Json.Obj
       [
         ( "datasets",
           Json.List
             (List.map
                (fun (name, e) ->
                  Json.Obj
                    [
                      ("name", Json.String name);
                      ("description", Json.String e.dataset.Dataset.description);
                      ( "queries",
                        Json.List
                          (List.map
                             (fun (label, q) ->
                               Json.Obj
                                 [
                                   ("label", Json.String label);
                                   ("q", Json.String q);
                                 ])
                             e.dataset.Dataset.queries) );
                    ])
                t.entries) );
       ])

let handle_search t req _params =
  match (query_param req "dataset", query_param req "q") with
  | None, _ ->
    error_response ~status:400 ~code:"bad_request"
      "missing query parameter \"dataset\""
  | _, None ->
    error_response ~status:400 ~code:"bad_request"
      "missing query parameter \"q\""
  | Some dataset, Some q -> (
    match find_entry t dataset with
    | None ->
      error_response ~status:404 ~code:"unknown_dataset"
        ("unknown dataset " ^ dataset)
    | Some entry ->
      let limit =
        Option.bind (query_param req "limit") int_of_string_opt
        |> Option.value ~default:10
      in
      let lift_to = query_param req "lift_to" in
      let results = Pipeline.search ~limit ?lift_to entry.pipeline q in
      let engine = Pipeline.engine entry.pipeline in
      let titled =
        List.map (fun r -> (r, Search.result_title engine r)) results
      in
      json_response ~status:200
        (Json.Obj
           [
             ("q", Json.String (Api.normalize_keywords q));
             ("count", Json.Int (List.length titled));
             ("results", Api.json_of_results titled);
           ]))

(* ---- /compare: decode, consult the LRU, compute ------------------------ *)

let decode_body req =
  match Json.of_string req.Http.body with
  | Error e ->
    Error (error_response ~status:400 ~code:"bad_request" ("invalid JSON: " ^ e))
  | Ok json -> Ok json

let decode_compare_body req =
  match decode_body req with
  | Error resp -> Error resp
  | Ok json -> (
    match Api.decode_compare json with
    | Error e -> Error (error_response ~status:400 ~code:"bad_request" e)
    | Ok creq ->
      if creq.Api.algorithm = Algorithm.Exhaustive then
        Error (core_error (Error.Unsupported_algorithm "exhaustive"))
      else Ok creq)

let request_config t (creq : Api.compare_request) =
  let config = Api.to_config creq in
  let config =
    if t.incremental then config else Config.with_incremental false config
  in
  match (creq.Api.domains, t.default_domains) with
  | None, Some d -> Config.with_domains d config
  | _ -> config

(* The request's cooperative deadline: the server default, overridable per
   request with an [X-Deadline-Ms] header, clamped to the configured
   maximum (a client cannot buy unbounded compute) and to 0 from below (a
   nonsense negative budget just expires immediately → 504). *)
let deadline_of_req t req =
  let ms =
    match Option.bind (Http.header req "x-deadline-ms") int_of_string_opt with
    | Some ms -> Some (max 0 (min ms t.max_deadline_ms))
    | None -> t.default_deadline_ms
  in
  Option.map (fun ms -> Xsact_util.Deadline.of_ms (float_of_int ms)) ms

let degraded_response t ~cache ~reasons body =
  Metrics.incr_counter t.metrics "responses_degraded";
  Http.response
    ~headers:
      [ ("X-Cache", cache); ("X-Degraded", String.concat ", " reasons) ]
    ~status:200 body

(* Per-key single-flight: the first thread to miss on [key] claims it and
   computes with [t.lock] released, so cache hits, other keys, and /metrics
   never wait behind an in-flight comparison. Duplicate requests block on
   [inflight_done] and replay the cached body once the claimant retires the
   key. If the claimant fails (typed error or exception), waiters wake to
   find neither a cache entry nor an inflight mark and claim the key
   themselves. *)
let handle_compare t req _params =
  match decode_compare_body req with
  | Error resp -> resp
  | Ok creq -> (
    match find_entry t creq.Api.dataset with
    | None ->
      error_response ~status:404 ~code:"unknown_dataset"
        ("unknown dataset " ^ creq.Api.dataset)
    | Some entry -> (
      let deadline = deadline_of_req t req in
      (* Overload degradation ladder (DESIGN.md §9): under queue pressure a
         multi-swap request is downgraded to single-swap {e before}
         looking at the cache, so a cached single-swap answer (possibly
         populated by an earlier degraded request) is served stale-but-fast
         and a fresh compute does the cheaper climb. The downgraded result
         is cached under its {e actual} (single-swap) key — never under the
         multi-swap key it stands in for — so the cache is never
         poisoned. *)
      let downgraded =
        creq.Api.algorithm = Algorithm.Multi_swap && t.overloaded ()
      in
      let creq =
        if downgraded then { creq with Api.algorithm = Algorithm.Single_swap }
        else creq
      in
      let key = Api.canonical_key ~scope:Api.Full creq in
      let claim =
        locked t (fun () ->
            let rec claim () =
              match Lru.find t.cache key with
              | Some body -> `Hit body
              | None ->
                if Hashtbl.mem t.inflight key then begin
                  Condition.wait t.inflight_done t.lock;
                  claim ()
                end
                else begin
                  Hashtbl.add t.inflight key ();
                  `Compute
                end
            in
            claim ())
      in
      match claim with
      | `Hit body ->
        if downgraded then
          degraded_response t ~cache:"hit" ~reasons:[ "algorithm" ] body
        else Http.response ~headers:[ ("X-Cache", "hit") ] ~status:200 body
      | `Compute ->
        let retire () =
          locked t (fun () ->
              Hashtbl.remove t.inflight key;
              Condition.broadcast t.inflight_done)
        in
        Fun.protect ~finally:retire (fun () ->
            let config = request_config t creq in
            (* Warm-context fast path: a previous comparison over the same
               result set (any size bound, any algorithm — the pair tables
               depend on neither) or a live session left its context and
               profiles in the intern table; reuse skips search, extraction
               and the O(n²) pair-table build, and is byte-identical
               because an interned context is bit-identical to the one a
               fresh build would produce. [peek]: /compare borrows for the
               request, it takes no reference. *)
            let ctx_key = Api.canonical_key ~scope:Api.Context creq in
            let warm_ctx =
              if t.incremental then Intern.peek t.intern ctx_key else None
            in
            let outcome =
              match warm_ctx with
              | Some (profiles, context) ->
                Metrics.incr_counter t.metrics "context_builds_reused";
                Pipeline.compare_profiles ~config ?deadline ~context
                  ~keywords:creq.Api.keywords
                  ~size_bound:creq.Api.size_bound profiles
              | None ->
                Pipeline.compare ~config ?deadline ?select:creq.Api.select
                  ~top:creq.Api.top entry.pipeline
                  ~keywords:creq.Api.keywords
                  ~size_bound:creq.Api.size_bound
            in
            match outcome with
            | Error Error.Timeout ->
              (* A waiter can land here too: if its deadline expired while
                 parked on the condition variable and the claimant left no
                 cache entry, its own compute attempt times out at entry. *)
              Metrics.incr_counter t.metrics "requests_timed_out";
              core_error Error.Timeout
            | Error e -> core_error e
            | Ok comparison ->
              if Option.is_none warm_ctx then begin
                Metrics.incr_counter t.metrics "context_builds_full";
                (* The context is complete even when generation degraded —
                   cache it either way (the body cache below stays
                   degraded-free as before). Unpinned: it lives until the
                   byte budget or the reuse-cache capacity evicts it. *)
                if t.incremental then
                  Intern.insert_cached t.intern ctx_key
                    ~profiles:comparison.Pipeline.profiles
                    ~context:comparison.Pipeline.context
              end;
              let body = Json.to_string (Api.json_of_comparison comparison) in
              if comparison.Pipeline.degraded then
                (* Anytime best-so-far, not the converged answer: serve it
                   (the client asked for a budget) but never cache it. *)
                degraded_response t ~cache:"miss"
                  ~reasons:
                    (if downgraded then [ "algorithm"; "deadline" ]
                     else [ "deadline" ])
                  body
              else begin
                locked t (fun () -> Lru.add t.cache key body);
                if downgraded then
                  degraded_response t ~cache:"miss" ~reasons:[ "algorithm" ]
                    body
                else
                  Http.response
                    ~headers:[ ("X-Cache", "miss") ]
                    ~status:200 body
              end)))

(* ---- Sessions ---------------------------------------------------------- *)

let session_summary id se =
  Json.Obj
    [
      ("id", Json.String id);
      ("dataset", Json.String se.s_dataset);
      ("q", Json.String se.s_request.Api.keywords);
      ("ranks", Json.List (List.map (fun r -> Json.Int r) se.s_ranks));
      ("size_bound", Json.Int (Session.size_bound se.s_session));
      ("dod", Json.Int (Session.dod se.s_session));
      ( "algorithm",
        Json.String
          (Algorithm.to_string (Session.config se.s_session).Config.algorithm)
      );
      ("runs", Json.Int (Session.stats se.s_session));
    ]

let result_with_rank results rank =
  List.find_opt (fun r -> r.Search.rank = rank) results

(* A session's canonical context key: its originating request with the
   selection resolved to the explicit current ranks, at Context scope —
   so a session created with [top: 3] and one created with
   [select: [1,2,3]] intern the same entry, and /compare requests with an
   explicit selection share it too. *)
let session_ctx_key se =
  Api.canonical_key ~scope:Api.Context
    { se.s_request with Api.select = Some se.s_ranks }

(* Build the resident state for a session over [creq] with [ranks]
   selected ([None] → the first [top]) at [size_bound]. Shared by
   POST /session, lazy recovery rewarming and budget re-promotion, so a
   recovered session is exactly what creating it fresh from its journaled
   request would produce. Returns the entry plus whether it holds an
   intern-table reference on its context key: on an incremental server a
   hit adopts the interned (profiles, context) pair — skipping extraction
   and the O(n²) pair-table build — and a miss publishes the fresh build;
   the ablation server never interns. *)
let build_session_entry t creq ~ranks ~size_bound =
  match find_entry t creq.Api.dataset with
  | None ->
    Error
      (error_response ~status:404 ~code:"unknown_dataset"
         ("unknown dataset " ^ creq.Api.dataset))
  | Some entry -> (
    let keywords = creq.Api.keywords in
    let results = Pipeline.search entry.pipeline keywords in
    if results = [] then Error (core_error (Error.No_results keywords))
    else
      let available = List.length results in
      let ranks =
        match ranks with
        | Some ranks -> ranks
        | None -> List.init (min creq.Api.top available) (fun i -> i + 1)
      in
      let rec first_dup seen = function
        | [] -> None
        | r :: rest ->
          if List.mem r seen then Some r else first_dup (r :: seen) rest
      in
      match first_dup [] ranks with
      | Some dup ->
        (* same invariant the add op enforces *)
        Error
          (error_response ~status:422 ~code:"unprocessable"
             (Printf.sprintf "duplicate rank %d in \"select\"" dup))
      | None -> (
        match
          List.find_opt (fun r -> result_with_rank results r = None) ranks
        with
        | Some bad ->
          Error (core_error (Error.Rank_out_of_range { rank = bad; available }))
        | None -> (
          let config = request_config t creq in
          let entry_of session =
            {
              s_dataset = creq.Api.dataset;
              s_request = creq;
              s_results = results;
              s_ranks = ranks;
              s_session = session;
            }
          in
          let ctx_key =
            Api.canonical_key ~scope:Api.Context
              { creq with Api.select = Some ranks }
          in
          match
            if t.incremental then Intern.acquire t.intern ctx_key else None
          with
          | Some (profiles, context) -> (
            Metrics.incr_counter t.metrics "context_builds_reused";
            match
              Session.create ~config ~context ~size_bound
                (Array.to_list profiles)
            with
            | Error e ->
              Intern.release t.intern ctx_key;
              Error (core_error e)
            | Ok session -> Ok (entry_of session, true))
          | None -> (
            let profiles =
              List.map
                (fun rank ->
                  let r = Option.get (result_with_rank results rank) in
                  Pipeline.profile_of ~keywords entry.pipeline r)
                ranks
            in
            match Session.create ~config ~size_bound profiles with
            | Error e -> Error (core_error e)
            | Ok session ->
              (* the one place a session context is built from scratch *)
              Metrics.incr_counter t.metrics "context_builds_full";
              if not t.incremental then Ok (entry_of session, false)
              else
                (* Publish under the key; a racing builder may have won —
                   adopt the canonical pair so both sessions share one
                   physical context (bit-identical by construction). *)
                let profiles, context =
                  Intern.publish t.intern ctx_key
                    ~profiles:(Session.profiles session)
                    ~context:(Session.context session)
                in
                let session =
                  if context == Session.context session then session
                  else Session.intern session ~profiles ~context
                in
                Ok (entry_of session, true)))))

(* The unified memory ledger (DESIGN.md §13): the intern table's bytes —
   warm-session contexts and the /compare reuse cache are one
   deduplicated population there — plus the contexts of warm sessions
   holding no intern reference (the ablation server's). N sessions over
   one corpus cost one context's bytes, and the ledger says so. *)
let live_context_bytes t =
  let unowned =
    Session_store.fold t.sessions ~init:0 ~f:(fun _ st ~last_used:_ acc ->
        match st.state with
        | Warm se when not (Atomic.get st.owns) ->
          acc + Dod.approx_bytes (Session.context se.s_session)
        | Warm _ | Cold _ -> acc)
  in
  Intern.bytes_live t.intern + unowned

(* Demote least-recently-used warm sessions to cold until the ledger fits
   the byte budget, sparing [keep] (the session the current request is
   touching). A demotion drops the cell's intern reference; the bytes
   actually leave the ledger only when the last holder drops and the
   now-unpinned entry is shed — so the loop re-reads the ledger rather
   than assuming each demotion reclaims a context. In-place cell
   mutation, no store event: hot/cold residency is not durable state, and
   the journal entry for a cold cell is identical anyway. Called under
   [session_update]. *)
let enforce_context_budget t ~keep =
  match t.max_context_bytes with
  | None -> ()
  | Some budget ->
    if live_context_bytes t > budget then begin
      let warm =
        Session_store.fold t.sessions ~init:[] ~f:(fun id st ~last_used acc ->
            match st.state with
            | Warm se -> (id, st, se, last_used) :: acc
            | Cold _ -> acc)
      in
      let oldest_first =
        List.sort
          (fun (ida, _, _, la) (idb, _, _, lb) ->
            match Float.compare la lb with 0 -> compare ida idb | c -> c)
          warm
      in
      List.iter
        (fun (id, st, se, _) ->
          if id <> keep && live_context_bytes t > budget then begin
            if Atomic.compare_and_set st.owns true false then
              Intern.release t.intern (session_ctx_key se);
            st.state <- Cold (cold_of_entry se);
            Metrics.incr_counter t.metrics "contexts_demoted"
          end)
        oldest_first
    end

(* Rebuild a cold session's resident state on first touch — the exact
   [build_session_entry] path POST /session took, so the rewarmed session
   is deterministically what was journaled (durability semantics are
   unchanged by laziness). An unrecoverable cold cell (e.g. its dataset is
   no longer loaded) surfaces its error and stays cold: a later restart
   with the dataset back still serves it. Called under [session_update]. *)
let warm_session t id st =
  match st.state with
  | Warm se -> Ok se
  | Cold c -> (
    match
      build_session_entry t c.c_request ~ranks:(Some c.c_ranks)
        ~size_bound:c.c_size_bound
    with
    | Ok (se, owns) ->
      (* state first, ownership second: a removal event racing into the
         window between the two stores loses the CAS and skips the
         release — leaking one reference to the reuse cache is the
         accepted cost of never double-releasing (DESIGN.md §13). *)
      st.state <- Warm se;
      Atomic.set st.owns owns;
      Metrics.incr_counter t.metrics "sessions_rewarmed";
      enforce_context_budget t ~keep:id;
      Ok se
    | Error resp -> Error resp)

let handle_session_create t req _params =
  match decode_compare_body req with
  | Error resp -> resp
  | Ok creq -> (
    match
      build_session_entry t creq ~ranks:creq.Api.select
        ~size_bound:creq.Api.size_bound
    with
    | Error resp -> resp
    | Ok (se, owns) ->
      let id =
        Session_store.add t.sessions
          { state = Warm se; owns = Atomic.make owns }
      in
      with_session_update t (fun () -> enforce_context_budget t ~keep:id);
      json_response ~status:201 (session_summary id se))

let handle_session_list t _req _params =
  json_response ~status:200
    (Json.Obj
       [
         ( "sessions",
           Json.List
             (List.map
                (fun id -> Json.String id)
                (Session_store.ids t.sessions)) );
       ])

(* Every per-id session handler — reads included — runs under
   [session_update]: a touch may rewarm a cold cell, and serializing the
   state transitions keeps them single-writer. The table render under the
   lock is cheap next to the mutations it shares the lock with. *)
let with_session t params f =
  let id = Option.value ~default:"" (List.assoc_opt "id" params) in
  match Session_store.find t.sessions id with
  | None ->
    error_response ~status:404 ~code:"unknown_session" ("unknown session " ^ id)
  | Some st -> (
    match warm_session t id st with
    | Error resp -> resp
    | Ok se -> f id st se)

let handle_session_get t _req params =
  with_session_update t (fun () ->
      with_session t params (fun id _st se ->
          let fields =
            match session_summary id se with
            | Json.Obj fields -> fields
            | _ -> []
          in
          json_response ~status:200
            (Json.Obj
               (fields
               @ [ ("table", Api.json_of_table (Session.table se.s_session)) ]))))

let timed_out_response t =
  Metrics.incr_counter t.metrics "requests_timed_out";
  core_error Error.Timeout

(* Book the context work a physically-changed session cost: one delta per
   batch on the incremental server (unless the batch was resizes only,
   which reuse the context outright), one full rebuild on the ablation
   server. A physically-unchanged session means the batch cancelled out —
   no context work happened, nothing to book. *)
let book_mutation_build t se sops =
  if t.incremental then begin
    let ctx_op =
      List.exists (function Session.Set_size_bound _ -> false | _ -> true) sops
    in
    if ctx_op then begin
      Metrics.incr_counter t.metrics "context_builds_delta";
      let reparams_n =
        List.length
          (List.filter (function Session.Reparams _ -> true | _ -> false) sops)
      in
      if reparams_n > 0 then
        Metrics.incr_counter ~by:reparams_n t.metrics "reparams_delta";
      match sops with
      | [ Session.Remove idx ] when idx = List.length se.s_ranks - 1 ->
        (* removing the newest result takes the structure-sharing fast
           path in [Dod.remove_result] *)
        Metrics.incr_counter t.metrics "remove_tail_shared"
      | _ -> ()
    end
  end
  else Metrics.incr_counter t.metrics "context_builds_full"

(* Publish the mutated session back to the store, moving this cell's
   intern reference from the old context key to the new one. The new
   reference is taken {e before} the old one is dropped, so a key-
   preserving mutation (a resize, a reparams to the same values) never
   lets the entry go unpinned mid-handoff; adopting the canonical pair
   that [publish] returns keeps every holder of a key on one physical
   context. The CAS covers the race with a concurrent removal event: if
   the event won, the old reference is already gone and only the new one
   is taken. *)
let store_mutated t ~origin id st old_se se =
  let se, owns =
    if not t.incremental then (se, false)
    else begin
      let old_key = session_ctx_key old_se in
      let new_key = session_ctx_key se in
      let owned = Atomic.compare_and_set st.owns true false in
      let profiles, context =
        Intern.publish t.intern new_key
          ~profiles:(Session.profiles se.s_session)
          ~context:(Session.context se.s_session)
      in
      if owned then Intern.release t.intern old_key;
      let session =
        if context == Session.context se.s_session then se.s_session
        else Session.intern se.s_session ~profiles ~context
      in
      ({ se with s_session = session }, true)
    end
  in
  Session_store.set ~origin t.sessions id
    { state = Warm se; owns = Atomic.make owns };
  enforce_context_budget t ~keep:id;
  json_response ~status:200 (session_summary id se)

(* The one mutation handler. Every endpoint — the single-op wrappers and
   POST /session/:id/apply — decodes to an op list, rank-translates and
   validates it through [Api.translate_ops] (so the duplicate-rank and
   unknown-rank 422s exist exactly once), applies it as one
   [Session.apply] batch (one context delta, one DFS regeneration), and
   lands one store event / journal record. Any invalid op fails the whole
   request before any pair work, leaving the stored session untouched. *)
let mutate t req params ~origin decode =
  match decode_body req with
  | Error resp -> resp
  | Ok json -> (
    match decode json with
    | Error e -> op_error_response e
    | Ok ops ->
      let deadline = deadline_of_req t req in
      with_session_update t (fun () ->
          with_session t params (fun id st se ->
              let entry = Option.get (find_entry t se.s_dataset) in
              let keywords = se.s_request.Api.keywords in
              match
                Api.translate_ops ~request:se.s_request ~ranks:se.s_ranks
                  ~available:(List.length se.s_results)
                  ~profile_of:(fun rank ->
                    let r = Option.get (result_with_rank se.s_results rank) in
                    Pipeline.profile_of ~keywords entry.pipeline r)
                  ~config_of:(request_config t) ops
              with
              | Error (`Op e) -> op_error_response e
              | Error (`Core e) -> core_error e
              | Ok (sops, ranks, creq) -> (
                match Session.apply ?deadline se.s_session sops with
                | exception Xsact_util.Deadline.Expired ->
                  (* the delta never landed; the stored session (and its
                     context) is exactly as before *)
                  timed_out_response t
                | Error e -> core_error e
                | Ok session ->
                  if String.equal origin "apply" then
                    Metrics.incr_counter ~by:(List.length ops) t.metrics
                      "ops_batched";
                  if session != se.s_session then
                    book_mutation_build t se sops;
                  store_mutated t ~origin id st se
                    {
                      se with
                      s_request = creq;
                      s_ranks = ranks;
                      s_session = session;
                    }))))

(* POST /session/:id/add, /remove, /size — thin wrappers building a
   singleton batch through the op path; observably identical to the
   historical dedicated handlers (same checks, same warm starts, same
   accounting) because [Session.apply] makes a singleton batch reproduce
   the single operation exactly. *)
let single_op op json =
  Result.map (fun o -> [ o ]) (Api.decode_single_op ~op json)

let handle_session_add t req params =
  mutate t req params ~origin:"add" (single_op "add")

let handle_session_remove t req params =
  mutate t req params ~origin:"remove" (single_op "remove")

let handle_session_size t req params =
  mutate t req params ~origin:"size" (single_op "size")

(* PATCH /session/:id/params — the interactive "drag the threshold /
   weight slider" loop: a singleton params op re-derives the live context
   by delta without re-extracting profiles, and the patch folds into the
   stored request so the journaled recipe — and any cold rebuild from it
   — uses the new parameters. *)
let handle_session_params t req params =
  mutate t req params ~origin:"params" (fun json ->
      Result.map (fun patch -> [ Api.Op_params patch ])
        (Api.decode_params_patch json))

(* POST /session/:id/apply — a batch of mutations as one unit: one
   request, one context delta, one DFS regeneration, one store event, one
   journal record, one response. *)
let handle_session_apply t req params =
  mutate t req params ~origin:"apply" Api.decode_ops

let handle_session_delete t _req params =
  let id = Option.value ~default:"" (List.assoc_opt "id" params) in
  if Session_store.remove t.sessions id then
    json_response ~status:200 (Json.Obj [ ("deleted", Json.String id) ])
  else
    error_response ~status:404 ~code:"unknown_session" ("unknown session " ^ id)

(* ---- /metrics ---------------------------------------------------------- *)

let handle_metrics t _req _params =
  let hits, misses, cache_len =
    locked t (fun () ->
        (Lru.hits t.cache, Lru.misses t.cache, Lru.length t.cache))
  in
  let lookups = hits + misses in
  let hit_rate =
    if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups
  in
  let istats = Intern.stats t.intern in
  (* Racy-but-atomic observation of the warm/cold split: each cell's
     state is one word, and the gauges are diagnostics, not invariants.
     Pair tables are deduplicated by physical context, so k sessions
     sharing one interned context report one context's tables. *)
  let shared_ctxs, warm_n, cold_n =
    Session_store.fold t.sessions ~init:([], 0, 0)
      ~f:(fun _ st ~last_used:_ (ctxs, w, c) ->
        match st.state with
        | Warm se ->
          let ctx = Session.context se.s_session in
          ((if List.memq ctx ctxs then ctxs else ctx :: ctxs), w + 1, c)
        | Cold _ -> (ctxs, w, c + 1))
  in
  let ctx_tables =
    List.fold_left (fun a ctx -> a + Dod.num_pair_tables ctx) 0 shared_ctxs
  in
  let ctx_bytes = live_context_bytes t in
  json_response ~status:200
    (Metrics.snapshot t.metrics
       ~extra:
         [
           ( "cache",
             Json.Obj
               [
                 ("capacity", Json.Int (Lru.capacity t.cache));
                 ("entries", Json.Int cache_len);
                 ("hits", Json.Int hits);
                 ("misses", Json.Int misses);
                 ("hit_rate", Json.Float hit_rate);
               ] );
           ( "context_builds_full",
             Json.Int (Metrics.counter t.metrics "context_builds_full") );
           ( "context_builds_delta",
             Json.Int (Metrics.counter t.metrics "context_builds_delta") );
           ( "context_builds_reused",
             Json.Int (Metrics.counter t.metrics "context_builds_reused") );
           ("context_pair_tables_live", Json.Int ctx_tables);
           ("context_bytes_live", Json.Int ctx_bytes);
           ( "context_budget_bytes",
             match t.max_context_bytes with
             | None -> Json.Null
             | Some b -> Json.Int b );
           ( "ops_batched",
             Json.Int (Metrics.counter t.metrics "ops_batched") );
           ( "reparams_delta",
             Json.Int (Metrics.counter t.metrics "reparams_delta") );
           ( "remove_tail_shared",
             Json.Int (Metrics.counter t.metrics "remove_tail_shared") );
           ( "contexts_demoted",
             Json.Int (Metrics.counter t.metrics "contexts_demoted") );
           ( "sessions_rewarmed",
             Json.Int (Metrics.counter t.metrics "sessions_rewarmed") );
           ("sessions_warm", Json.Int warm_n);
           ("sessions_cold", Json.Int cold_n);
           ("contexts_interned", Json.Int istats.Intern.entries);
           ( "context_intern",
             Json.Obj
               [
                 ("entries", Json.Int istats.Intern.entries);
                 ("pinned", Json.Int istats.Intern.pinned);
                 ("refs", Json.Int istats.Intern.refs_total);
                 ( "cache_capacity",
                   Json.Int (Intern.cache_capacity t.intern) );
                 ("hits", Json.Int istats.Intern.hits);
                 ("misses", Json.Int istats.Intern.misses);
                 ("evictions", Json.Int istats.Intern.evictions);
               ] );
           ("sessions_live", Json.Int (Session_store.count t.sessions));
           ( "sessions_expired",
             Json.Int (Session_store.expired_total t.sessions) );
           ( "sessions_evicted",
             Json.Int (Session_store.evicted_total t.sessions) );
           ("datasets", Json.Int (List.length t.entries));
           ("worker_threads", Json.Int t.threads);
           ("inflight_requests", Json.Int (Atomic.get t.inflight_now));
           ("queue_pending", Json.Int (t.queue_depth ()));
           ("ready", Json.Bool (Atomic.get t.ready));
           ( "durability",
             match !(t.durability) with
             | None -> Json.Null
             | Some d -> Durability.stats_json d );
           ("role", Json.String (role_string t));
           ( "replication",
             Json.Obj
               ([
                  ("role", Json.String (role_string t));
                  ("epoch", Json.Int (fence_epoch t));
                  ("fenced", Json.Bool (Atomic.get t.fenced));
                  ( "primary",
                    match !(t.current_primary) with
                    | Some hp -> Json.String (addr_string hp)
                    | None -> Json.Null );
                  ("streams", Json.Int (Atomic.get t.streams));
                  ( "promotions",
                    Json.Int (Metrics.counter t.metrics "promotions") );
                  ( "demotions",
                    Json.Int (Metrics.counter t.metrics "demotions") );
                  ( "context_snapshot_loads",
                    Json.Int
                      (Metrics.counter t.metrics "context_snapshot_loads") );
                  ( "context_snapshot_misses",
                    Json.Int
                      (Metrics.counter t.metrics "context_snapshot_misses") );
                ]
               @
               match !(t.repl_client) with
               | Some c ->
                 [
                   ("connected", Json.Bool (Replication.connected c));
                   ("lag_records", Json.Int (Replication.lag_records c));
                   ( "applied_records",
                     Json.Int (Replication.applied_records c) );
                   ("resyncs", Json.Int (Replication.resyncs c));
                   ("divergences", Json.Int (Replication.divergences c));
                   ("repoints", Json.Int (Replication.repoints c));
                 ]
               | None -> []) );
         ])

(* ---- Promotion, demotion and the fencer ---------------------------------- *)

(* After promotion, chase every peer with POST /v1/demote until each has
   acknowledged the new epoch — with capped jittered backoff, retrying
   unreachable peers for as long as we remain primary at this epoch.
   The indefinite retry is the channel that fences a dead ex-primary
   whenever it comes back, even minutes later. A peer answering with a
   {e higher} epoch means we lost a race we did not know about: we
   self-demote on the spot. *)
let spawn_fencer t ~epoch =
  let targets = candidates t in
  if targets <> [] then
    ignore
      (Thread.create
         (fun () ->
           let prng =
             Xsact_util.Prng.of_int
               (Hashtbl.hash (Unix.getpid (), epoch, "fencer"))
           in
           let pending = ref targets in
           let backoff = ref 0.1 in
           while
             !pending <> []
             && Atomic.get t.role = Primary
             && fence_epoch t = epoch
             && not (Atomic.get t.closing)
           do
             let announce =
               Json.to_string
                 (Json.Obj
                    (("epoch", Json.Int epoch)
                    ::
                    (match t.advertise with
                    | Some hp ->
                      [ ("primary", Json.String (addr_string hp)) ]
                    | None -> [])))
             in
             pending :=
               List.filter
                 (fun (host, port) ->
                   match
                     probe_request ~host ~port ~meth:"POST" ~body:announce
                       "/v1/demote"
                   with
                   | Some (200, _) -> false
                   | Some (409, body) ->
                     (match Json.of_string body with
                     | Ok j -> (
                       let int name =
                         Option.bind (Json.member name j) Json.to_int
                       in
                       let str name =
                         Option.bind (Json.member name j) Json.to_str
                       in
                       match int "epoch" with
                       | Some e when e > fence_epoch t ->
                         demote t ~epoch:e ?winner:(str "winner") ()
                       | _ -> ())
                     | Error _ -> ());
                     false
                   | Some _ -> false  (* answered; not a fencing peer *)
                   | None -> true (* unreachable: keep chasing *))
                 !pending;
             if !pending <> [] then begin
               Thread.delay (!backoff *. (0.5 +. Xsact_util.Prng.float prng 1.0));
               backoff := Float.min 2.0 (!backoff *. 2.)
             end
           done)
         ())

(* Flip a follower to primary. Ordering is the fencing contract: the new
   epoch is minted {e durably} first — before the role word flips, so no
   mutation is ever served under the old epoch — then the replication
   client is detached (the swap is O(1) under [lock]; the join — waiting
   for an in-flight apply to land — happens outside every lock, because
   the replication thread takes [session_update]), then the role flips
   and the fencer starts chasing the peers. Mutations are accepted only
   after the flip, so everything the dying primary acked and shipped is
   applied before the first new write. [join:false] is the auto-takeover
   path: the replication thread promoting from its own [on_lost] must
   not join itself. Returns false when already primary — promotion is
   idempotent. *)
let promote t ~join =
  if Atomic.get t.role = Primary then false
  else begin
    let epoch = fence_epoch t + 1 in
    set_fence t ~epoch ();
    (match !(t.durability) with
    | None -> t.mem_winner := None
    | Some _ -> ());
    let client =
      locked t (fun () ->
          let c = !(t.repl_client) in
          t.repl_client := None;
          c)
    in
    (match client with
    | Some c -> Replication.stop_client ~join c
    | None -> ());
    (match !(t.durability) with
    | Some d -> Session_store.ensure_next t.sessions (Durability.next_id d)
    | None -> ());
    Atomic.set t.fenced false;
    t.current_primary := None;
    Atomic.set t.role Primary;
    Metrics.incr_counter t.metrics "promotions";
    spawn_fencer t ~epoch;
    true
  end

(* POST /v1/promote. An optional body [{"epoch":E}] is a compare-and-set
   guard for scripted runbooks: the promotion happens only if this node's
   fencing epoch still equals [E] — otherwise 409 [stale_epoch] naming
   the current epoch and winner, and the script knows the topology moved
   under it. *)
let handle_promote t req _params =
  let expected =
    if String.trim req.Http.body = "" then None
    else
      match Json.of_string req.Http.body with
      | Ok j -> Option.bind (Json.member "epoch" j) Json.to_int
      | Error _ -> None
  in
  match expected with
  | Some e when e <> fence_epoch t ->
    fencing_error ~status:409 ~code:"stale_epoch" t
      (Printf.sprintf
         "promote expected epoch %d but the current epoch is %d" e
         (fence_epoch t))
  | _ ->
    let promoted = promote t ~join:true in
    json_response ~status:200
      (Json.Obj
         [
           ("role", Json.String (role_string t));
           ("promoted", Json.Bool promoted);
           ("epoch", Json.Int (fence_epoch t));
         ])

(* GET /v1/epoch: the discovery/election probe. [primary] is where this
   node believes mutations go — itself when primary, its current target
   when following (the hint that lets discovery take one indirection hop
   through an already-re-pointed follower). *)
let handle_epoch t _req _params =
  json_response ~status:200
    (Json.Obj
       [
         ("role", Json.String (role_string t));
         ("epoch", Json.Int (fence_epoch t));
         ("fenced", Json.Bool (Atomic.get t.fenced));
         ( "primary",
           match
             if Atomic.get t.role = Primary then t.advertise
             else !(t.current_primary)
           with
           | Some hp -> Json.String (addr_string hp)
           | None -> Json.Null );
       ])

(* POST /v1/demote. Two distinct requests share the endpoint:

   - [{"epoch":E,"primary":"H:P"}] — a fencing probe from the epoch-E
     winner. [E] above our epoch fences us (durably, with the winner
     recorded); [E] at or below it is a stale prober and gets the 409
     that tells {e it} to stand down.
   - empty body — an operator's planned step-down: stop accepting
     mutations and wait to follow whoever is promoted next. *)
let handle_demote t req _params =
  if String.trim req.Http.body = "" then begin
    step_down t;
    json_response ~status:200
      (Json.Obj
         [
           ("role", Json.String (role_string t));
           ("epoch", Json.Int (fence_epoch t));
         ])
  end
  else
    match Json.of_string req.Http.body with
    | Error e ->
      error_response ~status:400 ~code:"bad_request" ("invalid JSON: " ^ e)
    | Ok j -> (
      match Option.bind (Json.member "epoch" j) Json.to_int with
      | None ->
        error_response ~status:400 ~code:"bad_request"
          "demote body must carry an integer \"epoch\""
      | Some e when e > fence_epoch t ->
        demote t ~epoch:e
          ?winner:(Option.bind (Json.member "primary" j) Json.to_str)
          ();
        json_response ~status:200
          (Json.Obj
             [
               ("role", Json.String (role_string t));
               ("epoch", Json.Int (fence_epoch t));
             ])
      | Some _ when Atomic.get t.role = Follower ->
        (* already no primary: adopting an old epoch is a no-op ack *)
        json_response ~status:200
          (Json.Obj
             [
               ("role", Json.String (role_string t));
               ("epoch", Json.Int (fence_epoch t));
             ])
      | Some e ->
        fencing_error ~status:409 ~code:"stale_epoch" t
          (Printf.sprintf
             "demote carries epoch %d but this primary holds epoch %d" e
             (fence_epoch t)))

(* The plain-router stand-in for GET /v1/replicate: the real stream takes
   over the raw socket in [serve_connection] before dispatch ever runs,
   so reaching this handler means the request came through [handle]
   directly (unit tests) — where no streaming is possible. *)
let handle_replicate_plain _t _req _params =
  error_response ~status:501 ~code:"not_streamable"
    "replication requires a streaming connection"

(* ---- Construction and dispatch ----------------------------------------- *)

let routes_of t =
  let r meth pattern handler =
    Router.route ~meth ~pattern (fun req params -> handler t req params)
  in
  [
    r "GET" "" handle_root;
    r "GET" "health" handle_health;
    r "GET" "ready" handle_ready;
    r "GET" "datasets" handle_datasets;
    r "GET" "search" handle_search;
    r "POST" "compare" handle_compare;
    r "GET" "metrics" handle_metrics;
    r "POST" "session" handle_session_create;
    r "GET" "session" handle_session_list;
    r "GET" "session/:id" handle_session_get;
    r "POST" "session/:id/add" handle_session_add;
    r "POST" "session/:id/remove" handle_session_remove;
    r "POST" "session/:id/size" handle_session_size;
    r "POST" "session/:id/apply" handle_session_apply;
    r "PATCH" "session/:id/params" handle_session_params;
    r "DELETE" "session/:id" handle_session_delete;
    r "GET" "v1/replicate" handle_replicate_plain;
    r "POST" "v1/promote" handle_promote;
    r "GET" "v1/epoch" handle_epoch;
    r "POST" "v1/demote" handle_demote;
  ]

(* The session's durable representation: everything needed to rebuild it
   through [build_session_entry] — the originating request (in
   request-body format), the current selection and the current size bound.
   Warm and cold cells journal identically (residency is not durable
   state); derived state (search results, profiles, the warm DFSs and
   context) is recomputed on rewarm, and the "runs" diagnostic restarts
   from zero. *)
let json_of_stored st =
  let dataset, request, ranks, size_bound =
    match st.state with
    | Warm se ->
      ( se.s_dataset,
        se.s_request,
        se.s_ranks,
        Session.size_bound se.s_session )
    | Cold c -> (c.c_request.Api.dataset, c.c_request, c.c_ranks, c.c_size_bound)
  in
  Json.Obj
    [
      ("v", Json.Int 1);
      ("dataset", Json.String dataset);
      ("request", Api.json_of_compare request);
      ("ranks", Json.List (List.map (fun r -> Json.Int r) ranks));
      ("size_bound", Json.Int size_bound);
    ]

let log_event d = function
  | Session_store.Created { id; value; at } ->
    Durability.log_upsert d ~op:"create" ~id ~at ~entry:(json_of_stored value)
  | Session_store.Updated { id; origin; value; at } ->
    Durability.log_upsert d ~op:origin ~id ~at ~entry:(json_of_stored value)
  | Session_store.Removed { id; value = _ } ->
    Durability.log_delete d ~op:"delete" ~id
  | Session_store.Expired { id; value = _ } ->
    Durability.log_delete d ~op:"expire" ~id
  | Session_store.Evicted { id; value = _ } ->
    Durability.log_delete d ~op:"evict" ~id

(* Removal-event half of the ownership guard: a deleted / expired /
   evicted cell gives up its intern reference. Runs under the store lock;
   the intern mutex is a leaf, so no lock-order cycle. The CAS loses
   against a concurrent mutation or demotion that already took the
   reference — exactly one release either way. The key is recomputable
   from either residency state (a cold recipe carries the same request
   and ranks its warm form did). *)
let stored_ctx_key st =
  match st.state with
  | Warm se -> session_ctx_key se
  | Cold c ->
    Api.canonical_key ~scope:Api.Context
      { c.c_request with Api.select = Some c.c_ranks }

let release_stored intern st =
  if Atomic.compare_and_set st.owns true false then
    Intern.release intern (stored_ctx_key st)

(* ---- Warm-boot context snapshots ----------------------------------------- *)

let contexts_path dir = Filename.concat dir "contexts"

(* Serialize the warm population: one record per distinct interned
   context (k sessions over one corpus write one context), one per warm
   session. Cold cells are skipped — their contexts do not exist — and
   so are compare-cache-only intern entries, whose weighting no stored
   request can reconstruct. Both record lists are sorted, so the output
   is deterministic for a given warm set. Two consumers: the [contexts]
   file written at clean shutdown, and (base64-armored) the [warm]
   section of a replication resync. Touches [st.state], so callers hold
   [session_update] or run after the worker drain. *)
let warm_records_locked t =
  let ctxs = Hashtbl.create 8 in
  let warm =
    Session_store.fold t.sessions ~init:[]
      ~f:(fun id st ~last_used:_ acc ->
        match st.state with
        | Warm se ->
          let key = session_ctx_key se in
          if not (Hashtbl.mem ctxs key) then
            Hashtbl.replace ctxs key
              (Session.profiles se.s_session, Session.context se.s_session);
          (id, key, se) :: acc
        | Cold _ -> acc)
  in
  if warm = [] then []
  else
    let ctx_records =
      Hashtbl.fold
        (fun key (profiles, context) acc ->
          Warmboot.encode
            (Warmboot.Ctx
               {
                 Warmboot.x_key = key;
                 x_profiles = profiles;
                 x_blob = Dod.serialize_context context;
               })
          :: acc)
        ctxs []
      |> List.sort compare
    in
    let sess_records =
      List.map
        (fun (id, key, se) ->
          Warmboot.encode
            (Warmboot.Sess
               {
                 Warmboot.z_id = id;
                 z_ctx = key;
                 z_bound = Session.size_bound se.s_session;
                 z_runs = Session.stats se.s_session;
                 z_dfss = Array.map Dfs.to_q_array (Session.dfss se.s_session);
               }))
        warm
      |> List.sort compare
    in
    ctx_records @ sess_records

(* Shutdown consumer: no warm sessions → no file (a stale one would only
   produce misses). Runs after the worker drain, so no lock. *)
let write_context_snapshot t =
  match t.persist with
  | Some (dir, _, _) when t.context_snapshots && t.incremental ->
    let path = contexts_path dir in
    (match warm_records_locked t with
    | [] -> ( try Sys.remove path with Sys_error _ -> ())
    | records -> Xsact_persist.Snapshot.write path records)
  | _ -> ()

(* Resync consumer: what [serve_stream]'s [warm] callback ships, called
   from the streaming worker at each resync. *)
let warm_wire_records t =
  if t.context_snapshots && t.incremental then
    with_session_update t (fun () ->
        List.map B64.encode (warm_records_locked t))
  else []

let create ?datasets ?(cache_capacity = 128) ?(context_cache_capacity = 32)
    ?(incremental = true) ?max_context_bytes ?domains ?deadline_ms
    ?(max_deadline_ms = 60_000) ?session_ttl_s ?max_sessions ?state_dir
    ?(fsync = Xsact_persist.Journal.Interval 0.1) ?(snapshot_every = 256)
    ?replica_of ?(peers = []) ?takeover_after ?(context_snapshots = true) ()
    =
  (match deadline_ms with
  | Some ms when ms < 1 ->
    invalid_arg "Server.create: deadline_ms must be positive"
  | _ -> ());
  if replica_of <> None && state_dir = None then
    invalid_arg "Server.create: replica_of requires state_dir";
  (match takeover_after with
  | Some s when not (s > 0.) ->
    invalid_arg "Server.create: takeover_after must be positive"
  | _ -> ());
  if max_deadline_ms < 1 then
    invalid_arg "Server.create: max_deadline_ms must be positive";
  if snapshot_every < 0 then
    invalid_arg "Server.create: snapshot_every must be non-negative";
  (match max_context_bytes with
  | Some b when b < 1 ->
    invalid_arg "Server.create: max_context_bytes must be positive"
  | _ -> ());
  let names = Option.value datasets ~default:Dataset.names in
  let entries =
    List.map
      (fun name ->
        match Dataset.by_name name with
        | None -> invalid_arg ("Server.create: unknown dataset " ^ name)
        | Some ds ->
          (name, { dataset = ds; pipeline = Pipeline.create ds.Dataset.document }))
      names
  in
  (* The store's event hook is always installed: removal events release
     the departing cell's intern reference (which is why the intern table
     exists before the store), and — once [recover] fills the durability
     cell — journal the mutation. Until then (and always, without a state
     dir) the durability half is inert. Recovery itself restores entries
     without events, so replay never re-journals. *)
  let intern =
    Intern.create ?max_bytes:max_context_bytes
      ~cache_capacity:context_cache_capacity ()
  in
  let durability = ref None in
  let on_event ev =
    (match ev with
    | Session_store.Removed { value = st; _ }
    | Session_store.Expired { value = st; _ }
    | Session_store.Evicted { value = st; _ } -> release_stored intern st
    | Session_store.Created _ | Session_store.Updated _ -> ());
    match !durability with None -> () | Some d -> log_event d ev
  in
  let t =
    {
      entries;
      cache = Lru.create ~capacity:cache_capacity;
      intern;
      lock = Mutex.create ();
      inflight = Hashtbl.create 8;
      inflight_done = Condition.create ();
      session_update = Mutex.create ();
      metrics = Metrics.create ();
      sessions = Session_store.create ?ttl_s:session_ttl_s
                   ?capacity:max_sessions ~on_event ();
      incremental;
      max_context_bytes;
      default_domains = domains;
      default_deadline_ms = deadline_ms;
      max_deadline_ms;
      inflight_now = Atomic.make 0;
      threads = 0;
      persist =
        Option.map (fun dir -> (dir, fsync, snapshot_every)) state_dir;
      durability;
      ready = Atomic.make (state_dir = None);
      role =
        Atomic.make (if replica_of = None then Primary else Follower);
      replica_of;
      takeover_after;
      context_snapshots;
      repl_client = ref None;
      streams = Atomic.make 0;
      peers;
      advertise = None;
      current_primary = ref replica_of;
      fenced = Atomic.make false;
      mem_epoch = Atomic.make 0;
      mem_winner = ref None;
      ensure_client = (fun () -> ());
      closing = Atomic.make false;
      routes = [];
      queue_depth = (fun () -> 0);
      overloaded = (fun () -> false);
    }
  in
  t.routes <- routes_of t;
  t

(* ---- Recovery ----------------------------------------------------------- *)

(* Decode a journal entry into the cold recipe. Pure parsing — no search,
   no extraction, no context build: recovery restores every session cold
   and the first touch rewarms it through [build_session_entry], so boot
   time is O(journal) instead of O(sessions × n²) and the durability
   contract (a recovered session serves exactly what was acknowledged) is
   discharged lazily by the same deterministic build path. *)
let cold_of_journal entry_json =
  match Json.member "request" entry_json with
  | None -> Error "missing \"request\""
  | Some rj -> (
    match Api.decode_compare rj with
    | Error e -> Error e
    | Ok creq -> (
      let ranks =
        match Option.bind (Json.member "ranks" entry_json) Json.to_list with
        | None -> None
        | Some items ->
          let ints = List.filter_map Json.to_int items in
          if List.length ints = List.length items then Some ints else None
      in
      let size_bound =
        Option.bind (Json.member "size_bound" entry_json) Json.to_int
      in
      match (ranks, size_bound) with
      | Some ranks, Some size_bound ->
        Ok { c_request = creq; c_ranks = ranks; c_size_bound = size_bound }
      | _ -> Error "malformed entry (ranks/size_bound)"))

(* Warm-boot: turn recovered cold cells back into warm sessions from the
   [contexts] snapshot, paying bounded verification instead of per-session
   O(n²) rebuilds. Per session: the snapshot record must name the same
   context key and bound as the journal-recovered recipe (the journal is
   truth — a session mutated after the snapshot was written simply misses
   and stays cold); the context arrives via the intern table when another
   session already loaded it (k sessions over one corpus = one
   deserialization) or by deserializing the blob — itself fully
   cross-checked by [Dod.deserialize_context] — and publishing it; the
   DFS q-vectors and the final assembly are re-validated by
   [Dfs.of_q_array] and [Session.restore]. Any defect anywhere demotes to
   a miss, never to wrong state. *)
(* Install a batch of warm-boot records over the current (cold) session
   population. Shared by warm boot from the [contexts] file and by the
   warm section of a replication resync — the records are identical;
   only the transport differs. *)
let install_warm_records t records =
  if records <> [] then begin
      let blobs = Hashtbl.create 8 in
      (* one search per distinct (dataset, keywords) across the whole
         load — restored sessions over the same query share the result
         list just as they share the interned context *)
      let searches = Hashtbl.create 8 in
      let sess = ref [] in
      List.iter
        (fun r ->
          match Warmboot.decode r with
          | Ok (Warmboot.Ctx c) ->
            Hashtbl.replace blobs c.Warmboot.x_key
              (c.Warmboot.x_profiles, c.Warmboot.x_blob)
          | Ok (Warmboot.Sess s) -> sess := s :: !sess
          | Error _ ->
            Metrics.incr_counter t.metrics "context_snapshot_misses")
        records;
      let miss () =
        Metrics.incr_counter t.metrics "context_snapshot_misses"
      in
      with_session_update t (fun () ->
          List.iter
            (fun (s : Warmboot.sess) ->
              match Session_store.find t.sessions s.Warmboot.z_id with
              | Some ({ state = Cold c; _ } as st)
                when stored_ctx_key st = s.Warmboot.z_ctx
                     && c.c_size_bound = s.Warmboot.z_bound -> (
                let key = s.Warmboot.z_ctx in
                let creq = c.c_request in
                match find_entry t creq.Api.dataset with
                | None -> miss () (* dataset gone; stays cold *)
                | Some entry -> (
                  let interned =
                    match Intern.acquire t.intern key with
                    | Some pair -> Some pair
                    | None -> (
                      match Hashtbl.find_opt blobs key with
                      | None -> None
                      | Some (profiles, blob) -> (
                        let weight =
                          (request_config t creq).Config.weight
                        in
                        match
                          Dod.deserialize_context ~weight profiles blob
                        with
                        | Error _ -> None
                        | Ok context ->
                          Some (Intern.publish t.intern key ~profiles ~context)
                        ))
                  in
                  match interned with
                  | None -> miss ()
                  | Some (profiles, context) -> (
                    let release () = Intern.release t.intern key in
                    match
                      let results =
                        let skey =
                          creq.Api.dataset ^ "\x00" ^ creq.Api.keywords
                        in
                        match Hashtbl.find_opt searches skey with
                        | Some r -> r
                        | None ->
                          let r =
                            Pipeline.search entry.pipeline creq.Api.keywords
                          in
                          Hashtbl.add searches skey r;
                          r
                      in
                      let dfss =
                        Array.mapi
                          (fun i q -> Dfs.of_q_array profiles.(i) q)
                          s.Warmboot.z_dfss
                      in
                      Result.map
                        (fun session -> (results, session))
                        (Session.restore ~runs:s.Warmboot.z_runs
                           ~config:(request_config t creq)
                           ~size_bound:s.Warmboot.z_bound ~profiles ~context
                           ~dfss ())
                    with
                    | exception Invalid_argument _ ->
                      release ();
                      miss ()
                    | Error _ ->
                      release ();
                      miss ()
                    | Ok (results, session) ->
                      st.state <-
                        Warm
                          {
                            s_dataset = creq.Api.dataset;
                            s_request = creq;
                            s_results = results;
                            s_ranks = c.c_ranks;
                            s_session = session;
                          };
                      Atomic.set st.owns true;
                      Metrics.incr_counter t.metrics "context_snapshot_loads")))
              | Some _ | None -> miss ())
            (List.rev !sess);
          enforce_context_budget t ~keep:"")
    end

let load_context_snapshot t =
  match t.persist with
  | Some (dir, _, _) when t.context_snapshots && t.incremental ->
    let { Xsact_persist.Snapshot.records; valid } =
      Xsact_persist.Snapshot.read (contexts_path dir)
    in
    if valid then install_warm_records t records
  | _ -> ()

(* ---- Follower state mirroring -------------------------------------------
   The replication client calls these from its own thread. They journal
   through [Durability.append_replicated]/[install_resync] — never through
   the store's event hook, which is why every store touch below is
   event-free ([drop]/[restore]): a replicated record must land in the
   follower's journal exactly once, as itself. *)

let repl_drop t id =
  match Session_store.drop t.sessions id with
  | Some old -> release_stored t.intern old
  | None -> ()

let repl_install t d ~prewarm payload =
  match Durability.parse_payload payload with
  | Durability.P_upsert { id; at; entry } -> (
    repl_drop t id;
    match cold_of_journal entry with
    | Error _ -> Durability.mark_dropped d
    | Ok cold ->
      let st = { state = Cold cold; owns = Atomic.make false } in
      Session_store.restore t.sessions ~id ~last_used:at st;
      (* Pre-warm so promotion serves warm sessions instantly; a rebuild
         failure (dataset missing here) leaves the cell cold, exactly
         like lazy recovery. *)
      if prewarm then
        match warm_session t id st with Ok _ | Error _ -> ())
  | Durability.P_delete id -> repl_drop t id
  | Durability.P_meta next -> Session_store.ensure_next t.sessions next
  | Durability.P_unknown -> Durability.mark_dropped d

let repl_apply t d payload =
  Durability.append_replicated d payload;
  with_session_update t (fun () -> repl_install t d ~prewarm:true payload)

(* Full-state handover. Sessions land cold first; then any warm records
   the primary shipped rebuild their contexts by deserialization (the
   warm resync — k sessions over one corpus decode one context blob,
   no O(n²) extraction); whatever they did not cover (disabled snapshots,
   a session mutated mid-capture, a defective record) is eager-warmed
   through the ordinary rebuild path, preserving the invariant that a
   follower serves — and, promoted, keeps serving — warm sessions. *)
let repl_reset t d ~payloads ~warm =
  Durability.install_resync d payloads;
  with_session_update t (fun () ->
      List.iter (repl_drop t) (Session_store.ids t.sessions);
      List.iter (repl_install t d ~prewarm:false) payloads);
  (if warm <> [] && t.context_snapshots && t.incremental then
     let records =
       List.filter_map
         (fun w ->
           match B64.decode w with
           | Some r -> Some r
           | None ->
             Metrics.incr_counter t.metrics "context_snapshot_misses";
             None)
         warm
     in
     install_warm_records t records);
  with_session_update t (fun () ->
      List.iter
        (fun id ->
          match Session_store.find t.sessions id with
          | Some ({ state = Cold _; _ } as st) -> (
            match warm_session t id st with Ok _ | Error _ -> ())
          | Some { state = Warm _; _ } | None -> ())
        (Session_store.ids t.sessions))

(* The follower-side replication client, wired to this server: epoch
   adoption and staleness through the durable fence, discovery through
   the peer list, state through the repl_* mirrors, takeover through the
   election below. *)
let rec start_repl_client t d ?primary () =
  Replication.start_client ?primary ~durability:d
    ~my_epoch:(fun () -> fence_epoch t)
    ~on_epoch:(fun hp e ->
      let mine = fence_epoch t in
      if e < mine then false
      else begin
        (* adopt a higher epoch durably; an equal one writes nothing, so
           a fenced ex-primary's winner record survives while it follows
           that winner *)
        if e > mine then set_fence t ~epoch:e ();
        t.current_primary := Some hp;
        true
      end)
    ~probe:(fun () -> discover_primary t)
    ~on_repoint:(fun hp -> t.current_primary := Some hp)
    ~apply:(fun p -> repl_apply t d p)
    ~reset:(fun ~payloads ~warm -> repl_reset t d ~payloads ~warm)
    ?takeover_after:t.takeover_after
    ~on_lost:(fun () -> auto_takeover t)
    ()

(* A freshly-demoted node needs a client hunting for the winner; a node
   that already has one keeps it (its discovery re-points it). *)
and ensure_follower_client t =
  match !(t.durability) with
  | Some d when Atomic.get t.role = Follower ->
    let fresh = ref None in
    locked t (fun () ->
        if !(t.repl_client) = None then begin
          let c = start_repl_client t d ?primary:!(t.current_primary) () in
          t.repl_client := Some c;
          fresh := Some c
        end);
    ignore !fresh
  | _ -> ()

(* The takeover election, run on the (exiting) replication thread once
   the primary has been silent past [takeover_after]. Exactly-one
   promotion without a consensus log: every contender probes the same
   cluster and applies the same deterministic rank — highest fencing
   epoch first, then lowest HOST:PORT string — so at most one node finds
   itself unbeaten and promotes; the rest defer briefly and then find
   the winner (now a live higher-epoch primary) and re-point to it. The
   deferral is bounded: a wedged better-ranked rival that never promotes
   costs ~15 rounds, after which we promote anyway rather than leave the
   cluster headless. *)
and auto_takeover t =
  let prng =
    Xsact_util.Prng.of_int (Hashtbl.hash (Unix.getpid (), "takeover"))
  in
  let deferrals = ref 0 in
  let decided = ref false in
  while
    (not !decided)
    && Atomic.get t.role = Follower
    && not (Atomic.get t.closing)
  do
    let states = probe_cluster t in
    let mine = fence_epoch t in
    let best_primary =
      List.fold_left
        (fun best s ->
          if s.p_role <> "primary" || s.p_epoch < mine then best
          else
            match best with
            | Some b when b.p_epoch >= s.p_epoch -> best
            | _ -> Some s)
        None states
    in
    match best_primary with
    | Some s ->
      (* someone else already won (or the old primary came back): follow
         them — swap in a fresh client pointed there; the old one is this
         very thread, so no join *)
      t.current_primary := Some s.p_addr;
      (match !(t.durability) with
      | Some d ->
        let fresh = start_repl_client t d ~primary:s.p_addr () in
        let old =
          locked t (fun () ->
              let c = !(t.repl_client) in
              t.repl_client := Some fresh;
              c)
        in
        (match old with
        | Some c -> Replication.stop_client ~join:false c
        | None -> ())
      | None -> ());
      decided := true
    | None ->
      let my_addr = Option.map addr_string t.advertise in
      let outranked =
        match my_addr with
        | None -> false
        | Some me ->
          List.exists
            (fun s ->
              s.p_role = "follower"
              && (s.p_epoch > mine
                 || (s.p_epoch = mine && addr_string s.p_addr < me)))
            states
      in
      if (not outranked) || !deferrals >= 15 then begin
        ignore (promote t ~join:false);
        decided := true
      end
      else begin
        incr deferrals;
        Thread.delay (0.25 +. Xsact_util.Prng.float prng 0.2)
      end
  done

let recover t =
  match (t.persist, !(t.durability)) with
  | None, _ -> Atomic.set t.ready true
  | Some _, Some _ -> ()  (* already recovered *)
  | Some (dir, fsync, snapshot_every), None ->
    let d, recovered = Durability.recover ~dir ~fsync ~snapshot_every in
    List.iter
      (fun (id, at, entry_json) ->
        match cold_of_journal entry_json with
        | Ok cold ->
          Session_store.restore t.sessions ~id ~last_used:at
            { state = Cold cold; owns = Atomic.make false }
        | Error msg ->
          (* A journal this build cannot even parse: keep serving, count
             the loss. (A parseable entry whose dataset is missing stays
             cold and surfaces its error on first touch instead.) *)
          Durability.mark_dropped d;
          Printf.eprintf "xsact-serve: dropped unrecoverable session %s: %s\n%!"
            id msg)
      recovered.Durability.entries;
    Session_store.ensure_next t.sessions recovered.Durability.next_id;
    t.durability := Some d;
    load_context_snapshot t;
    t.ensure_client <- (fun () -> ensure_follower_client t);
    (* Fenced recovery: a winner on record means this directory was a
       primary when a higher epoch fenced it — it must come back as that
       winner's read-only follower (still answering 409 to mutations),
       never as a primary, no matter what flags it was restarted with. *)
    (match (t.replica_of, Durability.fence_winner d) with
    | None, Some w -> (
      match parse_hostport w with
      | Some hp ->
        t.current_primary := Some hp;
        Atomic.set t.fenced true;
        Atomic.set t.role Follower
      | None -> ())
    | _ -> ());
    (* Boot-time fencing probe: a would-be primary with a peer list asks
       who else is alive before serving its first mutation — a live
       primary at or above our epoch is the cluster's truth, so we join
       it as a follower instead of forking history. *)
    (if Atomic.get t.role = Primary && t.peers <> [] then
       match discover_primary t with
       | Some hp ->
         t.current_primary := Some hp;
         Atomic.set t.role Follower;
         Metrics.incr_counter t.metrics "demotions"
       | None -> ());
    (* A follower is ready on local recovery — it serves reads
       immediately and reports its lag/liveness on /ready while the
       replication client catches up (or elects a replacement for a
       dead primary). *)
    (if Atomic.get t.role = Follower then
       t.repl_client :=
         Some (start_repl_client t d ?primary:!(t.current_primary) ()));
    Atomic.set t.ready true

let handle t req =
  Atomic.incr t.inflight_now;
  Fun.protect ~finally:(fun () -> Atomic.decr t.inflight_now) @@ fun () ->
  (* Readiness gate: until recovery completes, only the probes answer —
     serving (or worse, mutating) session state mid-replay would race the
     restore. One atomic load when ready; no cost without a state dir. *)
  if
    (not (Atomic.get t.ready))
    && (match req.Http.path with
       | [ "health" ] | [ "ready" ] -> false
       | _ -> true)
  then begin
    Metrics.record t.metrics ~route:"unready" ~status:503 ~elapsed_s:0.;
    Http.response
      ~headers:[ ("Retry-After", "1") ]
      ~status:503
      (Api.error_body ~code:"unavailable"
         "unavailable: state recovery in progress")
  end
  else if
    (* Follower write gate: reads (every GET), POST /compare (a pure
       computation over read state) and the topology verbs (promote,
       demote) pass; anything that would mutate session state is refused
       — a follower's journal holds only what the primary shipped. A
       {e fenced} ex-primary answers 409 naming the winner's epoch and
       address (a client still pointed here must re-point, not retry);
       an ordinary follower answers 503 hinting at the primary it
       currently follows — the hint tracks re-pointing, not the static
       flag it was started with. *)
    Atomic.get t.role = Follower
    && (match (req.Http.meth, req.Http.path) with
       | "GET", _ -> false
       | "POST", [ "compare" ] -> false
       | "POST", [ "v1"; "promote" ] -> false
       | "POST", [ "v1"; "demote" ] -> false
       | _ -> true)
  then
    if Atomic.get t.fenced then begin
      Metrics.record t.metrics ~route:"fenced" ~status:409 ~elapsed_s:0.;
      fencing_error ~status:409 ~code:"fenced" t
        (Printf.sprintf
           "fenced: a newer primary holds epoch %d; mutations go there"
           (fence_epoch t))
    end
    else begin
      Metrics.record t.metrics ~route:"follower" ~status:503 ~elapsed_s:0.;
      let hint =
        match !(t.current_primary) with
        | Some hp -> Printf.sprintf "; primary at %s" (addr_string hp)
        | None -> ""
      in
      error_response ~status:503 ~code:"follower"
        ("read-only follower: mutations go to the primary" ^ hint)
    end
  else
  let started = Unix.gettimeofday () in
  let route, resp =
    match Router.dispatch t.routes req with
    | `Matched (route, handler, params) ->
      let resp =
        try handler req params
        with e ->
          error_response ~status:500 ~code:"internal"
            ("internal error: " ^ Printexc.to_string e)
      in
      (route, resp)
    | `Method_not_allowed allowed ->
      ( "405",
        Http.response
          ~headers:[ ("Allow", String.concat ", " allowed) ]
          ~status:405
          (Api.error_body ~code:"method_not_allowed" "method not allowed") )
    | `Not_found ->
      ("404", error_response ~status:404 ~code:"not_found" "not found")
  in
  Metrics.record t.metrics ~route ~status:resp.Http.status
    ~elapsed_s:(Unix.gettimeofday () -. started);
  resp

(* ---- Serving ----------------------------------------------------------- *)

type job = Conn of Unix.file_descr | Quit

type running = {
  server : t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  idle_timeout : float;
  max_pending : int;  (* admission bound on queued connections *)
  accept_stop : bool Atomic.t;  (* the only way the acceptor exits *)
  jobs : job Queue.t;
  jobs_mutex : Mutex.t;
  jobs_cond : Condition.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;  (* live; under conns_mutex *)
  conns_mutex : Mutex.t;
  mutable stopping : bool;  (* under conns_mutex *)
  mutable workers : Thread.t list;
  mutable acceptor : Thread.t option;
}

let push r job =
  Mutex.lock r.jobs_mutex;
  Queue.push job r.jobs;
  Condition.signal r.jobs_cond;
  Mutex.unlock r.jobs_mutex

(* Admission control: enqueue the connection unless the pending queue is
   already at [max_pending] — the depth check and the push are one critical
   section, so the bound is exact. *)
let try_enqueue r fd =
  Mutex.lock r.jobs_mutex;
  let admitted = Queue.length r.jobs < r.max_pending in
  if admitted then begin
    Queue.push (Conn fd) r.jobs;
    Condition.signal r.jobs_cond
  end;
  Mutex.unlock r.jobs_mutex;
  admitted

let pop r =
  Mutex.lock r.jobs_mutex;
  while Queue.is_empty r.jobs do
    Condition.wait r.jobs_cond r.jobs_mutex
  done;
  let job = Queue.pop r.jobs in
  Mutex.unlock r.jobs_mutex;
  job

(* Serve requests on [fd] until the client closes, errors, or idles past
   SO_RCVTIMEO (a timed-out channel read raises [Sys_error]/[Unix_error],
   absorbed below like any torn connection). Does not close [fd] — the
   worker does, after unregistering it, so a recycled descriptor number
   can never evict a live connection from the tracking table.

   GET /v1/replicate is intercepted here, before dispatch: it takes over
   the raw socket for its whole lifetime and streams the journal until
   the follower disconnects or the server stops — pinning this worker,
   the documented cost of a follower (one worker of the pool per live
   follower; the default pool of 4 leaves 3 serving). *)
let serve_connection r fd =
  let t = r.server in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Http.read_request ic with
    | Error `Eof -> ()
    | Error (`Bad msg) ->
      Http.write_response oc ~keep_alive:false
        (Http.response ~status:400 (Api.error_body ~code:"bad_request" msg))
    | Error (`Refuse (status, msg)) ->
      Metrics.record t.metrics ~route:"refused" ~status ~elapsed_s:0.;
      Http.write_response oc ~keep_alive:false
        (Http.response ~status (Api.error_body ~code:"refused" msg))
    | Ok req
      when req.Http.meth = "GET" && req.Http.path = [ "v1"; "replicate" ] -> (
      let int_param name =
        Option.bind (query_param req name) int_of_string_opt
      in
      let sub_epoch = Option.value ~default:0 (int_param "epoch") in
      match (Atomic.get t.ready, !(t.durability), Atomic.get t.role) with
      | true, Some _, Primary when sub_epoch > fence_epoch t ->
        (* A subscriber ahead of us proves we were superseded while we
           were not looking (it adopted its epoch from the real winner):
           self-demote before streaming a single stale record. *)
        demote t ~epoch:sub_epoch ();
        Metrics.record t.metrics ~route:"v1/replicate" ~status:409
          ~elapsed_s:0.;
        Http.write_response oc ~keep_alive:false
          (fencing_error ~status:409 ~code:"fenced" t
             (Printf.sprintf
                "fenced: subscriber holds epoch %d above this node's"
                sub_epoch))
      | true, Some d, Primary ->
        Metrics.record t.metrics ~route:"v1/replicate" ~status:200
          ~elapsed_s:0.;
        Atomic.incr t.streams;
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.streams)
          (fun () ->
            Replication.serve_stream ~durability:d ~fd
              ?boot:(query_param req "boot") ?gen:(int_param "gen")
              ?from:(int_param "from")
              ~warm:(fun () -> warm_wire_records t)
              ~stopping:(fun () ->
                Atomic.get r.accept_stop || Atomic.get t.role <> Primary)
              ())
        (* the stream ends the connection — no keep-alive *)
      | true, Some _, Follower ->
        (* only a primary has a journal worth shipping; a follower
           relaying its own mirror would hide divergence *)
        Metrics.record t.metrics ~route:"v1/replicate" ~status:503
          ~elapsed_s:0.;
        Http.write_response oc ~keep_alive:false
          (Http.response
             ~headers:[ ("Retry-After", "1") ]
             ~status:503
             (Api.error_body ~code:"not_primary"
                ("not primary: replication streams come from the primary"
                ^
                match !(t.current_primary) with
                | Some hp -> " at " ^ addr_string hp
                | None -> "")))
      | _ ->
        Metrics.record t.metrics ~route:"v1/replicate" ~status:503
          ~elapsed_s:0.;
        Http.write_response oc ~keep_alive:false
          (Http.response
             ~headers:[ ("Retry-After", "1") ]
             ~status:503
             (Api.error_body ~code:"unavailable"
                "replication source not ready")))
    | Ok req ->
      let resp = handle t req in
      let keep_alive = not (Http.wants_close req) in
      (* The failpoint stands in for a client that vanished mid-response:
         Injected is absorbed below exactly like the EPIPE it simulates. *)
      Xsact_util.Failpoint.hit "socket.write";
      Http.write_response oc ~keep_alive resp;
      if keep_alive then loop ()
  in
  try loop () with
  | Sys_error _ | End_of_file | Unix.Unix_error _
  | Xsact_util.Failpoint.Injected _ ->
    ()

(* Register [fd] as a live connection so [stop] can shut it down; refused
   once [stopping] is set (the worker then just closes the socket). *)
let register r fd =
  Mutex.lock r.conns_mutex;
  let accepted = not r.stopping in
  if accepted then Hashtbl.replace r.conns fd ();
  Mutex.unlock r.conns_mutex;
  accepted

let unregister r fd =
  Mutex.lock r.conns_mutex;
  Hashtbl.remove r.conns fd;
  Mutex.unlock r.conns_mutex

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop r () =
  let rec go () =
    match pop r with
    | Quit -> ()
    | Conn fd ->
      if register r fd then
        Fun.protect
          ~finally:(fun () ->
            unregister r fd;
            close_quietly fd)
          (fun () ->
            (* Belt and braces: serve_connection absorbs the expected
               connection-level exceptions, and this catch-all keeps any
               surprise from killing a pool worker — a dead worker would
               silently shrink the pool for the daemon's whole life. *)
            try serve_connection r fd with _ -> ())
      else close_quietly fd;
      go ()
  in
  go ()

(* Shed one connection with 503 + Retry-After, off the acceptor thread so
   a slow or dead client cannot stall accepts. The close lingers: write,
   shutdown our sending side, then drain the client's bytes (bounded by a
   short read timeout) before closing — closing with unread request bytes
   in the kernel buffer would RST the connection and discard the very 503
   we are trying to deliver. *)
let shed_overload r fd =
  Metrics.incr_counter r.server.metrics "requests_shed";
  Metrics.record r.server.metrics ~route:"shed" ~status:503 ~elapsed_s:0.;
  let thread () =
    (try
       let oc = Unix.out_channel_of_descr fd in
       Http.write_response oc ~keep_alive:false
         (Http.response
            ~headers:[ ("Retry-After", "1") ]
            ~status:503
            (Api.error_body ~code:"overloaded"
               "server overloaded; retry shortly"));
       (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
       (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
        with Unix.Unix_error _ | Invalid_argument _ -> ());
       let buf = Bytes.create 1024 in
       while Unix.read fd buf 0 (Bytes.length buf) > 0 do
         ()
       done
     with Sys_error _ | End_of_file | Unix.Unix_error _ -> ());
    close_quietly fd
  in
  ignore (Thread.create thread ())

let acceptor_loop r () =
  let initial_backoff = 0.001 in
  let backoff = ref initial_backoff in
  let rec go () =
    if Atomic.get r.accept_stop then ()
    else
      match Unix.accept r.listen_fd with
      | fd, _ ->
        backoff := initial_backoff;
        (* Bound every read so an idle or slow-loris connection releases
           its worker instead of pinning it forever. *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO r.idle_timeout
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        if not (try_enqueue r fd) then shed_overload r fd;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
        (* EMFILE/ENFILE/ECONNABORTED/ENOBUFS and kin are transient — fd
           pressure clears when connections close, aborted handshakes just
           go away. Exiting here would wedge the daemon (bound port, no
           acceptor), so back off and retry; the only exit is [stop]
           flipping [accept_stop] before shutting the listener down. *)
        if Atomic.get r.accept_stop then ()
        else begin
          Metrics.incr_counter r.server.metrics "accept_retries";
          Thread.delay !backoff;
          backoff := Float.min 0.5 (!backoff *. 2.);
          go ()
        end
  in
  go ()

let start ?(threads = 4) ?(idle_timeout = 30.) ?(max_pending = 64) ~port t =
  if threads < 1 then invalid_arg "Server.start: threads must be positive";
  if idle_timeout <= 0. then
    invalid_arg "Server.start: idle_timeout must be positive";
  if max_pending < 1 then
    invalid_arg "Server.start: max_pending must be positive";
  t.threads <- threads;
  (* A client that disconnects mid-response must surface as EPIPE on the
     write (absorbed in serve_connection), not as process-fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let r =
    {
      server = t;
      listen_fd;
      bound_port;
      idle_timeout;
      max_pending;
      accept_stop = Atomic.make false;
      jobs = Queue.create ();
      jobs_mutex = Mutex.create ();
      jobs_cond = Condition.create ();
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      stopping = false;
      workers = [];
      acceptor = None;
    }
  in
  (* Expose queue pressure to the handlers: /metrics reports the depth, and
     the /compare degradation ladder downgrades algorithms once the backlog
     reaches half the admission bound (the queue is filling faster than the
     workers drain it — shedding is next). *)
  t.queue_depth <-
    (fun () ->
      Mutex.lock r.jobs_mutex;
      let n = Queue.length r.jobs in
      Mutex.unlock r.jobs_mutex;
      n);
  let overload_mark = max 1 (max_pending / 2) in
  t.overloaded <- (fun () -> t.queue_depth () >= overload_mark);
  (* What the fencer announces and elections rank by; the listener binds
     loopback, so the bound port names this node uniquely per host. *)
  t.advertise <- Some ("127.0.0.1", bound_port);
  r.workers <- List.init threads (fun _ -> Thread.create (worker_loop r) ());
  r.acceptor <- Some (Thread.create (acceptor_loop r) ());
  r

let port r = r.bound_port

let stop r =
  (* The flag goes first: the acceptor retries every accept error {e except}
     when accept_stop is set, so the shutdown-induced error below is its
     exit signal rather than a transient to back off on. [closing] lets
     the fencer and election loops wind down on their own (they are not
     joined — they only probe peers and sleep). *)
  Atomic.set r.server.closing true;
  Atomic.set r.accept_stop true;
  (* shutdown (not just close) — close from another thread does not wake a
     blocked accept(2), shutdown makes it return EINVAL *)
  (try Unix.shutdown r.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  Option.iter Thread.join r.acceptor;
  (try Unix.close r.listen_fd with Unix.Unix_error _ -> ());
  List.iter (fun _ -> push r Quit) r.workers;
  (* Wake workers blocked reading an idle keep-alive connection: shutdown
     every live socket so the pending read returns EOF immediately instead
     of holding the join until the idle timeout fires. [stopping] makes
     workers close (not serve) any connection still queued behind the
     poison pills. *)
  Mutex.lock r.conns_mutex;
  r.stopping <- true;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    r.conns;
  Mutex.unlock r.conns_mutex;
  List.iter Thread.join r.workers;
  (* A follower also quiesces its replication client before the final
     flush, so an in-flight apply lands (or is abandoned at a clean
     record boundary) first. *)
  (match !(r.server.repl_client) with
  | Some c -> Replication.stop_client c
  | None -> ());
  (* Drain-then-snapshot: every worker has exited, so the state is quiet —
     checkpoint it and fsync, leaving a restart with an empty journal to
     replay and the fastest possible recovery. The journal flush comes
     {e first} and unconditionally: under [Interval] fsync the last
     interval's acked records may still ride only on the page cache, and
     the snapshot below can stall or die (disk full, injected fault) —
     a clean [stop] must never be the reason an acked record is lost.
     The snapshots are pure accelerators after that barrier, so their
     failures are absorbed. *)
  match !(r.server.durability) with
  | None -> ()
  | Some d ->
    Durability.flush d;
    (try Durability.snapshot_now d with _ -> ());
    (try write_context_snapshot r.server with _ -> ())
