type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- Printer ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun k item ->
        if k > 0 then Buffer.add_char buf ',';
        print_into buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun k (name, value) ->
        if k > 0 then Buffer.add_char buf ',';
        escape_into buf name;
        Buffer.add_char buf ':';
        print_into buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ---- Parser ------------------------------------------------------------ *)

exception Parse_error of int * string

let parse_error pos msg = raise (Parse_error (pos, msg))

(* A tiny cursor over the input string. *)
type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got ->
    parse_error c.pos (Printf.sprintf "expected %C, found %C" ch got)
  | None -> parse_error c.pos (Printf.sprintf "expected %C, found end" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error c.pos (Printf.sprintf "invalid literal (expected %s)" word)

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then
    parse_error c.pos "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as ch) -> Char.code ch - Char.code '0'
      | Some ('a' .. 'f' as ch) -> Char.code ch - Char.code 'a' + 10
      | Some ('A' .. 'F' as ch) -> Char.code ch - Char.code 'A' + 10
      | _ -> parse_error c.pos "bad hex digit in \\u escape"
    in
    advance c;
    v := (!v * 16) + d
  done;
  !v

(* Encode a code point as UTF-8 (surrogate pairs are not recombined —
   the escapes we emit never use them and lone values pass through as
   replacement-free 3-byte sequences, which round-trips our own output). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error c.pos "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        add_utf8 buf (parse_hex4 c);
        go ()
      | _ -> parse_error c.pos "bad escape")
    | Some ch when Char.code ch < 0x20 ->
      parse_error c.pos "raw control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let integral = ref true in
  if peek c = Some '-' then advance c;
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek c with
      | Some '0' .. '9' ->
        saw := true;
        advance c;
        go ()
      | _ -> ()
    in
    go ();
    if not !saw then parse_error c.pos "expected digit"
  in
  digits ();
  if peek c = Some '.' then begin
    integral := false;
    advance c;
    digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    integral := false;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if !integral then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of int range *)
  else Float (float_of_string text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error c.pos "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items := parse_value c :: !items;
          go ()
        | Some ']' -> advance c
        | _ -> parse_error c.pos "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let name = parse_string_body c in
        skip_ws c;
        expect c ':';
        (name, parse_value c)
      in
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance c
        | _ -> parse_error c.pos "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some ch -> parse_error c.pos (Printf.sprintf "unexpected %C" ch)

let of_string src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length src then
      Error (Printf.sprintf "byte %d: trailing content" c.pos)
    else Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "byte %d: %s" pos msg)

(* ---- Accessors --------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List items -> Some items | _ -> None
let obj_fields = function Obj fields -> Some fields | _ -> None
