(** A thread-safe id → value store for server-resident sessions, with
    optional idle-TTL expiry and LRU capacity eviction.

    Ids are deterministic ("s1", "s2", ...) so tests and curl transcripts
    are reproducible. Values are replaced wholesale with [set] — session
    state is an immutable record, so readers never observe a torn value.

    Expiry is lazy: entries idle longer than the TTL are dropped on the
    next access (no background thread), and [add] additionally evicts the
    least-recently-used entries when the store is at capacity. [find] and
    [set] refresh an entry's idle clock. *)

type 'a t

val create :
  ?ttl_s:float -> ?capacity:int -> ?now:(unit -> float) -> unit -> 'a t
(** [ttl_s]: drop entries idle (not accessed) longer than this many
    seconds; omit for no expiry. [capacity]: maximum live entries — adding
    past it evicts the least-recently-used; omit for unbounded. [now]
    (default [Unix.gettimeofday]) injects the clock for deterministic
    tests. @raise Invalid_argument on a non-positive [ttl_s] or
    [capacity]. *)

val add : 'a t -> 'a -> string
(** Store a fresh value and return its id, evicting expired/LRU entries
    first as needed. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's idle clock. An entry past its TTL is gone —
    [find] never resurrects it. *)

val set : 'a t -> string -> 'a -> unit
(** Replace (or re-create) the value under [id], refreshing its clock. *)

val remove : 'a t -> string -> bool
(** [true] if the id was present. *)

val count : 'a t -> int
(** Live (unexpired) entries. *)

val ids : 'a t -> string list
(** Sorted live ids, for listings. *)

val expired_total : 'a t -> int
(** Entries dropped by TTL expiry since creation. *)

val evicted_total : 'a t -> int
(** Entries dropped by LRU capacity eviction since creation. *)
