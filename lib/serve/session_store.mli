(** A thread-safe id → value store for server-resident sessions.

    Ids are deterministic ("s1", "s2", ...) so tests and curl transcripts
    are reproducible. Values are replaced wholesale with [set] — session
    state is an immutable record, so readers never observe a torn value. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a -> string
(** Store a fresh value and return its id. *)

val find : 'a t -> string -> 'a option
val set : 'a t -> string -> 'a -> unit

val remove : 'a t -> string -> bool
(** [true] if the id was present. *)

val count : 'a t -> int

val ids : 'a t -> string list
(** Sorted ids, for listings. *)
