(** A thread-safe id → value store for server-resident sessions, with
    optional idle-TTL expiry, LRU capacity eviction, and mutation events
    for the durability layer.

    Ids are deterministic ("s1", "s2", ...) so tests and curl transcripts
    are reproducible. Values are replaced wholesale with [set] — session
    state is an immutable record, so readers never observe a torn value.

    Expiry is lazy: entries idle longer than the TTL are dropped on the
    next access (no background thread), and [add] additionally evicts the
    least-recently-used entries when the store is at capacity. [find] and
    [set] refresh an entry's idle clock.

    Every mutation — insert, replace, remove, TTL expiry, LRU eviction —
    fires the [on_event] hook {e while holding the store lock and after
    the table change}, so a journaling hook observes events in exactly
    the order the mutations took effect, and a mutation is acknowledged
    to the caller only once its event handler returned (a hook that
    raises fails the mutating call after the in-memory change applied —
    the caller surfaces the error and the next successful full-state
    event or snapshot heals the journal). The hook must not call back
    into this store. Reads ([find], [count], [ids]) never fire events:
    recency refreshes are not durable state. *)

type 'a t

type 'a event =
  | Created of { id : string; value : 'a; at : float }
  | Updated of { id : string; origin : string; value : 'a; at : float }
      (** [origin] labels the mutation for the journal ("add", "remove",
          "size", "apply" for an op batch, "params" for a parameter
          patch, or "set" when unlabelled). *)
  | Removed of { id : string; value : 'a }
  | Expired of { id : string; value : 'a }
  | Evicted of { id : string; value : 'a }
      (** Removal events carry the dropped value so the serve layer can
          release per-session resources (intern-table references) the
          moment the entry leaves the store — the hook runs under the
          store lock, so the release target must be a leaf lock. *)

val create :
  ?ttl_s:float ->
  ?capacity:int ->
  ?now:(unit -> float) ->
  ?on_event:('a event -> unit) ->
  unit ->
  'a t
(** [ttl_s]: drop entries idle (not accessed) longer than this many
    seconds; omit for no expiry. [capacity]: maximum live entries — adding
    past it evicts the least-recently-used; omit for unbounded. [now]
    (default [Unix.gettimeofday]) injects the clock for deterministic
    tests. [on_event] observes mutations (see above); omitting it keeps
    every operation hook-free and allocation-identical to a plain store.
    @raise Invalid_argument on a non-positive [ttl_s] or [capacity]. *)

val add : 'a t -> 'a -> string
(** Store a fresh value and return its id, evicting expired/LRU entries
    first as needed. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's idle clock. An entry past its TTL is gone —
    [find] never resurrects it. *)

val set : ?origin:string -> 'a t -> string -> 'a -> unit
(** Replace (or re-create) the value under [id], refreshing its clock.
    [origin] (default ["set"]) tags the resulting [Updated] event. *)

val remove : 'a t -> string -> bool
(** [true] if the id was present. *)

val drop : 'a t -> string -> 'a option
(** Replication-only: remove the entry under [id] {e without} firing any
    event, returning the dropped value (so the caller can release the
    resources it held). A follower applying a replicated delete must not
    re-journal it as a local mutation — the replicated record itself is
    appended to the follower's journal by the replication path. *)

val restore : 'a t -> id:string -> last_used:float -> 'a -> unit
(** Recovery-only: install an entry under its pre-crash id with its
    pre-crash idle clock, firing no event, and bump the id counter past
    it so future [add]s never collide. Skips TTL/LRU hygiene — recovery
    decides liveness by replaying expire/evict ops, not by re-judging
    timestamps against a clock that kept running while the process was
    down. *)

val ensure_next : 'a t -> int -> unit
(** Raise the id counter to at least [n] (recovery: ids must never be
    reused even when every recovered session was deleted). *)

val count : 'a t -> int
(** Live (unexpired) entries. *)

val ids : 'a t -> string list
(** Sorted live ids, for listings. *)

val expired_total : 'a t -> int
(** Entries dropped by TTL expiry since creation. *)

val evicted_total : 'a t -> int
(** Entries dropped by LRU capacity eviction since creation. *)

val fold :
  'a t -> init:'b -> f:(string -> 'a -> last_used:float -> 'b -> 'b) -> 'b
(** Read-only fold over the live entries under the store lock, in
    unspecified order. Unlike {!find} it neither purges expired entries
    nor refreshes idle clocks — it is an observation, not an access —
    which is what the serve layer's memory accounting needs (ranking
    warm contexts by [last_used] without perturbing the ranking). [f]
    must not call back into the store. *)
