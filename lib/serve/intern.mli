(** Refcounted cross-session interning of warm contexts.

    One entry per canonical context key ({!Api.canonical_key}
    [~scope:Context]): the physically shared (profiles, context) pair,
    the number of warm sessions pinning it, and its
    {!Dod.approx_bytes}. N sessions over the same corpus and parameters
    hold {e one} physical context; [POST /compare]'s warm-context reuse
    reads the same table without pinning, so warm-session contexts and
    the compare cache are one population sized against one byte ledger
    (the server's [--max-context-mb] budget).

    Unpinned entries ([refs = 0]) form the reuse cache: they are evicted
    least-recently-used first when the ledger exceeds [max_bytes] or
    their count exceeds [cache_capacity]. Pinned entries are never
    evicted here — when pinned bytes alone bust the budget, the serve
    layer demotes sessions, whose {!release}s make entries unpinned and
    thus evictable.

    Thread-safe; the internal mutex is a leaf (no operation calls out of
    the module), so callers may hold the session-update or store lock. *)

type t

val create :
  ?max_bytes:int ->
  ?cache_capacity:int ->
  ?now:(unit -> float) ->
  unit ->
  t
(** [max_bytes]: the shared byte budget; omit for unbounded.
    [cache_capacity] (default 32): maximum {e unpinned} entries held for
    reuse. [now] injects the LRU clock for deterministic tests.
    @raise Invalid_argument on a non-positive [max_bytes] or negative
    [cache_capacity]. *)

val acquire : t -> string -> (Result_profile.t array * Dod.context) option
(** Take a reference on the entry under this key, if present. [Some]
    counts a hit and pins the entry; [None] counts a miss — build, then
    {!publish}. *)

val publish :
  t ->
  string ->
  profiles:Result_profile.t array ->
  context:Dod.context ->
  Result_profile.t array * Dod.context
(** Install a freshly built pair under [key] with one reference — or, if
    the key is already held (a racing builder or a cached entry), take a
    reference on the {e existing} entry and return its pair so the caller
    adopts the canonical copy ({!Session.intern}) and drops its own. *)

val release : t -> string -> unit
(** Drop one reference. The entry stays as an unpinned reuse-cache entry
    (the interactive undo: re-adding the result a session just removed is
    an {!acquire} hit), subject to eviction. Callers release exactly the
    references they hold — the serve layer's per-cell ownership guard
    makes double release impossible. *)

val peek : t -> string -> (Result_profile.t array * Dod.context) option
(** Read without pinning — the [/compare] warm path. Refreshes recency
    and counts a hit/miss. *)

val insert_cached :
  t ->
  string ->
  profiles:Result_profile.t array ->
  context:Dod.context ->
  unit
(** Install an unpinned reuse-cache entry (a completed [/compare] build);
    a no-op when the key is already held. *)

val bytes_live : t -> int
(** The ledger: Σ {!Dod.approx_bytes} over all entries, pinned and
    unpinned. *)

type stats = {
  entries : int;
  pinned : int;  (** entries with [refs > 0] *)
  refs_total : int;
  bytes_live : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats

val fold :
  t ->
  init:'a ->
  f:(string -> context:Dod.context -> refs:int -> 'a -> 'a) ->
  'a
(** Read-only fold over the entries under the lock; [f] must not call
    back into the table. *)

val cache_capacity : t -> int
