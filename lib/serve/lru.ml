type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> ());
  t.mru <- Some node;
  if t.lru = None then t.lru <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node
  | None ->
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node);
  if Hashtbl.length t.table > t.capacity then
    match t.lru with
    | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key
    | None -> assert false

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses

let keys_mru t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.mru
