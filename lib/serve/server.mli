(** The xsact-serve daemon: resident indexed corpora behind a JSON API.

    {!create} eagerly loads and indexes the requested datasets; {!handle}
    maps one {!Http.request} to a response (pure dispatch — the unit tests
    exercise it without sockets); {!start} binds a loopback listener and
    serves with a fixed pool of worker threads.

    Threading model (see DESIGN.md §8): worker threads overlap on socket
    I/O and parsing, while DFS generation is serialized by one compute
    mutex — the PR-1 {!Xsact_util.Domain_pool} is an orchestrator-level
    resource, and OCaml systhreads share a single domain anyway, so there
    is nothing to gain (and races to lose) from concurrent compute. The
    comparison LRU is read and written under the same mutex, so concurrent
    identical requests compute at most once.

    Endpoints: [GET /], [GET /health], [GET /datasets],
    [GET /search?dataset=&q=], [POST /compare], [GET /metrics],
    [POST /session], [GET /session], [GET /session/:id],
    [POST /session/:id/add], [POST /session/:id/remove],
    [POST /session/:id/size], [DELETE /session/:id]. *)

type t

val create :
  ?datasets:string list -> ?cache_capacity:int -> ?domains:int -> unit -> t
(** Load and index [datasets] (default: the whole {!Xsact_dataset.Dataset}
    registry). [cache_capacity] sizes the comparison LRU (default 128).
    [domains] sets the domain-pool parallelism used for requests that
    don't pin their own.
    @raise Invalid_argument on an unknown dataset name. *)

val dataset_names : t -> string list

val handle : t -> Http.request -> Http.response
(** Route and serve one request, recording metrics. Handler exceptions
    become 500s; unmatched paths 404; matched paths with the wrong verb
    405 (with an [Allow] header). *)

(** {1 Serving} *)

type running

val start : ?threads:int -> port:int -> t -> running
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — see
    {!port}) and serve until {!stop}, with [threads] workers (default 4).
    @raise Unix.Unix_error if the port is taken. *)

val port : running -> int
val stop : running -> unit
(** Close the listener, drain the workers and join every thread. *)
