(** The xsact-serve daemon: resident indexed corpora behind a JSON API.

    {!create} eagerly loads and indexes the requested datasets; {!handle}
    maps one {!Http.request} to a response (pure dispatch — the unit tests
    exercise it without sockets); {!start} binds a loopback listener and
    serves with a fixed pool of worker threads.

    Threading model (see DESIGN.md §8): worker threads overlap on socket
    I/O and parsing, and comparisons run per-key single-flight — the
    first thread to miss on a cache key computes it with the cache mutex
    {e released}, duplicate requests for the same key wait on a condition
    variable and replay the cached body, and cache hits, other keys, and
    [/metrics] never block behind an in-flight computation. Concurrent
    computations are safe: the {!Xsact_util.Domain_pool} serializes whole
    fan-out jobs behind a per-pool submit mutex. SIGPIPE is ignored at
    {!start} so a client that disconnects mid-response surfaces as EPIPE
    (absorbed per-connection), and every accepted socket carries an idle
    read timeout so stalled keep-alive connections release their worker.

    Endpoints: [GET /], [GET /health] (liveness), [GET /ready]
    (readiness: 503 until {!recover} completes), [GET /datasets],
    [GET /search?dataset=&q=], [POST /compare], [GET /metrics],
    [POST /session], [GET /session], [GET /session/:id],
    [POST /session/:id/add], [POST /session/:id/remove],
    [POST /session/:id/size], [POST /session/:id/apply],
    [PATCH /session/:id/params], [DELETE /session/:id]. The single-op
    mutation endpoints are thin wrappers over the [/apply] op path
    (DESIGN.md §13) — one validation routine, one error vocabulary —
    and every error body is a uniform
    [{"error": {"code", "message"}}] envelope with a stable
    machine-readable code.

    Durable sessions (DESIGN.md §10): with [state_dir], every session
    mutation is journaled (length-prefixed, CRC-checksummed,
    fsync-policied) before the response is written, snapshots compact the
    journal, and {!recover} replays snapshot + journal on boot — so a
    [kill -9] loses nothing acknowledged and a restart resumes where the
    crash left off. Without [state_dir], behavior and hot path are
    unchanged.

    Warm failover (DESIGN.md §14): a server created with [replica_of]
    is a live {e follower} — it tails the primary's journal over
    [GET /v1/replicate] (served here when this server is the primary),
    applies every record through the recovery replay path into warm
    state, serves reads (and [POST /compare]) while refusing mutations
    with [503 {"code":"follower"}] (hinting at the primary it currently
    follows), and becomes the primary on [POST /v1/promote] or — with
    [takeover_after] — when the primary stays silent that long. Clean
    shutdown also writes a {e context snapshot} (serialized pair tables
    + DFS vectors) that the next boot loads, so restart rewarms sessions
    by bounded verification instead of per-session rebuilds; a
    replication resync ships the same records inline (base64-armored),
    so a fresh or diverged follower boots warm too.

    Coordinated fencing (DESIGN.md §14): promotion durably mints the
    next {e fencing epoch} ([<state-dir>/epoch]) before the first
    mutation is served, then chases every configured peer with
    [POST /v1/demote] until each acknowledges it. A primary observing a
    higher epoch — via that probe, via a subscriber's [epoch] query
    parameter on [/v1/replicate], or via an explicit demote — atomically
    self-demotes to a read-only follower of the winner and answers
    mutations with [409 {"code":"fenced"}] plus top-level [epoch] and
    [winner] fields; the fencing (winner included) is durable, so a
    restart cannot resurrect it as a primary. Followers that lose their
    primary walk the [peers] list ([GET /v1/epoch]) with jittered
    backoff: if a live higher-or-equal-epoch primary exists they
    re-point to it without losing their applied tail, and otherwise —
    after [takeover_after] — they run a deterministic election (highest
    epoch, then lowest address) so exactly one of them promotes. *)

type t

val create :
  ?datasets:string list -> ?cache_capacity:int ->
  ?context_cache_capacity:int -> ?incremental:bool ->
  ?max_context_bytes:int -> ?domains:int ->
  ?deadline_ms:int -> ?max_deadline_ms:int -> ?session_ttl_s:float ->
  ?max_sessions:int -> ?state_dir:string ->
  ?fsync:Xsact_persist.Journal.policy -> ?snapshot_every:int ->
  ?replica_of:string * int -> ?peers:(string * int) list ->
  ?takeover_after:float -> ?context_snapshots:bool -> unit -> t
(** Load and index [datasets] (default: the whole {!Xsact_dataset.Dataset}
    registry). [cache_capacity] sizes the comparison LRU (default 128).
    [domains] sets the domain-pool parallelism used for requests that
    don't pin their own.

    Incremental-engine knobs (DESIGN.md §11, §13):
    - [context_cache_capacity] (default 32): maximum {e unpinned} entries
      the cross-session intern table retains for reuse — contexts no warm
      session currently pins, kept so [POST /compare] and re-created
      sessions over the same corpus skip the rebuild. Pinned entries
      (held by at least one warm session) are not counted against it.
    - [incremental] (default [true]): maintain session contexts by delta,
      intern them across sessions, and serve [/compare] from the intern
      table. [false] restores full rebuilds and per-session private
      contexts everywhere — the ablation/baseline configuration; response
      bodies are byte-identical either way.
    - [max_context_bytes]: one budget for {e all} warm context bytes —
      interned session contexts (counted once however many sessions pin
      them) plus the unpinned reuse entries behind [POST /compare].
      Exceeding it demotes least-recently-used sessions to cold (their
      releases unpin entries, which the table then sheds LRU-first).
      Omit for unbounded.

    Overload/robustness knobs (DESIGN.md §9):
    - [deadline_ms]: default cooperative budget for each [/compare]
      computation; omit for no default. A request overrides it with an
      [X-Deadline-Ms] header, clamped to [max_deadline_ms] (default
      60000). A tripped budget yields the algorithm's valid best-so-far
      with an [X-Degraded: deadline] header — or a 504 when not even the
      pair-context build finished in time.
    - [session_ttl_s] / [max_sessions]: idle expiry and LRU capacity of
      the session store (both unbounded by default).

    Durability knobs (DESIGN.md §10):
    - [state_dir]: directory for the session journal + snapshot. Omitted
      (the default), persistence is fully disabled — no hooks fire and no
      file is ever opened.
    - [fsync]: journal fsync policy (default [Interval 0.1]).
    - [snapshot_every]: compact the journal into a snapshot after this
      many appends (default 256; [0] disables automatic compaction).

    Replication knobs (DESIGN.md §14):
    - [replica_of]: follow the primary at [(host, port)] — requires
      [state_dir] (the follower keeps its own always-recoverable copy).
    - [peers]: the other nodes of the cluster, for discovery, election
      and post-promotion fencing. A booting would-be primary with a
      non-empty list probes it first and joins a live higher-or-equal
      epoch primary as a follower instead of forking history.
    - [takeover_after]: run the takeover election after the primary has
      been unreachable this many seconds (the winner self-promotes);
      omitted, promotion is manual only ([POST /v1/promote]).
    - [context_snapshots] (default [true]): write the warm-boot context
      snapshot at {!stop}, load it in {!recover}, and ship its records
      inside replication resyncs (warm resync).

    @raise Invalid_argument on an unknown dataset name, a non-positive
    knob, or [replica_of] without [state_dir]. *)

val recover : t -> unit
(** Replay [state_dir]'s snapshot + journal, restore the recovered
    sessions {e cold} (parsed recipes — request, selection, bound — with
    no search, extraction or context build), and flip the server ready.
    Each cold session is rebuilt deterministically on its first touch by
    the same path that created it, so what it serves is unchanged by the
    laziness — but boot no longer pays O(sessions × n²) for sessions
    nobody asks for. Until this returns, [GET /ready] answers 503 and
    every non-probe route is refused with [503 + Retry-After: 1];
    [GET /health] stays 200 throughout (liveness). Torn journal tails (a
    crash mid-append) are truncated at the first bad checksum and counted
    under [recovery_truncated_records] in [/metrics]; a second recovery of
    the same directory is byte-identical. Idempotent; immediate no-op when
    the server has no [state_dir]. *)

val dataset_names : t -> string list

val handle : t -> Http.request -> Http.response
(** Route and serve one request, recording metrics. Handler exceptions
    become 500s; unmatched paths 404; matched paths with the wrong verb
    405 (with an [Allow] header). *)

(** {1 Serving} *)

type running

val start :
  ?threads:int -> ?idle_timeout:float -> ?max_pending:int -> port:int -> t ->
  running
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — see
    {!port}) and serve until {!stop}, with [threads] workers (default 4).
    Ignores SIGPIPE process-wide. [idle_timeout] (seconds, default 30)
    bounds every socket read, so a connection that goes quiet
    mid-request or between keep-alive requests is dropped rather than
    pinning its worker.

    [max_pending] (default 64) bounds the accepted-but-unserved connection
    queue: a connection arriving when the queue is full is {e shed} with
    [503 Service Unavailable] + [Retry-After: 1] (written off the acceptor
    thread, with a lingering close so the response survives). At half the
    bound the server starts degrading: multi-swap [/compare] requests are
    downgraded to single-swap and tagged [X-Degraded: algorithm].

    Transient accept errors (EMFILE, ENFILE, ECONNABORTED, ENOBUFS, ...)
    are retried with capped exponential backoff (counted under
    [accept_retries] in [/metrics]); the accept loop exits only via
    {!stop}.

    @raise Unix.Unix_error if the port is taken.
    @raise Invalid_argument if [threads < 1], [idle_timeout <= 0], or
    [max_pending < 1]. *)

val port : running -> int
val stop : running -> unit
(** Close the listener, shut down live connections, drain the workers and
    join every thread. Returns promptly even when clients still hold open
    keep-alive connections. With a [state_dir], takes a final snapshot
    after the workers drain so a clean shutdown restarts from a compact
    snapshot with an empty journal. *)
