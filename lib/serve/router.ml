type params = (string * string) list
type handler = Http.request -> params -> Http.response

type route = {
  meth : string;
  pattern : string;
  segments : string list;
  handler : handler;
}

let route ~meth ~pattern handler =
  let segments =
    String.split_on_char '/' pattern |> List.filter (fun s -> s <> "")
  in
  { meth = String.uppercase_ascii meth; pattern; segments; handler }

let match_segments segments path =
  let rec go acc segments path =
    match (segments, path) with
    | [], [] -> Some (List.rev acc)
    | seg :: segments, value :: path
      when String.length seg > 0 && seg.[0] = ':' ->
      let name = String.sub seg 1 (String.length seg - 1) in
      go ((name, value) :: acc) segments path
    | seg :: segments, value :: path when seg = value -> go acc segments path
    | _ -> None
  in
  go [] segments path

let match_pattern pattern path =
  match_segments
    (String.split_on_char '/' pattern |> List.filter (fun s -> s <> ""))
    path

let dispatch routes req =
  let matches =
    List.filter_map
      (fun r ->
        match match_segments r.segments req.Http.path with
        | Some params -> Some (r, params)
        | None -> None)
      routes
  in
  match
    List.find_opt (fun (r, _) -> r.meth = req.Http.meth) matches
  with
  | Some (r, params) ->
    `Matched (Printf.sprintf "%s /%s" r.meth r.pattern, r.handler, params)
  | None -> (
    match matches with
    | [] -> `Not_found
    | _ ->
      `Method_not_allowed
        (List.sort_uniq compare (List.map (fun (r, _) -> r.meth) matches)))
