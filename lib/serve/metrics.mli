(** Request metrics behind [GET /metrics]: per-route request counts,
    status classes, and a fixed-bucket latency histogram. Thread-safe —
    every worker records into the one shared instance. *)

type t

val create : unit -> t

val record : t -> route:string -> status:int -> elapsed_s:float -> unit
(** Record one served request. [route] is the route pattern (e.g.
    ["POST /compare"]), not the concrete target, so cardinality stays
    bounded. *)

val bucket_bounds_ms : float array
(** Upper bounds (milliseconds) of the latency buckets; the histogram has
    one extra overflow bucket above the last bound. *)

val snapshot : t -> extra:(string * Json.t) list -> Json.t
(** Consistent snapshot as the [/metrics] response body. [extra] appends
    server-owned gauges (cache hit rate, pool size, ...). *)

val requests_total : t -> int

val incr_counter : ?by:int -> t -> string -> unit
(** Bump the named event counter (created at 0 on first use). The overload
    path uses ["requests_shed"], ["requests_timed_out"],
    ["responses_degraded"] and ["accept_retries"]. All appear under
    ["events"] in {!snapshot}. *)

val counter : t -> string -> int
(** Current value of a named event counter (0 if never bumped). *)
