(** Request metrics behind [GET /metrics]: per-route request counts,
    status classes, and a fixed-bucket latency histogram. Thread-safe —
    every worker records into the one shared instance. *)

type t

val create : unit -> t

val record : t -> route:string -> status:int -> elapsed_s:float -> unit
(** Record one served request. [route] is the route pattern (e.g.
    ["POST /compare"]), not the concrete target, so cardinality stays
    bounded. *)

val bucket_bounds_ms : float array
(** Upper bounds (milliseconds) of the latency buckets; the histogram has
    one extra overflow bucket above the last bound. *)

val snapshot : t -> extra:(string * Json.t) list -> Json.t
(** Consistent snapshot as the [/metrics] response body. [extra] appends
    server-owned gauges (cache hit rate, pool size, ...). *)

val requests_total : t -> int
