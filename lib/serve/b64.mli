(** Base64 (RFC 4648, padded) — the armor binary context blobs wear when
    a warm resync ships them inside the JSON replication stream. *)

val encode : string -> string
(** Encode arbitrary bytes; output is [A–Za–z0–9+/=] only, safe inside a
    JSON string without escaping. *)

val decode : string -> string option
(** Inverse of {!encode}. [None] on any malformed input (bad length, bad
    character, interior padding) — never raises. *)
