(** A fixed-capacity LRU cache with hit/miss counters — the comparison
    cache behind [POST /compare].

    O(1) find/add via a hash table over an intrusive doubly-linked recency
    list. Not thread-safe: the server guards it with its own mutex (one
    lock covers the lookup-compute-insert sequence, so two concurrent
    identical misses still compute only once under the compute lock). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit moves the entry to most-recently-used and increments the
    hit counter, a miss increments the miss counter. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace as most-recently-used; evicts the least-recently-used
    entry when over capacity. Does not touch the counters. *)

val length : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int

val keys_mru : 'a t -> string list
(** Keys from most- to least-recently used (tests assert eviction order). *)
