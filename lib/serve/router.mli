(** Pattern-based request dispatch.

    A route is a method plus a pattern like ["session/:id/add"]; [":"]
    segments bind path parameters. Dispatch picks the first route whose
    pattern matches the request path: a match on the wrong method is 405,
    no path match at all is 404 — both produced by the caller via
    [dispatch]'s result. *)

type params = (string * string) list

type handler = Http.request -> params -> Http.response

type route

val route : meth:string -> pattern:string -> handler -> route
(** [pattern] is slash-separated with no leading slash; [""] is the root.
    Segments starting with [':'] bind the decoded path segment under the
    name after the colon. *)

val match_pattern : string -> string list -> params option
(** [match_pattern pattern path_segments] — exposed for unit tests. *)

val dispatch :
  route list ->
  Http.request ->
  [ `Matched of string * handler * params  (** route pattern, for metrics *)
  | `Method_not_allowed of string list  (** allowed methods for the path *)
  | `Not_found ]
