type request = {
  meth : string;
  target : string;
  path : string list;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let max_body_bytes = 8 * 1024 * 1024
let max_headers = 64
let max_header_line_bytes = 8 * 1024

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let response ?(headers = []) ~status body =
  { status; reason = reason_phrase status; resp_headers = headers;
    resp_body = body }

(* ---- Decoding ---------------------------------------------------------- *)

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match (hex_digit s.[i + 1], hex_digit s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          go (i + 1))
      | c ->
        Buffer.add_char buf c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents buf

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> (s, None)
  | Some i ->
    ( String.sub s 0 i,
      Some (String.sub s (i + 1) (String.length s - i - 1)) )

let split_target target =
  let raw_path, raw_query = split_on_first '?' target in
  let path =
    String.split_on_char '/' raw_path
    |> List.filter (fun seg -> seg <> "")
    |> List.map url_decode
  in
  let query =
    match raw_query with
    | None -> []
    | Some q ->
      String.split_on_char '&' q
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             let k, v = split_on_first '=' kv in
             (url_decode k, url_decode (Option.value v ~default:"")))
  in
  (path, query)

(* ---- Parsing ----------------------------------------------------------- *)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when meth <> "" && target <> ""
         && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
    Ok (String.uppercase_ascii meth, target)
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error (Printf.sprintf "malformed header %S" line)
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    let value =
      String.trim (String.sub line (i + 1) (String.length line - i - 1))
    in
    Ok (name, value)

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let wants_close req =
  match header req "connection" with
  | Some v -> String.lowercase_ascii v = "close"
  | None -> false

(* Read a CRLF- (or bare-LF-) terminated line, without the terminator. *)
let read_line_opt ic =
  match In_channel.input_line ic with
  | None -> None
  | Some line ->
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then Some (String.sub line 0 (n - 1))
    else Some line

(* Like {!read_line_opt}, but stops buffering at [max_header_line_bytes]:
   a client streaming an endless header line costs at most one line's
   bound of memory before it is refused. *)
let read_line_bounded ic =
  let buf = Buffer.create 128 in
  let rec go () =
    match In_channel.input_char ic with
    | None -> if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | Some '\n' ->
      let line = Buffer.contents buf in
      let n = String.length line in
      `Line (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
             else line)
    | Some c ->
      if Buffer.length buf >= max_header_line_bytes then `Overflow
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let read_request ic =
  match read_line_bounded ic with
  | `Eof -> Error `Eof
  | `Overflow -> Error (`Refuse (431, "request line too long"))
  | `Line "" -> Error (`Bad "empty request line")
  | `Line line -> (
    match parse_request_line line with
    | Error e -> Error (`Bad e)
    | Ok (meth, target) ->
      let rec read_headers n acc =
        match read_line_bounded ic with
        | `Eof -> Error (`Bad "eof in headers")
        | `Overflow ->
          Error
            (`Refuse
              ( 431,
                Printf.sprintf "header line exceeds %d bytes"
                  max_header_line_bytes ))
        | `Line "" -> Ok (List.rev acc)
        | `Line _ when n >= max_headers ->
          Error
            (`Refuse
              (431, Printf.sprintf "too many headers (max %d)" max_headers))
        | `Line line -> (
          match parse_header_line line with
          | Ok h -> read_headers (n + 1) (h :: acc)
          | Error e -> Error (`Bad e))
      in
      match read_headers 0 [] with
      | Error e -> Error e
      | Ok headers -> (
        let content_length =
          match List.assoc_opt "content-length" headers with
          | None -> Ok 0
          | Some v -> (
            match int_of_string_opt (String.trim v) with
            | Some n when n >= 0 && n <= max_body_bytes -> Ok n
            | Some n when n > max_body_bytes ->
              Error
                (`Refuse
                  ( 413,
                    Printf.sprintf "body of %d bytes exceeds limit %d" n
                      max_body_bytes ))
            | Some _ -> Error (`Bad "content-length out of bounds")
            | None -> Error (`Bad "malformed content-length"))
        in
        match content_length with
        | Error e -> Error e
        | Ok 0 ->
          let path, query = split_target target in
          Ok { meth; target; path; query; headers; body = "" }
        | Ok n -> (
          match really_input_string ic n with
          | body ->
            let path, query = split_target target in
            Ok { meth; target; path; query; headers; body }
          | exception End_of_file -> Error (`Bad "truncated body"))))

let write_response oc ?(keep_alive = true) resp =
  let buf = Buffer.create (String.length resp.resp_body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  Buffer.add_string buf "Content-Type: application/json\r\n";
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length resp.resp_body));
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    resp.resp_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf resp.resp_body;
  Out_channel.output_string oc (Buffer.contents buf);
  Out_channel.flush oc

(* ---- Client ------------------------------------------------------------ *)

let read_response ic =
  let fail msg = failwith ("Http.request: " ^ msg) in
  let status =
    match read_line_opt ic with
    | Some line -> (
      match String.split_on_char ' ' line with
      | "HTTP/1.1" :: code :: _ | "HTTP/1.0" :: code :: _ -> (
        match int_of_string_opt code with
        | Some s -> s
        | None -> fail ("bad status " ^ line))
      | _ -> fail ("bad status line " ^ line))
    | None -> fail "no response"
  in
  let rec read_headers acc =
    match read_line_opt ic with
    | Some "" -> List.rev acc
    | Some line -> (
      match parse_header_line line with
      | Ok h -> read_headers (h :: acc)
      | Error e -> fail e)
    | None -> fail "eof in headers"
  in
  let headers = read_headers [] in
  let body =
    match List.assoc_opt "content-length" headers with
    | Some v -> (
      let n = int_of_string v in
      match really_input_string ic n with
      | body -> body
      | exception End_of_file -> fail "truncated body")
    | None -> In_channel.input_all ic
  in
  (status, headers, body)

let send_request oc ~host ?(meth = "GET") ?body target =
  let meth, body =
    match body with
    | Some b -> ((if meth = "GET" then "POST" else meth), b)
    | None -> (meth, "")
  in
  Out_channel.output_string oc
    (Printf.sprintf
       "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\n\r\n%s" meth
       target host (String.length body) body);
  Out_channel.flush oc

let with_connection ~host ~port f =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      f (fun ?meth ?body target ->
          send_request oc ~host ?meth ?body target;
          read_response ic))

let request ~host ~port ?meth ?body target =
  with_connection ~host ~port (fun call -> call ?meth ?body target)
