(* Refcounted cross-session intern table for warm contexts.

   One entry per canonical context key (Api.canonical_key ~scope:Context):
   the physically shared (profiles, context) pair, a refcount of the warm
   sessions holding it, and its approx_bytes. N sessions over the same
   corpus and parameters pin one entry; /compare's warm-context reuse
   reads the same table without taking refs, so the pool the LRU cache
   used to hold and the pool sessions pin are one population under one
   byte ledger.

   Eviction only ever touches unpinned entries (refs = 0): while the
   ledger exceeds the byte budget, or unpinned entries exceed the cache
   capacity, the least-recently-used unpinned entry is dropped. Pinned
   bytes over budget are the serve layer's problem — it demotes sessions,
   whose releases turn entries unpinned and re-enter them here.

   Locking: [mutex] is a leaf. Every operation is O(entries) bookkeeping
   under it and calls nothing back — callers may hold the session-update
   or store lock; this module never acquires either. *)

type entry = {
  e_profiles : Result_profile.t array;
  e_context : Dod.context;
  e_bytes : int;
  mutable refs : int;
  mutable last_used : float;
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_bytes : int option;
  cache_capacity : int;  (* bound on unpinned (refs = 0) entries *)
  now : unit -> float;
  mutable bytes_live : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  pinned : int;
  refs_total : int;
  bytes_live : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ?max_bytes ?(cache_capacity = 32) ?(now = Unix.gettimeofday) () =
  (match max_bytes with
  | Some b when b < 1 ->
    invalid_arg "Intern.create: max_bytes must be positive"
  | _ -> ());
  if cache_capacity < 0 then
    invalid_arg "Intern.create: cache_capacity must be non-negative";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    max_bytes;
    cache_capacity;
    now;
    bytes_live = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Drop LRU unpinned entries while the ledger is over the byte budget or
   the unpinned population is over the cache capacity. Called with the
   lock held after every mutation. *)
let shed t =
  let over () =
    let unpinned =
      Hashtbl.fold
        (fun _ e n -> if e.refs = 0 then n + 1 else n)
        t.table 0
    in
    unpinned > 0
    && ((match t.max_bytes with
        | Some budget -> t.bytes_live > budget
        | None -> false)
       || unpinned > t.cache_capacity)
  in
  while over () do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          if e.refs > 0 then acc
          else
            match acc with
            | None -> Some (key, e)
            | Some (bkey, best) ->
              if
                e.last_used < best.last_used
                || (e.last_used = best.last_used && compare key bkey < 0)
              then Some (key, e)
              else acc)
        t.table None
    in
    match victim with
    | None -> assert false (* over () demands an unpinned entry *)
    | Some (key, e) ->
      Hashtbl.remove t.table key;
      t.bytes_live <- t.bytes_live - e.e_bytes;
      t.evictions <- t.evictions + 1
  done

let acquire t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        e.refs <- e.refs + 1;
        e.last_used <- t.now ();
        t.hits <- t.hits + 1;
        Some (e.e_profiles, e.e_context)
      | None ->
        t.misses <- t.misses + 1;
        None)

let publish t key ~profiles ~context =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        (* a racer (or the undo cache) already holds this key: take a ref
           on the canonical pair and let the caller adopt it *)
        e.refs <- e.refs + 1;
        e.last_used <- t.now ();
        (e.e_profiles, e.e_context)
      | None ->
        let e =
          {
            e_profiles = profiles;
            e_context = context;
            e_bytes = Dod.approx_bytes context;
            refs = 1;
            last_used = t.now ();
          }
        in
        Hashtbl.replace t.table key e;
        t.bytes_live <- t.bytes_live + e.e_bytes;
        shed t;
        (profiles, context))

let release t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e when e.refs > 0 ->
        e.refs <- e.refs - 1;
        e.last_used <- t.now ();
        shed t
      | Some _ | None ->
        (* a ref was released twice, or for a key never published — the
           CAS ownership guards upstream make this unreachable *)
        assert false)

let peek t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        e.last_used <- t.now ();
        t.hits <- t.hits + 1;
        Some (e.e_profiles, e.e_context)
      | None ->
        t.misses <- t.misses + 1;
        None)

let insert_cached t key ~profiles ~context =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        let e =
          {
            e_profiles = profiles;
            e_context = context;
            e_bytes = Dod.approx_bytes context;
            refs = 0;
            last_used = t.now ();
          }
        in
        Hashtbl.replace t.table key e;
        t.bytes_live <- t.bytes_live + e.e_bytes;
        shed t
      end)

let bytes_live t = locked t (fun () -> t.bytes_live)

let stats t =
  locked t (fun () ->
      let entries, pinned, refs_total =
        Hashtbl.fold
          (fun _ e (n, p, r) ->
            (n + 1, (if e.refs > 0 then p + 1 else p), r + e.refs))
          t.table (0, 0, 0)
      in
      {
        entries;
        pinned;
        refs_total;
        bytes_live = t.bytes_live;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })

let fold t ~init ~f =
  locked t (fun () ->
      Hashtbl.fold
        (fun key e acc -> f key ~context:e.e_context ~refs:e.refs acc)
        t.table init)

let cache_capacity t = t.cache_capacity
