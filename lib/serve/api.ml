type compare_request = {
  dataset : string;
  keywords : string;
  select : int list option;
  top : int;
  size_bound : int;
  algorithm : Algorithm.t;
  threshold_pct : float;
  measure : Dod.measure;
  weights : (string * int) list;
  domains : int option;
}

let normalize_keywords s = String.concat " " (Token.normalize_query s)

(* ---- Decoding ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let required json name decode =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing required field %S" name)
  | Some v -> (
    match decode v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let optional json name ~default decode =
  match Json.member name json with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match decode v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let int_list j =
  Option.bind (Json.to_list j) (fun items ->
      let ints = List.filter_map Json.to_int items in
      if List.length ints = List.length items then Some ints else None)

let weight_rules j =
  Option.bind (Json.obj_fields j) (fun fields ->
      let rules =
        List.filter_map
          (fun (pat, v) -> Option.map (fun w -> (pat, w)) (Json.to_int v))
          fields
      in
      if List.length rules = List.length fields then
        Some (List.sort compare rules)
      else None)

let decode_compare json =
  let* dataset = required json "dataset" Json.to_str in
  let* raw_keywords = required json "q" Json.to_str in
  let* select = optional json "select" ~default:None (fun j ->
      Option.map Option.some (int_list j)) in
  let* top = optional json "top" ~default:4 Json.to_int in
  let* size_bound = optional json "size_bound" ~default:8 Json.to_int in
  let* algorithm =
    optional json "algorithm" ~default:Algorithm.Multi_swap (fun j ->
        Option.bind (Json.to_str j) Algorithm.of_string)
  in
  let* threshold_pct =
    optional json "threshold_pct" ~default:10.0 Json.to_float
  in
  let* measure =
    optional json "measure" ~default:Dod.Raw (fun j ->
        match Json.to_str j with
        | Some "raw" -> Some Dod.Raw
        | Some "rate" -> Some Dod.Rate
        | _ -> None)
  in
  let* weights = optional json "weights" ~default:[] weight_rules in
  let* domains = optional json "domains" ~default:None (fun j ->
      Option.map Option.some (Json.to_int j)) in
  let* () =
    if match domains with Some d -> d < 1 | None -> false then
      Error "field \"domains\" must be positive"
    else Ok ()
  in
  Ok
    {
      dataset;
      keywords = normalize_keywords raw_keywords;
      select;
      top;
      size_bound;
      algorithm;
      threshold_pct;
      measure;
      weights;
      domains;
    }

(* The durable inverse of [decode_compare]: a request round-trips through
   [json_of_compare] ∘ [decode_compare] unchanged (keyword normalization is
   idempotent), which is what lets the journal store requests as plain
   request bodies. Fields always present — defaults are re-applied on
   decode anyway, and explicit is easier to audit in a journal dump. *)
let json_of_compare r =
  Json.Obj
    ([
       ("dataset", Json.String r.dataset);
       ("q", Json.String r.keywords);
     ]
    @ (match r.select with
      | None -> []
      | Some ranks ->
        [ ("select", Json.List (List.map (fun i -> Json.Int i) ranks)) ])
    @ [
        ("top", Json.Int r.top);
        ("size_bound", Json.Int r.size_bound);
        ("algorithm", Json.String (Algorithm.to_string r.algorithm));
        ("threshold_pct", Json.Float r.threshold_pct);
        ( "measure",
          Json.String
            (match r.measure with Dod.Raw -> "raw" | Dod.Rate -> "rate") );
        ( "weights",
          Json.Obj (List.map (fun (pat, w) -> (pat, Json.Int w)) r.weights) );
      ]
    @ match r.domains with
      | None -> []
      | Some d -> [ ("domains", Json.Int d) ])

(* ---- Session mutations: op batches and params patches ------------------ *)

type params_patch = {
  p_threshold : float option;
  p_measure : Dod.measure option;
  p_weights : (string * int) list option;
}

type session_op =
  | Op_add of int  (* rank *)
  | Op_remove of int  (* rank *)
  | Op_size of int
  | Op_params of params_patch

(* Mutation-endpoint decode errors split by blame, the same way the
   single-op endpoints do: a body we cannot make sense of is malformed
   (400); a well-formed body asking for something the service rejects —
   an unknown measure, a negative weight, an unknown op — is
   unprocessable (422, like the duplicate-rank rejection). *)
type op_error = Malformed of string | Unprocessable of string

let status_of_op_error = function Malformed _ -> 400 | Unprocessable _ -> 422
let message_of_op_error = function Malformed m | Unprocessable m -> m

let decode_params_patch json =
  let* p_threshold =
    match Json.member "threshold_pct" json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_float v with
      | None -> Error (Malformed "field \"threshold_pct\" has the wrong type")
      | Some thr ->
        if thr < 0. then
          Error (Unprocessable "field \"threshold_pct\" must be non-negative")
        else Ok (Some thr))
  in
  let* p_measure =
    match Json.member "measure" json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_str v with
      | None -> Error (Malformed "field \"measure\" has the wrong type")
      | Some "raw" -> Ok (Some Dod.Raw)
      | Some "rate" -> Ok (Some Dod.Rate)
      | Some other ->
        Error (Unprocessable (Printf.sprintf "unknown measure %S" other)))
  in
  let* p_weights =
    match Json.member "weights" json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match weight_rules v with
      | None -> Error (Malformed "field \"weights\" has the wrong type")
      | Some rules -> (
        match List.find_opt (fun (_, w) -> w < 0) rules with
        | Some (pat, w) ->
          Error
            (Unprocessable
               (Printf.sprintf "negative weight %d for pattern %S" w pat))
        | None -> Ok (Some rules)))
  in
  if p_threshold = None && p_measure = None && p_weights = None then
    Error
      (Malformed
         "empty params patch: provide \"threshold_pct\", \"measure\" or \
          \"weights\"")
  else Ok { p_threshold; p_measure; p_weights }

let apply_patch r patch =
  {
    r with
    threshold_pct = Option.value patch.p_threshold ~default:r.threshold_pct;
    measure = Option.value patch.p_measure ~default:r.measure;
    weights = Option.value patch.p_weights ~default:r.weights;
  }

(* One decoder per op kind, shared between the batch endpoint (where the
   kind comes from the "op" member) and the single-op endpoints (where it
   comes from the route) — the bodies are the same shape either way. *)
let decode_single_op ~op json =
  let op_int name =
    match Option.bind (Json.member name json) Json.to_int with
    | Some v -> Ok v
    | None ->
      Error
        (Malformed (Printf.sprintf "op %S needs an integer field %S" op name))
  in
  match op with
  | "add" ->
    let* rank = op_int "rank" in
    Ok (Op_add rank)
  | "remove" ->
    let* rank = op_int "rank" in
    Ok (Op_remove rank)
  | "size" ->
    let* size_bound = op_int "size_bound" in
    Ok (Op_size size_bound)
  | "params" ->
    (* inline patch: the params fields sit next to "op" *)
    let* patch = decode_params_patch json in
    Ok (Op_params patch)
  | other -> Error (Unprocessable (Printf.sprintf "unknown op %S" other))

let decode_op json =
  match Option.bind (Json.member "op" json) Json.to_str with
  | None -> Error (Malformed "each op needs a string field \"op\"")
  | Some op -> decode_single_op ~op json

let decode_ops json =
  match Option.bind (Json.member "ops" json) Json.to_list with
  | None -> Error (Malformed "missing list field \"ops\"")
  | Some [] -> Error (Malformed "\"ops\" must not be empty")
  | Some items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: tl ->
        let* op = decode_op item in
        go (op :: acc) tl
    in
    go [] items

(* The one rank-addressing and validation routine behind every mutation
   endpoint: the single-op endpoints are thin wrappers building singleton
   batches through it, so the duplicate-rank / unknown-rank 422s and the
   rank → index translation exist exactly once. Ranks are resolved against
   the {e evolving} selection (an add earlier in the batch makes its rank
   removable later), and a params op folds into the evolving request so
   the returned [compare_request] is the session's post-batch recipe.
   [profile_of] is called only for ranks already checked in range. *)
let translate_ops ~request ~ranks ~available ~profile_of ~config_of ops =
  let rec go ranks creq acc = function
    | [] -> Ok (List.rev acc, ranks, creq)
    | Op_add rank :: tl ->
      if List.mem rank ranks then
        Error
          (`Op
            (Unprocessable
               (Printf.sprintf "rank %d is already in the comparison" rank)))
      else if rank < 1 || rank > available then
        Error (`Core (Error.Rank_out_of_range { rank; available }))
      else
        go (ranks @ [ rank ]) creq (Session.Add (profile_of rank) :: acc) tl
    | Op_remove rank :: tl -> (
      let rec index_of i = function
        | [] -> None
        | r :: _ when r = rank -> Some i
        | _ :: rest -> index_of (i + 1) rest
      in
      match index_of 0 ranks with
      | None ->
        Error
          (`Op
            (Unprocessable
               (Printf.sprintf "rank %d is not in the comparison" rank)))
      | Some idx ->
        go
          (List.filter (fun r -> r <> rank) ranks)
          creq
          (Session.Remove idx :: acc)
          tl)
    | Op_size size_bound :: tl ->
      go ranks creq (Session.Set_size_bound size_bound :: acc) tl
    | Op_params patch :: tl ->
      let creq = apply_patch creq patch in
      let config = config_of creq in
      go ranks creq
        (Session.Reparams
           {
             params = Some config.Config.params;
             weight = Some config.Config.weight;
           }
        :: acc)
        tl
  in
  go ranks request [] ops

(* ---- Canonical request keys -------------------------------------------- *)

type key_scope = Full | Context

(* One normalization routine for every key the serve layer derives from a
   request. Field order is fixed and pinned by a golden test:

     ds, q, sel, [k, alg,] thr, measure, w [, &domains]

   [Context] scope emits exactly the fields the Dod.context is a function
   of — dataset, keywords, selection, threshold, measure, weights — and
   omits size_bound, algorithm and domains, none of which the pair tables
   depend on (the parallel build is bit-identical across domain counts).
   Requests sharing a context key can share one physical context across
   resizes and algorithm switches; [Full] scope adds the response-shaping
   fields and keys the body cache. [sel] is the explicit rank list when
   given ("1,3,4"), else "top<k>" — a session keys its context with its
   {e resolved} ranks, so a session created from "top4" and one created
   from select [1;2;3;4] intern to the same entry. *)
let canonical_key ~scope r =
  let buf = Buffer.create 96 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let select =
    match r.select with
    | Some ranks -> String.concat "," (List.map string_of_int ranks)
    | None -> Printf.sprintf "top%d" r.top
  in
  add "ds=%s&q=%s&sel=%s" r.dataset r.keywords select;
  (match scope with
  | Full ->
    add "&k=%d&alg=%s" r.size_bound (Algorithm.to_string r.algorithm)
  | Context -> ());
  add "&thr=%g&measure=%s&w=%s" r.threshold_pct
    (match r.measure with Dod.Raw -> "raw" | Dod.Rate -> "rate")
    (String.concat ","
       (List.map (fun (pat, w) -> Printf.sprintf "%s:%d" pat w) r.weights));
  (match scope with
  | Full ->
    add "&domains=%s"
      (match r.domains with Some d -> string_of_int d | None -> "default")
  | Context -> ());
  Buffer.contents buf

let to_config r =
  let weight =
    match r.weights with
    | [] -> Weighting.uniform
    | rules -> Weighting.by_attribute rules
  in
  let config =
    Config.default
    |> Config.with_params
         { Dod.threshold_pct = r.threshold_pct; measure = r.measure }
    |> Config.with_weight weight
    |> Config.with_algorithm r.algorithm
  in
  match r.domains with
  | Some d -> Config.with_domains d config
  | None -> config

let status_of_error = function
  | Error.No_results _ -> 404
  | Error.Too_few_selected _ | Error.Rank_out_of_range _
  | Error.Index_out_of_range _ | Error.Bound_too_small _
  | Error.Unsupported_algorithm _ ->
    422
  | Error.Timeout -> 504

(* Stable machine-readable codes, one per variant — clients branch on
   these, never on message text (messages may be reworded). *)
let code_of_error = function
  | Error.No_results _ -> "no_results"
  | Error.Too_few_selected _ -> "too_few_selected"
  | Error.Rank_out_of_range _ -> "rank_out_of_range"
  | Error.Index_out_of_range _ -> "index_out_of_range"
  | Error.Bound_too_small _ -> "bound_too_small"
  | Error.Unsupported_algorithm _ -> "unsupported_algorithm"
  | Error.Timeout -> "timeout"

let code_of_op_error = function
  | Malformed _ -> "malformed"
  | Unprocessable _ -> "unprocessable"

(* ---- Encoders ---------------------------------------------------------- *)

let error_body ~code msg =
  Json.to_string
    (Json.Obj
       [
         ( "error",
           Json.Obj
             [ ("code", Json.String code); ("message", Json.String msg) ] );
       ])

let json_of_results results =
  Json.List
    (List.map
       (fun (r, title) ->
         Json.Obj
           [
             ("rank", Json.Int r.Search.rank);
             ("title", Json.String title);
             ("score", Json.Float r.Search.score);
             ("node_id", Json.Int r.Search.node_id);
           ])
       results)

let json_of_cell = function
  | Table.Unknown -> Json.Null
  | Table.Entries entries ->
    Json.List
      (List.map
         (fun { Table.feature; count; population } ->
           Json.Obj
             [
               ("value", Json.String feature.Feature.value);
               ("count", Json.Int count);
               ("population", Json.Int population);
             ])
         entries)

let json_of_table (table : Table.t) =
  Json.Obj
    [
      ( "labels",
        Json.List
          (Array.to_list
             (Array.map (fun l -> Json.String l) table.Table.labels)) );
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ( "type",
                     Json.String (Feature.ftype_to_string row.Table.ftype) );
                   ("differentiating", Json.Bool row.Table.differentiating);
                   ( "cells",
                     Json.List
                       (Array.to_list (Array.map json_of_cell row.Table.cells))
                   );
                 ])
             table.Table.rows) );
      ("dod", Json.Int table.Table.dod);
      ("size_bound", Json.Int table.Table.size_bound);
    ]

let json_of_comparison (c : Pipeline.comparison) =
  Json.Obj
    ([
       ("keywords", Json.String c.Pipeline.keywords);
       ("algorithm", Json.String (Algorithm.to_string c.Pipeline.algorithm));
       ("size_bound", Json.Int c.Pipeline.size_bound);
       ("dod", Json.Int c.Pipeline.dod);
       ( "dfs_sizes",
         Json.List
           (Array.to_list
              (Array.map
                 (fun dfs -> Json.Int (Dfs.size dfs))
                 c.Pipeline.dfss)) );
       ("elapsed_s", Json.Float c.Pipeline.elapsed_s);
       ("table", json_of_table c.Pipeline.table);
     ]
    (* Only serialized when set, so undeadlined response bodies stay
       byte-identical to previous releases. *)
    @ if c.Pipeline.degraded then [ ("degraded", Json.Bool true) ] else [])
