type 'a entry = { value : 'a; mutable last_used : float }

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable next : int;
  ttl_s : float option;
  capacity : int option;
  now : unit -> float;
  mutable expired_total : int;
  mutable evicted_total : int;
}

let create ?ttl_s ?capacity ?(now = Unix.gettimeofday) () =
  (match ttl_s with
  | Some ttl when not (ttl > 0.) ->
    invalid_arg "Session_store.create: ttl_s must be positive"
  | _ -> ());
  (match capacity with
  | Some c when c < 1 ->
    invalid_arg "Session_store.create: capacity must be positive"
  | _ -> ());
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    next = 1;
    ttl_s;
    capacity;
    now;
    expired_total = 0;
    evicted_total = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Hygiene on every access (all call sites hold the lock): first drop
   entries idle past the TTL, then — only when about to insert — evict the
   least-recently-used survivors down to capacity. Scans are O(n), fine for
   the session counts a single daemon holds. *)
let purge_expired t =
  match t.ttl_s with
  | None -> ()
  | Some ttl ->
    let now = t.now () in
    let dead =
      Hashtbl.fold
        (fun id e acc -> if now -. e.last_used > ttl then id :: acc else acc)
        t.table []
    in
    List.iter
      (fun id ->
        Hashtbl.remove t.table id;
        t.expired_total <- t.expired_total + 1)
      dead

let evict_to_capacity t ~incoming =
  match t.capacity with
  | None -> ()
  | Some cap ->
    while Hashtbl.length t.table + incoming > cap do
      (* Oldest last_used loses; ties break toward the smaller id so the
         order is deterministic under a frozen test clock. *)
      let victim =
        Hashtbl.fold
          (fun id e acc ->
            match acc with
            | None -> Some (id, e)
            | Some (bid, best) ->
              if
                e.last_used < best.last_used
                || (e.last_used = best.last_used && compare id bid < 0)
              then Some (id, e)
              else acc)
          t.table None
      in
      match victim with
      | None -> assert false (* empty yet over capacity: impossible *)
      | Some (id, _) ->
        Hashtbl.remove t.table id;
        t.evicted_total <- t.evicted_total + 1
    done

let add t value =
  locked t (fun () ->
      purge_expired t;
      evict_to_capacity t ~incoming:1;
      let id = Printf.sprintf "s%d" t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.table id { value; last_used = t.now () };
      id)

let find t id =
  locked t (fun () ->
      purge_expired t;
      match Hashtbl.find_opt t.table id with
      | None -> None
      | Some e ->
        e.last_used <- t.now ();
        Some e.value)

let set t id value =
  locked t (fun () ->
      purge_expired t;
      Hashtbl.replace t.table id { value; last_used = t.now () })

let remove t id =
  locked t (fun () ->
      let present = Hashtbl.mem t.table id in
      Hashtbl.remove t.table id;
      present)

let count t =
  locked t (fun () ->
      purge_expired t;
      Hashtbl.length t.table)

let ids t =
  locked t (fun () ->
      purge_expired t;
      Hashtbl.fold (fun id _ acc -> id :: acc) t.table []
      |> List.sort compare)

let expired_total t = locked t (fun () -> t.expired_total)
let evicted_total t = locked t (fun () -> t.evicted_total)
