type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  mutable next : int;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 16; next = 1 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t value =
  locked t (fun () ->
      let id = Printf.sprintf "s%d" t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.table id value;
      id)

let find t id = locked t (fun () -> Hashtbl.find_opt t.table id)
let set t id value = locked t (fun () -> Hashtbl.replace t.table id value)

let remove t id =
  locked t (fun () ->
      let present = Hashtbl.mem t.table id in
      Hashtbl.remove t.table id;
      present)

let count t = locked t (fun () -> Hashtbl.length t.table)

let ids t =
  locked t (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.table []
      |> List.sort compare)
