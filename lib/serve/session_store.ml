type 'a entry = { value : 'a; mutable last_used : float }

type 'a event =
  | Created of { id : string; value : 'a; at : float }
  | Updated of { id : string; origin : string; value : 'a; at : float }
  | Removed of { id : string; value : 'a }
  | Expired of { id : string; value : 'a }
  | Evicted of { id : string; value : 'a }

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable next : int;
  ttl_s : float option;
  capacity : int option;
  now : unit -> float;
  on_event : ('a event -> unit) option;
  mutable expired_total : int;
  mutable evicted_total : int;
}

let create ?ttl_s ?capacity ?(now = Unix.gettimeofday) ?on_event () =
  (match ttl_s with
  | Some ttl when not (ttl > 0.) ->
    invalid_arg "Session_store.create: ttl_s must be positive"
  | _ -> ());
  (match capacity with
  | Some c when c < 1 ->
    invalid_arg "Session_store.create: capacity must be positive"
  | _ -> ());
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    next = 1;
    ttl_s;
    capacity;
    now;
    on_event;
    expired_total = 0;
    evicted_total = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Fired with the lock held, immediately after the table change — the
   durability hook sees mutations in effect order, and a mutating call
   returns only after its event was handled (journaled). *)
let emit t ev = match t.on_event with None -> () | Some f -> f ev

(* Hygiene on every access (all call sites hold the lock): first drop
   entries idle past the TTL, then — only when about to insert — evict the
   least-recently-used survivors down to capacity. Scans are O(n), fine for
   the session counts a single daemon holds. *)
let purge_expired t =
  match t.ttl_s with
  | None -> ()
  | Some ttl ->
    let now = t.now () in
    let dead =
      Hashtbl.fold
        (fun id e acc ->
          if now -. e.last_used > ttl then (id, e.value) :: acc else acc)
        t.table []
    in
    List.iter
      (fun (id, value) ->
        Hashtbl.remove t.table id;
        t.expired_total <- t.expired_total + 1;
        emit t (Expired { id; value }))
      dead

let evict_to_capacity t ~incoming =
  match t.capacity with
  | None -> ()
  | Some cap ->
    while Hashtbl.length t.table + incoming > cap do
      (* Oldest last_used loses; ties break toward the smaller id so the
         order is deterministic under a frozen test clock. *)
      let victim =
        Hashtbl.fold
          (fun id e acc ->
            match acc with
            | None -> Some (id, e)
            | Some (bid, best) ->
              if
                e.last_used < best.last_used
                || (e.last_used = best.last_used && compare id bid < 0)
              then Some (id, e)
              else acc)
          t.table None
      in
      match victim with
      | None -> assert false (* empty yet over capacity: impossible *)
      | Some (id, e) ->
        Hashtbl.remove t.table id;
        t.evicted_total <- t.evicted_total + 1;
        emit t (Evicted { id; value = e.value })
    done

let add t value =
  locked t (fun () ->
      purge_expired t;
      evict_to_capacity t ~incoming:1;
      let id = Printf.sprintf "s%d" t.next in
      t.next <- t.next + 1;
      let at = t.now () in
      Hashtbl.replace t.table id { value; last_used = at };
      emit t (Created { id; value; at });
      id)

let find t id =
  locked t (fun () ->
      purge_expired t;
      match Hashtbl.find_opt t.table id with
      | None -> None
      | Some e ->
        e.last_used <- t.now ();
        Some e.value)

let set ?(origin = "set") t id value =
  locked t (fun () ->
      purge_expired t;
      let at = t.now () in
      Hashtbl.replace t.table id { value; last_used = at };
      emit t (Updated { id; origin; value; at }))

let remove t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table id with
      | Some e ->
        Hashtbl.remove t.table id;
        emit t (Removed { id; value = e.value });
        true
      | None -> false)

let drop t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table id with
      | Some e ->
        Hashtbl.remove t.table id;
        Some e.value
      | None -> None)

(* Numeric suffix of "sN" ids, for collision-free id allocation after
   recovery; foreign ids (never minted by [add]) don't constrain it. *)
let id_number id =
  if String.length id > 1 && id.[0] = 's' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let ensure_next t n = locked t (fun () -> t.next <- max t.next n)

let restore t ~id ~last_used value =
  locked t (fun () ->
      Hashtbl.replace t.table id { value; last_used };
      match id_number id with
      | Some n -> t.next <- max t.next (n + 1)
      | None -> ())

let count t =
  locked t (fun () ->
      purge_expired t;
      Hashtbl.length t.table)

let ids t =
  locked t (fun () ->
      purge_expired t;
      Hashtbl.fold (fun id _ acc -> id :: acc) t.table []
      |> List.sort compare)

let expired_total t = locked t (fun () -> t.expired_total)
let evicted_total t = locked t (fun () -> t.evicted_total)

let fold t ~init ~f =
  locked t (fun () ->
      Hashtbl.fold
        (fun id e acc -> f id e.value ~last_used:e.last_used acc)
        t.table init)
