let bucket_bounds_ms = [| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]

type t = {
  mutex : Mutex.t;
  by_route : (string, int) Hashtbl.t;
  by_status : (int, int) Hashtbl.t;  (* keyed by status class: 2, 4, 5 *)
  buckets : int array;  (* one slot per bound + overflow *)
  mutable total : int;
  mutable latency_sum_s : float;
  (* free-form named counters: overload/fault events (shed, timeout,
     degraded, accept retries, session evictions, ...) *)
  events : (string, int) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    by_route = Hashtbl.create 16;
    by_status = Hashtbl.create 8;
    buckets = Array.make (Array.length bucket_bounds_ms + 1) 0;
    total = 0;
    latency_sum_s = 0.;
    events = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump table key =
  Hashtbl.replace table key
    (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let bucket_index elapsed_ms =
  let n = Array.length bucket_bounds_ms in
  let rec go i =
    if i >= n then n
    else if elapsed_ms <= bucket_bounds_ms.(i) then i
    else go (i + 1)
  in
  go 0

let record t ~route ~status ~elapsed_s =
  locked t (fun () ->
      t.total <- t.total + 1;
      t.latency_sum_s <- t.latency_sum_s +. elapsed_s;
      bump t.by_route route;
      bump t.by_status (status / 100);
      let i = bucket_index (1000. *. elapsed_s) in
      t.buckets.(i) <- t.buckets.(i) + 1)

let requests_total t = locked t (fun () -> t.total)

let incr_counter ?(by = 1) t name =
  locked t (fun () ->
      Hashtbl.replace t.events name
        (by + Option.value ~default:0 (Hashtbl.find_opt t.events name)))

let counter t name =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.events name))

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t ~extra =
  locked t (fun () ->
      let routes =
        List.map (fun (r, n) -> (r, Json.Int n)) (sorted_bindings t.by_route)
      in
      let statuses =
        List.map
          (fun (c, n) -> (Printf.sprintf "%dxx" c, Json.Int n))
          (sorted_bindings t.by_status)
      in
      let buckets =
        List.concat
          [
            Array.to_list
              (Array.mapi
                 (fun i bound ->
                   (Printf.sprintf "le_%gms" bound, Json.Int t.buckets.(i)))
                 bucket_bounds_ms);
            [ ("inf", Json.Int t.buckets.(Array.length bucket_bounds_ms)) ];
          ]
      in
      let mean_ms =
        if t.total = 0 then 0.
        else 1000. *. t.latency_sum_s /. float_of_int t.total
      in
      let events =
        List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings t.events)
      in
      Json.Obj
        ([
           ("requests_total", Json.Int t.total);
           ("requests_by_route", Json.Obj routes);
           ("responses_by_status", Json.Obj statuses);
           ("latency_ms_buckets", Json.Obj buckets);
           ("latency_ms_mean", Json.Float mean_ms);
           ("events", Json.Obj events);
         ]
        @ extra))
