(* Context-snapshot record codec. Each Snapshot record is a JSON header
   line, then (for context records) the raw serialized context after the
   first '\n' — the blob is dense binary and never enters JSON. *)

type ctx = {
  x_key : string;
  x_profiles : Result_profile.t array;
  x_blob : string;
}

type sess = {
  z_id : string;
  z_ctx : string;
  z_bound : int;
  z_runs : int;
  z_dfss : int array array;
}

type record = Ctx of ctx | Sess of sess

(* ---- Profiles ----------------------------------------------------------- *)

(* A profile round-trips through [Result_profile.make] from its label,
   entity populations and (feature, count) bag — [make] canonicalizes,
   and its own output is already canonical, so re-making reproduces the
   profile structurally. *)
let json_of_profile (p : Result_profile.t) =
  let pops =
    Array.to_list p.Result_profile.entities
    |> List.map (fun (e : Result_profile.entity_info) ->
           Json.List
             [ Json.String e.Result_profile.entity; Json.Int e.population ])
  in
  let feats =
    Array.to_list p.Result_profile.entities
    |> List.concat_map (fun (e : Result_profile.entity_info) ->
           Array.to_list e.Result_profile.types
           |> List.concat_map (fun (ti : Result_profile.type_info) ->
                  Array.to_list ti.Result_profile.features
                  |> List.map (fun (fi : Result_profile.feat_info) ->
                         let f = fi.Result_profile.feature in
                         Json.List
                           [
                             Json.String f.Feature.ftype.Feature.entity;
                             Json.String f.Feature.ftype.Feature.attribute;
                             Json.String f.Feature.value;
                             Json.Int fi.Result_profile.count;
                           ])))
  in
  Json.Obj
    [
      ("label", Json.String p.Result_profile.label);
      ("pop", Json.List pops);
      ("feats", Json.List feats);
    ]

let profile_of_json json =
  let ( let* ) = Result.bind in
  let str j = Option.to_result ~none:"expected string" (Json.to_str j) in
  let int j = Option.to_result ~none:"expected int" (Json.to_int j) in
  let* label =
    Option.to_result ~none:"profile: missing label"
      (Option.bind (Json.member "label" json) Json.to_str)
  in
  let* pops =
    Option.to_result ~none:"profile: missing pop"
      (Option.bind (Json.member "pop" json) Json.to_list)
  in
  let* populations =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        match Json.to_list j with
        | Some [ e; n ] ->
          let* e = str e in
          let* n = int n in
          Ok ((e, n) :: acc)
        | _ -> Error "profile: bad pop pair")
      (Ok []) pops
  in
  let* feats =
    Option.to_result ~none:"profile: missing feats"
      (Option.bind (Json.member "feats" json) Json.to_list)
  in
  let* features =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        match Json.to_list j with
        | Some [ e; a; v; c ] ->
          let* e = str e in
          let* a = str a in
          let* v = str v in
          let* c = int c in
          Ok ((Feature.make ~entity:e ~attribute:a ~value:v, c) :: acc)
        | _ -> Error "profile: bad feature quad")
      (Ok []) feats
  in
  match
    Result_profile.make ~label ~populations:(List.rev populations)
      (List.rev features)
  with
  | p -> Ok p
  | exception Invalid_argument m -> Error ("profile: " ^ m)

(* ---- Records ------------------------------------------------------------ *)

let encode = function
  | Ctx c ->
    let header =
      Json.to_string
        (Json.Obj
           [
             ("k", Json.String "ctx");
             ("key", Json.String c.x_key);
             ( "profiles",
               Json.List
                 (Array.to_list (Array.map json_of_profile c.x_profiles)) );
           ])
    in
    header ^ "\n" ^ c.x_blob
  | Sess s ->
    Json.to_string
      (Json.Obj
         [
           ("k", Json.String "sess");
           ("id", Json.String s.z_id);
           ("ctx", Json.String s.z_ctx);
           ("bound", Json.Int s.z_bound);
           ("runs", Json.Int s.z_runs);
           ( "dfss",
             Json.List
               (Array.to_list
                  (Array.map
                     (fun q ->
                       Json.List
                         (Array.to_list (Array.map (fun n -> Json.Int n) q)))
                     s.z_dfss)) );
         ])

let decode payload =
  let ( let* ) = Result.bind in
  let header, tail =
    match String.index_opt payload '\n' with
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )
    | None -> (payload, "")
  in
  let* json =
    Result.map_error (fun m -> "record header: " ^ m) (Json.of_string header)
  in
  let field name conv err =
    Option.to_result ~none:err (Option.bind (Json.member name json) conv)
  in
  let* kind = field "k" Json.to_str "record: missing kind" in
  match kind with
  | "ctx" ->
    let* key = field "key" Json.to_str "ctx: missing key" in
    let* profs = field "profiles" Json.to_list "ctx: missing profiles" in
    let* profiles =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* p = profile_of_json j in
          Ok (p :: acc))
        (Ok []) profs
    in
    Ok (Ctx { x_key = key; x_profiles = Array.of_list (List.rev profiles); x_blob = tail })
  | "sess" ->
    let* id = field "id" Json.to_str "sess: missing id" in
    let* ctx = field "ctx" Json.to_str "sess: missing ctx" in
    let* bound = field "bound" Json.to_int "sess: missing bound" in
    let* runs = field "runs" Json.to_int "sess: missing runs" in
    let* dfss = field "dfss" Json.to_list "sess: missing dfss" in
    let* qs =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* l = Option.to_result ~none:"sess: bad dfs" (Json.to_list j) in
          let* q =
            List.fold_left
              (fun acc j ->
                let* acc = acc in
                let* n =
                  Option.to_result ~none:"sess: bad q" (Json.to_int j)
                in
                Ok (n :: acc))
              (Ok []) l
          in
          Ok (Array.of_list (List.rev q) :: acc))
        (Ok []) dfss
    in
    Ok
      (Sess
         {
           z_id = id;
           z_ctx = ctx;
           z_bound = bound;
           z_runs = runs;
           z_dfss = Array.of_list (List.rev qs);
         })
  | k -> Error ("record: unknown kind " ^ k)
