(* Standard base64 (RFC 4648, with padding). The replication stream is
   JSON text end to end, but a warm resync ships serialized pair-table
   blobs — raw bytes — inside it; this is the armor they cross in.
   Dependency-free like the rest of the tree. *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_char out alphabet.[(b lsr 6) land 63];
      Buffer.add_char out alphabet.[b land 63];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_char out alphabet.[(b lsr 6) land 63];
      Buffer.add_char out '='
    end
    else if i + 1 = n then begin
      let b = byte i lsl 16 in
      Buffer.add_char out alphabet.[(b lsr 18) land 63];
      Buffer.add_char out alphabet.[(b lsr 12) land 63];
      Buffer.add_string out "=="
    end
  in
  go 0;
  Buffer.contents out

let value_of =
  let table = Array.make 256 (-1) in
  String.iteri (fun i c -> table.(Char.code c) <- i) alphabet;
  fun c -> table.(Char.code c)

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then None
  else begin
    let out = Buffer.create (n / 4 * 3) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let c0 = value_of s.[!i]
      and c1 = value_of s.[!i + 1]
      and q2 = s.[!i + 2]
      and q3 = s.[!i + 3] in
      let last = !i + 4 = n in
      if c0 < 0 || c1 < 0 then ok := false
      else if q2 = '=' then
        (* "xx==": one byte; only legal at the very end *)
        if (not last) || q3 <> '=' then ok := false
        else Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)))
      else begin
        let c2 = value_of q2 in
        if c2 < 0 then ok := false
        else if q3 = '=' then
          (* "xxx=": two bytes; only legal at the very end *)
          if not last then ok := false
          else begin
            Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)));
            Buffer.add_char out
              (Char.chr (((c1 land 15) lsl 4) lor (c2 lsr 2)))
          end
        else begin
          let c3 = value_of q3 in
          if c3 < 0 then ok := false
          else begin
            Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)));
            Buffer.add_char out
              (Char.chr (((c1 land 15) lsl 4) lor (c2 lsr 2)));
            Buffer.add_char out (Char.chr (((c2 land 3) lsl 6) lor c3))
          end
        end
      end;
      i := !i + 4
    done;
    if !ok then Some (Buffer.contents out) else None
  end
