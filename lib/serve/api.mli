(** The typed request/response layer of the comparison service.

    [POST /compare] bodies decode into one {!compare_request} value — the
    single source of truth for defaults, validation, the comparison
    {!cache_key} and the {!to_config} mapping onto the core API. Handlers
    never look at raw JSON beyond this module. *)

type compare_request = {
  dataset : string;
  keywords : string;  (** normalized: tokenized and re-joined *)
  select : int list option;  (** 1-based ranks; [None] = first [top] *)
  top : int;
  size_bound : int;
  algorithm : Algorithm.t;
  threshold_pct : float;
  measure : Dod.measure;
  weights : (string * int) list;
      (** attribute-substring interestingness rules, sorted by pattern *)
  domains : int option;
}

val decode_compare : Json.t -> (compare_request, string) result
(** Decode a request body. Required: ["dataset"], ["q"]. Optional with
    defaults: ["select"], ["top"] (4), ["size_bound"] (8), ["algorithm"]
    (["multi-swap"]), ["threshold_pct"] (10.0), ["measure"] (["raw"]),
    ["weights"] (object of attribute-pattern → weight), ["domains"].
    Keywords are normalized via {!Xsact_search.Token.normalize_query}, so
    requests differing only in case/whitespace decode identically. *)

val normalize_keywords : string -> string
(** The keyword normalization used by {!decode_compare} — exposed so
    [GET /search] agrees with the cache key. *)

val json_of_compare : compare_request -> Json.t
(** Inverse of {!decode_compare}: [decode_compare (json_of_compare r) =
    Ok r]. The durability journal stores session requests in exactly the
    request-body format, so journal dumps read like curl transcripts. *)

val cache_key : compare_request -> string
(** Canonical string over every field that affects the response body.
    Equal requests (after normalization) have equal keys. *)

val context_key : compare_request -> string
(** Canonical string over the fields that determine the {!Dod.context}:
    dataset, keywords, selection, threshold, measure and weights — {e not}
    [size_bound], [algorithm] or [domains], none of which the pair tables
    depend on (the parallel build is bit-identical across domain counts).
    Requests sharing a context key can reuse one warm context across
    resizes and algorithm switches. *)

val to_config : compare_request -> Config.t

(** {1 Session mutation bodies}

    [POST /session/:id/apply] carries an op batch; [PATCH
    /session/:id/params] carries a bare {!params_patch}. Both decode here
    so handlers stay JSON-free. *)

type params_patch = {
  p_threshold : float option;
  p_measure : Dod.measure option;
  p_weights : (string * int) list option;
}
(** A partial update of the differentiation parameters: absent fields
    keep their current values. At least one field is always present
    (an empty patch fails to decode). *)

type session_op =
  | Op_add of int  (** rank to add *)
  | Op_remove of int  (** rank to remove *)
  | Op_size of int  (** new size bound *)
  | Op_params of params_patch

(** Decode failures split by blame: [Malformed] (HTTP 400) means the body
    itself is broken — wrong types, missing fields, an empty patch;
    [Unprocessable] (422) means a well-formed body asks for something the
    service rejects — an unknown measure or op name, a negative weight or
    threshold. *)
type op_error = Malformed of string | Unprocessable of string

val status_of_op_error : op_error -> int
val message_of_op_error : op_error -> string

val decode_params_patch : Json.t -> (params_patch, op_error) result
(** Decode ["threshold_pct"] / ["measure"] / ["weights"] — each optional,
    at least one required. Rejects negative thresholds, unknown measures
    and negative weights as [Unprocessable]. *)

val decode_ops : Json.t -> (session_op list, op_error) result
(** Decode the ["ops"] list of an apply body. Each element carries a
    string ["op"] of ["add"] (with ["rank"]), ["remove"] (with ["rank"]),
    ["size"] (with ["size_bound"]) or ["params"] (patch fields inline,
    next to ["op"]). The list must be non-empty. *)

val apply_patch : compare_request -> params_patch -> compare_request
(** Fold a patch into the request a session was created from, so the
    journaled recipe, the cache keys and the rebuilt config stay honest
    after a params change. *)

val status_of_error : Error.t -> int
(** [No_results] → 404; everything else (a well-formed request the corpus
    can't satisfy) → 422. Malformed JSON is the caller's 400. *)

(** {1 Response encoders} — deterministic field order, so cached bodies
    are byte-stable. *)

val error_body : string -> string
(** [{"error": msg}] *)

val json_of_results : (Search.result * string) list -> Json.t
(** Ranked search results with their display titles. *)

val json_of_table : Table.t -> Json.t
val json_of_comparison : Pipeline.comparison -> Json.t
