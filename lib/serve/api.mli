(** The typed request/response layer of the comparison service.

    [POST /compare] bodies decode into one {!compare_request} value — the
    single source of truth for defaults, validation, the {!canonical_key}
    normalization and the {!to_config} mapping onto the core API. Handlers
    never look at raw JSON beyond this module. *)

type compare_request = {
  dataset : string;
  keywords : string;  (** normalized: tokenized and re-joined *)
  select : int list option;  (** 1-based ranks; [None] = first [top] *)
  top : int;
  size_bound : int;
  algorithm : Algorithm.t;
  threshold_pct : float;
  measure : Dod.measure;
  weights : (string * int) list;
      (** attribute-substring interestingness rules, sorted by pattern *)
  domains : int option;
}

val decode_compare : Json.t -> (compare_request, string) result
(** Decode a request body. Required: ["dataset"], ["q"]. Optional with
    defaults: ["select"], ["top"] (4), ["size_bound"] (8), ["algorithm"]
    (["multi-swap"]), ["threshold_pct"] (10.0), ["measure"] (["raw"]),
    ["weights"] (object of attribute-pattern → weight), ["domains"].
    Keywords are normalized via {!Xsact_search.Token.normalize_query}, so
    requests differing only in case/whitespace decode identically. *)

val normalize_keywords : string -> string
(** The keyword normalization used by {!decode_compare} — exposed so
    [GET /search] agrees with the cache key. *)

val json_of_compare : compare_request -> Json.t
(** Inverse of {!decode_compare}: [decode_compare (json_of_compare r) =
    Ok r]. The durability journal stores session requests in exactly the
    request-body format, so journal dumps read like curl transcripts. *)

(** Key scopes for {!canonical_key}: [Full] covers every field that
    shapes the response body (the comparison cache); [Context] covers
    exactly the fields the {!Dod.context} is a function of — dataset,
    keywords, selection, threshold, measure, weights — and {e not}
    [size_bound], [algorithm] or [domains], none of which the pair tables
    depend on (the parallel build is bit-identical across domain counts). *)
type key_scope = Full | Context

val canonical_key : scope:key_scope -> compare_request -> string
(** The one canonical request-normalization routine. Field order is fixed
    and pinned by a golden test:
    [ds, q, sel, [k, alg,] thr, measure, w [, domains]] — the bracketed
    fields appear only at [Full] scope. [sel] is the explicit rank list
    ("1,3,4") or ["top<k>"] when the request selects by prefix. Equal
    requests (after keyword normalization and weight-rule sorting) have
    equal keys; requests sharing a [Context] key can share one physical
    warm context across resizes and algorithm switches. *)

val to_config : compare_request -> Config.t

(** {1 Session mutation bodies}

    [POST /session/:id/apply] carries an op batch; [PATCH
    /session/:id/params] carries a bare {!params_patch}. Both decode here
    so handlers stay JSON-free. *)

type params_patch = {
  p_threshold : float option;
  p_measure : Dod.measure option;
  p_weights : (string * int) list option;
}
(** A partial update of the differentiation parameters: absent fields
    keep their current values. At least one field is always present
    (an empty patch fails to decode). *)

type session_op =
  | Op_add of int  (** rank to add *)
  | Op_remove of int  (** rank to remove *)
  | Op_size of int  (** new size bound *)
  | Op_params of params_patch

(** Decode failures split by blame: [Malformed] (HTTP 400) means the body
    itself is broken — wrong types, missing fields, an empty patch;
    [Unprocessable] (422) means a well-formed body asks for something the
    service rejects — an unknown measure or op name, a negative weight or
    threshold. *)
type op_error = Malformed of string | Unprocessable of string

val status_of_op_error : op_error -> int
val message_of_op_error : op_error -> string

val code_of_op_error : op_error -> string
(** ["malformed"] / ["unprocessable"] — the machine-readable code of the
    uniform error envelope (see {!error_body}). *)

val decode_params_patch : Json.t -> (params_patch, op_error) result
(** Decode ["threshold_pct"] / ["measure"] / ["weights"] — each optional,
    at least one required. Rejects negative thresholds, unknown measures
    and negative weights as [Unprocessable]. *)

val decode_ops : Json.t -> (session_op list, op_error) result
(** Decode the ["ops"] list of an apply body. Each element carries a
    string ["op"] of ["add"] (with ["rank"]), ["remove"] (with ["rank"]),
    ["size"] (with ["size_bound"]) or ["params"] (patch fields inline,
    next to ["op"]). The list must be non-empty. *)

val decode_single_op : op:string -> Json.t -> (session_op, op_error) result
(** Decode one op of the named kind from a bare body (no ["op"] member —
    the kind comes from the route). [POST /session/:id/add] with
    [{"rank": 4}] is exactly the ["ops"] element [{"op": "add", "rank": 4}];
    the single-op endpoints are wrappers over the apply path. *)

val translate_ops :
  request:compare_request ->
  ranks:int list ->
  available:int ->
  profile_of:(int -> Result_profile.t) ->
  config_of:(compare_request -> Config.t) ->
  session_op list ->
  ( Session.op list * int list * compare_request,
    [ `Op of op_error | `Core of Error.t ] )
  result
(** The single rank-addressing/validation routine behind every mutation
    endpoint. Translates rank-addressed {!session_op}s into
    index-addressed {!Session.op}s against the {e evolving} selection
    [ranks] (of a comparison over [available] ranked results), folding
    params patches into the evolving [request]. Returns the session ops,
    the post-batch selection and the post-batch request. Rejects a
    duplicate or absent rank as [`Op Unprocessable] (422) and an
    out-of-range rank as [`Core Rank_out_of_range]; any rejection leaves
    the caller's state untouched (nothing is applied here).
    [profile_of rank] extracts the profile of a rank already checked to
    be in range; [config_of] maps the evolving request to the config
    whose params/weighting a [Reparams] op carries. *)

val apply_patch : compare_request -> params_patch -> compare_request
(** Fold a patch into the request a session was created from, so the
    journaled recipe, the cache keys and the rebuilt config stay honest
    after a params change. *)

val status_of_error : Error.t -> int
(** [No_results] → 404; everything else (a well-formed request the corpus
    can't satisfy) → 422. Malformed JSON is the caller's 400. *)

val code_of_error : Error.t -> string
(** The stable machine-readable code of each {!Error.t} variant:
    ["no_results"], ["too_few_selected"], ["rank_out_of_range"],
    ["index_out_of_range"], ["bound_too_small"],
    ["unsupported_algorithm"], ["timeout"]. Clients branch on codes;
    message text is free to change. *)

(** {1 Response encoders} — deterministic field order, so cached bodies
    are byte-stable. *)

val error_body : code:string -> string -> string
(** The uniform error envelope every endpoint answers errors with:
    [{"error": {"code": code, "message": msg}}]. Codes are
    {!code_of_error} / {!code_of_op_error} values for typed errors, and a
    fixed serve-level vocabulary otherwise ("bad_request",
    "unknown_dataset", "unknown_session", "not_found",
    "method_not_allowed", "unavailable", "overloaded", "refused",
    "internal"). HTTP statuses are unchanged by the envelope. *)

val json_of_results : (Search.result * string) list -> Json.t
(** Ranked search results with their display titles. *)

val json_of_table : Table.t -> Json.t
val json_of_comparison : Pipeline.comparison -> Json.t
