module Journal = Xsact_persist.Journal
module Failpoint = Xsact_util.Failpoint
module Prng = Xsact_util.Prng

(* ---- Wire format --------------------------------------------------------
   One JSON object per HTTP chunk, newline-terminated (x-ndjson):

     {"repl":"resync","boot":B,"gen":G,"epoch":E,"offset":O,"records":N,
      "digest":D,"payloads":[...],"warm":[...]}   full-state handover
     {"repl":"rec","o":O,"p":P}             one journal record; O = the
                                            follower's cursor after it
     {"repl":"hb","gen":G,"epoch":E,"records":N,"digest":D}   liveness +
                                            lag + divergence probe

   [gen] is the primary's compaction generation (validates byte offsets);
   [epoch] is its durable fencing epoch (validates who is primary at
   all). Journal payloads are JSON one-liners (text), so they embed in
   JSON strings safely; the optional [warm] section of a resync carries
   base64-armored context-snapshot records, so binary still never
   crosses the stream raw. *)

let json_of_resync ~epoch ~warm (r : Durability.resync) =
  Json.Obj
    [
      ("repl", Json.String "resync");
      ("boot", Json.String r.Durability.r_boot);
      ("gen", Json.Int r.Durability.r_gen);
      ("epoch", Json.Int epoch);
      ("offset", Json.Int r.Durability.r_offset);
      ("records", Json.Int r.Durability.r_records);
      ("digest", Json.Int r.Durability.r_digest);
      ( "payloads",
        Json.List (List.map (fun p -> Json.String p) r.Durability.r_payloads)
      );
      ("warm", Json.List (List.map (fun w -> Json.String w) warm));
    ]

(* ---- Socket helpers ------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* ---- Primary: the stream ------------------------------------------------- *)

let poll_interval_s = 0.045
let heartbeat_interval_s = 0.2

let stream_head =
  "HTTP/1.1 200 OK\r\n\
   Content-Type: application/x-ndjson\r\n\
   Transfer-Encoding: chunked\r\n\
   Connection: close\r\n\
   \r\n"

let send_chunk fd line =
  let data = line ^ "\n" in
  write_all fd (Printf.sprintf "%x\r\n%s\r\n" (String.length data) data)

(* Serve one follower over [fd] until it disconnects or [stopping ()].
   The caller already consumed the request; this writes the whole
   response, chunk by chunk, as journal records are acked. [boot], [gen]
   and [from] are the follower's cursor (absent on a cold connect): when
   they name a live position in our current journal the stream resumes
   there, otherwise it opens with a full resync. [warm] supplies the
   base64-armored context-snapshot records a resync ships (empty when
   warm resyncs are disabled). *)
let serve_stream ~durability:d ~fd ?boot ?gen ?from ?(warm = fun () -> [])
    ~stopping () =
  write_all fd stream_head;
  (* (gen, offset) the next record must continue from; [None] forces a
     resync. The boot id is checked once — ours never changes. *)
  let cursor =
    ref
      (match (boot, gen, from) with
      | Some b, Some g, Some o
        when b = Durability.boot_id d
             && g = Durability.gen d
             && o >= 0
             && o <= Durability.journal_offset d ->
        Some (g, o)
      | _ -> None)
  in
  let last_hb = ref 0. in
  let send_hb () =
    last_hb := Unix.gettimeofday ();
    send_chunk fd
      (Json.to_string
         (Json.Obj
            [
              ("repl", Json.String "hb");
              ("gen", Json.Int (Durability.gen d));
              ("epoch", Json.Int (Durability.fence_epoch d));
              ("records", Json.Int (Durability.since_snapshot d));
              ("digest", Json.Int (Durability.digest d));
            ]))
  in
  let send_resync () =
    let r = Durability.resync d in
    send_chunk fd
      (Json.to_string
         (json_of_resync ~epoch:(Durability.fence_epoch d) ~warm:(warm ()) r));
    cursor := Some (r.Durability.r_gen, r.Durability.r_offset);
    last_hb := Unix.gettimeofday ()
  in
  (try
     if !cursor = None then send_resync () else send_hb ();
     while not (stopping ()) do
       (match !cursor with
       | None -> send_resync ()
       | Some (g, off) ->
         if Durability.gen d <> g then
           (* Compaction invalidated every offset; hand over fresh state.
              The follower's LWW fold makes the records it already
              applied from the dying generation harmless. *)
           send_resync ()
         else
           let tail =
             Journal.read_from ~offset:off (Durability.journal_file d)
           in
           if tail.Journal.torn then send_resync ()
           else begin
             let off =
               List.fold_left
                 (fun off p ->
                   let off = off + Journal.header_bytes + String.length p in
                   send_chunk fd
                     (Json.to_string
                        (Json.Obj
                           [
                             ("repl", Json.String "rec");
                             ("o", Json.Int off);
                             ("p", Json.String p);
                           ]));
                   off)
                 off tail.Journal.records
             in
             cursor := Some (g, off);
             if tail.Journal.records = [] then Thread.delay poll_interval_s
           end);
       if Unix.gettimeofday () -. !last_hb >= heartbeat_interval_s then
         send_hb ()
     done;
     (* Clean end-of-stream so a follower that outlives us sees EOF fast. *)
     write_all fd "0\r\n\r\n"
   with Unix.Unix_error _ | Sys_error _ -> (* follower gone *) ());
  ()

(* ---- Follower: buffered chunked reader ----------------------------------- *)

type rdr = { fd : Unix.file_descr; mutable pending : string; tmp : Bytes.t }

let reader fd = { fd; pending = ""; tmp = Bytes.create 65536 }

let refill r =
  let n = Unix.read r.fd r.tmp 0 (Bytes.length r.tmp) in
  if n = 0 then raise End_of_file;
  r.pending <- r.pending ^ Bytes.sub_string r.tmp 0 n

let rec read_line r =
  match String.index_opt r.pending '\n' with
  | Some i ->
    let line = String.sub r.pending 0 i in
    r.pending <-
      String.sub r.pending (i + 1) (String.length r.pending - i - 1);
    if String.length line > 0 && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  | None ->
    refill r;
    read_line r

let rec read_exact r n =
  if String.length r.pending >= n then begin
    let s = String.sub r.pending 0 n in
    r.pending <- String.sub r.pending n (String.length r.pending - n);
    s
  end
  else begin
    refill r;
    read_exact r n
  end

(* ---- Follower: the client ------------------------------------------------ *)

type client = {
  (* the current subscription target — [None] until discovery finds one;
     mutated only from the client thread (and pre-start) *)
  mutable primary : (string * int) option;
  durability : Durability.t;
  my_epoch : unit -> int;  (* this node's durable fencing epoch *)
  (* [on_epoch primary e]: the stream reported the primary's fencing
     epoch. Returns [false] when that primary is stale (its epoch is
     below ours) — the connection is abandoned and discovery runs. *)
  on_epoch : string * int -> int -> bool;
  (* walk the peer list for the current primary; [None] = nobody found.
     Consulted when there is no target, and after [probe_after_s] of
     silence — never on a healthy stream. *)
  probe : unit -> (string * int) option;
  on_repoint : (string * int) -> unit;  (* the target changed *)
  apply : string -> unit;  (* one replicated journal payload *)
  reset : payloads:string list -> warm:string list -> unit;
      (* resync: full payload list (meta first) + base64 warm records *)
  takeover_after : float option;
  on_lost : (unit -> unit) option;
  stop : bool Atomic.t;
  lag : int Atomic.t;
  connected : bool Atomic.t;
  applied : int Atomic.t;
  resyncs : int Atomic.t;
  divergences : int Atomic.t;
  repoints : int Atomic.t;
  prng : Prng.t;  (* reconnect jitter; client thread only *)
  sock_mutex : Mutex.t;
  mutable sock : Unix.file_descr option;
  mutable thread : Thread.t option;
  (* replication cursor: primary's boot id, compaction gen, byte offset *)
  mutable cursor : (string * int * int) option;
  mutable applied_in_gen : int;
  (* last moment a valid primary demonstrably answered — the takeover and
     discovery clock. A stale primary's answers do not refresh it. *)
  mutable last_contact : float;
}

let connect_timeout_s = 1.0
let read_timeout_s = 3.0
let backoff_min_s = 0.05
let backoff_max_s = 1.0

(* silent this long → walk the peers for a (possibly new) primary *)
let probe_after_s = 0.75

exception Reconnect
exception Stale_primary

let connect ~host ~port c =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO connect_timeout_s;
     Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  ignore c;
  fd

let request_line ~host ~port c =
  let cursorq =
    match c.cursor with
    | Some (boot, gen, offset) ->
      Printf.sprintf "?boot=%s&gen=%d&from=%d&epoch=%d" boot gen offset
        (c.my_epoch ())
    | None -> Printf.sprintf "?epoch=%d" (c.my_epoch ())
  in
  Printf.sprintf
    "GET /v1/replicate%s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
    cursorq host port

let check_epoch c json =
  let epoch =
    Option.value ~default:0
      (Option.bind (Json.member "epoch" json) Json.to_int)
  in
  match c.primary with
  | Some p -> if not (c.on_epoch p epoch) then raise Stale_primary
  | None -> ()

let handle_message c line =
  match Json.of_string line with
  | Error _ -> raise Reconnect
  | Ok json -> (
    let mem name conv = Option.bind (Json.member name json) conv in
    match mem "repl" Json.to_str with
    | Some "resync" -> (
      check_epoch c json;
      match
        ( mem "boot" Json.to_str,
          mem "gen" Json.to_int,
          mem "offset" Json.to_int,
          mem "records" Json.to_int,
          mem "payloads" Json.to_list )
      with
      | Some boot, Some gen, Some offset, Some records, Some payloads ->
        let payloads = List.filter_map Json.to_str payloads in
        let warm =
          match mem "warm" Json.to_list with
          | Some ws -> List.filter_map Json.to_str ws
          | None -> []
        in
        c.reset ~payloads ~warm;
        c.cursor <- Some (boot, gen, offset);
        c.applied_in_gen <- records;
        Atomic.set c.lag 0;
        Atomic.incr c.resyncs
      | _ -> raise Reconnect)
    | Some "rec" -> (
      match (mem "o" Json.to_int, mem "p" Json.to_str) with
      | Some o, Some p ->
        (match c.cursor with
        | None -> raise Reconnect (* records before any resync/cursor *)
        | Some (boot, gen, _) ->
          (* [repl.apply.corrupt]: swallow the record but advance the
             cursor — manufactured divergence the digest probe must
             catch. *)
          (try
             Failpoint.hit "repl.apply.corrupt";
             c.apply p
           with Failpoint.Injected _ -> ());
          c.cursor <- Some (boot, gen, o);
          c.applied_in_gen <- c.applied_in_gen + 1;
          Atomic.incr c.applied;
          if Atomic.get c.lag > 0 then Atomic.decr c.lag)
      | _ -> raise Reconnect)
    | Some "hb" -> (
      check_epoch c json;
      match (mem "gen" Json.to_int, mem "records" Json.to_int) with
      | Some gen, Some records -> (
        match c.cursor with
        | Some (_, g, _) when g = gen ->
          Atomic.set c.lag (max 0 (records - c.applied_in_gen));
          (match mem "digest" Json.to_int with
          | Some digest
            when records = c.applied_in_gen
                 && digest <> Durability.digest c.durability ->
            (* We believe we are caught up yet our fold disagrees with
               the primary's: a record was lost or misapplied. Drop the
               cursor and reconnect — the forced resync heals. *)
            Atomic.incr c.divergences;
            c.cursor <- None;
            raise Reconnect
          | _ -> ())
        | _ -> (* stale gen: the stream's resync is coming *) ())
      | _ -> raise Reconnect)
    | _ -> raise Reconnect)

(* One connection: send the request, parse the response head, then
   consume chunks until EOF/timeout/divergence. Every parsed message from
   a valid primary refreshes the takeover clock — merely connecting does
   not, so a live-but-stale primary cannot pin us to it. *)
let run_connection ~host ~port c fd =
  write_all fd (request_line ~host ~port c);
  let r = reader fd in
  let status = read_line r in
  if not (String.length status >= 12 && String.sub status 9 3 = "200") then
    raise Reconnect;
  let rec skip_headers () = if read_line r <> "" then skip_headers () in
  skip_headers ();
  Atomic.set c.connected true;
  let rec chunks () =
    if Atomic.get c.stop then ()
    else
      let size = int_of_string ("0x" ^ read_line r) in
      if size = 0 then ()
      else begin
        let data = read_exact r size in
        ignore (read_exact r 2);
        (* one message per chunk, newline-terminated *)
        String.split_on_char '\n' data
        |> List.iter (fun line ->
               if line <> "" then begin
                 handle_message c line;
                 c.last_contact <- Unix.gettimeofday ()
               end);
        chunks ()
      end
  in
  chunks ()

(* Jittered sleep: 0.5–1.5× the nominal delay, so N followers losing one
   primary never reconnect (or re-probe) in lockstep. *)
let jittered c d = d *. (0.5 +. Prng.float c.prng 1.0)

let set_primary c p =
  if c.primary <> Some p then begin
    c.primary <- Some p;
    (* the cursor names the old primary's journal — resync from the new *)
    c.cursor <- None;
    Atomic.incr c.repoints;
    c.on_repoint p
  end

let client_loop c =
  let backoff = ref backoff_min_s in
  let lost = ref false in
  while (not (Atomic.get c.stop)) && not !lost do
    (* Discovery: no target yet, or the current one silent past the probe
       threshold — walk the peers; the highest live epoch wins. *)
    (if
       c.primary = None
       || Unix.gettimeofday () -. c.last_contact >= probe_after_s
     then
       match c.probe () with
       | Some p ->
         if c.primary <> Some p then backoff := backoff_min_s;
         set_primary c p
       | None -> ());
    let outcome =
      match c.primary with
      | None -> `Down
      | Some (host, port) -> (
        try
          let fd = connect ~host ~port c in
          Mutex.lock c.sock_mutex;
          c.sock <- Some fd;
          Mutex.unlock c.sock_mutex;
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock c.sock_mutex;
              c.sock <- None;
              Mutex.unlock c.sock_mutex;
              Atomic.set c.connected false;
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> run_connection ~host ~port c fd);
          `Ok
        with
        | Stale_primary -> `Stale
        | Reconnect | End_of_file | Unix.Unix_error _ | Sys_error _
        | Failure _ ->
          `Down)
    in
    (match outcome with
    | `Ok ->
      (* clean EOF (primary stopped deliberately) counts as contact *)
      c.last_contact <- Unix.gettimeofday ();
      backoff := backoff_min_s
    | `Stale ->
      (* answered, but superseded: probe immediately on the next spin *)
      c.last_contact <-
        Float.min c.last_contact (Unix.gettimeofday () -. probe_after_s)
    | `Down -> ());
    if not (Atomic.get c.stop) then begin
      (match c.takeover_after with
      | Some after
        when Unix.gettimeofday () -. c.last_contact >= after
             && c.on_lost <> None ->
        lost := true
      | _ -> ());
      if not !lost then begin
        Thread.delay (jittered c !backoff);
        backoff := Float.min backoff_max_s (!backoff *. 2.)
      end
    end
  done;
  if !lost && not (Atomic.get c.stop) then
    match c.on_lost with Some f -> f () | None -> ()

let start_client ?primary ~durability ~my_epoch ~on_epoch
    ?(probe = fun () -> None) ?(on_repoint = fun _ -> ()) ~apply ~reset
    ?takeover_after ?on_lost () =
  let c =
    {
      primary;
      durability;
      my_epoch;
      on_epoch;
      probe;
      on_repoint;
      apply;
      reset;
      takeover_after;
      on_lost;
      stop = Atomic.make false;
      lag = Atomic.make 0;
      connected = Atomic.make false;
      applied = Atomic.make 0;
      resyncs = Atomic.make 0;
      divergences = Atomic.make 0;
      repoints = Atomic.make 0;
      prng =
        Prng.of_int
          (Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), "repl"));
      sock_mutex = Mutex.create ();
      sock = None;
      thread = None;
      cursor = None;
      applied_in_gen = 0;
      last_contact = Unix.gettimeofday ();
    }
  in
  c.thread <- Some (Thread.create client_loop c);
  c

let stop_client ?(join = true) c =
  Atomic.set c.stop true;
  (* Unblock a read parked in RCVTIMEO. *)
  Mutex.lock c.sock_mutex;
  (match c.sock with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
  | None -> ());
  Mutex.unlock c.sock_mutex;
  if join then
    match c.thread with Some t -> Thread.join t | None -> ()

let lag_records c = Atomic.get c.lag
let connected c = Atomic.get c.connected
let applied_records c = Atomic.get c.applied
let resyncs c = Atomic.get c.resyncs
let divergences c = Atomic.get c.divergences
let repoints c = Atomic.get c.repoints
let current_primary c = c.primary
