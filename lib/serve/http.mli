(** Dependency-free HTTP/1.1 — just enough of RFC 9112 for the JSON API.

    Requests are read from a buffered channel (request line, headers, then
    a [Content-Length] body); responses always carry [Content-Length] so
    connections can be kept alive. No chunked transfer, no TLS — the
    daemon fronts a trusted demo/bench workload, not the open internet. *)

type request = {
  meth : string;  (** verb, uppercased: ["GET"], ["POST"], ... *)
  target : string;  (** the raw request target, e.g. ["/search?q=gps"] *)
  path : string list;
      (** decoded, non-empty path segments: ["/session/s1"] is
          [["session"; "s1"]]; ["/"] is [[]] *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val wants_close : request -> bool
(** [Connection: close] requested (HTTP/1.1 defaults to keep-alive). *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;  (** extra headers *)
  resp_body : string;
}

val response : ?headers:(string * string) list -> status:int -> string -> response
(** [response ~status body] with the standard reason phrase.
    [Content-Type: application/json] and [Content-Length] are added at
    write time; [headers] adds extras (e.g. [X-Cache]). *)

val reason_phrase : int -> string

(** {1 Wire functions} *)

val max_body_bytes : int
(** Largest accepted [Content-Length] (8 MiB); larger is refused 413. *)

val max_headers : int
(** Most header lines accepted per request (64); more is refused 431. *)

val max_header_line_bytes : int
(** Longest accepted request/header line (8 KiB). A longer line is
    refused 431 after buffering at most this bound — a client streaming
    megabytes of header never gets them read into memory. *)

val read_request :
  Stdlib.in_channel ->
  (request, [ `Eof | `Bad of string | `Refuse of int * string ]) result
(** Read one request. [`Eof] when the peer closed before a request line
    (normal keep-alive shutdown); [`Bad] (answer 400) on a malformed
    request; [`Refuse (status, msg)] when a well-formed request exceeds a
    protocol bound — 431 past {!max_headers}/{!max_header_line_bytes},
    413 past {!max_body_bytes}. After either error the connection must be
    closed: request framing is lost. *)

val write_response :
  Stdlib.out_channel -> ?keep_alive:bool -> response -> unit
(** Serialize and flush. [keep_alive] (default [true]) picks the
    [Connection] header. *)

(** {1 Pieces exposed for unit tests} *)

val parse_request_line : string -> (string * string, string) result
(** ["GET /x HTTP/1.1"] → [Ok ("GET", "/x")]. *)

val parse_header_line : string -> (string * string, string) result
(** ["Content-Type: text/a"] → [Ok ("content-type", "text/a")]. *)

val split_target : string -> string list * (string * string) list
(** Split a request target into decoded path segments and query params. *)

val url_decode : string -> string
(** Percent- and [+]-decoding (malformed escapes pass through verbatim). *)

(** {1 A minimal client} (tests and benches) *)

val request :
  host:string ->
  port:int ->
  ?meth:string ->
  ?body:string ->
  string ->
  int * (string * string) list * string
(** [request ~host ~port "/path"] opens a connection, sends one request
    ([meth] defaults to ["GET"], or ["POST"] when [body] is given), and
    returns [(status, headers, body)]. @raise Failure on a malformed
    response, [Unix.Unix_error] on connection failure. *)

val with_connection :
  host:string ->
  port:int ->
  ((?meth:string -> ?body:string -> string -> int * (string * string) list * string) -> 'a) ->
  'a
(** Keep-alive variant: [with_connection ~host ~port f] opens one
    connection and passes [f] a function issuing sequential requests on
    it — what the throughput bench uses. *)

val send_request :
  Stdlib.out_channel -> host:string -> ?meth:string -> ?body:string ->
  string -> unit
(** Write one request on an already-connected channel and flush; [meth]
    defaults to ["GET"], or ["POST"] when [body] is given. For tests that
    need to control connection lifetime themselves. *)

val read_response : Stdlib.in_channel -> int * (string * string) list * string
(** Read one response ([(status, headers, body)]).
    @raise Failure on a malformed response. *)
