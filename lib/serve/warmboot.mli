(** Context-snapshot record codec — the warm-boot format.

    A context snapshot ([contexts] in the state directory, framed by
    {!Xsact_persist.Snapshot}) holds two record kinds: one per distinct
    interned context — its canonical key, the profile bags it was built
    over, and the {!Dod.serialize_context} blob — and one per session —
    its id, the key of the context it shares, its size bound and its DFS
    q-vectors. On boot the server deserializes each context once,
    re-interns it, and {!Session.restore}s every session over the shared
    copy: k sessions over one corpus cost one deserialization, zero
    context builds.

    Records are a JSON header line; a context record carries the binary
    blob verbatim after the first ['\n'] (binary never enters JSON).
    Everything a record references is validated downstream — the blob by
    {!Dod.deserialize_context}, q-vectors by {!Dfs.of_q_array}, the whole
    assembly by {!Session.restore} — so [decode] only checks shape. *)

type ctx = {
  x_key : string;  (** canonical context-scope request key *)
  x_profiles : Result_profile.t array;
  x_blob : string;  (** {!Dod.serialize_context} output *)
}

type sess = {
  z_id : string;
  z_ctx : string;  (** [x_key] of the context this session shares *)
  z_bound : int;
  z_runs : int;  (** {!Session.stats} at snapshot time — restored so a
                     warm-booted session is indistinguishable from the
                     live one it resumes *)
  z_dfss : int array array;  (** per-profile DFS q-vectors *)
}

type record = Ctx of ctx | Sess of sess

val encode : record -> string

val decode : string -> (record, string) result
(** Shape errors only — a structurally valid record can still fail
    downstream validation (and then falls back to a cold rebuild). *)
