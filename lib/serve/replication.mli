(** Journal shipping: a primary streams its durability journal to a live
    follower, which applies every record through the same replay path
    recovery uses — so the follower is a warm, read-serving replica whose
    state directory is always a valid recovery image.

    {b Wire protocol.} The follower issues
    [GET /v1/replicate?boot=B&epoch=E&from=O] (cursor params absent on a
    cold connect) and the primary answers with a chunked
    [application/x-ndjson] stream, one JSON message per chunk:

    - [{"repl":"resync",...}] — full state handover: snapshot-shaped
      payloads plus the cursor (primary boot id, compaction epoch,
      journal byte offset) that makes the subsequent record stream a
      valid continuation, and the state digest;
    - [{"repl":"rec","o":O,"p":P}] — one journal record, verbatim; [O]
      is the follower's byte cursor {e after} applying it;
    - [{"repl":"hb","epoch":E,"records":N,"digest":D}] — heartbeat every
      ~0.2 s: liveness, the lag baseline ([N] = primary records since its
      last compaction) and the divergence probe.

    The stream self-heals: a stale or absent cursor, a compaction on the
    primary (epoch bump), or a torn read each downgrade to a fresh
    resync. The follower detects {e divergence} — it believes itself
    caught up ([records = applied]) yet its {!Durability.digest}
    disagrees with the heartbeat's — counts it, drops its cursor and
    reconnects, forcing a healing resync.

    {b Failpoints}: [repl.apply.corrupt] (follower) swallows a record
    while advancing the cursor — manufactured divergence for tests. *)

val serve_stream :
  durability:Durability.t ->
  fd:Unix.file_descr ->
  ?boot:string ->
  ?epoch:int ->
  ?from:int ->
  stopping:(unit -> bool) ->
  unit ->
  unit
(** Primary side. Takes over [fd] after the request was read and writes
    the entire chunked response, polling the journal file (~45 ms) and
    streaming records as they are acked, until the follower disconnects
    or [stopping ()] — never raises. The caller closes [fd]. *)

type client

val start_client :
  host:string ->
  port:int ->
  durability:Durability.t ->
  apply:(string -> unit) ->
  reset:(string list -> unit) ->
  ?takeover_after:float ->
  ?on_lost:(unit -> unit) ->
  unit ->
  client
(** Follower side: a background thread that connects (reconnecting with
    capped exponential backoff, 50 ms → 1 s), and drives [apply] with
    each replicated journal payload and [reset] with each resync's full
    payload list — both called from the replication thread; they own
    journaling the data locally ({!Durability.append_replicated} /
    {!Durability.install_resync}) and mirroring it into live state.
    With [takeover_after], a primary silent for that many seconds fires
    [on_lost] (once, from the replication thread, which then exits) —
    the server's auto-promotion hook, which must {e not} join this
    thread. *)

val stop_client : ?join:bool -> client -> unit
(** Idempotent; unblocks any parked read. [join] (default true) waits for
    the thread — pass [false] from [on_lost] itself. *)

val lag_records : client -> int
(** Primary records (since its last compaction) not yet applied here —
    0 when caught up, as reported by [/ready]. *)

val connected : client -> bool

val applied_records : client -> int

val resyncs : client -> int

val divergences : client -> int
