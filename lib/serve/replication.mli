(** Journal shipping: a primary streams its durability journal to live
    followers, which apply every record through the same replay path
    recovery uses — so a follower is a warm, read-serving replica whose
    state directory is always a valid recovery image.

    {b Wire protocol.} The follower issues
    [GET /v1/replicate?boot=B&gen=G&from=O&epoch=E] (cursor params
    absent on a cold connect; [epoch] — the {e follower's} durable
    fencing epoch — always present, so a superseded primary learns of
    its fencing from its own subscribers) and the primary answers with a
    chunked [application/x-ndjson] stream, one JSON message per chunk:

    - [{"repl":"resync",...}] — full state handover: snapshot-shaped
      payloads plus the cursor (primary boot id, compaction gen, journal
      byte offset) that makes the subsequent record stream a valid
      continuation, the state digest, the primary's fencing epoch, and
      an optional [warm] list of base64-armored context-snapshot records
      ({!Warmboot} codec) so the follower boots its caches warm;
    - [{"repl":"rec","o":O,"p":P}] — one journal record, verbatim; [O]
      is the follower's byte cursor {e after} applying it;
    - [{"repl":"hb","gen":G,"epoch":E,"records":N,"digest":D}] —
      heartbeat every ~0.2 s: liveness, the lag baseline ([N] = primary
      records since its last compaction), the divergence probe, and the
      fencing epoch.

    The stream self-heals: a stale or absent cursor, a compaction on the
    primary (gen bump), or a torn read each downgrade to a fresh resync.
    The follower detects {e divergence} — it believes itself caught up
    ([records = applied]) yet its {!Durability.digest} disagrees with
    the heartbeat's — counts it, drops its cursor and reconnects,
    forcing a healing resync.

    {b Failover.} The client is re-pointable: when its primary goes
    silent past a probe threshold (~0.75 s) or answers with a fencing
    epoch below this node's own ([on_epoch] returns false), it walks the
    peer list ([probe]) for the current primary and re-subscribes there
    without losing its applied tail (same-primary reconnects keep the
    cursor; a changed primary drops it, forcing a resync). All reconnect
    and probe delays are jittered (0.5–1.5×) so a fleet of followers
    losing one primary never stampedes in lockstep.

    {b Failpoints}: [repl.apply.corrupt] (follower) swallows a record
    while advancing the cursor — manufactured divergence for tests. *)

val serve_stream :
  durability:Durability.t ->
  fd:Unix.file_descr ->
  ?boot:string ->
  ?gen:int ->
  ?from:int ->
  ?warm:(unit -> string list) ->
  stopping:(unit -> bool) ->
  unit ->
  unit
(** Primary side. Takes over [fd] after the request was read and writes
    the entire chunked response, polling the journal file (~45 ms) and
    streaming records as they are acked, until the follower disconnects
    or [stopping ()] — never raises. [warm] is called at each resync for
    the base64-armored context-snapshot records to ship (default none).
    The caller closes [fd]. *)

type client

val start_client :
  ?primary:string * int ->
  durability:Durability.t ->
  my_epoch:(unit -> int) ->
  on_epoch:(string * int -> int -> bool) ->
  ?probe:(unit -> (string * int) option) ->
  ?on_repoint:(string * int -> unit) ->
  apply:(string -> unit) ->
  reset:(payloads:string list -> warm:string list -> unit) ->
  ?takeover_after:float ->
  ?on_lost:(unit -> unit) ->
  unit ->
  client
(** Follower side: a background thread that connects to [primary]
    (discovering one via [probe] when absent or lost), reconnecting with
    capped jittered exponential backoff (50 ms → 1 s), and drives
    [apply] with each replicated journal payload and [reset] with each
    resync's full payload list plus its warm records — both called from
    the replication thread; they own journaling the data locally
    ({!Durability.append_replicated} / {!Durability.install_resync}) and
    mirroring it into live state.

    [my_epoch] supplies this node's durable fencing epoch for the
    subscribe query. [on_epoch p e] is called with every epoch-bearing
    message from primary [p]: return [false] to declare that primary
    stale (the connection is abandoned and discovery runs); returning
    [true] may also durably adopt [e]. [on_repoint] fires whenever the
    subscription target changes (including the first discovery).

    Only messages from a valid primary (and a clean end-of-stream)
    refresh the liveness clock — merely connecting does not, so a
    live-but-stale primary cannot suppress takeover. With
    [takeover_after], a primary silent for that many seconds fires
    [on_lost] (once, from the replication thread, which then exits) —
    the server's auto-promotion hook, which must {e not} join this
    thread. *)

val stop_client : ?join:bool -> client -> unit
(** Idempotent; unblocks any parked read. [join] (default true) waits for
    the thread — pass [false] from [on_lost] itself. *)

val lag_records : client -> int
(** Primary records (since its last compaction) not yet applied here —
    0 when caught up, as reported by [/ready]. *)

val connected : client -> bool

val applied_records : client -> int

val resyncs : client -> int

val divergences : client -> int

val repoints : client -> int
(** Times the subscription target changed (first discovery included). *)

val current_primary : client -> (string * int) option
(** The primary currently subscribed to (or targeted), if any — what the
    follower's 503 hint and [/ready] report. Read from other threads;
    single-word read, safely racy. *)
