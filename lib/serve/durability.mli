(** The serve-side durability glue: session mutations → journal ops →
    snapshots, and their replay on boot.

    Sits between {!Session_store} (which fires a typed event per
    mutation) and {!Xsact_persist.Store} (which frames, checksums and
    fsyncs opaque payloads). Ops are JSON one-liners:

    {v
      {"op":"create","id":"s1","t":1723.4,"entry":{ ...session... }}
      {"op":"add",   "id":"s1","t":1724.0,"entry":{ ...session... }}
      {"op":"remove" | "size" | "set", ... same shape ... }
      {"op":"delete","id":"s1"}      explicit DELETE /session/:id
      {"op":"expire","id":"s1"}      TTL expiry
      {"op":"evict", "id":"s1"}      LRU capacity eviction
    v}

    Every state-carrying op embeds the session's {e full} durable state
    (dataset, originating request, current ranks and size bound), so
    replay is a trivial last-writer-wins fold over upserts and deletes —
    idempotent by construction, which is what makes the
    snapshot-then-truncate compaction ordering safe (see
    {!Xsact_persist.Store}).

    The module keeps an in-memory mirror of that fold. Compaction
    serializes the mirror instead of re-reading the session store, so it
    can run inline inside the store's event hook (which holds the store
    lock) without lock-order inversion. Lock order is strictly
    [Session_store.mutex → Durability.mutex]; nothing here calls back
    into the session store. *)

type t

type recovered = {
  entries : (string * float * Json.t) list;
      (** live sessions after the fold: id, last-mutated stamp, entry
          JSON — sorted by id for deterministic replay *)
  next_id : int;  (** first session number safe to mint *)
}

val recover :
  dir:string ->
  fsync:Xsact_persist.Journal.policy ->
  snapshot_every:int ->
  t * recovered
(** Open (creating if needed) the state directory, cut any torn tails,
    fold snapshot + journal, and start accepting ops. [snapshot_every]
    compacts after that many journal appends (0 disables auto-compaction;
    explicit {!snapshot_now} still works). *)

val log_upsert : t -> op:string -> id:string -> at:float -> entry:Json.t -> unit
(** Journal a state-carrying op (["create"], ["add"], ["remove"],
    ["size"], ["set"]) and update the mirror; may compact inline. Raises
    whatever the underlying append raises (disk full, injected fault) —
    the caller's mutation then fails visibly rather than silently losing
    durability. *)

val log_delete : t -> op:string -> id:string -> unit
(** Journal a deleting op (["delete"], ["expire"], ["evict"]). *)

val mark_dropped : t -> unit
(** Count a recovered entry the server could not rebuild (e.g. its
    dataset is no longer loaded). *)

val snapshot_now : t -> unit
(** Compact unconditionally and fsync — the drain-then-snapshot barrier
    [Server.stop] runs after the last worker exits. *)

val flush : t -> unit
(** Fsync the journal regardless of policy. [Server.stop] runs this after
    the worker drain and {e before} attempting the final snapshot: under
    [Interval] fsync, acked ops from the last interval would otherwise
    ride only on the page cache while the (fallible) snapshot runs. *)

val stats_json : t -> Json.t
(** The [/metrics] durability section: journal_appends, journal_bytes,
    snapshots_total, since_snapshot, recovery_ms,
    recovery_truncated_records, recovered_sessions, recovery_dropped,
    journal_offset, state_digest, fence_epoch, fence_winner. *)

(** {1 Replication}

    The primary streams its journal to followers byte-for-byte; both ends
    use the hooks below. A replication cursor is [(boot, gen, offset)]:
    the primary's {!boot_id} (offsets are meaningless across restarts),
    its compaction generation {!gen} ([snapshots_total] — a compaction
    truncates the journal, invalidating offsets), and a byte offset into
    its journal file. Any mismatch downgrades to a full {!resync}.

    The {e fencing epoch} is a different counter entirely: a durable,
    monotone promotion count ({!fence_epoch}) that coordinated failover
    compares across nodes — promotion mints the next epoch durably
    before the new primary serves a mutation, and any node observing a
    higher epoch than its own knows it has been superseded. *)

(** One parsed journal payload — the shape the replay fold consumes.
    Exposed so the serve layer can mirror a replicated record into its
    live session store without re-parsing conventions. *)
type parsed =
  | P_upsert of { id : string; at : float; entry : Json.t }
  | P_delete of string
  | P_meta of int  (** snapshot meta: first session number safe to mint *)
  | P_unknown

val parse_payload : string -> parsed

val boot_id : t -> string
(** Unique per process (pid + boot stamp). *)

val gen : t -> int
(** Compaction generation: compactions so far — bumps whenever journal
    offsets are invalidated. Purely a stream-resumption validity check;
    nothing to do with failover ordering (that is {!fence_epoch}). *)

val fence_epoch : t -> int
(** The durable failover epoch (0 until a promotion ever touches this
    directory's history). Read from [<state-dir>/epoch] at {!recover},
    before the server serves anything. *)

val fence_winner : t -> string option
(** The [HOST:PORT] of the higher-epoch winner that fenced this node
    while it was primary, if any — a node recovering with a winner on
    disk must boot as a read-only follower of that winner, {e not} as a
    primary. [None] on a healthy primary or an ordinary follower. *)

val set_fence : t -> epoch:int -> ?winner:string -> unit -> unit
(** Durably advance the fencing epoch (atomic write + fsync of the epoch
    file {e before} the in-memory fields change). The epoch is monotone:
    a lower [epoch] is ignored; an equal one may still update [winner].
    Promotion calls this with the minted epoch and no winner (clearing
    any fence); fencing demotion calls it with the observed epoch and
    the winner's address; a follower adopting its primary's epoch calls
    it with no winner. *)

val journal_file : t -> string
val journal_offset : t -> int
(** Current journal length in bytes — where a fresh follower starts. *)

val since_snapshot : t -> int
(** Journal records appended since the last compaction. *)

val replayed_records : t -> int
(** Payloads folded into state: recovery replay plus replicated applies —
    the [/ready] progress counter. *)

val next_id : t -> int

val digest : t -> int
(** CRC-32 (as a non-negative int) over the canonical serialization of
    the live replay fold. Equal digests ⇒ both replicas recover identical
    session state; the divergence check compares the follower's against
    the primary's heartbeat. *)

type resync = {
  r_boot : string;
  r_gen : int;
  r_offset : int;
  r_records : int;  (** primary's [since_snapshot] — the lag baseline *)
  r_digest : int;
  r_payloads : string list;
      (** full state as snapshot-shaped payloads (meta first) *)
}

val resync : t -> resync
(** Atomic full-state capture: the payloads, the cursor that makes the
    journal tail from [r_offset] a valid continuation of them, and the
    digest of the captured state. *)

val install_resync : t -> string list -> unit
(** Follower: replace the entire fold with the primary's resync payloads,
    compact them into the local snapshot and fsync — after this the
    follower's state directory recovers to exactly the primary's acked
    state, with no dependence on the primary being alive. *)

val append_replicated : t -> string -> unit
(** Follower: append one replicated journal record verbatim and fold it —
    the replicated counterpart of {!log_upsert}/{!log_delete}. May
    compact inline like any append. *)
