(** The serve-side durability glue: session mutations → journal ops →
    snapshots, and their replay on boot.

    Sits between {!Session_store} (which fires a typed event per
    mutation) and {!Xsact_persist.Store} (which frames, checksums and
    fsyncs opaque payloads). Ops are JSON one-liners:

    {v
      {"op":"create","id":"s1","t":1723.4,"entry":{ ...session... }}
      {"op":"add",   "id":"s1","t":1724.0,"entry":{ ...session... }}
      {"op":"remove" | "size" | "set", ... same shape ... }
      {"op":"delete","id":"s1"}      explicit DELETE /session/:id
      {"op":"expire","id":"s1"}      TTL expiry
      {"op":"evict", "id":"s1"}      LRU capacity eviction
    v}

    Every state-carrying op embeds the session's {e full} durable state
    (dataset, originating request, current ranks and size bound), so
    replay is a trivial last-writer-wins fold over upserts and deletes —
    idempotent by construction, which is what makes the
    snapshot-then-truncate compaction ordering safe (see
    {!Xsact_persist.Store}).

    The module keeps an in-memory mirror of that fold. Compaction
    serializes the mirror instead of re-reading the session store, so it
    can run inline inside the store's event hook (which holds the store
    lock) without lock-order inversion. Lock order is strictly
    [Session_store.mutex → Durability.mutex]; nothing here calls back
    into the session store. *)

type t

type recovered = {
  entries : (string * float * Json.t) list;
      (** live sessions after the fold: id, last-mutated stamp, entry
          JSON — sorted by id for deterministic replay *)
  next_id : int;  (** first session number safe to mint *)
}

val recover :
  dir:string ->
  fsync:Xsact_persist.Journal.policy ->
  snapshot_every:int ->
  t * recovered
(** Open (creating if needed) the state directory, cut any torn tails,
    fold snapshot + journal, and start accepting ops. [snapshot_every]
    compacts after that many journal appends (0 disables auto-compaction;
    explicit {!snapshot_now} still works). *)

val log_upsert : t -> op:string -> id:string -> at:float -> entry:Json.t -> unit
(** Journal a state-carrying op (["create"], ["add"], ["remove"],
    ["size"], ["set"]) and update the mirror; may compact inline. Raises
    whatever the underlying append raises (disk full, injected fault) —
    the caller's mutation then fails visibly rather than silently losing
    durability. *)

val log_delete : t -> op:string -> id:string -> unit
(** Journal a deleting op (["delete"], ["expire"], ["evict"]). *)

val mark_dropped : t -> unit
(** Count a recovered entry the server could not rebuild (e.g. its
    dataset is no longer loaded). *)

val snapshot_now : t -> unit
(** Compact unconditionally and fsync — the drain-then-snapshot barrier
    [Server.stop] runs after the last worker exits. *)

val stats_json : t -> Json.t
(** The [/metrics] durability section: journal_appends, journal_bytes,
    snapshots_total, since_snapshot, recovery_ms,
    recovery_truncated_records, recovered_sessions, recovery_dropped. *)
