(* Test-only fault injection.

   Production code marks interesting spots with [Failpoint.hit "name"];
   tests arm those spots with delays or injected exceptions, either
   programmatically ([enable]) or through the XSACT_FAILPOINTS environment
   variable, and then assert that the system degrades the way the design
   says it should. When nothing is armed — every production run — [hit] is
   a single relaxed atomic load and nothing else, so the marks are free to
   leave in. *)

exception Injected of string

type action =
  | Sleep of float
  | Fail
  | Fail_n of int

type state = {
  action : action;
  mutable remaining : int;  (* Fail_n budget; ignored otherwise *)
  mutable hits : int;
}

(* [armed] is true iff the table is non-empty; it is the only thing the
   fast path reads. *)
let armed = Atomic.make false
let mutex = Mutex.create ()
let table : (string, state) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enable name action =
  locked (fun () ->
      let remaining = match action with Fail_n n -> n | _ -> 0 in
      Hashtbl.replace table name { action; remaining; hits = 0 };
      Atomic.set armed true)

let disable name =
  locked (fun () ->
      Hashtbl.remove table name;
      if Hashtbl.length table = 0 then Atomic.set armed false)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed false)

let hits name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some s -> s.hits
      | None -> 0)

(* Decide under the lock, act (sleep / raise) outside it. *)
let slow_hit name =
  let decision =
    locked (fun () ->
        match Hashtbl.find_opt table name with
        | None -> `Pass
        | Some s -> (
          s.hits <- s.hits + 1;
          match s.action with
          | Sleep d -> `Sleep d
          | Fail -> `Fail
          | Fail_n _ ->
            if s.remaining > 0 then begin
              s.remaining <- s.remaining - 1;
              `Fail
            end
            else `Pass))
  in
  match decision with
  | `Pass -> ()
  | `Sleep d -> Unix.sleepf d
  | `Fail -> raise (Injected name)

let hit name = if Atomic.get armed then slow_hit name

(* ---- XSACT_FAILPOINTS=point=action[,point=action...] ------------------- *)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "fail" ] -> Ok Fail
  | [ "fail"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Fail_n n)
    | _ -> Error (Printf.sprintf "bad fail count %S" n))
  | [ "sleep"; d ] -> (
    match float_of_string_opt d with
    | Some d when d >= 0. -> Ok (Sleep d)
    | _ -> Error (Printf.sprintf "bad sleep duration %S" d))
  | _ -> Error (Printf.sprintf "unknown action %S (want fail, fail:N, sleep:S)" s)

let configure spec =
  let entries =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None | Some 0 ->
        Error (Printf.sprintf "malformed failpoint entry %S" entry)
      | Some i -> (
        let name = String.sub entry 0 i in
        let action = String.sub entry (i + 1) (String.length entry - i - 1) in
        match parse_action action with
        | Error e -> Error (Printf.sprintf "failpoint %S: %s" name e)
        | Ok action ->
          enable name action;
          go rest))
  in
  go entries

(* Arm from the environment at load time, so any binary (the daemon, the
   benches) can run under injected faults without code changes. A
   malformed spec fails loudly: silently running a fault-injection job
   with no faults armed would pass vacuously. *)
let () =
  match Sys.getenv_opt "XSACT_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure spec with
    | Ok () -> ()
    | Error msg -> invalid_arg ("XSACT_FAILPOINTS: " ^ msg))
