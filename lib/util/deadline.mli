(** Cancellation tokens with an optional monotonic time budget.

    The anytime algorithms (single-swap, multi-swap, greedy) improve a
    valid solution round by round, so they can stop at any poll point and
    still hand back their best-so-far DFSs. A [Deadline.t] is the token
    they poll: it trips either when its time budget runs out (measured on
    the monotonic clock, immune to wall-clock steps) or when some other
    thread calls {!cancel}. Tokens are cheap to poll — one atomic read,
    plus one monotonic clock read when a budget is set — so per-round or
    per-partition checks cost nothing measurable.

    Code that cannot produce a partial answer (e.g. pair-table
    construction) raises {!Expired} instead, via {!check}; callers map it
    to a typed timeout error. *)

type t

exception Expired
(** Raised by {!check} (and by {!Domain_pool.parallel_for} jobs carrying a
    tripped deadline) when no partial answer is possible. *)

val create : ?budget_s:float -> unit -> t
(** A fresh token. With [budget_s], the token trips [budget_s] seconds of
    monotonic time after creation; without it, only {!cancel} trips it.
    @raise Invalid_argument if [budget_s] is negative, nan or infinite. *)

val of_ms : float -> t
(** [of_ms ms = create ~budget_s:(ms /. 1000.) ()]. *)

val cancel : t -> unit
(** Trip the token now, from any thread or domain. Idempotent. *)

val cancelled : t -> bool
(** Has {!cancel} been called? (Ignores the time budget.) *)

val expired : t -> bool
(** Has the time budget run out? (Ignores {!cancel}.) *)

val over : t option -> bool
(** Should the computation stop? [over (Some t)] is [cancelled t || expired
    t]; [over None] is [false] — the form the algorithm loops consume their
    optional deadline argument with. *)

val check : t option -> unit
(** @raise Expired if [over] — for code with no best-so-far to return. *)

val remaining_s : t -> float
(** Seconds of budget left; [0.] once tripped, [infinity] with no budget. *)
