(* A cancellation token with an optional monotonic-clock time budget.

   Long computations (context construction, swap rounds) poll [over]
   between units of work and wind down cooperatively, returning their
   best-so-far answer. [cancel] flips an atomic flag, so any thread — a
   server worker noticing a dropped connection, a signal handler — can
   abandon a computation running on another thread or domain without
   tearing shared state. The time budget reads the monotonic clock
   (bechamel's [Monotonic_clock], CLOCK_MONOTONIC underneath), so wall
   clock steps from NTP never fire or starve a deadline. *)

type t = {
  expires_at_ns : int64;  (* monotonic ns; [no_expiry] = none *)
  cancel_flag : bool Atomic.t;
}

exception Expired

let no_expiry = Int64.max_int

let now_ns () = Monotonic_clock.now ()

let create ?budget_s () =
  let expires_at_ns =
    match budget_s with
    | None -> no_expiry
    | Some b ->
      if not (Float.is_finite b) || b < 0. then
        invalid_arg "Deadline.create: budget must be finite and non-negative";
      Int64.add (now_ns ()) (Int64.of_float (b *. 1e9))
  in
  { expires_at_ns; cancel_flag = Atomic.make false }

let of_ms ms = create ~budget_s:(ms /. 1000.) ()

let cancel t = Atomic.set t.cancel_flag true

let expired t =
  t.expires_at_ns <> no_expiry && Int64.compare (now_ns ()) t.expires_at_ns >= 0

let cancelled t = Atomic.get t.cancel_flag

let over_one t = cancelled t || expired t

let over = function None -> false | Some t -> over_one t

let check = function
  | None -> ()
  | Some t -> if over_one t then raise Expired

let remaining_s t =
  if Atomic.get t.cancel_flag then 0.
  else if t.expires_at_ns = no_expiry then Float.infinity
  else
    Float.max 0. (Int64.to_float (Int64.sub t.expires_at_ns (now_ns ())) /. 1e9)
