(* A blocking (non-spinning) fixed pool of worker domains.

   One job is in flight at a time; it is published under [lock] with a
   generation bump so late-waking workers never re-run a finished job.
   Chunks of the index range are handed out through an atomic counter, so
   whichever participant is free takes the next chunk (self-balancing
   against uneven chunk costs). The caller is always a participant, which
   is what lets a size-1 pool run with zero synchronization. *)

type job = {
  f : int -> int -> unit;  (* f lo hi over [lo, hi) *)
  n : int;
  nchunks : int;
  next : int Atomic.t;  (* next chunk index to hand out *)
  deadline : Deadline.t option;  (* tripped -> remaining chunks are skipped *)
  mutable remaining : int;  (* chunks not yet finished; under [lock] *)
  mutable failed : exn option;  (* first chunk exception; under [lock] *)
}

type t = {
  domains : int;
  submit : Mutex.t;  (* serializes whole jobs: one in flight per pool *)
  lock : Mutex.t;
  work_ready : Condition.t;  (* new job published, or shutdown *)
  work_done : Condition.t;  (* a job's last chunk finished *)
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.domains

let chunk_bounds job c =
  (* Even split of [0, n) into nchunks contiguous ranges. *)
  (c * job.n / job.nchunks, (c + 1) * job.n / job.nchunks)

(* Drain chunks of [job] until the counter runs out. Called without the
   lock held. Once the job's deadline trips, the remaining chunks are
   claimed and retired as no-ops under a recorded [Deadline.Expired], so
   the job still drains fully and the pool stays reusable — the caller
   gets the exception, never a half-written result. *)
let run_chunks t job =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add job.next 1 in
    if c >= job.nchunks then continue := false
    else begin
      let lo, hi = chunk_bounds job c in
      let outcome =
        if Deadline.over job.deadline then Some Deadline.Expired
        else match job.f lo hi with () -> None | exception e -> Some e
      in
      Mutex.lock t.lock;
      (match outcome with
      | Some e when job.failed = None -> job.failed <- Some e
      | _ -> ());
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.lock
    end
  done

let worker t () =
  let seen = ref 0 in
  Mutex.lock t.lock;
  while not t.stop do
    if t.generation = !seen then Condition.wait t.work_ready t.lock
    else begin
      seen := t.generation;
      match t.job with
      | None -> ()  (* job already fully drained and retired *)
      | Some job ->
        Mutex.unlock t.lock;
        run_chunks t job;
        Mutex.lock t.lock
    end
  done;
  Mutex.unlock t.lock

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      submit = Mutex.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Chunks per participant: enough slack for self-balancing, not so many
   that the per-chunk lock round-trip shows up. *)
let chunks_per_domain = 4

let parallel_for ?deadline t ~n ~chunk =
  if n > 0 then
    if t.domains = 1 then begin
      Deadline.check deadline;
      chunk 0 n
    end
    else begin
      Failpoint.hit "pool.submit";
      Deadline.check deadline;
      (* Callers may race in from several systhreads (e.g. xsact-serve
         worker threads); [submit] upholds the one-job-in-flight
         invariant by serializing whole jobs per pool. *)
      Mutex.lock t.submit;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.submit)
        (fun () ->
          let nchunks = min n (t.domains * chunks_per_domain) in
          let job =
            { f = chunk; n; nchunks; next = Atomic.make 0; deadline;
              remaining = nchunks; failed = None }
          in
          Mutex.lock t.lock;
          t.job <- Some job;
          t.generation <- t.generation + 1;
          Condition.broadcast t.work_ready;
          Mutex.unlock t.lock;
          run_chunks t job;
          Mutex.lock t.lock;
          while job.remaining > 0 do
            Condition.wait t.work_done t.lock
          done;
          t.job <- None;
          Mutex.unlock t.lock;
          match job.failed with Some e -> raise e | None -> ())
    end

let map_reduce ?deadline t ~n ~map ~reduce ~init =
  if n <= 0 then init
  else if t.domains = 1 then begin
    Deadline.check deadline;
    reduce init (map 0 n)
  end
  else begin
    (* Fix the map ranges up front so the fold order (ascending range
       index) is independent of which domain computed what. *)
    let nranges = min n (t.domains * chunks_per_domain) in
    let results = Array.make nranges None in
    parallel_for ?deadline t ~n:nranges ~chunk:(fun lo hi ->
        for r = lo to hi - 1 do
          let rlo = r * n / nranges and rhi = (r + 1) * n / nranges in
          results.(r) <- Some (map rlo rhi)
        done);
    Array.fold_left
      (fun acc slot ->
        match slot with Some v -> reduce acc v | None -> assert false)
      init results
  end

(* ---- Process-global pools ---------------------------------------------- *)

let max_default_domains = 8

let default_domains () =
  let env =
    match Sys.getenv_opt "XSACT_DOMAINS" with
    | Some s -> (match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)
    | None -> None
  in
  match env with
  | Some d -> d
  | None -> min (Domain.recommended_domain_count ()) max_default_domains

let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_lock = Mutex.create ()

let get ~domains =
  let domains = max 1 domains in
  Mutex.lock pools_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pools_lock)
    (fun () ->
      match Hashtbl.find_opt pools domains with
      | Some pool -> pool
      | None ->
        let pool = create ~domains in
        Hashtbl.add pools domains pool;
        pool)
