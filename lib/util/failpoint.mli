(** Test-only fault injection (env- or programmatically armed, free when
    off).

    Production code marks failure-interesting spots with [hit "name"];
    when nothing is armed (every production run) that is one atomic load.
    Tests arm points to delay ([Sleep]) or raise ([Fail] / [Fail_n])
    and assert the system degrades as designed.

    Current catalog (see DESIGN.md §9 for the semantics each exercises):
    - ["compare.round"] — start of every optimization round in
      single-swap, multi-swap and greedy generation (slow computations,
      deadline expiry mid-compare);
    - ["pool.submit"] — {!Domain_pool.parallel_for} job submission
      (failures while fanning out across domains);
    - ["socket.write"] — before each HTTP response write in the server
      (client gone mid-response);
    - ["persist.append"] — before a journal record is written;
    - ["persist.append.tear"] — between a journal record's header and
      payload writes (a [kill -9] of a sleeper here leaves a torn tail);
    - ["persist.fsync"] — before each journal fsync;
    - ["persist.snapshot.rename"] / ["persist.snapshot.truncate"] —
      before the snapshot's atomic rename / before the journal truncation
      that follows it (crash windows of compaction);
    - ["persist.ctxsnap.tear"] / ["persist.ctxsnap.rename"] — mid-body
      write of the context snapshot / before its atomic rename (torn
      warm-boot snapshots, DESIGN.md §14);
    - ["repl.apply.corrupt"] — a follower swallows a streamed journal
      record while advancing its cursor (manufactured replay divergence;
      the healing resync path must detect and repair it). *)

exception Injected of string
(** Raised by a [Fail]-armed point; carries the point name. *)

type action =
  | Sleep of float  (** delay this many seconds, then continue *)
  | Fail  (** raise {!Injected} on every hit *)
  | Fail_n of int  (** raise {!Injected} on the first [n] hits, then pass *)

val hit : string -> unit
(** Trigger the named point's armed action, if any. One atomic load when
    nothing is armed at all. *)

val enable : string -> action -> unit
val disable : string -> unit

val reset : unit -> unit
(** Disarm everything and zero the hit counts. *)

val hits : string -> int
(** Times the named point fired while armed (any action). *)

val configure : string -> (unit, string) result
(** Parse and arm a spec like
    ["compare.round=sleep:0.05,socket.write=fail:2"] — comma- or
    semicolon-separated [point=action] entries where action is [fail],
    [fail:N] or [sleep:SECONDS]. This is the grammar of the
    [XSACT_FAILPOINTS] environment variable, which is applied at module
    load (a malformed value raises [Invalid_argument], so a fault
    injection run can never silently arm nothing). *)
