(** A small fixed-size pool of worker domains for data-parallel loops.

    OCaml 5 domains are heavyweight (each carries a minor heap and a
    runtime participant slot), so the engine spawns them {e once} and
    reuses them across calls instead of forking per operation. A pool of
    parallelism [k] owns [k - 1] worker domains; the calling domain is
    always the [k]-th participant, so a pool of size 1 degenerates to a
    plain sequential loop with no synchronization at all.

    Workers block on a condition variable between jobs (no spinning), which
    keeps an idle pool free on over-subscribed machines. Jobs split an index
    range [0, n) into contiguous chunks handed out through an atomic
    counter, so uneven chunk costs self-balance. Exceptions raised inside a
    chunk are caught, the job is drained, and the first exception is
    re-raised in the caller.

    Jobs may be submitted from several orchestrating threads (e.g. the
    xsact-serve worker pool): a per-pool submit mutex serializes whole
    jobs, so exactly one is in flight at a time and concurrent callers
    queue. Nested [parallel_for] from inside a chunk is still
    unsupported (it would self-deadlock on the submit mutex). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns a pool of total parallelism [max 1 domains]
    ([domains - 1] worker domains). *)

val get : domains:int -> t
(** Memoized {!create}: returns the process-global pool of this size,
    spawning it on first use. This is what the engine calls on hot paths so
    repeated comparisons reuse the same domains. Safe to call from
    concurrent threads (the registry is mutex-guarded). *)

val domains : t -> int
(** Total parallelism, including the calling domain. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at {!max_default_domains} —
    the library-wide default for every [?domains] argument. Respects the
    [XSACT_DOMAINS] environment variable when set to a positive integer. *)

val max_default_domains : int
(** Cap on {!default_domains} (8): beyond this the pair-partitioned
    workloads stop scaling before the synchronization cost does. Explicit
    [~domains] arguments may exceed it. *)

val parallel_for :
  ?deadline:Deadline.t -> t -> n:int -> chunk:(int -> int -> unit) -> unit
(** [parallel_for pool ~n ~chunk] runs [chunk lo hi] over contiguous
    sub-ranges covering [0, n) ([lo] inclusive, [hi] exclusive), in
    parallel across the pool. Chunks are disjoint, so [chunk] may write to
    per-index slots of a shared array without synchronization; any other
    shared mutation is the caller's responsibility. Re-raises the first
    chunk exception after the job drains. [n <= 0] is a no-op.

    [deadline] makes the job cancellable: it is polled before submission
    and before each chunk, and once it trips the remaining chunks are
    skipped, the job drains, and {!Deadline.Expired} is raised in the
    caller — the pool itself stays clean and immediately reusable. A
    partial result array must be treated as garbage (that is why this
    raises instead of returning). Carries the ["pool.submit"]
    {!Failpoint}. *)

val map_reduce :
  ?deadline:Deadline.t ->
  t -> n:int -> map:(int -> int -> 'a) -> reduce:('a -> 'a -> 'a) -> init:'a -> 'a
(** [map_reduce pool ~n ~map ~reduce ~init] folds [reduce] over the chunk
    results of [map lo hi], starting from [init]. The reduction is applied
    in ascending chunk order, so a non-commutative [reduce] still gets a
    deterministic result regardless of the pool size. *)

val shutdown : t -> unit
(** Join the pool's workers. Idempotent; the pool must be idle. Pools from
    {!get} normally live for the whole process — worker domains blocked on
    an idle pool do not prevent process exit. *)
