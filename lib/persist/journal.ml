module Failpoint = Xsact_util.Failpoint

type policy = Always | Interval of float | Never

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 0.1)
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "interval" -> (
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt arg with
      | Some d when d > 0. -> Ok (Interval d)
      | _ -> Error (Printf.sprintf "bad fsync interval %S" arg))
    | _ ->
      Error
        (Printf.sprintf
           "unknown fsync policy %S (want always, interval[:SECONDS], never)"
           s))

let policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval d -> Printf.sprintf "interval:%g" d

let max_payload_bytes = 64 * 1024 * 1024
let default_max_record_bytes = 16 * 1024 * 1024
let header_bytes = 8

let le32 b off v =
  Bytes.set_int32_le b off v

(* ---- Framing ----------------------------------------------------------- *)

let encode_header payload =
  let h = Bytes.create header_bytes in
  le32 h 0 (Int32.of_int (String.length payload));
  le32 h 4 (Crc32.string payload);
  h

let add_record buf payload =
  if String.length payload > max_payload_bytes then
    invalid_arg "Journal.add_record: payload too large";
  Buffer.add_bytes buf (encode_header payload);
  Buffer.add_string buf payload

(* ---- Writing ----------------------------------------------------------- *)

type t = {
  fd : Unix.file_descr;
  policy : policy;
  mutable last_sync : float;
  mutable appends : int;
  mutable bytes_written : int;
  mutable closed : bool;
}

let open_append ?(fsync = Interval 0.1) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; policy = fsync; last_sync = Unix.gettimeofday (); appends = 0;
    bytes_written = 0; closed = false }

let write_all fd b =
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let do_sync t =
  Failpoint.hit "persist.fsync";
  Unix.fsync t.fd;
  t.last_sync <- Unix.gettimeofday ()

let sync t = match t.policy with Never -> () | _ -> do_sync t

let maybe_sync t =
  match t.policy with
  | Always -> do_sync t
  | Never -> ()
  | Interval d ->
    if Unix.gettimeofday () -. t.last_sync >= d then do_sync t

let append t payload =
  if t.closed then invalid_arg "Journal.append: closed";
  if String.length payload > max_payload_bytes then
    invalid_arg "Journal.append: payload too large";
  Failpoint.hit "persist.append";
  (* Header and payload are two separate writes on purpose: a process
     killed between them leaves exactly the torn tail recovery must cut —
     and the [persist.append.tear] failpoint parks a crash-test victim in
     that window. *)
  write_all t.fd (encode_header payload);
  Failpoint.hit "persist.append.tear";
  write_all t.fd (Bytes.unsafe_of_string payload);
  t.appends <- t.appends + 1;
  t.bytes_written <- t.bytes_written + header_bytes + String.length payload;
  maybe_sync t

let truncate t =
  Unix.ftruncate t.fd 0;
  (match t.policy with Never -> () | _ -> do_sync t)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.policy with Never -> () | Always | Interval _ ->
      try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Unix.close t.fd
  end

let appends t = t.appends
let bytes_written t = t.bytes_written

(* ---- Reading ----------------------------------------------------------- *)

type read_result = {
  payloads : string list;
  truncated_records : int;
  truncated_bytes : int;
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* Truncate [path] to its good prefix. Uses a fresh descriptor: the append
   handle (if any) is opened after recovery, and O_APPEND writes are
   position-independent anyway. *)
let truncate_file path keep =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd keep;
      Unix.fsync fd)

let read ?(repair = true) ?(max_record_bytes = default_max_record_bytes) path =
  match read_file path with
  | None -> { payloads = []; truncated_records = 0; truncated_bytes = 0 }
  | Some data ->
    let len = String.length data in
    let rec scan pos acc =
      if pos = len then (pos, acc)
      else if len - pos < header_bytes then (pos, acc)
      else
        let n = Int32.to_int (String.get_int32_le data pos) in
        let crc = String.get_int32_le data (pos + 4) in
        if n < 0 || n > max_record_bytes || pos + header_bytes + n > len then
          (pos, acc)
        else if Crc32.string ~off:(pos + header_bytes) ~len:n data <> crc then
          (pos, acc)
        else
          scan
            (pos + header_bytes + n)
            (String.sub data (pos + header_bytes) n :: acc)
    in
    let good, acc = scan 0 [] in
    let torn = len - good in
    if torn > 0 && repair then truncate_file path good;
    {
      payloads = List.rev acc;
      truncated_records = (if torn > 0 then 1 else 0);
      truncated_bytes = torn;
    }

(* ---- Tailing ----------------------------------------------------------- *)

type tail_result = {
  records : string list;
  next_offset : int;
  torn : bool;
}

(* Offset-addressed streaming read for replication. Unlike {!read} this
   never slurps the file, never repairs, and allocates at most one record
   at a time — the length header is validated against [max_record_bytes]
   {e before} any allocation, so a corrupt prefix cannot trigger a
   gigabyte [Bytes.create]. A record that extends past EOF is merely
   {e incomplete} (the writer may be mid-append; retry later from
   [next_offset]); a bad length or checksum is [torn]. *)
let read_from ?(max_record_bytes = default_max_record_bytes) ~offset path =
  if offset < 0 then invalid_arg "Journal.read_from: negative offset";
  match open_in_bin path with
  | exception Sys_error _ -> { records = []; next_offset = offset; torn = false }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if offset >= len then { records = []; next_offset = offset; torn = false }
        else begin
          seek_in ic offset;
          let hdr = Bytes.create header_bytes in
          let rec go pos acc =
            if len - pos < header_bytes then (pos, acc, false)
            else begin
              really_input ic hdr 0 header_bytes;
              let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
              let crc = Bytes.get_int32_le hdr 4 in
              if n < 0 || n > max_record_bytes then (pos, acc, true)
              else if pos + header_bytes + n > len then (pos, acc, false)
              else
                let payload = really_input_string ic n in
                if Crc32.string payload <> crc then (pos, acc, true)
                else go (pos + header_bytes + n) (payload :: acc)
            end
          in
          let stop, acc, torn = go offset [] in
          { records = List.rev acc; next_offset = stop; torn }
        end)
