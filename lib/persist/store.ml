module Failpoint = Xsact_util.Failpoint

type recovery = {
  snapshot : string list;
  journal : string list;
  truncated_records : int;
  truncated_bytes : int;
}

type t = {
  dir : string;
  policy : Journal.policy;
  mutable journal : Journal.t;
  (* cumulative across journal truncations, for metrics *)
  mutable appends_before : int;
  mutable bytes_before : int;
  mutable snapshots_total : int;
}

let snapshot_path dir = Filename.concat dir "snapshot"
let tmp_path dir = Filename.concat dir "snapshot.tmp"
let journal_path dir = Filename.concat dir "journal"

let rec mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    mkdir_p (Filename.dirname dir);
    mkdir_p dir

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let remove_quietly path =
  try Unix.unlink path with Unix.Unix_error _ -> ()

let open_dir ?(fsync = Journal.Interval 0.1) dir =
  mkdir_p dir;
  (* A leftover tmp is an interrupted checkpoint that never committed —
     the pre-crash snapshot + journal are the truth. *)
  remove_quietly (tmp_path dir);
  let snap = Journal.read (snapshot_path dir) in
  let jour = Journal.read (journal_path dir) in
  let journal = Journal.open_append ~fsync (journal_path dir) in
  ( {
      dir;
      policy = fsync;
      journal;
      appends_before = 0;
      bytes_before = 0;
      snapshots_total = 0;
    },
    {
      snapshot = snap.Journal.payloads;
      journal = jour.Journal.payloads;
      truncated_records =
        snap.Journal.truncated_records + jour.Journal.truncated_records;
      truncated_bytes =
        snap.Journal.truncated_bytes + jour.Journal.truncated_bytes;
    } )

let append t payload = Journal.append t.journal payload
let sync t = Journal.sync t.journal

let compact t payloads =
  let buf = Buffer.create 4096 in
  List.iter (Journal.add_record buf) payloads;
  let tmp = tmp_path t.dir in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (match
     let data = Buffer.to_bytes buf in
     let len = Bytes.length data in
     let rec go off =
       if off < len then go (off + Unix.write fd data off (len - off))
     in
     go 0;
     match t.policy with
     | Journal.Never -> ()
     | _ -> Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  Failpoint.hit "persist.snapshot.rename";
  Unix.rename tmp (snapshot_path t.dir);
  (* The rename is durable only once the directory entry is — without this
     an OS crash could resurrect the old snapshot after the journal below
     is truncated. *)
  (match t.policy with Journal.Never -> () | _ -> fsync_path t.dir);
  Failpoint.hit "persist.snapshot.truncate";
  t.appends_before <- t.appends_before + Journal.appends t.journal;
  t.bytes_before <- t.bytes_before + Journal.bytes_written t.journal;
  Journal.truncate t.journal;
  Journal.close t.journal;
  t.journal <- Journal.open_append ~fsync:t.policy (journal_path t.dir);
  t.snapshots_total <- t.snapshots_total + 1

let close t = Journal.close t.journal
let dir t = t.dir
let policy t = t.policy
let journal_file t = journal_path t.dir

let journal_offset t =
  match Unix.stat (journal_path t.dir) with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0
let journal_appends t = t.appends_before + Journal.appends t.journal
let journal_bytes t = t.bytes_before + Journal.bytes_written t.journal
let snapshots_total t = t.snapshots_total
