(** Append-only journal of length-prefixed, CRC-checksummed records.

    The on-disk unit of durability. Each record is framed as

    {v
      +----------------+----------------+=================+
      | length (u32 LE)| CRC-32 (u32 LE)| payload bytes   |
      +----------------+----------------+=================+
    v}

    where the CRC covers the payload only. Payloads are opaque byte
    strings — op encoding belongs to the caller (the serve layer journals
    JSON session ops). A write that dies partway — process killed between
    the header and payload writes, disk full, machine off — leaves a
    {e torn tail}: {!read} detects it at the first record whose header is
    short, whose length is implausible, whose payload is cut off, or
    whose checksum disagrees, returns every record before it, and (by
    default) repairs the file by truncating the tail away, so a second
    read of the same file is byte-identical and reports nothing torn.

    Durability is policy-driven: [Always] fsyncs after every append (an
    acknowledged op survives even an OS crash), [Interval s] fsyncs at
    most every [s] seconds (bounded loss on OS crash, near-zero overhead;
    a process-only crash — the common case — loses nothing either way,
    the page cache survives), [Never] leaves flushing to the OS.

    Failpoints (test-only, {!Xsact_util.Failpoint}): [persist.append] at
    append entry, [persist.append.tear] between the header and payload
    writes (park a victim process there and [kill -9] it to manufacture a
    torn record), [persist.fsync] before each fsync. *)

type policy = Always | Interval of float | Never

val policy_of_string : string -> (policy, string) result
(** ["always"], ["never"], ["interval"] (default 0.1 s) or
    ["interval:SECONDS"]. *)

val policy_to_string : policy -> string

(** {1 Writing} *)

type t

val open_append : ?fsync:policy -> string -> t
(** Open (creating if absent) for appending. Default policy
    [Interval 0.1]. @raise Unix.Unix_error on I/O failure. *)

val append : t -> string -> unit
(** Write one record and apply the fsync policy. The record is durable
    against process death once [append] returns; durable against OS death
    per the policy. @raise Invalid_argument beyond {!max_payload_bytes}. *)

val sync : t -> unit
(** Explicit fsync barrier, regardless of policy (no-op under [Never]). *)

val truncate : t -> unit
(** Drop every record (compaction has folded them into a snapshot). *)

val close : t -> unit

val appends : t -> int
(** Records appended through this handle. *)

val bytes_written : t -> int
(** Bytes (headers + payloads) appended through this handle. *)

(** {1 Reading} *)

type read_result = {
  payloads : string list;  (** good records, in append order *)
  truncated_records : int;  (** 0, or 1 when a torn tail was cut *)
  truncated_bytes : int;  (** bytes dropped with the torn tail *)
}

val read : ?repair:bool -> ?max_record_bytes:int -> string -> read_result
(** Read every intact record. A missing file is an empty journal. With
    [repair] (the default) a torn tail is also truncated off the file on
    disk, making recovery idempotent. Framing is lost at the first bad
    record, so everything after it is part of the tail and
    [truncated_records] is at most 1 per file. A length header beyond
    [max_record_bytes] (default {!default_max_record_bytes}) is treated
    as part of the torn tail — never as an allocation request. *)

type tail_result = {
  records : string list;  (** good records from [offset], in order *)
  next_offset : int;  (** byte offset just past the last good record *)
  torn : bool;
      (** a complete record failed its checksum or claimed an implausible
          length — as opposed to a clean or merely-incomplete tail *)
}

val read_from : ?max_record_bytes:int -> offset:int -> string -> tail_result
(** Offset-addressed streaming read: parse intact records starting at byte
    [offset], one allocation per record, stopping at EOF, at an incomplete
    record (a concurrent writer may be mid-append — poll again from
    [next_offset]), or at a corrupt one ([torn = true]). The length header
    is checked against [max_record_bytes] (default
    {!default_max_record_bytes}) {e before} the payload is allocated.
    Never repairs the file. A missing file reads as empty. This is the
    replication tailer: a follower's cursor is exactly [next_offset].
    @raise Invalid_argument on a negative [offset]. *)

(** {1 Framing} *)

val max_payload_bytes : int
(** Sanity bound (64 MiB) — a parsed length beyond it marks a torn tail. *)

val default_max_record_bytes : int
(** Default read-side record-size cap (16 MiB). The write side refuses
    payloads over {!max_payload_bytes}; the read side is stricter because
    a corrupt length prefix must never become an allocation attempt. *)

val add_record : Buffer.t -> string -> unit
(** Append one framed record to a buffer — snapshots reuse the journal's
    record framing. *)

val header_bytes : int
(** Size of the per-record header (length + CRC). A record of payload [p]
    occupies [header_bytes + String.length p] bytes on disk — how the
    replication stream advances a follower's byte cursor without
    re-reading the file. *)
