module Failpoint = Xsact_util.Failpoint

let magic = "XSCTSNP1"
let trailer_magic = "XSCTEND1"
let header_bytes = String.length magic
let trailer_bytes = String.length trailer_magic + 8

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write ?(fsync = true) path records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  List.iter (Journal.add_record buf) records;
  (* Trailer: record count + CRC over everything before the trailer, then
     the end marker. A write that dies anywhere leaves either no file (we
     write a tmp) or — if the tmp itself is later mistaken for the real
     file — a body whose CRC cannot match. *)
  let body = Buffer.contents buf in
  let trailer = Bytes.create 8 in
  Bytes.set_int32_le trailer 0 (Int32.of_int (List.length records));
  Bytes.set_int32_le trailer 4 (Crc32.string body);
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (match
     let write_all b off len =
       let rec go off len =
         if len > 0 then begin
           let n = Unix.write fd b off len in
           go (off + n) (len - n)
         end
       in
       go off len
     in
     let body = Bytes.unsafe_of_string body in
     write_all body 0 (Bytes.length body);
     Failpoint.hit "persist.ctxsnap.tear";
     write_all trailer 0 8;
     let tm = Bytes.of_string trailer_magic in
     write_all tm 0 (Bytes.length tm);
     if fsync then Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    raise e);
  Failpoint.hit "persist.ctxsnap.rename";
  Unix.rename tmp path;
  if fsync then fsync_path (Filename.dirname path)

type read_result = { records : string list; valid : bool }

let invalid = { records = []; valid = false }

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> invalid
  | data ->
    let len = String.length data in
    if len < header_bytes + trailer_bytes then invalid
    else if String.sub data 0 header_bytes <> magic then invalid
    else if
      String.sub data (len - String.length trailer_magic)
        (String.length trailer_magic)
      <> trailer_magic
    then invalid
    else begin
      let tpos = len - trailer_bytes in
      let count = Int32.to_int (String.get_int32_le data tpos) in
      let crc = String.get_int32_le data (tpos + 4) in
      if Crc32.string ~off:0 ~len:tpos data <> crc then invalid
      else begin
        (* CRC over the whole body already vouches for every record, but
           re-walk the framing so a count mismatch (or an inner framing
           bug) is caught rather than trusted. *)
        let rec scan pos acc n =
          if pos = tpos then
            if n = count then { records = List.rev acc; valid = true }
            else invalid
          else if tpos - pos < 8 then invalid
          else
            let rlen = Int32.to_int (String.get_int32_le data pos) in
            if rlen < 0 || pos + 8 + rlen > tpos then invalid
            else
              scan (pos + 8 + rlen)
                (String.sub data (pos + 8) rlen :: acc)
                (n + 1)
        in
        scan header_bytes [] 0
      end
    end
