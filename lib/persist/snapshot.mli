(** Verified auxiliary snapshot files: magic + framed records + CRC trailer.

    The format behind context snapshots (warm-boot, DESIGN.md §14). Unlike
    the {!Store} snapshot — whose torn tail is {e repaired} because the
    journal replays over it — an auxiliary snapshot is a pure cache of
    derivable state, so the failure mode is all-or-nothing: {!read}
    returns [valid = false] for a file that is missing, truncated, from
    another format version, or corrupt anywhere, and the caller falls back
    to the cold rebuild path it would have taken anyway.

    Layout: an 8-byte format magic, then {!Journal.add_record}-framed
    records, then an 8-byte trailer (record count + CRC-32 over everything
    before the trailer) and an 8-byte end marker. {!write} goes through
    [path ^ ".tmp"] + atomic rename, so a crash mid-write never clobbers
    the previous valid snapshot.

    Failpoints: [persist.ctxsnap.tear] between the body and the trailer
    writes (a parked victim killed there leaves a trailerless tmp — and a
    forced [Fail] exercises the caller's keep-serving path),
    [persist.ctxsnap.rename] just before the rename. *)

val write : ?fsync:bool -> string -> string list -> unit
(** Write the records to [path] via tmp + fsync + atomic rename (+
    directory fsync). [fsync:false] skips both fsyncs (benchmarks).
    @raise Unix.Unix_error on I/O failure. *)

type read_result = {
  records : string list;  (** write order; [[]] unless [valid] *)
  valid : bool;
}

val read : string -> read_result
(** Validate and read. Never modifies the file; any defect — missing
    file, bad magic, bad CRC, bad framing, count mismatch — yields
    [{records = []; valid = false}]. *)
