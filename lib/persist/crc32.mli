(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding every
    journal and snapshot record.

    Implemented from scratch over a precomputed 256-entry table — the
    container ships no checksum library, and 4 bytes per record is cheap
    insurance against torn writes and bit rot. The standard reflected
    algorithm: matches [zlib.crc32], Go's [hash/crc32] and POSIX cksum
    tooling, so journal files can be audited with stock tools. *)

val string : ?off:int -> ?len:int -> string -> int32
(** Checksum of a substring (default: the whole string). *)

val bytes : ?off:int -> ?len:int -> bytes -> int32
