(** Crash-safe state directory: one snapshot + one journal.

    Layout under the directory:
    - [snapshot] — full-state checkpoint, a stream of {!Journal} records
    - [snapshot.tmp] — checkpoint in progress (ignored and deleted by
      recovery: it only becomes the snapshot via atomic rename)
    - [journal] — ops appended since the snapshot

    {!open_dir} is recovery: it drops any leftover [snapshot.tmp], reads
    the snapshot then the journal (each repaired of torn tails), and
    returns their payloads for the caller to fold. {!compact} writes the
    caller's full state to [snapshot.tmp], fsyncs it, atomically renames
    it over [snapshot], fsyncs the directory, and truncates the journal.

    Crash-ordering argument: the rename is the commit point. Die before
    it and recovery sees the old snapshot plus the full journal; die
    between rename and truncate and recovery sees the new snapshot plus a
    stale journal whose every op is already folded into it — safe exactly
    when ops are full-state upserts/deletes, which replay idempotently
    (the serve layer's are). Ops are therefore never lost and never
    double-applied with observable effect.

    Not thread-safe: the caller (the serve layer's durability glue)
    serializes access behind its own mutex.

    Failpoints: [persist.snapshot.rename] just before the rename,
    [persist.snapshot.truncate] between the rename and the journal
    truncation, plus the {!Journal} points. *)

type t

type recovery = {
  snapshot : string list;  (** checkpoint payloads, write order *)
  journal : string list;  (** op payloads appended since, append order *)
  truncated_records : int;  (** torn tails cut (0–2: snapshot, journal) *)
  truncated_bytes : int;
}

val open_dir : ?fsync:Journal.policy -> string -> t * recovery
(** Create the directory if needed (parents included), recover, and open
    the journal for appending. @raise Unix.Unix_error on I/O failure. *)

val append : t -> string -> unit
(** Journal one op (see {!Journal.append} for durability semantics). *)

val compact : t -> string list -> unit
(** Checkpoint the given full-state payloads and truncate the journal. *)

val sync : t -> unit
(** Fsync the journal regardless of interval policy ([Never] stays a
    no-op) — the drain barrier the server's stop path uses. *)

val close : t -> unit

val dir : t -> string
val policy : t -> Journal.policy
val journal_appends : t -> int
val journal_bytes : t -> int
val snapshots_total : t -> int
(** Compactions performed through this handle — resets at boot, so
    (boot id, [snapshots_total], {!journal_offset}) forms the replication
    cursor: any component mismatch invalidates a follower's offset. *)

val journal_file : t -> string
(** Path of the live journal file — what a replication tailer
    {!Journal.read_from}s. *)

val journal_offset : t -> int
(** Current byte size of the journal file (0 when absent). Valid as a
    {!Journal.read_from} offset only within one (boot, snapshot epoch). *)
