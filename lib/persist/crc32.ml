(* Reflected CRC-32 with the IEEE 802.3 polynomial. The table holds the
   CRC of each possible byte fed into an all-zero register; one lookup per
   input byte then folds the running register. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc b =
  let table = Lazy.force table in
  Int32.logxor
    table.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl))
    (Int32.shift_right_logical crc 8)

let finish crc = Int32.logxor crc 0xFFFFFFFFl
let init = 0xFFFFFFFFl

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  let crc = ref init in
  for i = off to off + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  finish !crc

let string ?off ?len s = bytes ?off ?len (Bytes.unsafe_of_string s)
