(* XSACT benchmark harness.

   Reproduces every figure of the paper that carries data, plus the
   extension experiments E1-E9 indexed in DESIGN.md. Run everything with

     dune exec bench/main.exe

   or name specific targets:

     dune exec bench/main.exe -- fig4a_dod ext_sweep_l

   `micro` runs the Bechamel micro-benchmarks (one Test.make per figure's
   kernel). Absolute numbers will not match 2009 hardware; EXPERIMENTS.md
   records the shape comparison against the paper. *)

open Xsact_util
module Workload = Xsact_workload.Workload

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let hr () = print_newline ()

(* ---- Shared workloads (built lazily, reused across targets) ------------- *)

let imdb = lazy (Workload.imdb_qm ~top:5 ())

let qm_instances () = (Lazy.force imdb).Workload.queries

let swap_algorithms =
  [ Algorithm.Single_swap; Algorithm.Multi_swap ]

let report_algorithms =
  [ Algorithm.Topk; Algorithm.Greedy; Algorithm.Single_swap; Algorithm.Multi_swap ]

let dod_of alg context ~limit = Dod.total context (Algorithm.generate alg context ~limit)

(* ---- Figure 1: result statistics ----------------------------------------- *)

let fig1_stats () =
  section
    "Figure 1 -- result fragments & statistics for query {TomTom, GPS}";
  Array.iter
    (fun profile ->
      print_string (Render_text.result_stats ~top:8 profile);
      hr ())
    (Workload.paper_gps_profiles ())

(* ---- Figure 2: comparison table ------------------------------------------- *)

let fig2_table () =
  section "Figure 2 -- XSACT comparison table for the Figure 1 results (L = 6)";
  let profiles = Workload.paper_gps_profiles () in
  let context = Dod.make_context profiles in
  let limit = 6 in
  let dfss = Multi_swap.generate context ~limit in
  let table = Table.build ~size_bound:limit context dfss in
  print_string (Render_text.table table);
  Printf.printf "\n%4s | %9s %12s %10s   (paper, at its L: 2 -> 5)\n" "L"
    "topk DoD" "eXtract DoD" "XSACT DoD";
  List.iter
    (fun limit ->
      let extract_dfss =
        Array.map
          (Snippet.query_biased_dfs ~keywords:"tomtom gps" ~limit)
          profiles
      in
      Printf.printf "%4d | %9d %12d %10d\n" limit
        (Dod.total context (Topk.generate context ~limit))
        (Dod.total context extract_dfss)
        (Dod.total context (Multi_swap.generate context ~limit)))
    [ 4; 6; 8; 10 ]

(* ---- Figure 4(a): DoD over QM1..QM8 ---------------------------------------- *)

let fig4a_dod () =
  section "Figure 4(a) -- quality of DFSs: DoD per query (IMDB, top 5, L = 8)";
  Printf.printf "%-6s %-22s %8s | %6s %7s %12s %11s\n" "query" "keywords"
    "results" "topk" "greedy" "single-swap" "multi-swap";
  let totals = Array.make (List.length report_algorithms) 0 in
  List.iter
    (fun (inst : Workload.instance) ->
      let context = Dod.make_context inst.Workload.profiles in
      let dods = List.map (fun a -> dod_of a context ~limit:8) report_algorithms in
      List.iteri (fun i d -> totals.(i) <- totals.(i) + d) dods;
      match dods with
      | [ topk; greedy; single; multi ] ->
        Printf.printf "%-6s %-22s %8d | %6d %7d %12d %11d\n" inst.Workload.label
          inst.Workload.keywords inst.Workload.result_count topk greedy single
          multi
      | _ -> assert false)
    (qm_instances ());
  (match Array.to_list totals with
  | [ topk; greedy; single; multi ] ->
    Printf.printf "%-6s %-22s %8s | %6d %7d %12d %11d\n" "total" "" "" topk
      greedy single multi
  | _ -> assert false);
  print_endline
    "\nshape check (paper): multi-swap >= single-swap >> snippet-style baselines"

(* ---- Figure 4(b): processing time over QM1..QM8 ------------------------------ *)

let fig4b_time () =
  section
    "Figure 4(b) -- processing time (s) per query (IMDB, top 5, L = 8; median \
     of 7 runs)";
  Printf.printf "%-6s %-22s | %14s %14s\n" "query" "keywords" "single-swap"
    "multi-swap";
  List.iter
    (fun (inst : Workload.instance) ->
      let context = Dod.make_context inst.Workload.profiles in
      let time alg =
        let _, stats =
          Timing.time ~warmup:2 ~runs:7 (fun () ->
              Algorithm.generate alg context ~limit:8)
        in
        stats.Timing.median_s
      in
      let times = List.map time swap_algorithms in
      match times with
      | [ single; multi ] ->
        Printf.printf "%-6s %-22s | %14.6f %14.6f\n" inst.Workload.label
          inst.Workload.keywords single multi
      | _ -> assert false)
    (qm_instances ());
  print_endline
    "\nshape check (paper): both well under interactive latency; single-swap \
     usually faster, multi-swap occasionally ahead"

(* ---- Demo Section 3: Outdoor Retailer brand comparison ------------------------ *)

let demo_outdoor () =
  section "Demo Section 3 -- Outdoor Retailer: brand focuses for 'men jackets'";
  let dataset = Xsact_dataset.Dataset.outdoor_retailer () in
  let prepared = Workload.prepare ~top:3 ~lift_to:"brand" dataset in
  match
    List.find_opt
      (fun (i : Workload.instance) -> i.Workload.label = "QO1")
      prepared.Workload.queries
  with
  | None -> print_endline "QO1 unavailable"
  | Some inst ->
    let context = Dod.make_context inst.Workload.profiles in
    let dfss = Multi_swap.generate context ~limit:9 in
    print_string (Render_text.table (Table.build ~size_bound:9 context dfss));
    Printf.printf "\nDoD = %d across %d brands\n" (Dod.total context dfss)
      (Array.length inst.Workload.profiles)

(* ---- E1: sweep the size bound L ------------------------------------------------ *)

let ext_sweep_l () =
  section "E1 -- DoD and time vs size bound L (IMDB QM4, top 5)";
  match
    List.find_opt
      (fun (i : Workload.instance) -> i.Workload.label = "QM4")
      (qm_instances ())
  with
  | None -> print_endline "QM4 unavailable"
  | Some inst ->
    let context = Dod.make_context inst.Workload.profiles in
    Printf.printf "%4s | %6s %12s %11s | %12s %11s\n" "L" "topk" "single-dod"
      "multi-dod" "single-time" "multi-time";
    List.iter
      (fun limit ->
        let time_and_dod alg =
          let dfss, stats =
            Timing.time ~warmup:1 ~runs:5 (fun () ->
                Algorithm.generate alg context ~limit)
          in
          (Dod.total context dfss, stats.Timing.median_s)
        in
        let topk = dod_of Algorithm.Topk context ~limit in
        let sd, st = time_and_dod Algorithm.Single_swap in
        let md, mt = time_and_dod Algorithm.Multi_swap in
        Printf.printf "%4d | %6d %12d %11d | %11.6fs %10.6fs\n" limit topk sd
          md st mt)
      [ 2; 4; 6; 8; 12; 16; 20; 24 ]

(* ---- E2: sweep the number of compared results n --------------------------------- *)

let ext_sweep_n () =
  section "E2 -- DoD and time vs number of compared results (IMDB 'action', L = 8)";
  let prepared = Lazy.force imdb in
  let engine = prepared.Workload.engine in
  Printf.printf "%4s | %6s %12s %11s | %12s %11s\n" "n" "topk" "single-dod"
    "multi-dod" "single-time" "multi-time";
  List.iter
    (fun n ->
      match Workload.instances ~top:n engine [ ("Q", "action") ] with
      | [ inst ] when Array.length inst.Workload.profiles = n ->
        let context = Dod.make_context inst.Workload.profiles in
        let time_and_dod alg =
          let dfss, stats =
            Timing.time ~warmup:1 ~runs:5 (fun () ->
                Algorithm.generate alg context ~limit:8)
          in
          (Dod.total context dfss, stats.Timing.median_s)
        in
        let topk = dod_of Algorithm.Topk context ~limit:8 in
        let sd, st = time_and_dod Algorithm.Single_swap in
        let md, mt = time_and_dod Algorithm.Multi_swap in
        Printf.printf "%4d | %6d %12d %11d | %11.6fs %10.6fs\n" n topk sd md st
          mt
      | _ -> Printf.printf "%4d | (not enough results)\n" n)
    [ 2; 3; 4; 6; 8; 10 ]

(* ---- E3: approximation quality vs the exhaustive optimum ------------------------- *)

let ext_optimality () =
  section
    "E3 -- quality vs exhaustive optimum (60 random small instances, L = 4)";
  let instances = ref 0 in
  let sums = Array.make (List.length report_algorithms) 0.0 in
  let hits = Array.make (List.length report_algorithms) 0 in
  for seed = 0 to 59 do
    let profiles =
      Workload.synthetic_profiles ~seed ~results:2 ~entities:1
        ~types_per_entity:3 ~values_per_type:2 ~max_count:3
    in
    let context = Dod.make_context profiles in
    match Exhaustive.optimum ~max_states:500_000 context ~limit:4 with
    | exception Exhaustive.Too_large _ -> ()
    | 0 -> () (* nothing differentiates; ratios undefined *)
    | opt ->
      incr instances;
      List.iteri
        (fun i alg ->
          let d = dod_of alg context ~limit:4 in
          sums.(i) <- sums.(i) +. (float_of_int d /. float_of_int opt);
          if d = opt then hits.(i) <- hits.(i) + 1)
        report_algorithms
  done;
  Printf.printf "instances with a positive optimum: %d\n\n" !instances;
  Printf.printf "%-12s | %10s %10s\n" "method" "avg ratio" "% optimal";
  List.iteri
    (fun i alg ->
      Printf.printf "%-12s | %10.3f %9.0f%%\n" (Algorithm.to_string alg)
        (sums.(i) /. float_of_int !instances)
        (100.0 *. float_of_int hits.(i) /. float_of_int !instances))
    report_algorithms

(* ---- E4: differentiation threshold sensitivity ------------------------------------ *)

let ext_threshold () =
  section
    "E4 -- DoD vs differentiation threshold x% (product reviews 'gps', top 4, \
     L = 8)";
  (* The movie corpus has unit counts, so x only matters on data with real
     occurrence statistics: the review corpus (counts like 8/11 vs 38/68). *)
  let dataset = Xsact_dataset.Dataset.product_reviews () in
  let prepared = Workload.prepare ~top:4 dataset in
  match
    List.find_opt
      (fun (i : Workload.instance) -> i.Workload.label = "QP3")
      prepared.Workload.queries
  with
  | None -> print_endline "QP3 unavailable"
  | Some inst ->
    Printf.printf "%6s | %6s %12s %11s\n" "x%" "topk" "single-swap" "multi-swap";
    List.iter
      (fun threshold_pct ->
        let params = { Dod.threshold_pct; measure = Dod.Raw } in
        let context = Dod.make_context ~params inst.Workload.profiles in
        Printf.printf "%6.0f | %6d %12d %11d\n" threshold_pct
          (dod_of Algorithm.Topk context ~limit:8)
          (dod_of Algorithm.Single_swap context ~limit:8)
          (dod_of Algorithm.Multi_swap context ~limit:8))
      [ 0.0; 5.0; 10.0; 25.0; 50.0; 100.0; 200.0; 400.0 ]

(* ---- E4b: raw vs rate occurrence measure ------------------------------------------- *)

let ext_measure () =
  section
    "E4b -- raw counts vs population-normalized rates (product reviews, \
     'gps', top 4, L = 8)";
  let dataset = Xsact_dataset.Dataset.product_reviews () in
  let prepared = Workload.prepare ~top:4 dataset in
  Printf.printf "%-6s %-14s | %12s %12s\n" "query" "keywords" "raw DoD"
    "rate DoD";
  List.iter
    (fun (inst : Workload.instance) ->
      let dod measure =
        let params = { Dod.threshold_pct = 10.0; measure } in
        let context = Dod.make_context ~params inst.Workload.profiles in
        dod_of Algorithm.Multi_swap context ~limit:8
      in
      Printf.printf "%-6s %-14s | %12d %12d\n" inst.Workload.label
        inst.Workload.keywords (dod Dod.Raw) (dod Dod.Rate))
    prepared.Workload.queries

(* ---- E5: scalability with corpus size ------------------------------------------------ *)

let ext_scale () =
  section
    "E5 -- end-to-end scalability with corpus size (IMDB, query 'action', \
     top 5, L = 8)";
  Printf.printf "%8s %9s | %11s %11s %13s\n" "movies" "elements" "index-build"
    "query" "extract+DFS";
  List.iter
    (fun movies ->
      let doc =
        Xsact_dataset.Imdb.generate
          { Xsact_dataset.Imdb.default_params with movies }
      in
      let elements = (Xml_stats.of_document doc).Xml_stats.elements in
      let engine, build_stats =
        Timing.time ~warmup:0 ~runs:3 (fun () -> Search.create doc)
      in
      let results, query_stats =
        Timing.time ~warmup:1 ~runs:5 (fun () ->
            Search.query ~limit:5 engine "action")
      in
      let _, compare_stats =
        Timing.time ~warmup:1 ~runs:5 (fun () ->
            let profiles =
              Array.of_list
                (List.map (Extractor.of_search_result engine) results)
            in
            let context = Dod.make_context profiles in
            Multi_swap.generate context ~limit:8)
      in
      Printf.printf "%8d %9d | %10.4fs %10.4fs %12.4fs\n" movies elements
        build_stats.Timing.median_s query_stats.Timing.median_s
        compare_stats.Timing.median_s)
    [ 250; 500; 1000; 2000; 4000 ]

(* ---- E6: stochastic optimizers vs the swap algorithms ----------------------------------- *)

let ext_stochastic () =
  section
    "E6 -- stochastic optimizers vs local optima (tie-rich synthetic \
     instances, 5 results, L = 5)";
  Printf.printf "%6s | %6s %12s %11s %10s %9s\n" "seed" "topk" "single-swap"
    "multi-swap" "annealing" "restarts";
  let sums = Array.make 5 0 in
  List.iter
    (fun seed ->
      let profiles =
        Workload.synthetic_profiles ~seed ~results:5 ~entities:1
          ~types_per_entity:8 ~values_per_type:5 ~max_count:2
      in
      let context = Dod.make_context profiles in
      let values =
        List.map
          (fun alg -> dod_of alg context ~limit:5)
          [
            Algorithm.Topk; Algorithm.Single_swap; Algorithm.Multi_swap;
            Algorithm.Annealing; Algorithm.Restarts;
          ]
      in
      List.iteri (fun i v -> sums.(i) <- sums.(i) + v) values;
      match values with
      | [ a; b; c; d; e ] ->
        Printf.printf "%6d | %6d %12d %11d %10d %9d\n" seed a b c d e
      | _ -> assert false)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  (match Array.to_list sums with
  | [ a; b; c; d; e ] ->
    Printf.printf "%6s | %6d %12d %11d %10d %9d\n" "total" a b c d e
  | _ -> assert false);
  print_endline
    "\nshape check: the DP's multi-feature reshapes and the stochastic \
     probes recover DoD that single moves leave behind"

(* ---- E7: incremental sessions vs recomputation -------------------------------------------- *)

let ext_incremental () =
  section
    "E7 -- interactive sessions: warm-started updates vs from-scratch \
     (IMDB 'action', L = 8)";
  let prepared = Lazy.force imdb in
  let engine = prepared.Workload.engine in
  match Workload.instances ~top:10 engine [ ("Q", "action") ] with
  | [ inst ] ->
    let profiles = Array.to_list inst.Workload.profiles in
    let first_three = List.filteri (fun i _ -> i < 3) profiles in
    Printf.printf "%-28s | %10s %8s\n" "operation" "time" "DoD";
    let time_op label f =
      let result, stats = Timing.time ~warmup:1 ~runs:5 f in
      Printf.printf "%-28s | %9.5fs %8d\n" label stats.Timing.median_s
        (match result with Ok s -> Session.dod s | Error _ -> -1);
      result
    in
    let session =
      time_op "create (3 results)" (fun () ->
          Session.create ~size_bound:8 first_three)
    in
    (match session with
    | Error e -> print_endline (Error.to_string e)
    | Ok session ->
      let fourth = List.nth profiles 3 in
      let _ =
        time_op "add 4th (warm)" (fun () -> Ok (Session.add session fourth))
      in
      let _ =
        time_op "cold re-create (4 results)" (fun () ->
            Session.create ~size_bound:8 (first_three @ [ fourth ]))
      in
      let s4 = Session.add session fourth in
      let _ =
        time_op "set L 8 -> 12 (warm)" (fun () -> Session.set_size_bound s4 12)
      in
      ())
  | _ -> print_endline "query unavailable"

(* ---- E8: interestingness weighting ablation ------------------------------------------------ *)

let ext_weighting () =
  section
    "E8 -- interestingness weighting (paper example, L = 6)";
  let profiles = Workload.paper_gps_profiles () in
  let run label weight =
    let context = Dod.make_context ?weight profiles in
    let dfss = Multi_swap.generate context ~limit:6 in
    let table = Table.build context dfss in
    let has pat =
      List.exists
        (fun (row : Table.row) ->
          Xsact_util.Textutil.contains_substring
            row.Table.ftype.Feature.attribute pat
          && row.Table.differentiating)
        table.Table.rows
    in
    Printf.printf
      "%-30s | weighted DoD %4d | rating differentiates: %-5b | compact: %b\n"
      label (Dod.total context dfss) (has "rating") (has "compact")
  in
  run "uniform" None;
  run "compact x4" (Some (Weighting.by_attribute [ ("compact", 4) ]));
  run "rating x10" (Some (Weighting.by_attribute [ ("rating", 10) ]));
  run "evidence" (Some (Weighting.evidence profiles));
  print_endline
    "\nshape check: weighting a differentiating type multiplies its DoD \
     contribution; a heavy weight pulls an otherwise-skipped type (rating) \
     into both DFSs"

(* ---- E9: ablation of the type-spreading tie-break -------------------------------------- *)

let ext_spread () =
  section
    "E9 -- ablation: type-spreading tie-break on vs off (IMDB QM queries, \
     top 5, L = 8)";
  Printf.printf "%-6s | %12s %13s | %12s %13s\n" "query" "single+spread"
    "single-pure" "multi+spread" "multi-pure";
  let totals = Array.make 4 0 in
  List.iter
    (fun (inst : Workload.instance) ->
      let context = Dod.make_context inst.Workload.profiles in
      let values =
        [
          Dod.total context (Single_swap.generate ~spread:true context ~limit:8);
          Dod.total context (Single_swap.generate ~spread:false context ~limit:8);
          Dod.total context (Multi_swap.generate ~spread:true context ~limit:8);
          Dod.total context (Multi_swap.generate ~spread:false context ~limit:8);
        ]
      in
      List.iteri (fun i v -> totals.(i) <- totals.(i) + v) values;
      match values with
      | [ ss; sp; ms; mp ] ->
        Printf.printf "%-6s | %12d %13d | %12d %13d\n" inst.Workload.label ss
          sp ms mp
      | _ -> assert false)
    (qm_instances ());
  (match Array.to_list totals with
  | [ ss; sp; ms; mp ] ->
    Printf.printf "%-6s | %12d %13d | %12d %13d\n" "total" ss sp ms mp
  | _ -> assert false);
  print_endline
    "\nshape check: without the spreading tie-break, both methods stall in \
     the poor equilibria of the all-tied movie corpus (DESIGN.md, \
     tie-breaking note)"

(* ---- SCALE: multicore DoD engine sweep -------------------------------------------------- *)

(* Set by the `--quick` CLI flag: a small sweep for CI smoke runs. *)
let quick = ref false

(* n results x domain counts, timing the two engine phases: pair-table
   construction (Dod.make_context) and multi-swap generation. Also times
   the threshold-cache ablation at domains = 1 (the sequential-only
   speedup recorded in EXPERIMENTS.md). Emits machine-readable
   BENCH_dod.json so future PRs can track the perf trajectory. *)
let scale () =
  section
    (Printf.sprintf
       "SCALE -- parallel DoD engine: n x domains sweep%s (synthetic \
        results, L = 8)"
       (if !quick then " (quick)" else ""));
  let ns = if !quick then [ 10; 25 ] else [ 10; 25; 50; 100 ] in
  let domain_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let runs = if !quick then 3 else 5 in
  let limit = 8 in
  (* (n, domains, phase, median_s) in sweep order *)
  let entries = ref [] in
  let record n domains phase median_s =
    entries := (n, domains, phase, median_s) :: !entries
  in
  Printf.printf "%6s %8s | %14s %14s %20s\n" "n" "domains" "make_context"
    "multi_swap" "multi_swap(nocache)";
  List.iter
    (fun n ->
      let profiles =
        Workload.synthetic_profiles ~seed:42 ~results:n ~entities:3
          ~types_per_entity:8 ~values_per_type:6 ~max_count:12
      in
      List.iter
        (fun domains ->
          let context, ctx_stats =
            Timing.time ~warmup:1 ~runs (fun () ->
                Dod.make_context ~domains profiles)
          in
          let _, swap_stats =
            Timing.time ~warmup:1 ~runs (fun () ->
                Multi_swap.generate ~domains context ~limit)
          in
          record n domains "make_context" ctx_stats.Timing.median_s;
          record n domains "multi_swap" swap_stats.Timing.median_s;
          let nocache =
            if domains = 1 then begin
              let _, stats =
                Timing.time ~warmup:1 ~runs (fun () ->
                    Multi_swap.generate ~cache:false ~domains:1 context ~limit)
              in
              record n 1 "multi_swap_nocache" stats.Timing.median_s;
              Printf.sprintf "%18.6fs" stats.Timing.median_s
            end
            else ""
          in
          Printf.printf "%6d %8d | %13.6fs %13.6fs %20s\n" n domains
            ctx_stats.Timing.median_s swap_stats.Timing.median_s nocache)
        domain_counts)
    ns;
  (* Headline ratios at the largest n. *)
  let median ~n ~domains phase =
    List.find_map
      (fun (n', d', p', m) ->
        if n' = n && d' = domains && p' = phase then Some m else None)
      !entries
  in
  let n_max = List.fold_left max 0 ns in
  let par = if List.mem 4 domain_counts then 4 else List.fold_left max 1 domain_counts in
  (match (median ~n:n_max ~domains:1 "make_context",
          median ~n:n_max ~domains:par "make_context") with
  | Some seq, Some parallel when parallel > 0.0 ->
    Printf.printf
      "\nmake_context speedup at n = %d, %d domains vs 1: %.2fx (of %d \
       available cores)\n"
      n_max par (seq /. parallel)
      (Domain.recommended_domain_count ())
  | _ -> ());
  (match (median ~n:n_max ~domains:1 "multi_swap_nocache",
          median ~n:n_max ~domains:1 "multi_swap") with
  | Some nocache, Some cached when cached > 0.0 ->
    Printf.printf
      "multi_swap threshold-cache speedup at n = %d (sequential): %.2fx\n"
      n_max (nocache /. cached)
  | _ -> ());
  (* Machine-readable output, one object per (n, domains, phase) median. *)
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\n";
  Buffer.add_string json
    (Printf.sprintf "  \"bench\": \"scale\",\n  \"quick\": %b,\n" !quick);
  Buffer.add_string json
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string json
    (Printf.sprintf "  \"limit\": %d,\n  \"runs\": %d,\n" limit runs);
  Buffer.add_string json "  \"entries\": [\n";
  let sorted = List.rev !entries in
  List.iteri
    (fun k (n, domains, phase, median_s) ->
      Buffer.add_string json
        (Printf.sprintf
           "    {\"n\": %d, \"domains\": %d, \"phase\": %S, \"median_s\": \
            %.6f}%s\n"
           n domains phase median_s
           (if k = List.length sorted - 1 then "" else ",")))
    sorted;
  Buffer.add_string json "  ]\n}\n";
  let path = "BENCH_dod.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "\nwrote %s (%d medians)\n" path (List.length sorted)

(* ---- Bechamel micro-benchmarks --------------------------------------------------------- *)

let micro () =
  section "Bechamel micro-benchmarks (ns/run, OLS on monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* One Test.make per reproduced table/figure kernel. *)
  let qm4 =
    List.find
      (fun (i : Workload.instance) -> i.Workload.label = "QM4")
      (qm_instances ())
  in
  let qm4_context = Dod.make_context qm4.Workload.profiles in
  let paper_context = Dod.make_context (Workload.paper_gps_profiles ()) in
  let small_doc =
    Xsact_dataset.Imdb.generate
      { Xsact_dataset.Imdb.default_params with movies = 100 }
  in
  let small_src = Xml_print.to_string small_doc in
  let small_tree = Doctree.of_document small_doc in
  let small_engine = Search.create small_doc in
  let tests =
    Test.make_grouped ~name:"xsact"
      [
        Test.make ~name:"fig2/multi_swap_paper_example"
          (Staged.stage (fun () ->
               ignore (Multi_swap.generate paper_context ~limit:6)));
        Test.make ~name:"fig4a/single_swap_qm4"
          (Staged.stage (fun () ->
               ignore (Single_swap.generate qm4_context ~limit:8)));
        Test.make ~name:"fig4a/multi_swap_qm4"
          (Staged.stage (fun () ->
               ignore (Multi_swap.generate qm4_context ~limit:8)));
        Test.make ~name:"fig4b/topk_qm4"
          (Staged.stage (fun () -> ignore (Topk.generate qm4_context ~limit:8)));
        Test.make ~name:"e5/xml_parse_100_movies"
          (Staged.stage (fun () -> ignore (Xml_parse.parse_string small_src)));
        Test.make ~name:"e5/index_build_100_movies"
          (Staged.stage (fun () -> ignore (Index.build small_tree)));
        Test.make ~name:"e5/slca_query"
          (Staged.stage (fun () ->
               ignore (Search.query ~limit:5 small_engine "action")));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  Printf.printf "%-40s | %16s\n" "kernel" "time per run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-40s | %16s\n" name pretty)
    (List.sort compare !rows)

(* ---- E11: the HTTP comparison service -------------------------------------- *)

module Server = Xsact_server.Server
module Http = Xsact_server.Http

(* Starts an in-process server on an ephemeral loopback port and drives it
   over real sockets: cold (cache-miss) vs warm (LRU-hit) /compare latency
   per demo query, then sustained throughput with concurrent keep-alive
   clients on the warmed cache. Writes BENCH_serve.json. *)
let serve_bench () =
  section
    (Printf.sprintf "SERVE -- HTTP service: cold vs warm /compare, req/s%s"
       (if !quick then " (quick)" else ""));
  let threads = 8 in
  let clients = 8 in
  let per_client = if !quick then 50 else 300 in
  let t = Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:64 () in
  let running = Server.start ~threads ~port:0 t in
  let host = "127.0.0.1" in
  let port = Server.port running in
  Printf.printf "server on %s:%d (%d workers, %d clients x %d requests)\n\n"
    host port threads clients per_client;
  let queries =
    if !quick then [ "gps"; "tomtom gps" ]
    else [ "gps"; "tomtom gps"; "garmin gps"; "nokia phone"; "digital camera" ]
  in
  let body_of q =
    Printf.sprintf
      {|{"dataset":"product-reviews","q":%S,"top":4,"size_bound":8}|} q
  in
  let time_one body =
    let t0 = Unix.gettimeofday () in
    let status, _, _ = Http.request ~host ~port ~body "/compare" in
    let elapsed = Unix.gettimeofday () -. t0 in
    if status <> 200 then failwith (Printf.sprintf "compare -> %d" status);
    elapsed
  in
  (* cold = first request (computes + fills the cache); warm = median of
     repeats served from the LRU *)
  let cold_warm =
    List.map
      (fun q ->
        let body = body_of q in
        let cold = time_one body in
        let warm_runs = List.init 9 (fun _ -> time_one body) in
        let sorted = List.sort compare warm_runs in
        let warm = List.nth sorted (List.length sorted / 2) in
        Printf.printf "%-16s cold %8.3f ms   warm %8.3f ms   (%.0fx)\n" q
          (1000. *. cold) (1000. *. warm)
          (cold /. Float.max warm 1e-9);
        (q, cold, warm))
      queries
  in
  (* sustained throughput: each client loops over the warmed query mix on
     one keep-alive connection, recording per-request latency *)
  let latencies = Array.make clients [] in
  let wall0 = Unix.gettimeofday () in
  let spawn i =
    Thread.create
      (fun () ->
        Http.with_connection ~host ~port (fun call ->
            let acc = ref [] in
            for k = 0 to per_client - 1 do
              let q = List.nth queries ((i + k) mod List.length queries) in
              let t0 = Unix.gettimeofday () in
              let status, _, _ = call ~body:(body_of q) "/compare" in
              let elapsed = Unix.gettimeofday () -. t0 in
              if status <> 200 then
                failwith (Printf.sprintf "compare -> %d" status);
              acc := elapsed :: !acc
            done;
            latencies.(i) <- !acc))
      ()
  in
  let workers = List.init clients spawn in
  List.iter Thread.join workers;
  let wall = Unix.gettimeofday () -. wall0 in
  let all =
    Array.of_list (List.concat (Array.to_list latencies)) |> fun a ->
    Array.sort compare a;
    a
  in
  let total = Array.length all in
  let pct p = all.(min (total - 1) (int_of_float (p *. float_of_int total))) in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let rps = float_of_int total /. wall in
  Printf.printf
    "\nthroughput: %d requests in %.2fs = %.0f req/s   p50 %.3f ms   p99 \
     %.3f ms\n"
    total wall rps (1000. *. p50) (1000. *. p99);
  let _, _, metrics_body = Http.request ~host ~port "/metrics" in
  Server.stop running;
  (* machine-readable output *)
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\n";
  Buffer.add_string json
    (Printf.sprintf "  \"bench\": \"serve\",\n  \"quick\": %b,\n" !quick);
  Buffer.add_string json
    (Printf.sprintf
       "  \"threads\": %d,\n  \"clients\": %d,\n  \"per_client\": %d,\n"
       threads clients per_client);
  Buffer.add_string json "  \"cold_warm\": [\n";
  List.iteri
    (fun k (q, cold, warm) ->
      Buffer.add_string json
        (Printf.sprintf
           "    {\"q\": %S, \"cold_s\": %.6f, \"warm_s\": %.6f}%s\n" q cold
           warm
           (if k = List.length cold_warm - 1 then "" else ",")))
    cold_warm;
  Buffer.add_string json "  ],\n";
  Buffer.add_string json
    (Printf.sprintf
       "  \"throughput\": {\"requests\": %d, \"wall_s\": %.3f, \"rps\": \
        %.1f, \"p50_s\": %.6f, \"p99_s\": %.6f},\n"
       total wall rps p50 p99);
  Buffer.add_string json
    (Printf.sprintf "  \"metrics\": %s\n" (String.trim metrics_body));
  Buffer.add_string json "}\n";
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---- E13: durable sessions ------------------------------------------------- *)

module Journal = Xsact_persist.Journal

(* Quantifies what durability costs: raw journal append rates per fsync
   policy, session-mutation throughput with and without a state dir, warm
   /compare throughput with journaling enabled (must stay within 10% of
   the BENCH_serve.json baseline — the hot read path never touches the
   journal), and recovery time. Writes BENCH_persist.json. *)
let persist_bench () =
  section
    (Printf.sprintf "PERSIST -- journal cost, mutation overhead, recovery%s"
       (if !quick then " (quick)" else ""));
  let tmp_dir tag =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xsact_bench_persist_%d_%s" (Unix.getpid ()) tag)
    in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    dir
  in
  (* raw journal appends per second, by policy *)
  let payload =
    {|{"op":"set","id":"s42","t":1.5,"entry":{"v":1,"dataset":"product-reviews","request":{"dataset":"product-reviews","q":"gps","top":4},"ranks":[1,2,3,4],"size_bound":8}}|}
  in
  let appends = if !quick then 500 else 5000 in
  let journal_rates =
    List.map
      (fun (tag, policy) ->
        let dir = tmp_dir ("journal_" ^ tag) in
        Unix.mkdir dir 0o755;
        let j = Journal.open_append ~fsync:policy (Filename.concat dir "j") in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to appends do
          Journal.append j payload
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        Journal.close j;
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
        let rate = float_of_int appends /. elapsed in
        Printf.printf "journal append (%-13s) %9.0f ops/s\n" tag rate;
        (tag, rate))
      [ ("never", Journal.Never); ("interval:0.1", Journal.Interval 0.1);
        ("always", Journal.Always) ]
  in
  hr ();
  (* session mutations and warm compares over HTTP, with and without a
     state dir behind the store *)
  let mutations = if !quick then 40 else 200 in
  let compares = if !quick then 200 else 4000 in
  let compare_body =
    {|{"dataset":"product-reviews","q":"gps","top":4,"size_bound":8}|}
  in
  let run_config tag state_dir =
    let t =
      Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:64
        ?state_dir ()
    in
    Server.recover t;
    let running = Server.start ~threads:4 ~port:0 t in
    let host = "127.0.0.1" and port = Server.port running in
    let mut_rate, create_id =
      Http.with_connection ~host ~port (fun call ->
          let _, _, body =
            call ~meth:"POST"
              ~body:{|{"dataset":"product-reviews","q":"gps","top":3}|}
              "/session"
          in
          let id =
            match Xsact_server.Json.of_string body with
            | Ok j -> (
              match Xsact_server.Json.member "id" j with
              | Some (Xsact_server.Json.String id) -> id
              | _ -> failwith "no session id")
            | Error e -> failwith e
          in
          let t0 = Unix.gettimeofday () in
          for k = 1 to mutations do
            let body =
              Printf.sprintf {|{"size_bound":%d}|} (4 + (k mod 5))
            in
            let status, _, _ = call ~body ("/session/" ^ id ^ "/size") in
            if status <> 200 then failwith "size op failed"
          done;
          (float_of_int mutations /. (Unix.gettimeofday () -. t0), id))
    in
    ignore create_id;
    (* best-of-3 damps scheduler noise: both configs are cache-hit bound,
       so the best run is the one least perturbed by the machine *)
    let warm_once () =
      Http.with_connection ~host ~port (fun call ->
          let _ = call ~body:compare_body "/compare" in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to compares do
            let status, _, _ = call ~body:compare_body "/compare" in
            if status <> 200 then failwith "compare failed"
          done;
          float_of_int compares /. (Unix.gettimeofday () -. t0))
    in
    let warm_rate =
      List.fold_left max 0. (List.init 3 (fun _ -> warm_once ()))
    in
    Server.stop running;
    Printf.printf "%-22s %8.0f mutations/s   %8.0f warm compare/s\n" tag
      mut_rate warm_rate;
    (mut_rate, warm_rate)
  in
  (* one discarded pass warms the CPU, allocator and page cache so the
     in-memory-vs-journaled comparison isn't skewed by run order *)
  let _ = run_config "(warm-up)" None in
  let base_mut, base_cmp = run_config "in-memory" None in
  let state = tmp_dir "server" in
  let dur_mut, dur_cmp =
    run_config "state-dir (interval)" (Some state)
  in
  let compare_overhead_pct = 100. *. (1. -. (dur_cmp /. base_cmp)) in
  Printf.printf
    "\nwarm /compare overhead with journaling: %+.1f%% (bound: <10%%)\n"
    compare_overhead_pct;
  hr ();
  (* recovery time for a populated store *)
  let sessions = if !quick then 20 else 100 in
  let recovery_ms =
    let dir = tmp_dir "recover" in
    let t =
      Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:64
        ~state_dir:dir ()
    in
    Server.recover t;
    let req body =
      let path, query = Http.split_target "/session" in
      { Http.meth = "POST"; target = "/session"; path; query; headers = [];
        body }
    in
    for _ = 1 to sessions do
      let resp =
        Server.handle t
          (req {|{"dataset":"product-reviews","q":"gps","top":3}|})
      in
      if resp.Http.status <> 201 then failwith "populate failed"
    done;
    let t2 =
      Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:64
        ~state_dir:dir ()
    in
    let t0 = Unix.gettimeofday () in
    Server.recover t2;
    let ms = 1000. *. (Unix.gettimeofday () -. t0) in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    Printf.printf "recovery of %d sessions: %.1f ms\n" sessions ms;
    ms
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote state)));
  hr ();
  (* warm boot: context-snapshot recovery vs cold recipe rebuild over the
     same population — sessions concentrated on a small set of hot
     queries (the session-per-user workload warm boot targets), so
     contexts are shared. With the snapshot, recover returns with every
     session warm: one search and one context deserialization per
     distinct corpus, a pure restore per session. Cold, sessions only
     warm on first touch — a search, a profile extraction and a DFS
     climb each, plus a pair-table build per distinct corpus — so the
     comparison is time-until-every-session-is-warm: warm [recover] vs
     cold [recover + touch all]. Warm first-touch latency is reported
     separately as evidence the touches really do no rebuild work. *)
  let wb_sessions, wb_loads, wb_recover_ms, wb_touch_mean, wb_touch_max,
      wb_warm_ms, wb_cold_ms =
    let wb_dir = tmp_dir "warmboot" in
    let hot =
      let queries =
        List.concat_map
          (fun name ->
            match Xsact_dataset.Dataset.by_name name with
            | None -> []
            | Some d ->
              List.map (fun (_, q) -> (name, q)) d.Xsact_dataset.Dataset.queries)
          Xsact_dataset.Dataset.names
      in
      let tops = [| 8; 10; 12; 14; 16; 20 |] in
      List.filteri (fun i _ -> i < 10) queries
      |> List.mapi (fun i (ds, q) -> (ds, q, tops.(i mod Array.length tops)))
    in
    let post target body =
      let path, query = Http.split_target target in
      { Http.meth = "POST"; target; path; query; headers = []; body }
    in
    let get target =
      let path, query = Http.split_target target in
      { Http.meth = "GET"; target; path; query; headers = []; body = "" }
    in
    let mk ?(context_snapshots = true) () =
      Server.create ~datasets:Xsact_dataset.Dataset.names ~cache_capacity:64
        ~state_dir:wb_dir ~context_snapshots ()
    in
    (* populate, then stop cleanly so the context snapshot gets written *)
    let t = mk () in
    Server.recover t;
    let running = Server.start ~threads:2 ~port:0 t in
    let ids = ref [] and pool = ref [] and misses = ref 0 in
    while List.length !ids < sessions do
      (match !pool with [] -> pool := hot | _ -> ());
      match !pool with
      | [] -> failwith "warm-boot bench: no hot queries"
      | (ds, q, top) :: rest ->
        pool := rest;
        let body =
          Printf.sprintf
            {|{"dataset":%S,"q":%S,"top":%d,"size_bound":20}|} ds q top
        in
        let resp = Server.handle t (post "/session" body) in
        if resp.Http.status = 201 then
          match Xsact_server.Json.of_string resp.Http.resp_body with
          | Ok j -> (
            match Xsact_server.Json.member "id" j with
            | Some (Xsact_server.Json.String id) -> ids := id :: !ids
            | _ -> failwith "warm-boot bench: no session id")
          | Error e -> failwith e
        else begin
          incr misses;
          if !misses > 100 then
            failwith "warm-boot bench: session creation keeps failing"
        end
    done;
    let ids = List.rev !ids in
    Server.stop running;
    let touch t id =
      let resp = Server.handle t (get ("/session/" ^ id)) in
      if resp.Http.status <> 200 then failwith "warm-boot bench: touch failed"
    in
    (* warm: recover loads the snapshot; first touches find warm state.
       Best-of-3 on both sides damps scheduler noise, as in the
       mutation benchmark above — each round gets a fresh server over
       the same state dir, so no round sees another's warmed state. *)
    let warm_round () =
      let warm_t = mk () in
      let t0 = Unix.gettimeofday () in
      Server.recover warm_t;
      let recover_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      let latencies =
        List.map
          (fun id ->
            let t0 = Unix.gettimeofday () in
            touch warm_t id;
            1000. *. (Unix.gettimeofday () -. t0))
          ids
      in
      (warm_t, recover_ms, latencies)
    in
    let warm_t, recover_ms, latencies =
      List.fold_left
        (fun (_, br, _ as best) _ ->
          let (_, r, _ as round) = warm_round () in
          if r < br then round else best)
        (warm_round ()) [ (); () ]
    in
    let warm_ms = recover_ms +. List.fold_left ( +. ) 0. latencies in
    let touch_mean =
      List.fold_left ( +. ) 0. latencies /. float_of_int (List.length latencies)
    in
    let touch_max = List.fold_left max 0. latencies in
    let loads =
      let resp = Server.handle warm_t (get "/ready") in
      match Xsact_server.Json.of_string resp.Http.resp_body with
      | Ok j -> (
        match Xsact_server.Json.member "context_snapshot_loads" j with
        | Some (Xsact_server.Json.Int n) -> n
        | _ -> 0)
      | Error _ -> 0
    in
    (* cold: same directory with snapshot loading disabled — recover
       replays recipes only, every first touch rebuilds and searches *)
    let cold_round () =
      let cold_t = mk ~context_snapshots:false () in
      let t0 = Unix.gettimeofday () in
      Server.recover cold_t;
      List.iter (touch cold_t) ids;
      1000. *. (Unix.gettimeofday () -. t0)
    in
    let cold_ms =
      List.fold_left min (cold_round ()) (List.init 2 (fun _ -> cold_round ()))
    in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote wb_dir)));
    Printf.printf
      "warm boot of %d sessions (%d restored warm): snapshot recovery %.1f \
       ms vs cold rebuild-on-touch %.1f ms -> %.1fx\n\
       warm first touch: mean %.3f ms, max %.3f ms (pure serving, no \
       rebuild; warm total incl. touches %.1f ms)\n"
      (List.length ids) loads recover_ms cold_ms (cold_ms /. recover_ms)
      touch_mean touch_max warm_ms;
    (List.length ids, loads, recover_ms, touch_mean, touch_max, warm_ms,
     cold_ms)
  in
  hr ();
  (* warm resync: a fresh follower takes the primary's full state over
     /v1/replicate. With context snapshots on, the resync ships the warm
     records inline (base64-armored) and the follower deserializes its
     contexts from the stream; off, the same handover eager-warms every
     session through the rebuild path. Both ends are time from the
     follower's [recover] until every replicated session is warm —
     measured by polling /metrics only, so the measurement itself never
     warms a session. Population mirrors the warm-boot bench: sessions
     concentrated on a small set of hot corpora. *)
  let rs_sessions, rs_corpora, rs_loads, rs_warm_ms, rs_cold_ms =
    let post target body =
      let path, query = Http.split_target target in
      { Http.meth = "POST"; target; path; query; headers = []; body }
    in
    let get target =
      let path, query = Http.split_target target in
      { Http.meth = "GET"; target; path; query; headers = []; body = "" }
    in
    let hot =
      let queries =
        List.concat_map
          (fun name ->
            match Xsact_dataset.Dataset.by_name name with
            | None -> []
            | Some d ->
              List.map (fun (_, q) -> (name, q)) d.Xsact_dataset.Dataset.queries)
          Xsact_dataset.Dataset.names
      in
      List.filteri (fun i _ -> i < 10) queries
    in
    let p_dir = tmp_dir "resync_p" in
    let p =
      Server.create ~datasets:Xsact_dataset.Dataset.names ~cache_capacity:64
        ~state_dir:p_dir ()
    in
    Server.recover p;
    let p_running = Server.start ~threads:4 ~port:0 p in
    let p_port = Server.port p_running in
    let ids = ref [] and pool = ref [] in
    while List.length !ids < sessions do
      (match !pool with [] -> pool := hot | _ -> ());
      match !pool with
      | [] -> failwith "resync bench: no hot queries"
      | (ds, q) :: rest -> (
        pool := rest;
        let body =
          Printf.sprintf {|{"dataset":%S,"q":%S,"top":10,"size_bound":20}|} ds
            q
        in
        let resp = Server.handle p (post "/session" body) in
        if resp.Http.status <> 201 then
          failwith "resync bench: session creation failed"
        else
          match Xsact_server.Json.of_string resp.Http.resp_body with
          | Ok j -> (
            match Xsact_server.Json.member "id" j with
            | Some (Xsact_server.Json.String id) -> ids := id :: !ids
            | _ -> failwith "resync bench: no session id")
          | Error e -> failwith e)
    done;
    let ids = List.rev !ids in
    let metric t name =
      let resp = Server.handle t (get "/metrics") in
      match Xsact_server.Json.of_string resp.Http.resp_body with
      | Ok j -> (
        match Xsact_server.Json.member name j with
        | Some (Xsact_server.Json.Int n) -> n
        | _ -> 0)
      | Error _ -> 0
    in
    let follower_round ~context_snapshots () =
      let f_dir = tmp_dir "resync_f" in
      let f =
        Server.create ~datasets:Xsact_dataset.Dataset.names ~cache_capacity:64
          ~state_dir:f_dir
          ~replica_of:("127.0.0.1", p_port)
          ~context_snapshots ()
      in
      (* the listener exists only so [stop] can join the replication
         client cleanly between rounds *)
      let f_running = Server.start ~threads:1 ~port:0 f in
      let t0 = Unix.gettimeofday () in
      Server.recover f;
      let deadline = t0 +. 120. in
      let warmed () = metric f "sessions_warm" >= List.length ids in
      while (not (warmed ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.002
      done;
      let ms = 1000. *. (Unix.gettimeofday () -. t0) in
      if not (warmed ()) then failwith "resync bench: follower never warmed";
      (* correctness, off the clock: every replicated session serves *)
      List.iter
        (fun id ->
          if (Server.handle f (get ("/session/" ^ id))).Http.status <> 200
          then failwith "resync bench: replicated session missing")
        ids;
      let loads =
        let resp = Server.handle f (get "/ready") in
        match Xsact_server.Json.of_string resp.Http.resp_body with
        | Ok j -> (
          match Xsact_server.Json.member "context_snapshot_loads" j with
          | Some (Xsact_server.Json.Int n) -> n
          | _ -> 0)
        | Error _ -> 0
      in
      Server.stop f_running;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote f_dir)));
      (ms, loads)
    in
    (* one discarded round warms both ends, then best-of-3 per side *)
    let _ = follower_round ~context_snapshots:true () in
    let best round =
      List.fold_left
        (fun (bms, _ as acc) _ ->
          let (ms, _ as r) = round () in
          if ms < bms then r else acc)
        (round ()) [ (); () ]
    in
    let warm_ms, loads = best (follower_round ~context_snapshots:true) in
    let cold_ms, _ = best (follower_round ~context_snapshots:false) in
    Server.stop p_running;
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote p_dir)));
    Printf.printf
      "warm resync of %d sessions over %d corpora: %.1f ms (%d contexts \
       restored from shipped records) vs cold resync %.1f ms -> %.1fx\n"
      (List.length ids) (List.length hot) warm_ms loads cold_ms
      (cold_ms /. warm_ms);
    (List.length ids, List.length hot, loads, warm_ms, cold_ms)
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\n";
  Buffer.add_string json
    (Printf.sprintf "  \"bench\": \"persist\",\n  \"quick\": %b,\n" !quick);
  Buffer.add_string json
    (Printf.sprintf "  \"journal_appends\": %d,\n" appends);
  Buffer.add_string json "  \"journal_append_rates\": {";
  List.iteri
    (fun k (tag, rate) ->
      Buffer.add_string json
        (Printf.sprintf "%s\"%s\": %.1f" (if k = 0 then "" else ", ") tag rate))
    journal_rates;
  Buffer.add_string json "},\n";
  Buffer.add_string json
    (Printf.sprintf
       "  \"mutations_per_s\": {\"in_memory\": %.1f, \"state_dir\": %.1f},\n"
       base_mut dur_mut);
  Buffer.add_string json
    (Printf.sprintf
       "  \"warm_compare_per_s\": {\"in_memory\": %.1f, \"state_dir\": \
        %.1f},\n"
       base_cmp dur_cmp);
  Buffer.add_string json
    (Printf.sprintf "  \"warm_compare_overhead_pct\": %.2f,\n"
       compare_overhead_pct);
  Buffer.add_string json
    (Printf.sprintf
       "  \"recovery\": {\"sessions\": %d, \"recovery_ms\": %.2f},\n" sessions
       recovery_ms);
  Buffer.add_string json
    (Printf.sprintf
       "  \"warm_boot\": {\"sessions\": %d, \"sessions_restored\": %d, \
        \"recover_ms\": %.2f, \"first_touch_mean_ms\": %.3f, \
        \"first_touch_max_ms\": %.3f, \"warm_total_ms\": %.2f, \
        \"cold_rebuild_ms\": %.2f, \"speedup\": %.1f},\n"
       wb_sessions wb_loads wb_recover_ms wb_touch_mean wb_touch_max
       wb_warm_ms wb_cold_ms (wb_cold_ms /. wb_recover_ms));
  Buffer.add_string json
    (Printf.sprintf
       "  \"resync\": {\"sessions\": %d, \"corpora\": %d, \
        \"contexts_restored\": %d, \"warm_ms\": %.2f, \"cold_ms\": %.2f, \
        \"speedup\": %.1f}\n"
       rs_sessions rs_corpora rs_loads rs_warm_ms rs_cold_ms
       (rs_cold_ms /. rs_warm_ms));
  Buffer.add_string json "}\n";
  let path = "BENCH_persist.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---- Incremental maintenance: delta operations vs full rebuild ----------------------------- *)

(* E14/E15: single mutation latency, delta-maintained context vs batch
   make_context, over growing result sets — plus the O(change) mutation
   path's rows: remove-last (the structure-sharing fast path), general
   remove (prefix surgery), reparams (threshold change: pairs recompute
   but count/type maps are reused; weight change: weight rows only), and
   a session-level batch of k ops vs k sequential single-op applies.
   Writes BENCH_incremental.json; EXPERIMENTS.md E14/E15 record the
   crossover and the asymptotics. *)
let incremental_bench () =
  section
    (Printf.sprintf "incremental -- context delta ops vs full rebuild%s"
       (if !quick then " (quick)" else ""));
  (* quick keeps 64 and 256 so CI can smoke-test the remove-last
     monotonicity across that span *)
  let ns = if !quick then [ 8; 64; 256 ] else [ 8; 16; 32; 64; 128; 256 ] in
  let runs = if !quick then 3 else 5 in
  Printf.printf "%5s | %8s | %8s %8s | %8s %8s | %9s %9s %6s\n" "n" "add"
    "rm last" "rm gen" "reparams" "reweight" "flat B" "boxed B" "ratio";
  let rows = ref [] in
  List.iter
    (fun n ->
      let profiles =
        Workload.synthetic_profiles ~seed:7 ~results:(n + 1) ~entities:3
          ~types_per_entity:8 ~values_per_type:6 ~max_count:12
      in
      let base = Array.sub profiles 0 n in
      let mid = (n + 1) / 2 in
      let sans_mid =
        Array.init n (fun i -> profiles.(if i < mid then i else i + 1))
      in
      let params' = { Dod.default_params with Dod.threshold_pct = 25.0 } in
      let reweight gt = if String.length gt.Feature.attribute land 1 = 0 then 2 else 1 in
      let ctx_base = Dod.make_context ~domains:1 base in
      let ctx_full = Dod.make_context ~domains:1 profiles in
      (* sanity: the timed deltas really are the batch results *)
      if not (Dod.equal_context ctx_full (Dod.add_result ~domains:1 ctx_base profiles.(n)))
      then failwith "incremental bench: add delta diverged";
      if not (Dod.equal_context ctx_base (Dod.remove_result ctx_full n)) then
        failwith "incremental bench: remove-last delta diverged";
      if
        not
          (Dod.equal_context
             (Dod.make_context ~domains:1 sans_mid)
             (Dod.remove_result ctx_full mid))
      then failwith "incremental bench: general remove delta diverged";
      if
        not
          (Dod.equal_context
             (Dod.make_context ~params:params' ~domains:1 profiles)
             (Dod.reparams ~params:params' ~domains:1 ctx_full))
      then failwith "incremental bench: reparams delta diverged";
      if
        not
          (Dod.equal_context
             (Dod.make_context ~weight:reweight ~domains:1 profiles)
             (Dod.reparams ~weight:reweight ~domains:1 ctx_full))
      then failwith "incremental bench: reweight delta diverged";
      let time f = snd (Timing.time ~warmup:1 ~runs f) in
      let add_delta =
        time (fun () -> Dod.add_result ~domains:1 ctx_base profiles.(n))
      in
      let add_full = time (fun () -> Dod.make_context ~domains:1 profiles) in
      (* the remove-last delta is microseconds — take many more runs so
         its median (the denominator of the monotonicity check) is not
         clock jitter *)
      let rml_delta =
        snd
          (Timing.time ~warmup:2 ~runs:(runs * 10) (fun () ->
               Dod.remove_result ctx_full n))
      in
      let rml_full = time (fun () -> Dod.make_context ~domains:1 base) in
      let rmg_delta = time (fun () -> Dod.remove_result ctx_full mid) in
      let rmg_full = time (fun () -> Dod.make_context ~domains:1 sans_mid) in
      let rp_delta =
        time (fun () -> Dod.reparams ~params:params' ~domains:1 ctx_full)
      in
      let rp_full =
        time (fun () -> Dod.make_context ~params:params' ~domains:1 profiles)
      in
      let rw_delta =
        time (fun () -> Dod.reparams ~weight:reweight ~domains:1 ctx_full)
      in
      let rw_full =
        time (fun () -> Dod.make_context ~weight:reweight ~domains:1 profiles)
      in
      let speedup full delta =
        if delta.Timing.median_s > 0. then
          full.Timing.median_s /. delta.Timing.median_s
        else Float.infinity
      in
      let add_x = speedup add_full add_delta in
      (* the remove-last delta runs in microseconds, where medians still
         jitter with GC and clock noise between whole bench runs; both
         sides are deterministic code, so the min over many runs is the
         robust estimator for the ratio the monotonicity check relies
         on *)
      let rml_x =
        if rml_delta.Timing.min_s > 0. then
          rml_full.Timing.min_s /. rml_delta.Timing.min_s
        else Float.infinity
      in
      let rmg_x = speedup rmg_full rmg_delta in
      let rp_x = speedup rp_full rp_delta in
      let rw_x = speedup rw_full rw_delta in
      (* bytes per context: the flat packed-segment representation vs
         what the same pair tables would cost as boxed entry lists *)
      let bytes_flat = Dod.approx_bytes ctx_full in
      let bytes_boxed = Dod.approx_bytes_boxed ctx_full in
      let bytes_ratio = float_of_int bytes_boxed /. float_of_int bytes_flat in
      Printf.printf
        "%5d | %7.1fx | %7.1fx %7.1fx | %7.1fx %7.1fx | %9d %9d %5.2fx\n" n
        add_x rml_x rmg_x rp_x rw_x bytes_flat bytes_boxed bytes_ratio;
      rows :=
        (n, (add_delta, add_full, add_x), (rml_delta, rml_full, rml_x),
         (rmg_delta, rmg_full, rmg_x), (rp_delta, rp_full, rp_x), rw_x,
         (bytes_flat, bytes_boxed, bytes_ratio))
        :: !rows)
    ns;
  let rows = List.rev !rows in
  (* Remove-last must not decay with n: its delta touches only the lists
     the removed result appears in, while the full rebuild grows
     quadratically. The delta side is microseconds, so ratios between
     consecutive rows jitter with the clock; the decay check anchors at
     the first n >= 64 row instead — every larger n must stay at or
     above that speedup. (The pre-sharing implementation fell from ~40x
     at n = 64 to single digits at n = 256 and fails this check by an
     order of magnitude.) *)
  let remove_last_monotone =
    match
      List.filter_map
        (fun (n, _, (_, _, x), _, _, _, _) -> if n >= 64 then Some x else None)
        rows
    with
    | [] -> true
    (* 15% jitter allowance: a real decay regression (the pre-sharing
       implementation) undershoots the anchor by 10-100x, not percent *)
    | x0 :: rest -> List.for_all (fun x -> x >= 0.85 *. x0) rest
  in
  Printf.printf "\nremove-last speedup non-decaying from n=64: %b\n"
    remove_last_monotone;
  (* The flat representation must at least halve the boxed footprint at
     the largest n — the per-entry overhead it removes (list cons cells,
     boxed records) dominates as pair tables grow. *)
  let bytes_halved =
    match List.rev rows with
    | (_, _, _, _, _, _, (_, _, ratio)) :: _ -> ratio >= 2.0
    | [] -> true
  in
  Printf.printf "flat context >= 2x smaller than boxed at n=%d: %b\n"
    (List.fold_left (fun _ (n, _, _, _, _, _, _) -> n) 0 rows)
    bytes_halved;
  (* Batch of k session ops vs the same ops applied one at a time: the
     batch pays one context pass and one DFS regeneration, the sequential
     replay pays k of each. Session-level (Single_swap, one domain) so
     the comparison covers the whole mutation path, not just the pair
     tables. *)
  let batch_n = 32 and batch_k = 16 in
  let profiles =
    Workload.synthetic_profiles ~seed:7 ~results:(batch_n + 8) ~entities:3
      ~types_per_entity:8 ~values_per_type:6 ~max_count:12
  in
  let config =
    Config.default
    |> Config.with_algorithm Algorithm.Single_swap
    |> Config.with_domains 1
  in
  let s0 =
    match
      Session.create ~config ~size_bound:8
        (Array.to_list (Array.sub profiles 0 batch_n))
    with
    | Ok s -> s
    | Error _ -> failwith "incremental bench: session create failed"
  in
  let params' = { Dod.default_params with Dod.threshold_pct = 25.0 } in
  let ops =
    (* 6 adds, 4 removes, 4 resizes, 2 reparams = 16 mixed ops *)
    List.init 6 (fun i -> Session.Add profiles.(batch_n + i))
    @ [
        Session.Remove 3; Session.Remove 17; Session.Remove 5;
        Session.Remove 11;
        Session.Set_size_bound 10; Session.Set_size_bound 6;
        Session.Reparams { params = Some params'; weight = None };
        Session.Set_size_bound 12;
        Session.Reparams { params = Some Dod.default_params; weight = None };
        Session.Set_size_bound 8;
      ]
  in
  assert (List.length ops = batch_k);
  let apply_batch () =
    match Session.apply s0 ops with
    | Ok s -> s
    | Error _ -> failwith "incremental bench: batch apply failed"
  in
  let apply_sequential () =
    List.fold_left
      (fun s op ->
        match Session.apply s [ op ] with
        | Ok s -> s
        | Error _ -> failwith "incremental bench: sequential apply failed")
      s0 ops
  in
  (* sanity: both routes land on the same context bytes *)
  if
    not
      (Dod.equal_context
         (Session.context (apply_batch ()))
         (Session.context (apply_sequential ())))
  then failwith "incremental bench: batch context diverged from sequential";
  let batch_t = snd (Timing.time ~warmup:1 ~runs apply_batch) in
  let seq_t = snd (Timing.time ~warmup:1 ~runs apply_sequential) in
  let batch_x =
    if batch_t.Timing.median_s > 0. then
      seq_t.Timing.median_s /. batch_t.Timing.median_s
    else Float.infinity
  in
  Printf.printf
    "batch: n=%d k=%d  batch %.6fs vs sequential %.6fs  (%.1fx)\n" batch_n
    batch_k batch_t.Timing.median_s seq_t.Timing.median_s batch_x;
  (* Cross-session interning: k sessions over the same corpus and
     parameters hold one physical context. Drive the serve layer's intern
     table the way the session endpoints do — the first session builds
     and publishes, the rest acquire the pinned entry — and compare the
     table's ledger against the naive k-copies cost. *)
  let module Intern = Xsact_server.Intern in
  let share_k = 8 in
  let share_table = Intern.create () in
  let share_key = "bench-shared-corpus" in
  let shared_sessions =
    List.init share_k (fun _ ->
        match Intern.acquire share_table share_key with
        | Some (ps, ctx) -> (
          match
            Session.create ~config ~context:ctx ~size_bound:8
              (Array.to_list ps)
          with
          | Ok s -> s
          | Error _ -> failwith "incremental bench: shared session failed")
        | None -> (
          match
            Session.create ~config ~size_bound:8
              (Array.to_list (Array.sub profiles 0 batch_n))
          with
          | Ok s ->
            let ps, ctx =
              Intern.publish share_table share_key
                ~profiles:(Session.profiles s)
                ~context:(Session.context s)
            in
            if ctx == Session.context s then s
            else Session.intern s ~profiles:ps ~context:ctx
          | Error _ -> failwith "incremental bench: shared session failed"))
  in
  let one_physical_context =
    match shared_sessions with
    | s0 :: rest ->
      List.for_all (fun s -> Session.context s == Session.context s0) rest
    | [] -> false
  in
  if not one_physical_context then
    failwith "incremental bench: interned sessions hold distinct contexts";
  let interned_bytes = Intern.bytes_live share_table in
  let naive_bytes =
    share_k * Dod.approx_bytes (Session.context (List.hd shared_sessions))
  in
  Printf.printf
    "sharing: %d sessions over one corpus  interned %d B vs naive %d B \
     (%.1fx, one physical context: %b)\n"
    share_k interned_bytes naive_bytes
    (float_of_int naive_bytes /. float_of_int interned_bytes)
    one_physical_context;
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\n";
  Buffer.add_string json
    (Printf.sprintf "  \"bench\": \"incremental\",\n  \"quick\": %b,\n" !quick);
  Buffer.add_string json "  \"sweep\": [\n";
  List.iteri
    (fun k
         ( n,
           (ad, af, ax),
           (rld, rlf, rlx),
           (rgd, rgf, rgx),
           (rpd, rpf, rpx),
           rwx,
           (bflat, bboxed, bratio) ) ->
      Buffer.add_string json
        (Printf.sprintf
           "    {\"n\": %d, \"add_delta_s\": %.9f, \"add_full_s\": %.9f, \
            \"add_speedup\": %.2f, \"remove_last_delta_s\": %.9f, \
            \"remove_last_full_s\": %.9f, \"remove_last_speedup\": %.2f, \
            \"remove_general_delta_s\": %.9f, \"remove_general_full_s\": \
            %.9f, \"remove_general_speedup\": %.2f, \"reparams_delta_s\": \
            %.9f, \"reparams_full_s\": %.9f, \"reparams_speedup\": %.2f, \
            \"reparams_weight_speedup\": %.2f, \"context_bytes_flat\": %d, \
            \"context_bytes_boxed\": %d, \"context_bytes_ratio\": %.2f}%s\n"
           n ad.Timing.median_s af.Timing.median_s ax rld.Timing.median_s
           rlf.Timing.median_s rlx rgd.Timing.median_s rgf.Timing.median_s
           rgx rpd.Timing.median_s rpf.Timing.median_s rpx rwx bflat bboxed
           bratio
           (if k = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string json "  ],\n";
  Buffer.add_string json
    (Printf.sprintf
       "  \"batch\": {\"n\": %d, \"k\": %d, \"batch_s\": %.9f, \
        \"sequential_s\": %.9f, \"speedup\": %.2f},\n"
       batch_n batch_k batch_t.Timing.median_s seq_t.Timing.median_s batch_x);
  Buffer.add_string json
    (Printf.sprintf
       "  \"sharing\": {\"sessions\": %d, \"interned_bytes\": %d, \
        \"naive_bytes\": %d, \"one_physical_context\": %b},\n"
       share_k interned_bytes naive_bytes one_physical_context);
  Buffer.add_string json
    (Printf.sprintf "  \"bytes_halved_at_max_n\": %b,\n" bytes_halved);
  Buffer.add_string json
    (Printf.sprintf "  \"remove_last_monotone\": %b\n" remove_last_monotone);
  Buffer.add_string json "}\n";
  let path = "BENCH_incremental.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---- Registry ------------------------------------------------------------------------------ *)

let targets =
  [
    ("fig1_stats", fig1_stats);
    ("fig2_table", fig2_table);
    ("fig4a_dod", fig4a_dod);
    ("fig4b_time", fig4b_time);
    ("demo_outdoor", demo_outdoor);
    ("ext_sweep_l", ext_sweep_l);
    ("ext_sweep_n", ext_sweep_n);
    ("ext_optimality", ext_optimality);
    ("ext_threshold", ext_threshold);
    ("ext_measure", ext_measure);
    ("ext_scale", ext_scale);
    ("ext_stochastic", ext_stochastic);
    ("ext_incremental", ext_incremental);
    ("ext_weighting", ext_weighting);
    ("ext_spread", ext_spread);
    ("scale", scale);
    ("incremental", incremental_bench);
    ("serve", serve_bench);
    ("persist", persist_bench);
    ("micro", micro);
  ]

let () =
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with [] -> List.map fst targets | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown bench target %S; available: %s\n" name
          (String.concat ", " (List.map fst targets));
        exit 1)
    requested;
  Printf.printf "\n(total bench wall time: %.1fs)\n" (Unix.gettimeofday () -. t0)
