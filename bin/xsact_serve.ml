(* xsact-serve: the HTTP comparison service.

   dune exec bin/xsact_serve.exe -- --port 8080
   curl localhost:8080/datasets *)

open Cmdliner
module Server = Xsact_server.Server

let parse_hostport ~flag spec =
  match String.rindex_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
    let host = String.sub spec 0 i in
    let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port_s with
    | Some p when p > 0 && p < 65536 -> (host, p)
    | _ ->
      prerr_endline
        (Printf.sprintf "xsact-serve: %s: bad port in %s" flag spec);
      exit 1)
  | _ ->
    prerr_endline
      (Printf.sprintf "xsact-serve: %s: expected HOST:PORT, got %s" flag spec);
    exit 1

let serve port threads cache domains datasets deadline_ms max_pending
    session_ttl max_sessions state_dir fsync snapshot_every no_incremental
    context_cache max_context_mb replica_of peers takeover_after
    no_context_snapshots =
  let datasets = match datasets with [] -> None | names -> Some names in
  let fsync =
    match Xsact_persist.Journal.policy_of_string fsync with
    | Ok p -> p
    | Error msg ->
      prerr_endline ("xsact-serve: --fsync: " ^ msg);
      exit 1
  in
  let replica_of =
    Option.map (parse_hostport ~flag:"--replica-of") replica_of
  in
  let peers = List.map (parse_hostport ~flag:"--peer") peers in
  let takeover_after =
    match takeover_after with
    | None -> None
    | Some s when s <= 0. -> None
    | Some s -> Some s
  in
  let max_context_bytes =
    Option.map
      (fun mb -> int_of_float (mb *. 1024. *. 1024.))
      max_context_mb
  in
  let server =
    try
      Ok
        (Server.create ?datasets ~cache_capacity:cache
           ~context_cache_capacity:context_cache
           ~incremental:(not no_incremental) ?max_context_bytes ?domains
           ?deadline_ms ?session_ttl_s:session_ttl ?max_sessions ?state_dir
           ~fsync ~snapshot_every ?replica_of ~peers ?takeover_after
           ~context_snapshots:(not no_context_snapshots) ())
    with Invalid_argument msg -> Error msg
  in
  match server with
  | Error msg ->
    prerr_endline ("xsact-serve: " ^ msg);
    exit 1
  | Ok server ->
    let running =
      try Server.start ~threads ~max_pending ~port server
      with
      | Unix.Unix_error (err, _, _) ->
        prerr_endline
          (Printf.sprintf "xsact-serve: cannot bind port %d: %s" port
             (Unix.error_message err));
        exit 1
      | Invalid_argument msg ->
        prerr_endline ("xsact-serve: " ^ msg);
        exit 1
    in
    Printf.printf "xsact-serve listening on http://127.0.0.1:%d\n"
      (Server.port running);
    Printf.printf
      "  workers: %d  cache: %d entries  max-pending: %d  deadline: %s  \
       datasets: %s\n\
       %!"
      threads cache max_pending
      (match deadline_ms with
      | Some ms -> Printf.sprintf "%dms" ms
      | None -> "none")
      (String.concat ", " (Server.dataset_names server));
    (* Recover after the listening line so supervisors can already probe
       GET /ready (503 until the replay below finishes). *)
    Server.recover server;
    (match state_dir with
    | None -> ()
    | Some dir -> Printf.printf "  state: %s (durable sessions)\n%!" dir);
    (match replica_of with
    | None -> ()
    | Some (h, p) ->
      Printf.printf "  role: follower of %s:%d%s\n%!" h p
        (match takeover_after with
        | Some s -> Printf.sprintf " (takeover after %.1fs silent)" s
        | None -> ""));
    (match peers with
    | [] -> ()
    | ps ->
      Printf.printf "  peers: %s\n%!"
        (String.concat ", "
           (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) ps)));
    let stop_requested = ref false in
    let request_stop _ = stop_requested := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not !stop_requested do
      Thread.delay 0.25
    done;
    print_endline "xsact-serve: shutting down";
    Server.stop running

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Port to listen on (0 picks an ephemeral port).")

let threads_arg =
  Arg.(
    value & opt int 4
    & info [ "threads" ] ~docv:"N" ~doc:"Worker threads serving connections.")

let cache_arg =
  Arg.(
    value & opt int 128
    & info [ "cache" ] ~docv:"N" ~doc:"Comparison LRU cache capacity.")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool parallelism for requests that don't pin their own \
           (default: hardware parallelism).")

let datasets_arg =
  Arg.(
    value & opt_all string []
    & info [ "dataset" ] ~docv:"NAME"
        ~doc:
          "Dataset to load (repeatable; default: the whole registry). See \
           GET /datasets.")

let deadline_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request compute budget for POST /compare \
           (milliseconds). A tripped budget returns the algorithm's valid \
           best-so-far with an X-Degraded header, or 504 when nothing \
           completed. Clients override per request with X-Deadline-Ms, \
           capped by the server. Default: unbounded.")

let max_pending_arg =
  Arg.(
    value & opt int 64
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission bound on accepted-but-unserved connections; beyond it \
           new connections are shed with 503 + Retry-After. At half this \
           bound, multi-swap compares degrade to single-swap.")

let session_ttl_arg =
  Arg.(
    value & opt (some float) None
    & info [ "session-ttl" ] ~docv:"SECONDS"
        ~doc:
          "Expire server-resident sessions idle longer than this. Default: \
           never.")

let max_sessions_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:
          "Cap on live sessions; adding past it evicts the \
           least-recently-used. Default: unbounded.")

let state_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Persist sessions to $(docv) (journal + snapshot) and recover \
           them on boot; GET /ready answers 503 until recovery completes. \
           Default: in-memory only.")

let fsync_arg =
  Arg.(
    value & opt string "interval"
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "Journal fsync policy: $(b,always) (fsync every append), \
           $(b,interval) or $(b,interval:SECONDS) (batch fsyncs, default \
           0.1s), or $(b,never) (leave it to the OS). Only meaningful with \
           --state-dir.")

let snapshot_every_arg =
  Arg.(
    value & opt int 256
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Compact the journal into a snapshot after every $(docv) appends \
           (0 disables automatic compaction). Only meaningful with \
           --state-dir.")

let no_incremental_arg =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "Disable delta maintenance of session contexts, cross-session \
           context interning, and the warm-context reuse behind POST \
           /compare — every mutation (single-op, batched via /apply, or \
           a /params patch) rebuilds the pair tables from scratch and \
           every session holds a private copy. Responses are \
           byte-identical either way; this is the ablation/baseline \
           configuration.")

let context_cache_arg =
  Arg.(
    value & opt int 32
    & info [ "context-cache" ] ~docv:"N"
        ~doc:
          "Maximum unpinned entries the cross-session context intern \
           table retains for reuse — contexts no warm session holds, \
           kept so POST /compare and re-created sessions over the same \
           result set skip the rebuild. Pinned entries don't count.")

let max_context_mb_arg =
  Arg.(
    value & opt (some float) None
    & info [ "max-context-mb" ] ~docv:"MB"
        ~doc:
          "One byte budget for all warm contexts: interned session \
           contexts (counted once however many sessions share them) plus \
           the unpinned reuse entries behind POST /compare. Past it, \
           least-recently-used sessions are demoted to cold and the \
           freed entries shed. Default: unbounded.")

let replica_of_arg =
  Arg.(
    value & opt (some string) None
    & info [ "replica-of" ] ~docv:"HOST:PORT"
        ~doc:
          "Run as a live follower of the primary at $(docv): tail its \
           journal over GET /v1/replicate, apply every acked record into \
           warm state, serve reads and POST /compare while refusing \
           mutations with 503, and flip to primary on POST /v1/promote \
           (or automatically with --takeover-after). Requires \
           --state-dir — the follower keeps its own always-recoverable \
           copy.")

let peers_arg =
  Arg.(
    value & opt_all string []
    & info [ "peer" ] ~docv:"HOST:PORT"
        ~doc:
          "Another node of this cluster (repeatable). The list drives \
           coordinated failover: a booting primary probes it and joins a \
           live higher-epoch primary instead of forking history, a \
           follower that loses its primary walks it to find (or elect) \
           the new one, and a freshly promoted primary fences every \
           entry with POST /v1/demote until acknowledged.")

let takeover_after_arg =
  Arg.(
    value & opt (some float) None
    & info [ "takeover-after" ] ~docv:"SECONDS"
        ~doc:
          "With --replica-of: run the takeover election after the \
           primary has been unreachable for $(docv) seconds \
           (jittered capped-backoff reconnects keep probing until then; \
           with --peer the highest-epoch, lowest-address live follower \
           wins and the rest re-point to it). 0 or absent: manual \
           promotion only.")

let no_context_snapshots_arg =
  Arg.(
    value & flag
    & info [ "no-context-snapshots" ]
        ~doc:
          "Skip writing the warm-boot context snapshot on clean shutdown \
           and skip loading one on recovery — boot always restores \
           sessions cold (rebuilt on first touch). Only meaningful with \
           --state-dir.")

let cmd =
  let doc = "serve XSACT comparisons over a JSON HTTP API" in
  Cmd.v
    (Cmd.info "xsact-serve" ~version:"1.0.0" ~doc)
    Term.(
      const serve $ port_arg $ threads_arg $ cache_arg $ domains_arg
      $ datasets_arg $ deadline_arg $ max_pending_arg $ session_ttl_arg
      $ max_sessions_arg $ state_dir_arg $ fsync_arg $ snapshot_every_arg
      $ no_incremental_arg $ context_cache_arg $ max_context_mb_arg
      $ replica_of_arg $ peers_arg $ takeover_after_arg
      $ no_context_snapshots_arg)

let () = exit (Cmd.eval cmd)
