(* XSACT command-line interface: generate corpora, search them, and build
   comparison tables — the CLI equivalent of the demo's web UI. *)

open Cmdliner

(* ---- Shared arguments -------------------------------------------------- *)

let dataset_arg =
  let doc =
    Printf.sprintf "Built-in dataset to use (%s)."
      (String.concat ", " Xsact_dataset.Dataset.names)
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let file_arg =
  let doc = "Load the corpus from an XML file instead of a built-in dataset." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"PATH" ~doc)

let lists_arg =
  let doc = "Load the corpus from a directory of IMDB-style *.list files." in
  Arg.(value & opt (some dir) None & info [ "lists" ] ~docv:"DIR" ~doc)

let keywords_arg =
  let doc = "Keyword query." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"KEYWORDS" ~doc)

let lift_arg =
  let doc =
    "Lift results to the nearest ancestor with this tag (e.g. $(b,brand) on \
     the outdoor dataset) instead of the inferred entity."
  in
  Arg.(value & opt (some string) None & info [ "lift-to" ] ~docv:"TAG" ~doc)

let size_bound_arg =
  let doc = "Size bound L: maximum number of features per DFS." in
  Arg.(value & opt int 8 & info [ "L"; "size-bound" ] ~docv:"N" ~doc)

let algorithm_arg =
  let algs =
    List.map (fun a -> (Algorithm.to_string a, a)) Algorithm.all
  in
  let doc =
    Printf.sprintf "DFS generation method (%s)."
      (String.concat ", " (List.map fst algs))
  in
  Arg.(
    value
    & opt (enum algs) Algorithm.Multi_swap
    & info [ "a"; "algorithm" ] ~docv:"METHOD" ~doc)

let threshold_arg =
  let doc = "Differentiation threshold x%% (paper default 10)." in
  Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)

let measure_arg =
  let doc =
    "Occurrence measure: $(b,raw) counts (paper) or $(b,rate) normalized by \
     entity population."
  in
  Arg.(
    value
    & opt (enum [ ("raw", Dod.Raw); ("rate", Dod.Rate) ]) Dod.Raw
    & info [ "measure" ] ~docv:"M" ~doc)

let weight_arg =
  let doc =
    "Interestingness weights as comma-separated $(b,pattern=weight) pairs \
     matched against attribute names (e.g. $(b,--weight price=3,battery=2)); \
     unmatched types weigh 1."
  in
  Arg.(
    value
    & opt (some (list (pair ~sep:'=' string int))) None
    & info [ "weight" ] ~docv:"RULES" ~doc)

let weight_fn rules =
  match rules with
  | None -> None
  | Some rules -> Some (Weighting.by_attribute rules)

let prune_arg =
  let doc =
    "Result subtree policy: $(b,full) (whole entity), $(b,matched) (keep \
     only nested entities containing a keyword), or $(b,attributes) (direct \
     attributes only)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("full", Result_builder.Full);
             ("matched", Result_builder.Matched_entities);
             ("attributes", Result_builder.Attributes_only);
           ])
        Result_builder.Full
    & info [ "prune" ] ~docv:"MODE" ~doc)

let select_arg =
  let doc = "Comma-separated 1-based ranks of the results to compare." in
  Arg.(value & opt (some (list int)) None & info [ "select" ] ~docv:"RANKS" ~doc)

let domains_arg =
  let doc =
    "Domain-pool parallelism for context construction and DFS generation \
     (default: the hardware's recommended domain count, capped). The \
     comparison is identical for every value; $(b,--domains 1) forces the \
     sequential engine."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let top_arg =
  let doc = "Number of top results to use when $(b,--select) is absent." in
  Arg.(value & opt int 4 & info [ "top" ] ~docv:"N" ~doc)

let html_arg =
  let doc = "Also write the comparison table as an HTML page to this path." in
  Arg.(value & opt (some string) None & info [ "html" ] ~docv:"PATH" ~doc)

let markdown_flag =
  let doc = "Print the table as GitHub-flavored Markdown instead of a grid." in
  Arg.(value & flag & info [ "markdown" ] ~doc)

let explain_flag =
  let doc = "Also print why each differentiating row separates each pair." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let seed_arg =
  let doc = "Generator seed override." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

(* ---- Corpus loading ---------------------------------------------------- *)

let load_corpus ?lists ~dataset ~file () =
  match (dataset, file, lists) with
  | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
    Error "--dataset, --file and --lists are mutually exclusive"
  | None, None, None -> Error "one of --dataset, --file or --lists is required"
  | Some name, None, None -> begin
    match Xsact_dataset.Dataset.by_name name with
    | Some ds -> Ok ds.document
    | None ->
      Error
        (Printf.sprintf "unknown dataset %S (expected one of: %s)" name
           (String.concat ", " Xsact_dataset.Dataset.names))
  end
  | None, Some path, None -> begin
    match Xml_parse.parse_file path with
    | Ok doc -> Ok doc
    | Error e -> Error (path ^ ": " ^ Xml_parse.error_to_string e)
  end
  | None, None, Some dir -> begin
    match Xsact_dataset.Imdb_list.parse_dir dir with
    | Ok movies -> Ok (Xsact_dataset.Imdb_list.document_of_movies movies)
    | Error e -> Error (dir ^ ": " ^ e)
  end

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("xsact: " ^ msg);
    exit 1

let or_die_compare = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("xsact: " ^ Error.to_string e);
    exit 1

(* Fold the CLI's flags into the unified comparison configuration. *)
let config_of ?weight ?domains ~params ~algorithm () =
  Config.default
  |> Config.with_params params
  |> Config.with_algorithm algorithm
  |> (fun c ->
       match weight with Some w -> Config.with_weight w c | None -> c)
  |> fun c ->
  match domains with Some d -> Config.with_domains d c | None -> c

(* ---- generate ----------------------------------------------------------- *)

let generate_cmd =
  let output_arg =
    let doc = "Output XML path." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let name_arg =
    let doc = "Dataset to generate." in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) Xsact_dataset.Dataset.names))) None
      & info [] ~docv:"DATASET" ~doc)
  in
  let scale_arg =
    let doc = "Scale factor on the default corpus size." in
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,xml) (single file) or $(b,lists) (IMDB-style \
       *.list files written into the output directory; imdb dataset only)."
    in
    Arg.(
      value
      & opt (enum [ ("xml", `Xml); ("lists", `Lists) ]) `Xml
      & info [ "format" ] ~docv:"F" ~doc)
  in
  let run name output seed scale format =
    let scaled n = max 1 (int_of_float (float_of_int n *. scale)) in
    let doc =
      match name with
      | "product-reviews" ->
        let d = Xsact_dataset.Product_reviews.default_params in
        let params =
          {
            d with
            Xsact_dataset.Product_reviews.products = scaled d.products;
            seed = Option.value seed ~default:d.seed;
          }
        in
        Xsact_dataset.Product_reviews.generate params
      | "outdoor-retailer" ->
        let d = Xsact_dataset.Outdoor_retailer.default_params in
        let params =
          {
            d with
            Xsact_dataset.Outdoor_retailer.brands = scaled d.brands;
            seed = Option.value seed ~default:d.seed;
          }
        in
        Xsact_dataset.Outdoor_retailer.generate params
      | "imdb" ->
        let d = Xsact_dataset.Imdb.default_params in
        let params =
          {
            d with
            Xsact_dataset.Imdb.movies = scaled d.movies;
            seed = Option.value seed ~default:d.seed;
          }
        in
        Xsact_dataset.Imdb.generate params
      | _ -> assert false
    in
    match format with
    | `Xml ->
      Xml_print.to_file output doc;
      Printf.printf "wrote %s\n" output
    | `Lists ->
      (match Xsact_dataset.Imdb_list.movies_of_document doc with
      | Error e ->
        prerr_endline
          ("xsact: --format lists requires the imdb corpus shape: " ^ e);
        exit 1
      | Ok movies ->
        if not (Sys.file_exists output) then Unix.mkdir output 0o755;
        Xsact_dataset.Imdb_list.write_dir output movies;
        let _, names = Xsact_dataset.Imdb_list.file_names in
        Printf.printf "wrote %s/{%s}\n" output (String.concat "," names))
  in
  let term =
    Term.(
      const run $ name_arg $ output_arg $ seed_arg $ scale_arg $ format_arg)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic corpus as an XML file.")
    term

(* ---- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run dataset file lists =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let stats = Xml_stats.of_document doc in
    Format.printf "@[<v>%a@]@." Xml_stats.pp stats;
    print_endline "top tags:";
    List.iteri
      (fun i (tag, count) ->
        if i < 15 then Printf.printf "  %-24s %d\n" tag count)
      (Xml_stats.tag_histogram doc.Xml.root)
  in
  let term = Term.(const run $ dataset_arg $ file_arg $ lists_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print corpus statistics.") term

(* ---- search ------------------------------------------------------------- *)

let search_cmd =
  let limit_arg =
    let doc = "Maximum number of results to list." in
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let semantics_arg =
    let doc = "Match semantics: $(b,slca) (smallest LCAs) or $(b,elca)." in
    Arg.(
      value
      & opt (enum [ ("slca", Search.Slca); ("elca", Search.Elca) ]) Search.Slca
      & info [ "semantics" ] ~docv:"S" ~doc)
  in
  let scoring_arg =
    let doc = "Ranking: $(b,occurrence) or $(b,tfidf)." in
    Arg.(
      value
      & opt
          (enum [ ("occurrence", Search.Occurrence); ("tfidf", Search.Tf_idf) ])
          Search.Occurrence
      & info [ "scoring" ] ~docv:"R" ~doc)
  in
  let run dataset file lists keywords limit lift_to semantics scoring =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let engine = Search.create doc in
    let results =
      Search.query ~limit ?lift_to ~semantics ~scoring engine keywords
    in
    if results = [] then print_endline "no results"
    else
      List.iter
        (fun (r : Search.result) ->
          Printf.printf "%2d. %-40s  <%s>  score=%.2f\n" r.rank
            (Search.result_title engine r)
            r.element.Xml.tag r.score)
        results
  in
  let term =
    Term.(
      const run $ dataset_arg $ file_arg $ lists_arg $ keywords_arg
      $ limit_arg $ lift_arg $ semantics_arg $ scoring_arg)
  in
  Cmd.v (Cmd.info "search" ~doc:"Run a keyword query and list results.") term

(* ---- snippets ----------------------------------------------------------- *)

let snippets_cmd =
  let run dataset file lists keywords size_bound top lift_to =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let pipeline = Pipeline.create doc in
    let results = Pipeline.search ~limit:top ?lift_to pipeline keywords in
    if results = [] then print_endline "no results"
    else
      List.iter
        (fun r ->
          let profile = Pipeline.profile_of pipeline r in
          print_string (Snippet.to_string ~limit:size_bound profile);
          print_newline ())
        results
  in
  let term =
    Term.(
      const run $ dataset_arg $ file_arg $ lists_arg $ keywords_arg
      $ size_bound_arg $ top_arg $ lift_arg)
  in
  Cmd.v
    (Cmd.info "snippets"
       ~doc:"Print eXtract-style snippets (independent per-result summaries).")
    term

(* ---- compare ------------------------------------------------------------ *)

let compare_cmd =
  let stats_flag =
    let doc = "Also print the per-result feature statistics (Figure 1 style)." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run dataset file lists keywords size_bound algorithm threshold measure
      weight prune select top lift_to domains html markdown explain stats =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let pipeline = Pipeline.create doc in
    let params = { Dod.threshold_pct = threshold; measure } in
    let config =
      config_of ?weight:(weight_fn weight) ?domains ~params ~algorithm ()
    in
    let comparison =
      or_die_compare
        (Pipeline.compare ~config ?lift_to ~prune ?select ~top pipeline
           ~keywords ~size_bound)
    in
    if stats then
      Array.iter
        (fun profile ->
          print_string (Render_text.result_stats profile);
          print_newline ())
        comparison.Pipeline.profiles;
    if markdown then
      print_string (Render_markdown.table comparison.Pipeline.table)
    else print_string (Render_text.table comparison.Pipeline.table);
    if explain then begin
      let context =
        Dod.make_context ~params ~weight:config.Config.weight ?domains
          comparison.Pipeline.profiles
      in
      print_newline ();
      print_string (Render_text.explanations context comparison.Pipeline.dfss)
    end;
    Printf.printf "algorithm: %s   generation time: %.4fs\n"
      (Algorithm.to_string comparison.Pipeline.algorithm)
      comparison.Pipeline.elapsed_s;
    match html with
    | None -> ()
    | Some path ->
      Render_html.to_file path
        ~title:(Printf.sprintf "XSACT: %s" keywords)
        comparison.Pipeline.table;
      Printf.printf "wrote %s\n" path
  in
  let term =
    Term.(
      const run $ dataset_arg $ file_arg $ lists_arg $ keywords_arg
      $ size_bound_arg $ algorithm_arg $ threshold_arg $ measure_arg
      $ weight_arg $ prune_arg $ select_arg $ top_arg $ lift_arg
      $ domains_arg $ html_arg $ markdown_flag $ explain_flag $ stats_flag)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Search and build a comparison table for selected results.")
    term

(* ---- categories --------------------------------------------------------- *)

let categories_cmd =
  let run dataset file lists =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let engine = Search.create doc in
    List.iter
      (fun (tag, cat) ->
        Printf.printf "%-24s %s\n" tag (Node_category.category_to_string cat))
      (Node_category.tags (Search.categories engine))
  in
  let term = Term.(const run $ dataset_arg $ file_arg $ lists_arg) in
  Cmd.v
    (Cmd.info "categories"
       ~doc:"Show the inferred entity/attribute/connection categories.")
    term

(* ---- repl --------------------------------------------------------------- *)

(* An interactive loop modelled on the demo UI: search, tick results, set
   the table size, compare. Reads commands from stdin, so it also works
   scripted: `printf 'search gps\nselect 1 2\ncompare\n' | xsact repl -d
   product-reviews`. *)
let repl_cmd =
  let run dataset file lists =
    let doc = or_die (load_corpus ?lists ~dataset ~file ()) in
    let pipeline = Pipeline.create doc in
    let engine = Pipeline.engine pipeline in
    let results = ref [] in
    let selection = ref [] in
    let size_bound = ref 8 in
    let algorithm = ref Algorithm.Multi_swap in
    let domains = ref None in
    let weight = ref None in
    let prune = ref Result_builder.Full in
    let lift = ref None in
    let keywords = ref "" in
    let print_results () =
      if !results = [] then print_endline "  (no results)"
      else
        List.iter
          (fun (r : Search.result) ->
            Printf.printf "  [%d]%s %s\n" r.Search.rank
              (if List.mem r.Search.rank !selection then "*" else " ")
              (Search.result_title engine r))
          !results
    in
    let help () =
      print_string
        {|commands:
  search <keywords>      run a query
  lift <tag>|off         compare at a coarser granularity (e.g. brand)
  select <ranks...>      tick result checkboxes (1-based)
  size <L>               set the table size bound (default 8)
  algorithm <name>       topk|greedy|single-swap|multi-swap|annealing|restarts
  domains <n>|auto       domain-pool parallelism (auto = hardware default)
  weight <pat=w,...>|off interestingness weights on attribute patterns
  prune full|matched|attributes   result subtree policy
  stats <rank>           Figure-1 style statistics of one result
  compare                build the comparison table for the selection
  help                   this text
  quit                   leave
|}
    in
    let compare () =
      if List.length !selection < 2 then
        print_endline "  select at least two results first"
      else
        let config =
          config_of ?weight:!weight ?domains:!domains
            ~params:Dod.default_params ~algorithm:!algorithm ()
        in
        match
          Pipeline.compare ~config ?lift_to:!lift ~prune:!prune
            ~select:!selection pipeline ~keywords:!keywords
            ~size_bound:!size_bound
        with
        | Ok c ->
          print_string (Render_text.table c.Pipeline.table);
          Printf.printf "  (%s, %.4fs)\n"
            (Algorithm.to_string c.Pipeline.algorithm)
            c.Pipeline.elapsed_s
        | Error e -> Printf.printf "  error: %s\n" (Error.to_string e)
    in
    let dispatch line =
      let line = String.trim line in
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    in
    print_endline "xsact repl — type 'help' for commands";
    (try
       while true do
         print_string "> ";
         let line = read_line () in
         match dispatch line with
         | "", _ -> ()
         | "quit", _ | "exit", _ -> raise Exit
         | "help", _ -> help ()
         | "search", kw ->
           keywords := kw;
           selection := [];
           results := Search.query ~limit:20 ?lift_to:!lift engine kw;
           print_results ()
         | "lift", "off" -> lift := None
         | "lift", tag -> lift := Some tag
         | "select", ranks ->
           selection :=
             String.split_on_char ' ' ranks
             |> List.filter_map int_of_string_opt;
           print_results ()
         | "size", n -> (
           match int_of_string_opt n with
           | Some n when n >= 1 -> size_bound := n
           | _ -> print_endline "  usage: size <positive int>")
         | "algorithm", name -> (
           match Algorithm.of_string name with
           | Some a -> algorithm := a
           | None -> print_endline "  unknown algorithm")
         | "domains", "auto" -> domains := None
         | "domains", n -> (
           match int_of_string_opt n with
           | Some n when n >= 1 -> domains := Some n
           | _ -> print_endline "  usage: domains <positive int>|auto")
         | "weight", "off" -> weight := None
         | "weight", rules ->
           let parsed =
             String.split_on_char ',' rules
             |> List.filter_map (fun rule ->
                    match String.split_on_char '=' rule with
                    | [ pat; w ] ->
                      Option.map (fun w -> (String.trim pat, w))
                        (int_of_string_opt (String.trim w))
                    | _ -> None)
           in
           if parsed = [] then print_endline "  usage: weight pat=w,pat=w"
           else weight := Some (Weighting.by_attribute parsed)
         | "prune", mode -> (
           match Result_builder.mode_of_string mode with
           | Some m -> prune := m
           | None -> print_endline "  usage: prune full|matched|attributes")
         | "stats", rank -> (
           match int_of_string_opt rank with
           | Some rank when rank >= 1 && rank <= List.length !results ->
             let r = List.nth !results (rank - 1) in
             print_string
               (Render_text.result_stats (Pipeline.profile_of pipeline r))
           | _ -> print_endline "  usage: stats <rank>")
         | "compare", _ -> compare ()
         | cmd, _ -> Printf.printf "  unknown command %S (try 'help')\n" cmd
       done
     with Exit | End_of_file -> print_endline "bye")
  in
  let term = Term.(const run $ dataset_arg $ file_arg $ lists_arg) in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive search-and-compare loop (the demo UI).")
    term

let main_cmd =
  let doc = "differentiate and compare structured search results" in
  let info = Cmd.info "xsact" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ generate_cmd; stats_cmd; search_cmd; snippets_cmd; compare_cmd;
      categories_cmd; repl_cmd ]

let setup_logging () =
  (* XSACT_VERBOSE=debug|info|warning enables the library logs (search
     indexing, SLCA counts, comparison summaries). *)
  match Sys.getenv_opt "XSACT_VERBOSE" with
  | None -> ()
  | Some level ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (match String.lowercase_ascii level with
      | "debug" -> Some Logs.Debug
      | "warning" -> Some Logs.Warning
      | _ -> Some Logs.Info)

let () =
  setup_logging ();
  exit (Cmd.eval main_cmd)
