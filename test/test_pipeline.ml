(* Integration tests: the full search -> extract -> DFS -> table pipeline on
   all three generated datasets, table construction, both renderers,
   snippets, the workload helpers, and error paths. *)

let check = Alcotest.check
let contains = Xsact_util.Textutil.contains_substring

(* Small corpora keep the suite fast. *)
let pr_doc =
  Xsact_dataset.Product_reviews.generate
    { Xsact_dataset.Product_reviews.seed = 11; products = 24; min_reviews = 5; max_reviews = 20 }

let or_doc =
  Xsact_dataset.Outdoor_retailer.generate
    { Xsact_dataset.Outdoor_retailer.seed = 5; brands = 6; min_products = 20; max_products = 40 }

let imdb_doc =
  Xsact_dataset.Imdb.generate
    { Xsact_dataset.Imdb.seed = 8; movies = 200; year_range = (1980, 2009) }

let pr_pipeline = Pipeline.create pr_doc
let or_pipeline = Pipeline.create or_doc
let imdb_pipeline = Pipeline.create imdb_doc

let compare_ok ?lift_to ?(algorithm = Algorithm.Multi_swap) pipeline ~keywords
    ~size_bound ~top =
  let config = Config.(default |> with_algorithm algorithm) in
  match
    Pipeline.compare ~config ?lift_to ~top pipeline ~keywords ~size_bound
  with
  | Ok c -> c
  | Error e ->
    Alcotest.failf "compare %S failed: %s" keywords (Error.to_string e)

(* ---- End-to-end on each dataset ------------------------------------------- *)

let test_product_reviews_end_to_end () =
  let c = compare_ok pr_pipeline ~keywords:"gps" ~size_bound:8 ~top:3 in
  check Alcotest.int "three results" 3 (Array.length c.Pipeline.profiles);
  Array.iter
    (fun d ->
      check Alcotest.bool "dfs valid" true (Dfs.is_valid ~limit:8 d);
      check Alcotest.bool "dfs uses budget" true (Dfs.size d > 0))
    c.Pipeline.dfss;
  check Alcotest.bool "positive DoD" true (c.Pipeline.dod > 0);
  check Alcotest.bool "rows bounded by union of selections" true
    (List.length c.Pipeline.table.Table.rows <= 24);
  check Alcotest.bool "generation timed" true (c.Pipeline.elapsed_s >= 0.0)

let test_outdoor_brand_comparison () =
  let c =
    compare_ok or_pipeline ~lift_to:"brand" ~keywords:"men jackets"
      ~size_bound:10 ~top:3
  in
  (* Results are brands; their labels are brand names. *)
  Array.iter
    (fun (p : Result_profile.t) ->
      check Alcotest.bool "brand label nonempty" true
        (String.length p.Result_profile.label > 0);
      check Alcotest.bool "product population > 1" true
        (Result_profile.population p "product" > 1))
    c.Pipeline.profiles;
  (* The brand-focus comparison must expose the subcategory type. *)
  let has_subcategory =
    List.exists
      (fun (row : Table.row) ->
        row.Table.ftype.Feature.attribute = "subcategory")
      c.Pipeline.table.Table.rows
  in
  check Alcotest.bool "subcategory row present" true has_subcategory

let test_imdb_algorithms_ordering () =
  let dod alg =
    (compare_ok imdb_pipeline ~algorithm:alg ~keywords:"action" ~size_bound:8
       ~top:5)
      .Pipeline.dod
  in
  let topk = dod Algorithm.Topk in
  let single = dod Algorithm.Single_swap in
  let multi = dod Algorithm.Multi_swap in
  check Alcotest.bool "single >= topk" true (single >= topk);
  check Alcotest.bool "multi >= topk" true (multi >= topk);
  check Alcotest.bool "swaps strictly beat topk here" true (single > topk)

(* ---- Table ------------------------------------------------------------------ *)

let test_table_structure () =
  let c = compare_ok imdb_pipeline ~keywords:"comedy" ~size_bound:6 ~top:4 in
  let t = c.Pipeline.table in
  check Alcotest.int "labels = results" 4 (Array.length t.Table.labels);
  check Alcotest.int "dod recorded" c.Pipeline.dod t.Table.dod;
  check Alcotest.int "size bound recorded" 6 t.Table.size_bound;
  List.iter
    (fun (row : Table.row) ->
      check Alcotest.int "cells per row" 4 (Array.length row.Table.cells);
      (* every row has at least one non-unknown cell *)
      let filled =
        Array.exists (function Table.Entries _ -> true | Table.Unknown -> false)
          row.Table.cells
      in
      check Alcotest.bool "row not all unknown" true filled;
      Array.iter
        (function
          | Table.Unknown -> ()
          | Table.Entries entries ->
            check Alcotest.bool "entries non-empty" true (entries <> []);
            List.iter
              (fun (e : Table.entry) ->
                check Alcotest.bool "entry type matches row" true
                  (Feature.equal_ftype (Feature.ftype e.Table.feature)
                     row.Table.ftype))
              entries)
        row.Table.cells)
    t.Table.rows;
  (* rows grouped by entity ascending *)
  let entities =
    List.map (fun (r : Table.row) -> r.Table.ftype.Feature.entity) t.Table.rows
  in
  check Alcotest.bool "entity groups ordered" true
    (List.sort compare entities = entities
    || (* grouping, not global sort: check no entity reappears after a gap *)
    let rec no_regroup seen = function
      | [] -> true
      | e :: rest ->
        (match seen with
        | last :: _ when last = e -> no_regroup seen rest
        | _ when List.mem e seen -> false
        | _ -> no_regroup (e :: seen) rest)
    in
    no_regroup [] entities)

let test_table_differentiating_rows_match_dod () =
  let c = compare_ok imdb_pipeline ~keywords:"spielberg" ~size_bound:6 ~top:3 in
  let t = c.Pipeline.table in
  (* If DoD > 0 there must be differentiating rows, and vice versa. *)
  let diff_rows =
    List.length (List.filter (fun (r : Table.row) -> r.Table.differentiating) t.Table.rows)
  in
  check Alcotest.bool "dod > 0 iff differentiating rows" true
    ((c.Pipeline.dod > 0) = (diff_rows > 0))

(* ---- Renderers ---------------------------------------------------------------- *)

let test_render_text () =
  let c = compare_ok pr_pipeline ~keywords:"tomtom gps" ~size_bound:8 ~top:2 in
  let s = Render_text.table c.Pipeline.table in
  Array.iter
    (fun label -> check Alcotest.bool (label ^ " in header") true (contains s label))
    c.Pipeline.table.Table.labels;
  check Alcotest.bool "DoD footer" true (contains s "DoD =");
  check Alcotest.bool "size bound footer" true (contains s "L = 8")

let test_render_text_stats () =
  let c = compare_ok pr_pipeline ~keywords:"tomtom gps" ~size_bound:8 ~top:2 in
  let s = Render_text.result_stats c.Pipeline.profiles.(0) in
  check Alcotest.bool "population line" true (contains s "# of review");
  check Alcotest.bool "header line" true (contains s "ATTR:VALUE:# of occ")

let test_render_html () =
  let c = compare_ok pr_pipeline ~keywords:"garmin gps" ~size_bound:8 ~top:2 in
  let html = Render_html.table ~title:"t <escaped>" c.Pipeline.table in
  check Alcotest.bool "doctype" true (contains html "<!DOCTYPE html>");
  check Alcotest.bool "title escaped" true (contains html "t &lt;escaped&gt;");
  check Alcotest.bool "table element" true (contains html "<table>");
  check Alcotest.bool "dod shown" true
    (contains html "Degree of differentiation");
  Array.iter
    (fun label ->
      check Alcotest.bool "label present" true
        (contains html (Render_html.escape label)))
    c.Pipeline.table.Table.labels

let test_render_markdown () =
  let c = compare_ok imdb_pipeline ~keywords:"spielberg" ~size_bound:6 ~top:3 in
  let md = Render_markdown.table c.Pipeline.table in
  let lines = String.split_on_char '\n' md in
  (* header + separator + one line per row + footer (blank filtered) *)
  check Alcotest.int "line count"
    (List.length c.Pipeline.table.Table.rows + 3)
    (List.length (List.filter (fun l -> l <> "") lines));
  check Alcotest.bool "pipes" true (contains md "| feature type |");
  check Alcotest.bool "separator row" true (contains md "| --- |");
  check Alcotest.bool "footer" true (contains md "*DoD =");
  check Alcotest.string "escaping" "a\\|b \\* c\\\\d"
    (Render_markdown.escape_cell "a|b * c\\d")

let test_render_entry () =
  let e =
    {
      Table.feature = Feature.make ~entity:"review" ~attribute:"pro:compact" ~value:"yes";
      count = 8;
      population = 11;
    }
  in
  check Alcotest.string "percentage form" "pro:compact: yes (8/11, 73%)"
    (Render_text.entry_to_string e);
  let single =
    {
      Table.feature = Feature.make ~entity:"product" ~attribute:"name" ~value:"TomTom";
      count = 1;
      population = 1;
    }
  in
  check Alcotest.string "plain form" "name: TomTom"
    (Render_text.entry_to_string single)

(* ---- Snippets -------------------------------------------------------------------- *)

let test_snippets () =
  let results = Pipeline.search ~limit:2 pr_pipeline "gps" in
  let profile = Pipeline.profile_of pr_pipeline (List.hd results) in
  let snippet = Snippet.generate ~limit:5 profile in
  check Alcotest.int "size bound respected" 5 (List.length snippet);
  let d = Snippet.as_dfs ~limit:5 profile in
  check Alcotest.bool "snippet dfs valid" true (Dfs.is_valid ~limit:5 d);
  let s = Snippet.to_string ~limit:5 profile in
  check Alcotest.bool "label included" true
    (contains s profile.Result_profile.label);
  let s2 = Snippet.to_string ~label:false ~limit:5 profile in
  check Alcotest.bool "label suppressed" false
    (contains s2 profile.Result_profile.label)

(* ---- Error paths -------------------------------------------------------------------- *)

let test_compare_errors () =
  (* Errors are typed variants; to_string keeps a readable message. *)
  (match Pipeline.compare pr_pipeline ~keywords:"zzzznope" ~size_bound:5 with
  | Error (Error.No_results kw) ->
    check Alcotest.string "keywords carried" "zzzznope" kw;
    check Alcotest.bool "message mentions no results" true
      (contains (Error.to_string (Error.No_results kw)) "no results")
  | Error e -> Alcotest.failf "wrong variant: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  (match Pipeline.compare pr_pipeline ~keywords:"gps" ~select:[ 1 ] ~size_bound:5 with
  | Error (Error.Too_few_selected 1) -> ()
  | Error e -> Alcotest.failf "wrong variant: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  (match Pipeline.compare pr_pipeline ~keywords:"gps" ~select:[ 1; 999 ] ~size_bound:5 with
  | Error (Error.Rank_out_of_range { rank = 999; available }) ->
    check Alcotest.bool "available positive" true (available > 0)
  | Error e -> Alcotest.failf "wrong variant: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  match Pipeline.compare pr_pipeline ~keywords:"gps" ~size_bound:0 with
  | Error (Error.Bound_too_small 0) -> ()
  | Error e -> Alcotest.failf "wrong variant: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error"

let test_compare_select () =
  let all = Pipeline.search pr_pipeline "gps" in
  let c =
    match
      Pipeline.compare pr_pipeline ~keywords:"gps" ~select:[ 2; 1 ] ~size_bound:5
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "select failed: %s" (Error.to_string e)
  in
  (* selection order preserved: first profile is rank 2's result *)
  let expected_label =
    Search.result_title (Pipeline.engine pr_pipeline) (List.nth all 1)
  in
  check Alcotest.string "selection order" expected_label
    c.Pipeline.profiles.(0).Result_profile.label

let test_query_biased_snippets () =
  let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v in
  let profile =
    Result_profile.make ~label:"P" ~populations:[ ("review", 10) ]
      [
        (f ~e:"review" ~a:"pro:compact" ~v:"yes", 9);
        (f ~e:"review" ~a:"pro:bright-display" ~v:"yes", 8);
        (f ~e:"review" ~a:"best-use:travel" ~v:"yes", 7);
        (f ~e:"review" ~a:"con:weak-speaker" ~v:"yes", 3);
      ]
  in
  (* Plain snippets take the top by count: compact, bright, travel. *)
  let plain = Snippet.generate ~limit:3 profile in
  let attrs feats =
    List.map (fun ((ft : Feature.t), _) -> ft.Feature.ftype.Feature.attribute) feats
  in
  check
    Alcotest.(list string)
    "plain order"
    [ "pro:compact"; "pro:bright-display"; "best-use:travel" ]
    (attrs plain);
  (* A "speaker" query hoists the weak-speaker type, paying for its three
     more significant prerequisites: total 4 > 3, so it does NOT fit at
     L=3 and the snippet stays frequency-ordered... *)
  let biased3 = Snippet.query_biased ~keywords:"speaker" ~limit:3 profile in
  check Alcotest.(list string) "no room at L=3" (attrs plain) (attrs biased3);
  (* ...but at L=4 the hoist fits (3 prerequisites + itself). *)
  let biased4 = Snippet.query_biased ~keywords:"speaker" ~limit:4 profile in
  check Alcotest.bool "speaker included at L=4" true
    (List.mem "con:weak-speaker" (attrs biased4));
  let d = Snippet.query_biased_dfs ~keywords:"speaker" ~limit:4 profile in
  check Alcotest.bool "biased dfs valid" true (Dfs.is_valid ~limit:4 d);
  (* Value matches bias too: querying a value token. *)
  let by_value = Snippet.query_biased ~keywords:"travel" ~limit:3 profile in
  check Alcotest.bool "value-matched type present" true
    (List.mem "best-use:travel" (attrs by_value))

(* ---- Result pruning (XSeek return policies) ------------------------------------------- *)

let test_prune_matches_semantics () =
  let doc =
    match
      Xml_parse.parse_string
        "<brand><name>Marmot</name><products><product><name>Alpine</name><gender>men</gender><category>jackets</category></product><product><name>Trail</name><gender>men</gender><category>packs</category></product><product><name>Peak</name><gender>women</gender><category>jackets</category></product></products></brand>"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" (Xml_parse.error_to_string e)
  in
  let root = doc.Xml.root in
  check Alcotest.bool "all keywords present" true
    (Result_builder.matches ~keywords:[ "men"; "jackets" ] root);
  check Alcotest.bool "missing keyword" false
    (Result_builder.matches ~keywords:[ "men"; "tents" ] root);
  check Alcotest.bool "empty keywords" false
    (Result_builder.matches ~keywords:[] root)

let test_prune_modes () =
  let engine = Pipeline.engine or_pipeline in
  let results = Search.query ~lift_to:"brand" engine "men jackets" in
  let r = List.hd results in
  let categories = Search.categories engine in
  let keywords = Token.normalize_query "men jackets" in
  let count_products e = List.length (Xml_path.select e "//product") in
  let full =
    Result_builder.prune ~categories ~keywords Result_builder.Full
      r.Search.element
  in
  check Alcotest.bool "full is identity" true (full == r.Search.element);
  let matched =
    Result_builder.prune ~categories ~keywords Result_builder.Matched_entities
      r.Search.element
  in
  check Alcotest.bool "matched keeps fewer products" true
    (count_products matched < count_products full && count_products matched > 0);
  (* every kept product is a men's jacket *)
  List.iter
    (fun p ->
      check Alcotest.bool "kept product matches" true
        (Result_builder.matches ~keywords p))
    (Xml_path.select matched "//product");
  let attrs_only =
    Result_builder.prune ~categories ~keywords Result_builder.Attributes_only
      r.Search.element
  in
  check Alcotest.int "attributes view has no products" 0
    (count_products attrs_only);
  check Alcotest.bool "brand name kept" true
    (Xml.child attrs_only "name" <> None)

let test_prune_fallback () =
  (* All keywords sit in the root's own attributes: pruning would drop every
     nested entity, so the policy falls back to the full subtree. *)
  let doc =
    match
      Xml_parse.parse_string
        "<shop><name>gps world</name><item><d>radio</d><x>1</x></item><item><d>tv</d><x>2</x></item></shop>"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "parse: %s" (Xml_parse.error_to_string e)
  in
  let tree = Doctree.of_document doc in
  let categories = Node_category.infer tree in
  let pruned =
    Result_builder.prune ~categories ~keywords:[ "gps"; "world" ]
      Result_builder.Matched_entities doc.Xml.root
  in
  check Alcotest.int "fallback keeps items" 2
    (List.length (Xml.children_named pruned "item"))

let test_prune_through_pipeline () =
  let full =
    compare_ok or_pipeline ~lift_to:"brand" ~keywords:"men jackets"
      ~size_bound:8 ~top:3
  in
  match
    Pipeline.compare or_pipeline ~lift_to:"brand"
      ~prune:Result_builder.Matched_entities ~top:3 ~keywords:"men jackets"
      ~size_bound:8
  with
  | Error e -> Alcotest.failf "pruned compare: %s" (Error.to_string e)
  | Ok pruned ->
    Array.iteri
      (fun i (p : Result_profile.t) ->
        let full_pop =
          Result_profile.population full.Pipeline.profiles.(i) "product"
        in
        let pruned_pop = Result_profile.population p "product" in
        check Alcotest.bool "population shrinks" true (pruned_pop <= full_pop);
        check Alcotest.bool "population positive" true (pruned_pop > 0))
      pruned.Pipeline.profiles

(* ---- Workload ------------------------------------------------------------------------ *)

let test_workload_instances () =
  let engine = Pipeline.engine imdb_pipeline in
  let instances =
    Xsact_workload.Workload.instances ~top:4 engine
      [ ("Q1", "action"); ("Qnone", "zzznope"); ("Q2", "comedy") ]
  in
  check Alcotest.int "unmatched query dropped" 2 (List.length instances);
  List.iter
    (fun (inst : Xsact_workload.Workload.instance) ->
      check Alcotest.bool "2..4 profiles" true
        (Array.length inst.Xsact_workload.Workload.profiles >= 2
        && Array.length inst.Xsact_workload.Workload.profiles <= 4);
      check Alcotest.bool "result_count >= profiles" true
        (inst.Xsact_workload.Workload.result_count
        >= Array.length inst.Xsact_workload.Workload.profiles))
    instances

let test_workload_imdb_qm () =
  let prepared = Xsact_workload.Workload.imdb_qm ~movies:300 ~top:3 () in
  check Alcotest.bool "most QM queries usable" true
    (List.length prepared.Xsact_workload.Workload.queries >= 5)

let test_synthetic_profiles_shape () =
  let profiles =
    Xsact_workload.Workload.synthetic_profiles ~seed:4 ~results:3 ~entities:2
      ~types_per_entity:3 ~values_per_type:2 ~max_count:5
  in
  check Alcotest.int "three results" 3 (Array.length profiles);
  Array.iter
    (fun (p : Result_profile.t) ->
      check Alcotest.bool "nonempty" true (p.Result_profile.total_features > 0);
      check Alcotest.bool "types bounded" true (Result_profile.num_types p <= 6))
    profiles;
  (* deterministic *)
  let again =
    Xsact_workload.Workload.synthetic_profiles ~seed:4 ~results:3 ~entities:2
      ~types_per_entity:3 ~values_per_type:2 ~max_count:5
  in
  check Alcotest.int "deterministic num types"
    (Result_profile.num_types profiles.(0))
    (Result_profile.num_types again.(0))

let () =
  Alcotest.run "xsact_pipeline"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "product reviews" `Quick test_product_reviews_end_to_end;
          Alcotest.test_case "outdoor brands" `Quick test_outdoor_brand_comparison;
          Alcotest.test_case "imdb algorithm ordering" `Quick
            test_imdb_algorithms_ordering;
        ] );
      ( "table",
        [
          Alcotest.test_case "structure" `Quick test_table_structure;
          Alcotest.test_case "differentiating rows" `Quick
            test_table_differentiating_rows_match_dod;
        ] );
      ( "render",
        [
          Alcotest.test_case "text table" `Quick test_render_text;
          Alcotest.test_case "text stats" `Quick test_render_text_stats;
          Alcotest.test_case "html" `Quick test_render_html;
          Alcotest.test_case "markdown" `Quick test_render_markdown;
          Alcotest.test_case "entry formats" `Quick test_render_entry;
        ] );
      ( "snippets",
        [
          Alcotest.test_case "generation" `Quick test_snippets;
          Alcotest.test_case "query-biased" `Quick test_query_biased_snippets;
        ] );
      ( "errors",
        [
          Alcotest.test_case "compare errors" `Quick test_compare_errors;
          Alcotest.test_case "selection" `Quick test_compare_select;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "matches semantics" `Quick
            test_prune_matches_semantics;
          Alcotest.test_case "modes" `Quick test_prune_modes;
          Alcotest.test_case "fallback" `Quick test_prune_fallback;
          Alcotest.test_case "through pipeline" `Quick
            test_prune_through_pipeline;
        ] );
      ( "workload",
        [
          Alcotest.test_case "instances" `Quick test_workload_instances;
          Alcotest.test_case "imdb qm" `Slow test_workload_imdb_qm;
          Alcotest.test_case "synthetic profiles" `Quick
            test_synthetic_profiles_shape;
        ] );
    ]
